//! Out-of-core sharded Borůvka-filter: certified MSF over graphs bigger
//! than RAM.
//!
//! Every other backend in this crate materializes the full edge list.
//! This module computes the canonical MSF of a graph stored in the binary
//! on-disk format while holding only a bounded number of edges resident,
//! following the Borůvka-filter shape of Sanders & Schimek's massively
//! parallel MST engineering (partition edges → contract locally → filter
//! against global component structure → merge):
//!
//! 1. **Shard.** The edge file is cut into fixed-size record ranges and
//!    streamed through [`llp_graph::io::read_binary_range`] by a reader
//!    thread, with at most `read_ahead + 1` shards resident at once.
//! 2. **Contract locally.** Each shard's touched vertices are densely
//!    renumbered in ascending global order (a monotone relabeling keeps
//!    the local [`llp_graph::EdgeKey`] order isomorphic to the global
//!    one, so the local canonical MSF is the canonical restriction even
//!    under duplicate weights — the same argument `dynamic` uses for its
//!    scoped re-runs), then run to exhaustion through the flat-memory
//!    contraction engine ([`crate::contraction::Contraction`]), reusing
//!    one scratch arena across shards. At most `n_shard − 1` candidate
//!    edges survive per shard.
//! 3. **Filter.** A candidate `e` is discarded — before the merge ever
//!    sees it — iff its endpoints are already connected by the
//!    accumulated forest *and* `e.key()` is strictly heavier than every
//!    accumulated key (`e.key() > max(acc)`): the cycle property then
//!    rules `e` out of the global MSF using only strictly lighter edges.
//!    Connectivity is answered by a shared
//!    [`crate::union_find::ConcurrentUnionFind`] swept in parallel, the
//!    Filter-Kruskal discard rule applied across shards.
//! 4. **Merge.** Surviving candidates (key-sorted) are two-pointer merged
//!    with the accumulated forest into a Kruskal scan over a fresh
//!    union-find: `MSF(A ∪ B) = MSF(MSF(A) ∪ MSF(B))` under the strict
//!    key order, so the accumulator is always the canonical MSF of every
//!    edge streamed so far — an accumulated edge can still be evicted by
//!    a lighter edge from a later shard.
//!
//! The optional certification pass re-streams the file and checks every
//! record against a [`PathMaxIndex`] of the final forest — the same cycle
//! property sweep as [`crate::certify::certify_msf_par`], but without
//! ever building an in-RAM [`CsrGraph`]: violations are classified
//! exactly like the in-RAM certifier, and per-tree-edge match bits
//! (instead of a match count) make the foreign-edge check robust to the
//! duplicate records a raw streamed file may contain.

use crate::contraction::Contraction;
use crate::index::{key_bits, PathMaxIndex, INF_KEY};
use crate::result::MstResult;
use crate::stats::AlgoStats;
use crate::union_find::{ConcurrentUnionFind, UnionFind};
use crate::verify::VerifyError;
use llp_graph::io::{faulty_reader, read_binary_range, write_binary, IoError};
use llp_graph::{CsrGraph, Edge, EdgeKey};
use llp_runtime::sort::par_sort_by_key;
use llp_runtime::sync::Mutex;
use llp_runtime::{
    parallel_for_chunks, partition::retain_parallel, telemetry, ParallelForConfig, ScratchArena,
    ThreadPool,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver};

/// Tuning knobs for [`sharded_msf_file`].
#[derive(Clone, Debug)]
pub struct ShardedConfig {
    /// Maximum edge records per shard. The build's transient memory is
    /// roughly `64 B × shard_edges` (contraction buffers) plus the
    /// read-ahead shards at 16 B per record.
    pub shard_edges: usize,
    /// Re-stream the file after the build and certify the result
    /// end-to-end against a [`PathMaxIndex`] of the forest.
    pub certify: bool,
    /// Shards the reader thread may buffer ahead of the consumer; total
    /// resident shards are bounded by `read_ahead + 1`.
    pub read_ahead: usize,
    /// Crash-safe checkpointing: after every completed shard the
    /// accumulated forest and stream position are written to this path
    /// (tmp + fsync + atomic rename), and a later run against the same
    /// file resumes from the last completed shard instead of byte zero.
    /// A missing, torn or mismatched manifest is ignored (fresh start);
    /// the manifest is removed once a run fully succeeds.
    pub checkpoint: Option<PathBuf>,
    /// Deterministic interruption for tests and the fault matrix: stop
    /// with [`ShardedError::Interrupted`] once this many shards are
    /// complete (checkpoint already durable), as if the process had been
    /// killed at the cleanest possible instant.
    pub stop_after_shards: Option<usize>,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            shard_edges: 1 << 24,
            certify: true,
            read_ahead: 1,
            checkpoint: None,
            stop_after_shards: None,
        }
    }
}

/// Everything a run produced, for reports and gates.
#[derive(Debug)]
pub struct ShardedRun {
    /// Vertex count from the file header.
    pub num_vertices: usize,
    /// Edge records in the file (the raw multiset, pre-dedup).
    pub num_edges: u64,
    /// Shards the file was cut into.
    pub shards: usize,
    /// The canonical minimum spanning forest.
    pub result: MstResult,
    /// Whether the certification pass ran (and therefore passed — a
    /// failed certification is an error, never a silent flag).
    pub certified: bool,
    /// Local MSF candidates produced by per-shard contraction.
    pub candidate_edges: u64,
    /// Candidates discarded by the cross-shard Filter-Kruskal rule
    /// before the merge scan saw them.
    pub filtered_edges: u64,
    /// `Some(s)` when the run resumed from a checkpoint with `s` shards
    /// already complete (so only `shards - s` were processed here).
    pub resumed_from: Option<usize>,
}

/// A sharded run failed: either the file is unreadable/corrupt, or the
/// certification pass rejected the forest.
#[derive(Debug)]
pub enum ShardedError {
    /// Reading or parsing the binary edge file failed.
    Io(IoError),
    /// The certification sweep rejected the computed forest.
    Verify(VerifyError),
    /// The run stopped at a configured shard boundary
    /// ([`ShardedConfig::stop_after_shards`]) with a durable checkpoint;
    /// re-running with the same checkpoint path picks up from here.
    Interrupted {
        /// Shards complete (and checkpointed) when the run stopped.
        shards_done: usize,
        /// Total shards the file cuts into.
        shards_total: usize,
    },
}

impl std::fmt::Display for ShardedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardedError::Io(e) => write!(f, "sharded msf: {e}"),
            ShardedError::Verify(e) => write!(f, "sharded msf failed certification: {e}"),
            ShardedError::Interrupted {
                shards_done,
                shards_total,
            } => write!(
                f,
                "sharded msf interrupted at shard {shards_done}/{shards_total} \
                 (checkpoint durable; re-run to resume)"
            ),
        }
    }
}

impl std::error::Error for ShardedError {}

impl From<IoError> for ShardedError {
    fn from(e: IoError) -> Self {
        ShardedError::Io(e)
    }
}

impl From<VerifyError> for ShardedError {
    fn from(e: VerifyError) -> Self {
        ShardedError::Verify(e)
    }
}

/// Spawns a reader thread streaming the file's shards in order through a
/// bounded channel: at most `read_ahead` shards queue ahead of the one
/// the consumer holds. The reader owns its own file handle, so disk
/// latency overlaps shard `s`'s compute with shard `s+1`'s read.
fn stream_shards(
    path: &Path,
    total_edges: u64,
    shard_edges: usize,
    read_ahead: usize,
    start_edge: u64,
) -> Receiver<Result<Vec<Edge>, IoError>> {
    let (tx, rx) = sync_channel(read_ahead.max(1));
    let path: PathBuf = path.to_path_buf();
    let step = shard_edges.max(1) as u64;
    std::thread::spawn(move || {
        // The stream runs through the seeded fault injector (site
        // `sharded.reader`): under an active fault seed this thread sees
        // short reads, transient errors, sticky truncation and detectable
        // corruption, all of which surface to the consumer as classified
        // IoErrors through the same channel as real disk failures.
        let mut file = match std::fs::File::open(&path) {
            Ok(f) => faulty_reader(f, "sharded.reader"),
            Err(e) => {
                let _ = tx.send(Err(IoError::Io(e)));
                return;
            }
        };
        let mut lo = start_edge;
        while lo < total_edges {
            let hi = (lo + step).min(total_edges);
            // Rewind: the range reader validates header + length at the
            // current position on every call.
            let res = std::io::Seek::seek(&mut file, std::io::SeekFrom::Start(0))
                .map_err(IoError::Io)
                .and_then(|_| read_binary_range(&mut file, lo, hi))
                .map(|r| r.edges);
            let failed = res.is_err();
            if tx.send(res).is_err() || failed {
                return; // consumer gone, or nothing sane follows an error
            }
            lo = hi;
        }
    });
    rx
}

/// Checkpoint manifest magic: format version baked into the last byte.
const CKPT_MAGIC: &[u8; 8] = b"LLPCKPT\x01";

/// State recovered from (or about to be persisted as) a checkpoint
/// manifest: the accumulated canonical forest after `shards_done` shards,
/// plus the running counters the final report carries.
struct Checkpoint {
    shards_done: u64,
    candidate_edges: u64,
    filtered_edges: u64,
    acc: Vec<Edge>,
}

/// FNV-1a over the manifest body, so a torn checkpoint write (the
/// non-atomic failure mode the tmp+rename dance already makes near
/// impossible) is detected rather than resumed from.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF29CE484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001B3);
    }
    h
}

/// Serializes and durably installs the checkpoint: body to `<path>.tmp`,
/// fsync, atomic rename over `path`, parent-directory fsync (best
/// effort). After this returns, a kill at any instant leaves either the
/// previous complete manifest or this one — never a torn hybrid.
fn write_checkpoint(
    path: &Path,
    file_bytes: u64,
    n: u64,
    m: u64,
    shard_edges: u64,
    ck: &Checkpoint,
) -> Result<(), IoError> {
    let mut buf = Vec::with_capacity(80 + ck.acc.len() * 16);
    buf.extend_from_slice(CKPT_MAGIC);
    for v in [
        file_bytes,
        n,
        m,
        shard_edges,
        ck.shards_done,
        ck.candidate_edges,
        ck.filtered_edges,
        ck.acc.len() as u64,
    ] {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    for e in &ck.acc {
        buf.extend_from_slice(&e.u.to_le_bytes());
        buf.extend_from_slice(&e.v.to_le_bytes());
        buf.extend_from_slice(&e.w.to_le_bytes());
    }
    let sum = fnv64(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());

    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    let tmp = path.with_file_name(name);
    let mut f = std::fs::File::create(&tmp)?;
    std::io::Write::write_all(&mut f, &buf)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        let dir = if dir.as_os_str().is_empty() {
            Path::new(".")
        } else {
            dir
        };
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Loads and validates a checkpoint manifest against the run it is about
/// to resume. Returns `None` — a silent fresh start — when the file is
/// missing, torn (bad magic/length/checksum), describes a different
/// source file or shard size, or carries records the validators reject.
/// A checkpoint can make a run *skip* work, never trust bad state.
fn load_checkpoint(
    path: &Path,
    file_bytes: u64,
    n: u64,
    m: u64,
    shard_edges: u64,
) -> Option<Checkpoint> {
    let bytes = std::fs::read(path).ok()?;
    if bytes.len() < 80 || &bytes[..8] != CKPT_MAGIC {
        return None;
    }
    let (body, sum) = bytes.split_at(bytes.len() - 8);
    if fnv64(body) != u64::from_le_bytes(sum.try_into().ok()?) {
        return None;
    }
    let word = |i: usize| u64::from_le_bytes(body[8 + i * 8..16 + i * 8].try_into().unwrap());
    if word(0) != file_bytes || word(1) != n || word(2) != m || word(3) != shard_edges {
        return None; // a different file, or different shard geometry
    }
    let shards_done = word(4);
    let acc_len = word(7);
    if shards_done > m.div_ceil(shard_edges.max(1)) || acc_len >= n.max(1) {
        return None; // more shards/forest edges than the file can have
    }
    if body.len() as u64 != 72 + acc_len * 16 {
        return None;
    }
    let mut acc = Vec::with_capacity(acc_len as usize);
    let mut prev_key: Option<EdgeKey> = None;
    for i in 0..acc_len as usize {
        let rec = &body[72 + i * 16..72 + (i + 1) * 16];
        let u = u32::from_le_bytes(rec[0..4].try_into().unwrap());
        let v = u32::from_le_bytes(rec[4..8].try_into().unwrap());
        let w = f64::from_le_bytes(rec[8..16].try_into().unwrap());
        let e = Edge::new(u, v, w);
        // The accumulator is a key-sorted forest over [0, n): anything
        // else is corruption that slipped past the checksum.
        if (u as u64) >= n || (v as u64) >= n || u == v || !w.is_finite() {
            return None;
        }
        if prev_key.is_some_and(|p| p >= e.key()) {
            return None;
        }
        prev_key = Some(e.key());
        acc.push(e);
    }
    Some(Checkpoint {
        shards_done,
        candidate_edges: word(5),
        filtered_edges: word(6),
        acc,
    })
}

/// Dense ascending renumbering of the vertices a shard touches, reusable
/// across shards: a vertex bitmap over the global id space plus a
/// per-word popcount prefix, so `global → local` is one word load, a
/// mask and a popcount. Ascending order makes the relabeling monotone.
struct ShardRemap {
    bits: Vec<u64>,
    prefix: Vec<u32>,
    /// `local → global`, ascending.
    locals: Vec<u32>,
}

impl ShardRemap {
    fn new(n: usize) -> Self {
        let words = n.div_ceil(64);
        ShardRemap {
            bits: vec![0; words],
            prefix: vec![0; words],
            locals: Vec::new(),
        }
    }

    /// Marks both endpoints of every edge, builds the rank structure and
    /// returns the number of distinct vertices in the shard.
    fn build(&mut self, edges: &[Edge]) -> usize {
        self.bits.fill(0);
        for e in edges {
            self.bits[(e.u >> 6) as usize] |= 1u64 << (e.u & 63);
            self.bits[(e.v >> 6) as usize] |= 1u64 << (e.v & 63);
        }
        let mut running = 0u32;
        self.locals.clear();
        for (wi, &word) in self.bits.iter().enumerate() {
            self.prefix[wi] = running;
            let mut rest = word;
            while rest != 0 {
                let bit = rest.trailing_zeros();
                self.locals.push((wi as u32) << 6 | bit);
                rest &= rest - 1;
            }
            running += word.count_ones();
        }
        running as usize
    }

    #[inline]
    fn local(&self, g: u32) -> u32 {
        let word = self.bits[(g >> 6) as usize];
        self.prefix[(g >> 6) as usize] + (word & ((1u64 << (g & 63)) - 1)).count_ones()
    }
}

/// Computes the certified canonical MSF of a binary edge file without
/// ever materializing the whole edge list. See the module docs for the
/// algorithm; see [`ShardedConfig`] for the memory knobs.
pub fn sharded_msf_file(
    path: &Path,
    cfg: &ShardedConfig,
    pool: &ThreadPool,
) -> Result<ShardedRun, ShardedError> {
    let (n, m) = {
        let mut f = faulty_reader(std::fs::File::open(path).map_err(IoError::Io)?, "sharded.probe");
        let probe = read_binary_range(&mut f, 0, 0)?;
        (probe.num_vertices, probe.total_edges)
    };
    let file_bytes = std::fs::metadata(path).map_err(IoError::Io)?.len();
    let shard_edges = cfg.shard_edges.max(1);
    let shards = m.div_ceil(shard_edges as u64) as usize;
    let par = ParallelForConfig::with_grain(512);

    let mut stats = AlgoStats::default();
    let mut acc: Vec<Edge> = Vec::new();
    let cuf = ConcurrentUnionFind::new(n);
    let mut arena = ScratchArena::new();
    let mut remap = ShardRemap::new(n);
    let mut candidate_edges = 0u64;
    let mut filtered_edges = 0u64;

    // Resume: adopt a durable checkpoint's forest and counters, then
    // rebuild the filter's union-find from the forest alone. That is
    // sound because the accumulator after shard k is the canonical MSF of
    // every candidate published to the union-find so far, and an MSF
    // preserves the connectivity of its input edge set — so
    // `connectivity(cuf) == connectivity(acc)` at every shard boundary,
    // and re-unioning acc's edges reproduces the filter state exactly.
    let mut start_shard = 0usize;
    let mut resumed_from = None;
    if let Some(ck_path) = &cfg.checkpoint {
        if let Some(ck) = load_checkpoint(ck_path, file_bytes, n as u64, m, shard_edges as u64) {
            for e in &ck.acc {
                cuf.union(e.u, e.v);
            }
            acc = ck.acc;
            candidate_edges = ck.candidate_edges;
            filtered_edges = ck.filtered_edges;
            start_shard = ck.shards_done as usize;
            resumed_from = Some(start_shard);
            telemetry::counter_add("sharded-resumes", 1);
        }
    }

    {
        let _s = telemetry::span("sharded-build");
        let rx = stream_shards(
            path,
            m,
            shard_edges,
            cfg.read_ahead,
            start_shard as u64 * shard_edges as u64,
        );
        for s in start_shard..shards {
            let mut edges = rx.recv().expect("shard reader hung up")?;

            // Contract the shard locally under the monotone dense relabel.
            let n_local = remap.build(&edges);
            for e in edges.iter_mut() {
                e.u = remap.local(e.u);
                e.v = remap.local(e.v);
            }
            let mut c = Contraction::from_edge_list(n_local, edges);
            c.arena = std::mem::replace(&mut arena, ScratchArena::new());
            while !c.is_done() {
                c.round(pool, par, &mut stats);
            }
            c.finish_stats(&mut stats);
            let mut cand = c.chosen_edges();
            arena = std::mem::replace(&mut c.arena, ScratchArena::new());
            drop(c);
            for e in cand.iter_mut() {
                e.u = remap.locals[e.u as usize];
                e.v = remap.locals[e.v as usize];
            }
            candidate_edges += cand.len() as u64;

            par_sort_by_key(pool, &mut cand, Edge::key);

            // Filter-Kruskal discard across shards: endpoints already
            // connected in the accumulator, using only strictly lighter
            // edges (every accumulated key ≤ max(acc) < e.key()), can
            // never join the global MSF. Equal keys cannot occur between
            // distinct records, and a byte-identical duplicate of an
            // accumulated edge shares its key, fails the strict `>` and
            // is discarded by the merge scan instead.
            if let Some(last) = acc.last() {
                let max_key = last.key();
                let before = cand.len();
                retain_parallel(pool, &mut cand, |e| {
                    !(e.key() > max_key && cuf.same(e.u, e.v))
                });
                filtered_edges += (before - cand.len()) as u64;
            }

            // Publish the survivors' connectivity, then merge-scan the two
            // key-sorted forests through a fresh union-find: the Kruskal
            // scan over MSF(acc) ∪ MSF(shard) yields MSF(acc ∪ shard).
            parallel_for_chunks(pool, 0..cand.len(), par, |chunk| {
                for i in chunk {
                    cuf.union(cand[i].u, cand[i].v);
                }
            });
            stats.parallel_regions += 1;
            let mut uf = UnionFind::new(n);
            let mut merged = Vec::with_capacity(acc.len() + cand.len());
            let (mut i, mut j) = (0, 0);
            while i < acc.len() || j < cand.len() {
                let take_acc = j >= cand.len()
                    || (i < acc.len() && acc[i].key() <= cand[j].key());
                let e = if take_acc {
                    let e = acc[i];
                    i += 1;
                    e
                } else {
                    let e = cand[j];
                    j += 1;
                    e
                };
                if uf.union(e.u, e.v) {
                    merged.push(e);
                }
            }
            acc = merged;

            // Durable progress: after this returns, a kill anywhere up to
            // the next boundary resumes from shard s+1.
            if let Some(ck_path) = &cfg.checkpoint {
                let ck = Checkpoint {
                    shards_done: s as u64 + 1,
                    candidate_edges,
                    filtered_edges,
                    acc: std::mem::take(&mut acc),
                };
                write_checkpoint(ck_path, file_bytes, n as u64, m, shard_edges as u64, &ck)?;
                acc = ck.acc;
            }
            if cfg.stop_after_shards.is_some_and(|k| s + 1 >= k) && s + 1 < shards {
                return Err(ShardedError::Interrupted {
                    shards_done: s + 1,
                    shards_total: shards,
                });
            }
        }
    }

    stats.cas_retries += cuf.cas_retries();
    telemetry::counter_add("sharded-shards", shards as u64);
    telemetry::counter_add("sharded-candidates", candidate_edges);
    telemetry::counter_add("sharded-filtered", filtered_edges);
    let result = MstResult::from_edges(n, acc, stats);

    if cfg.certify {
        let _s = telemetry::span("sharded-certify");
        certify_streaming(path, m, &result, cfg, pool)?;
    }

    // The run is complete (and certified, if asked): the manifest has
    // served its purpose and must not shadow a future run over a
    // rewritten file of identical size.
    if let Some(ck_path) = &cfg.checkpoint {
        let _ = std::fs::remove_file(ck_path);
    }

    Ok(ShardedRun {
        num_vertices: n,
        num_edges: m,
        shards,
        result,
        certified: cfg.certify,
        candidate_edges,
        filtered_edges,
        resumed_from,
    })
}

/// Re-streams the file and certifies `result` as its canonical MSF — the
/// cycle-property sweep of [`crate::certify::certify_against`], driven
/// over shards instead of a CSR. Every record must not beat the path
/// maximum between its endpoints (`key < max` is a cut or spanning
/// violation), and every tree edge must be matched by at least one
/// record (`key == max`), tracked per tree edge so duplicate records
/// cannot mask an absent one.
fn certify_streaming(
    path: &Path,
    total_edges: u64,
    result: &MstResult,
    cfg: &ShardedConfig,
    pool: &ThreadPool,
) -> Result<(), ShardedError> {
    let n = {
        // The forest never names a vertex the header does not cover, but
        // the index must be built over the file's full vertex set.
        let mut f = faulty_reader(std::fs::File::open(path).map_err(IoError::Io)?, "sharded.probe");
        read_binary_range(&mut f, 0, 0)?.num_vertices
    };
    let index = PathMaxIndex::build_par(n, result, pool)?;
    let t = result.edges.len();

    // The accumulator leaves the merge scan key-sorted, so the packed
    // keys are ascending and rank lookup is a binary search.
    let tree_keys: Vec<u128> = result
        .edges
        .iter()
        .map(|e| key_bits(e.w, e.u, e.v))
        .collect();
    debug_assert!(tree_keys.windows(2).all(|w| w[0] < w[1]));
    let seen: Vec<AtomicU64> = (0..t.div_ceil(64)).map(|_| AtomicU64::new(0)).collect();
    let worst: Mutex<Option<(EdgeKey, VerifyError)>> = Mutex::new(None);
    let par = ParallelForConfig::with_grain(2048);

    let rx = stream_shards(path, total_edges, cfg.shard_edges.max(1), cfg.read_ahead, 0);
    let shards = total_edges.div_ceil(cfg.shard_edges.max(1) as u64);
    for _ in 0..shards {
        let edges = rx.recv().expect("shard reader hung up")?;
        let violations = AtomicUsize::new(0);
        parallel_for_chunks(pool, 0..edges.len(), par, |chunk| {
            for i in chunk {
                let e = &edges[i];
                if e.w > index.pass_above {
                    continue; // heavier than every tree edge: passes outright
                }
                let kb = key_bits(e.w, e.u, e.v);
                let maxk =
                    index.path_max_at(index.pos[e.u as usize], index.pos[e.v as usize]);
                if kb < maxk {
                    // Cycle property violated, or (INF_KEY) a cross-tree
                    // edge the forest fails to span. Keep the
                    // smallest-key witness for a deterministic report.
                    let err = if maxk == INF_KEY {
                        VerifyError::NotSpanning(*e)
                    } else {
                        VerifyError::CutViolation(*e)
                    };
                    let key = e.key();
                    let mut w = worst.lock();
                    if w.as_ref().is_none_or(|(k, _)| key < *k) {
                        *w = Some((key, err));
                    }
                    violations.fetch_add(1, Ordering::Relaxed);
                } else if kb == maxk {
                    // Keys are unique, so this record *is* the tree edge
                    // that realises the path maximum.
                    if let Ok(r) = tree_keys.binary_search(&kb) {
                        seen[r >> 6].fetch_or(1u64 << (r & 63), Ordering::Relaxed);
                    }
                }
            }
        });
        if violations.load(Ordering::Relaxed) > 0 {
            let (_, err) = worst.into_inner().expect("violation recorded");
            return Err(err.into());
        }
    }

    // Any tree edge no record matched is foreign to the file.
    for r in 0..t {
        if seen[r >> 6].load(Ordering::Relaxed) & (1u64 << (r & 63)) == 0 {
            return Err(VerifyError::ForeignEdge(result.edges[r]).into());
        }
    }
    Ok(())
}

/// In-RAM convenience used by the bench harness, sweeps and tests: writes
/// `graph` to a temporary binary file, runs the sharded backend over it
/// (certified) and returns the forest. Panics if the run fails — callers
/// hold a well-formed in-RAM graph, so any failure is a bug.
pub fn sharded_msf_graph(graph: &CsrGraph, shard_edges: usize, pool: &ThreadPool) -> MstResult {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "llp-sharded-{}-{}.bin",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let run = (|| -> Result<ShardedRun, ShardedError> {
        let mut w = std::io::BufWriter::new(std::fs::File::create(&path).map_err(IoError::Io)?);
        write_binary(graph, &mut w).map_err(IoError::Io)?;
        std::io::Write::flush(&mut w).map_err(IoError::Io)?;
        drop(w);
        let cfg = ShardedConfig {
            shard_edges,
            ..ShardedConfig::default()
        };
        sharded_msf_file(&path, &cfg, pool)
    })();
    let _ = std::fs::remove_file(&path);
    run.expect("sharded msf over an in-RAM graph").result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter_kruskal::filter_kruskal_par;
    use crate::kruskal::kruskal;
    use llp_graph::generators::{erdos_renyi, random_geometric, rmat, road_network};
    use llp_graph::generators::{RmatParams, RoadParams};
    use llp_graph::samples::fig1;

    fn pool() -> ThreadPool {
        ThreadPool::new(3)
    }

    #[test]
    fn matches_kruskal_on_fig1_at_every_shard_size() {
        let g = fig1();
        let keys = kruskal(&g).canonical_keys();
        let pool = pool();
        for shard_edges in [1, 2, 3, g.num_edges()] {
            let r = sharded_msf_graph(&g, shard_edges, &pool);
            assert_eq!(r.canonical_keys(), keys, "shard_edges {shard_edges}");
        }
    }

    #[test]
    fn matches_reference_across_generator_families() {
        let pool = pool();
        for (name, g) in [
            ("er", erdos_renyi(300, 1200, 7)),
            ("er-sparse", erdos_renyi(200, 120, 3)),
            ("geom", random_geometric(150, 0.15, 5)),
            ("road", road_network(RoadParams::usa_like(12, 12, 9))),
            ("rmat", rmat(RmatParams::graph500(9, 8, 1))),
        ] {
            let want = filter_kruskal_par(&g, &pool).canonical_keys();
            let got = sharded_msf_graph(&g, 257, &pool);
            assert_eq!(got.canonical_keys(), want, "{name}");
        }
    }

    #[test]
    fn file_run_reports_shape_and_certifies() {
        let g = erdos_renyi(400, 1600, 21);
        let path = std::env::temp_dir().join(format!("llp-sharded-test-{}.bin", std::process::id()));
        let mut w = std::io::BufWriter::new(std::fs::File::create(&path).unwrap());
        write_binary(&g, &mut w).unwrap();
        std::io::Write::flush(&mut w).unwrap();
        drop(w);
        let pool = pool();
        let cfg = ShardedConfig {
            shard_edges: 100,
            certify: true,
            read_ahead: 2,
            ..ShardedConfig::default()
        };
        let run = sharded_msf_file(&path, &cfg, &pool).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(run.num_vertices, 400);
        assert_eq!(run.num_edges, g.num_edges() as u64);
        assert_eq!(run.shards, g.num_edges().div_ceil(100));
        assert!(run.certified);
        assert!(run.result.stats.rounds > 0);
        assert_eq!(
            run.result.canonical_keys(),
            kruskal(&g).canonical_keys()
        );
    }

    #[test]
    fn certification_rejects_a_corrupted_file_not_matching_the_forest() {
        // Build a forest over one file, then certify it against a file
        // whose lightest record was made even lighter: the forest is no
        // longer minimum for the file, and the streaming sweep must say
        // so with a cut violation.
        let g = erdos_renyi(120, 500, 2);
        let pool = pool();
        let path = std::env::temp_dir().join(format!("llp-sharded-bad-{}.bin", std::process::id()));
        let mut w = std::io::BufWriter::new(std::fs::File::create(&path).unwrap());
        write_binary(&g, &mut w).unwrap();
        std::io::Write::flush(&mut w).unwrap();
        drop(w);
        let cfg = ShardedConfig {
            shard_edges: 64,
            certify: false,
            read_ahead: 1,
            ..ShardedConfig::default()
        };
        let run = sharded_msf_file(&path, &cfg, &pool).unwrap();

        // Rewrite one non-tree record strictly lighter than every weight.
        let tree: std::collections::HashSet<(u32, u32)> = run
            .result
            .edges
            .iter()
            .map(|e| (e.u.min(e.v), e.u.max(e.v)))
            .collect();
        let victim = g
            .edges()
            .position(|e| !tree.contains(&(e.u.min(e.v), e.u.max(e.v))))
            .expect("a non-tree edge exists");
        let mut bytes = std::fs::read(&path).unwrap();
        let off = 28 + victim * 16 + 8;
        bytes[off..off + 8].copy_from_slice(&(-1.0f64).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();

        let err = certify_streaming(&path, run.num_edges, &run.result, &cfg, &pool).unwrap_err();
        std::fs::remove_file(&path).unwrap();
        assert!(
            matches!(err, ShardedError::Verify(VerifyError::CutViolation(_))),
            "{err}"
        );
    }

    fn write_graph_file(g: &CsrGraph, tag: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!(
            "llp-sharded-{tag}-{}.bin",
            std::process::id()
        ));
        let mut w = std::io::BufWriter::new(std::fs::File::create(&path).unwrap());
        write_binary(g, &mut w).unwrap();
        std::io::Write::flush(&mut w).unwrap();
        path
    }

    #[test]
    fn interrupted_run_resumes_bit_identical() {
        let g = erdos_renyi(300, 1500, 17);
        let path = write_graph_file(&g, "ckpt");
        let ck = path.with_extension("ckpt");
        let pool = pool();
        let base = ShardedConfig {
            shard_edges: 128,
            certify: true,
            read_ahead: 1,
            checkpoint: Some(ck.clone()),
            stop_after_shards: None,
        };
        let uninterrupted = sharded_msf_file(&path, &base, &pool).unwrap();
        assert!(uninterrupted.resumed_from.is_none());
        assert!(!ck.exists(), "successful run must remove its checkpoint");

        // Interrupt at every boundary; resume must certify and match the
        // uninterrupted forest bit for bit.
        let shards = uninterrupted.shards;
        for stop in [1, shards / 2, shards - 1] {
            let mut cfg = base.clone();
            cfg.stop_after_shards = Some(stop);
            let err = sharded_msf_file(&path, &cfg, &pool).unwrap_err();
            match err {
                ShardedError::Interrupted {
                    shards_done,
                    shards_total,
                } => {
                    assert_eq!(shards_done, stop);
                    assert_eq!(shards_total, shards);
                }
                other => panic!("expected Interrupted, got {other}"),
            }
            assert!(ck.exists(), "interrupted run must leave its checkpoint");

            let resumed = sharded_msf_file(&path, &base, &pool).unwrap();
            assert_eq!(resumed.resumed_from, Some(stop), "stop {stop}");
            assert!(resumed.certified);
            assert_eq!(
                resumed.result.edges, uninterrupted.result.edges,
                "stop {stop}: resumed forest must be bit-identical"
            );
            assert_eq!(resumed.candidate_edges, uninterrupted.candidate_edges);
            assert_eq!(resumed.filtered_edges, uninterrupted.filtered_edges);
            assert!(!ck.exists());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_or_mismatched_checkpoint_falls_back_to_fresh_start() {
        let g = erdos_renyi(200, 900, 23);
        let path = write_graph_file(&g, "ckpt-torn");
        let ck = path.with_extension("ckpt");
        let pool = pool();
        let base = ShardedConfig {
            shard_edges: 100,
            certify: true,
            read_ahead: 1,
            checkpoint: Some(ck.clone()),
            stop_after_shards: None,
        };
        let want = sharded_msf_file(&path, &base, &pool).unwrap();

        // Leave a real checkpoint behind, then tamper with it.
        let mut cfg = base.clone();
        cfg.stop_after_shards = Some(2);
        sharded_msf_file(&path, &cfg, &pool).unwrap_err();
        let pristine = std::fs::read(&ck).unwrap();

        // (a) torn tail: checksum fails.
        std::fs::write(&ck, &pristine[..pristine.len() - 5]).unwrap();
        let r = sharded_msf_file(&path, &base, &pool).unwrap();
        assert!(r.resumed_from.is_none(), "torn checkpoint must be ignored");
        assert_eq!(r.result.edges, want.result.edges);

        // (b) flipped byte inside the forest: checksum fails.
        sharded_msf_file(&path, &cfg, &pool).unwrap_err();
        let mut bad = std::fs::read(&ck).unwrap();
        let mid = 72 + 4;
        bad[mid] ^= 0x40;
        std::fs::write(&ck, &bad).unwrap();
        let r = sharded_msf_file(&path, &base, &pool).unwrap();
        assert!(r.resumed_from.is_none());
        assert_eq!(r.result.edges, want.result.edges);

        // (c) shard-geometry mismatch: a valid manifest for different
        // shard_edges must not be adopted.
        sharded_msf_file(&path, &cfg, &pool).unwrap_err();
        let mut other = base.clone();
        other.shard_edges = 150;
        let r = sharded_msf_file(&path, &other, &pool).unwrap();
        assert!(r.resumed_from.is_none(), "geometry mismatch must be ignored");
        assert_eq!(r.result.canonical_keys(), want.result.canonical_keys());

        let _ = std::fs::remove_file(&ck);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checkpoint_survives_process_style_reuse_of_completed_manifest() {
        // A checkpoint claiming *all* shards done: the resumed run should
        // skip straight to certification and still succeed.
        let g = erdos_renyi(150, 600, 31);
        let path = write_graph_file(&g, "ckpt-done");
        let ck = path.with_extension("ckpt");
        let pool = pool();
        let shards = (g.num_edges() as u64).div_ceil(100) as usize;
        let base = ShardedConfig {
            shard_edges: 100,
            certify: true,
            read_ahead: 1,
            checkpoint: Some(ck.clone()),
            stop_after_shards: None,
        };
        let mut cfg = base.clone();
        // stop_after_shards == shards means no interruption (the guard
        // only fires strictly before the last shard).
        cfg.stop_after_shards = Some(shards);
        let full = sharded_msf_file(&path, &cfg, &pool).unwrap();
        assert!(full.certified);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_and_edgeless_files_work() {
        let pool = pool();
        for n in [0usize, 5] {
            let g = CsrGraph::empty(n);
            let r = sharded_msf_graph(&g, 8, &pool);
            assert!(r.edges.is_empty());
            assert_eq!(r.num_trees, n);
        }
    }
}

//! Out-of-core sharded Borůvka-filter: certified MSF over graphs bigger
//! than RAM.
//!
//! Every other backend in this crate materializes the full edge list.
//! This module computes the canonical MSF of a graph stored in the binary
//! on-disk format while holding only a bounded number of edges resident,
//! following the Borůvka-filter shape of Sanders & Schimek's massively
//! parallel MST engineering (partition edges → contract locally → filter
//! against global component structure → merge):
//!
//! 1. **Shard.** The edge file is cut into fixed-size record ranges and
//!    streamed through [`llp_graph::io::read_binary_range`] by a reader
//!    thread, with at most `read_ahead + 1` shards resident at once.
//! 2. **Contract locally.** Each shard's touched vertices are densely
//!    renumbered in ascending global order (a monotone relabeling keeps
//!    the local [`llp_graph::EdgeKey`] order isomorphic to the global
//!    one, so the local canonical MSF is the canonical restriction even
//!    under duplicate weights — the same argument `dynamic` uses for its
//!    scoped re-runs), then run to exhaustion through the flat-memory
//!    contraction engine ([`crate::contraction::Contraction`]), reusing
//!    one scratch arena across shards. At most `n_shard − 1` candidate
//!    edges survive per shard.
//! 3. **Filter.** A candidate `e` is discarded — before the merge ever
//!    sees it — iff its endpoints are already connected by the
//!    accumulated forest *and* `e.key()` is strictly heavier than every
//!    accumulated key (`e.key() > max(acc)`): the cycle property then
//!    rules `e` out of the global MSF using only strictly lighter edges.
//!    Connectivity is answered by a shared
//!    [`crate::union_find::ConcurrentUnionFind`] swept in parallel, the
//!    Filter-Kruskal discard rule applied across shards.
//! 4. **Merge.** Surviving candidates (key-sorted) are two-pointer merged
//!    with the accumulated forest into a Kruskal scan over a fresh
//!    union-find: `MSF(A ∪ B) = MSF(MSF(A) ∪ MSF(B))` under the strict
//!    key order, so the accumulator is always the canonical MSF of every
//!    edge streamed so far — an accumulated edge can still be evicted by
//!    a lighter edge from a later shard.
//!
//! The optional certification pass re-streams the file and checks every
//! record against a [`PathMaxIndex`] of the final forest — the same cycle
//! property sweep as [`crate::certify::certify_msf_par`], but without
//! ever building an in-RAM [`CsrGraph`]: violations are classified
//! exactly like the in-RAM certifier, and per-tree-edge match bits
//! (instead of a match count) make the foreign-edge check robust to the
//! duplicate records a raw streamed file may contain.

use crate::contraction::Contraction;
use crate::index::{key_bits, PathMaxIndex, INF_KEY};
use crate::result::MstResult;
use crate::stats::AlgoStats;
use crate::union_find::{ConcurrentUnionFind, UnionFind};
use crate::verify::VerifyError;
use llp_graph::io::{read_binary_range, write_binary, IoError};
use llp_graph::{CsrGraph, Edge, EdgeKey};
use llp_runtime::sort::par_sort_by_key;
use llp_runtime::sync::Mutex;
use llp_runtime::{
    parallel_for_chunks, partition::retain_parallel, telemetry, ParallelForConfig, ScratchArena,
    ThreadPool,
};
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver};

/// Tuning knobs for [`sharded_msf_file`].
#[derive(Clone, Copy, Debug)]
pub struct ShardedConfig {
    /// Maximum edge records per shard. The build's transient memory is
    /// roughly `64 B × shard_edges` (contraction buffers) plus the
    /// read-ahead shards at 16 B per record.
    pub shard_edges: usize,
    /// Re-stream the file after the build and certify the result
    /// end-to-end against a [`PathMaxIndex`] of the forest.
    pub certify: bool,
    /// Shards the reader thread may buffer ahead of the consumer; total
    /// resident shards are bounded by `read_ahead + 1`.
    pub read_ahead: usize,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            shard_edges: 1 << 24,
            certify: true,
            read_ahead: 1,
        }
    }
}

/// Everything a run produced, for reports and gates.
#[derive(Debug)]
pub struct ShardedRun {
    /// Vertex count from the file header.
    pub num_vertices: usize,
    /// Edge records in the file (the raw multiset, pre-dedup).
    pub num_edges: u64,
    /// Shards the file was cut into.
    pub shards: usize,
    /// The canonical minimum spanning forest.
    pub result: MstResult,
    /// Whether the certification pass ran (and therefore passed — a
    /// failed certification is an error, never a silent flag).
    pub certified: bool,
    /// Local MSF candidates produced by per-shard contraction.
    pub candidate_edges: u64,
    /// Candidates discarded by the cross-shard Filter-Kruskal rule
    /// before the merge scan saw them.
    pub filtered_edges: u64,
}

/// A sharded run failed: either the file is unreadable/corrupt, or the
/// certification pass rejected the forest.
#[derive(Debug)]
pub enum ShardedError {
    /// Reading or parsing the binary edge file failed.
    Io(IoError),
    /// The certification sweep rejected the computed forest.
    Verify(VerifyError),
}

impl std::fmt::Display for ShardedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardedError::Io(e) => write!(f, "sharded msf: {e}"),
            ShardedError::Verify(e) => write!(f, "sharded msf failed certification: {e}"),
        }
    }
}

impl std::error::Error for ShardedError {}

impl From<IoError> for ShardedError {
    fn from(e: IoError) -> Self {
        ShardedError::Io(e)
    }
}

impl From<VerifyError> for ShardedError {
    fn from(e: VerifyError) -> Self {
        ShardedError::Verify(e)
    }
}

/// Spawns a reader thread streaming the file's shards in order through a
/// bounded channel: at most `read_ahead` shards queue ahead of the one
/// the consumer holds. The reader owns its own file handle, so disk
/// latency overlaps shard `s`'s compute with shard `s+1`'s read.
fn stream_shards(
    path: &Path,
    total_edges: u64,
    shard_edges: usize,
    read_ahead: usize,
) -> Receiver<Result<Vec<Edge>, IoError>> {
    let (tx, rx) = sync_channel(read_ahead.max(1));
    let path: PathBuf = path.to_path_buf();
    let step = shard_edges.max(1) as u64;
    std::thread::spawn(move || {
        let mut file = match std::fs::File::open(&path) {
            Ok(f) => BufReader::new(f),
            Err(e) => {
                let _ = tx.send(Err(IoError::Io(e)));
                return;
            }
        };
        let mut lo = 0u64;
        while lo < total_edges {
            let hi = (lo + step).min(total_edges);
            // Rewind: the range reader validates header + length at the
            // current position on every call.
            let res = std::io::Seek::seek(&mut file, std::io::SeekFrom::Start(0))
                .map_err(IoError::Io)
                .and_then(|_| read_binary_range(&mut file, lo, hi))
                .map(|r| r.edges);
            let failed = res.is_err();
            if tx.send(res).is_err() || failed {
                return; // consumer gone, or nothing sane follows an error
            }
            lo = hi;
        }
    });
    rx
}

/// Dense ascending renumbering of the vertices a shard touches, reusable
/// across shards: a vertex bitmap over the global id space plus a
/// per-word popcount prefix, so `global → local` is one word load, a
/// mask and a popcount. Ascending order makes the relabeling monotone.
struct ShardRemap {
    bits: Vec<u64>,
    prefix: Vec<u32>,
    /// `local → global`, ascending.
    locals: Vec<u32>,
}

impl ShardRemap {
    fn new(n: usize) -> Self {
        let words = n.div_ceil(64);
        ShardRemap {
            bits: vec![0; words],
            prefix: vec![0; words],
            locals: Vec::new(),
        }
    }

    /// Marks both endpoints of every edge, builds the rank structure and
    /// returns the number of distinct vertices in the shard.
    fn build(&mut self, edges: &[Edge]) -> usize {
        self.bits.fill(0);
        for e in edges {
            self.bits[(e.u >> 6) as usize] |= 1u64 << (e.u & 63);
            self.bits[(e.v >> 6) as usize] |= 1u64 << (e.v & 63);
        }
        let mut running = 0u32;
        self.locals.clear();
        for (wi, &word) in self.bits.iter().enumerate() {
            self.prefix[wi] = running;
            let mut rest = word;
            while rest != 0 {
                let bit = rest.trailing_zeros();
                self.locals.push((wi as u32) << 6 | bit);
                rest &= rest - 1;
            }
            running += word.count_ones();
        }
        running as usize
    }

    #[inline]
    fn local(&self, g: u32) -> u32 {
        let word = self.bits[(g >> 6) as usize];
        self.prefix[(g >> 6) as usize] + (word & ((1u64 << (g & 63)) - 1)).count_ones()
    }
}

/// Computes the certified canonical MSF of a binary edge file without
/// ever materializing the whole edge list. See the module docs for the
/// algorithm; see [`ShardedConfig`] for the memory knobs.
pub fn sharded_msf_file(
    path: &Path,
    cfg: &ShardedConfig,
    pool: &ThreadPool,
) -> Result<ShardedRun, ShardedError> {
    let (n, m) = {
        let mut f = BufReader::new(std::fs::File::open(path).map_err(IoError::Io)?);
        let probe = read_binary_range(&mut f, 0, 0)?;
        (probe.num_vertices, probe.total_edges)
    };
    let shard_edges = cfg.shard_edges.max(1);
    let shards = m.div_ceil(shard_edges as u64) as usize;
    let par = ParallelForConfig::with_grain(512);

    let mut stats = AlgoStats::default();
    let mut acc: Vec<Edge> = Vec::new();
    let cuf = ConcurrentUnionFind::new(n);
    let mut arena = ScratchArena::new();
    let mut remap = ShardRemap::new(n);
    let mut candidate_edges = 0u64;
    let mut filtered_edges = 0u64;

    {
        let _s = telemetry::span("sharded-build");
        let rx = stream_shards(path, m, shard_edges, cfg.read_ahead);
        for _ in 0..shards {
            let mut edges = rx.recv().expect("shard reader hung up")?;

            // Contract the shard locally under the monotone dense relabel.
            let n_local = remap.build(&edges);
            for e in edges.iter_mut() {
                e.u = remap.local(e.u);
                e.v = remap.local(e.v);
            }
            let mut c = Contraction::from_edge_list(n_local, edges);
            c.arena = std::mem::replace(&mut arena, ScratchArena::new());
            while !c.is_done() {
                c.round(pool, par, &mut stats);
            }
            c.finish_stats(&mut stats);
            let mut cand = c.chosen_edges();
            arena = std::mem::replace(&mut c.arena, ScratchArena::new());
            drop(c);
            for e in cand.iter_mut() {
                e.u = remap.locals[e.u as usize];
                e.v = remap.locals[e.v as usize];
            }
            candidate_edges += cand.len() as u64;

            par_sort_by_key(pool, &mut cand, Edge::key);

            // Filter-Kruskal discard across shards: endpoints already
            // connected in the accumulator, using only strictly lighter
            // edges (every accumulated key ≤ max(acc) < e.key()), can
            // never join the global MSF. Equal keys cannot occur between
            // distinct records, and a byte-identical duplicate of an
            // accumulated edge shares its key, fails the strict `>` and
            // is discarded by the merge scan instead.
            if let Some(last) = acc.last() {
                let max_key = last.key();
                let before = cand.len();
                retain_parallel(pool, &mut cand, |e| {
                    !(e.key() > max_key && cuf.same(e.u, e.v))
                });
                filtered_edges += (before - cand.len()) as u64;
            }

            // Publish the survivors' connectivity, then merge-scan the two
            // key-sorted forests through a fresh union-find: the Kruskal
            // scan over MSF(acc) ∪ MSF(shard) yields MSF(acc ∪ shard).
            parallel_for_chunks(pool, 0..cand.len(), par, |chunk| {
                for i in chunk {
                    cuf.union(cand[i].u, cand[i].v);
                }
            });
            stats.parallel_regions += 1;
            let mut uf = UnionFind::new(n);
            let mut merged = Vec::with_capacity(acc.len() + cand.len());
            let (mut i, mut j) = (0, 0);
            while i < acc.len() || j < cand.len() {
                let take_acc = j >= cand.len()
                    || (i < acc.len() && acc[i].key() <= cand[j].key());
                let e = if take_acc {
                    let e = acc[i];
                    i += 1;
                    e
                } else {
                    let e = cand[j];
                    j += 1;
                    e
                };
                if uf.union(e.u, e.v) {
                    merged.push(e);
                }
            }
            acc = merged;
        }
    }

    stats.cas_retries += cuf.cas_retries();
    telemetry::counter_add("sharded-shards", shards as u64);
    telemetry::counter_add("sharded-candidates", candidate_edges);
    telemetry::counter_add("sharded-filtered", filtered_edges);
    let result = MstResult::from_edges(n, acc, stats);

    if cfg.certify {
        let _s = telemetry::span("sharded-certify");
        certify_streaming(path, m, &result, cfg, pool)?;
    }

    Ok(ShardedRun {
        num_vertices: n,
        num_edges: m,
        shards,
        result,
        certified: cfg.certify,
        candidate_edges,
        filtered_edges,
    })
}

/// Re-streams the file and certifies `result` as its canonical MSF — the
/// cycle-property sweep of [`crate::certify::certify_against`], driven
/// over shards instead of a CSR. Every record must not beat the path
/// maximum between its endpoints (`key < max` is a cut or spanning
/// violation), and every tree edge must be matched by at least one
/// record (`key == max`), tracked per tree edge so duplicate records
/// cannot mask an absent one.
fn certify_streaming(
    path: &Path,
    total_edges: u64,
    result: &MstResult,
    cfg: &ShardedConfig,
    pool: &ThreadPool,
) -> Result<(), ShardedError> {
    let n = {
        // The forest never names a vertex the header does not cover, but
        // the index must be built over the file's full vertex set.
        let mut f = BufReader::new(std::fs::File::open(path).map_err(IoError::Io)?);
        read_binary_range(&mut f, 0, 0)?.num_vertices
    };
    let index = PathMaxIndex::build_par(n, result, pool)?;
    let t = result.edges.len();

    // The accumulator leaves the merge scan key-sorted, so the packed
    // keys are ascending and rank lookup is a binary search.
    let tree_keys: Vec<u128> = result
        .edges
        .iter()
        .map(|e| key_bits(e.w, e.u, e.v))
        .collect();
    debug_assert!(tree_keys.windows(2).all(|w| w[0] < w[1]));
    let seen: Vec<AtomicU64> = (0..t.div_ceil(64)).map(|_| AtomicU64::new(0)).collect();
    let worst: Mutex<Option<(EdgeKey, VerifyError)>> = Mutex::new(None);
    let par = ParallelForConfig::with_grain(2048);

    let rx = stream_shards(path, total_edges, cfg.shard_edges.max(1), cfg.read_ahead);
    let shards = total_edges.div_ceil(cfg.shard_edges.max(1) as u64);
    for _ in 0..shards {
        let edges = rx.recv().expect("shard reader hung up")?;
        let violations = AtomicUsize::new(0);
        parallel_for_chunks(pool, 0..edges.len(), par, |chunk| {
            for i in chunk {
                let e = &edges[i];
                if e.w > index.pass_above {
                    continue; // heavier than every tree edge: passes outright
                }
                let kb = key_bits(e.w, e.u, e.v);
                let maxk =
                    index.path_max_at(index.pos[e.u as usize], index.pos[e.v as usize]);
                if kb < maxk {
                    // Cycle property violated, or (INF_KEY) a cross-tree
                    // edge the forest fails to span. Keep the
                    // smallest-key witness for a deterministic report.
                    let err = if maxk == INF_KEY {
                        VerifyError::NotSpanning(*e)
                    } else {
                        VerifyError::CutViolation(*e)
                    };
                    let key = e.key();
                    let mut w = worst.lock();
                    if w.as_ref().is_none_or(|(k, _)| key < *k) {
                        *w = Some((key, err));
                    }
                    violations.fetch_add(1, Ordering::Relaxed);
                } else if kb == maxk {
                    // Keys are unique, so this record *is* the tree edge
                    // that realises the path maximum.
                    if let Ok(r) = tree_keys.binary_search(&kb) {
                        seen[r >> 6].fetch_or(1u64 << (r & 63), Ordering::Relaxed);
                    }
                }
            }
        });
        if violations.load(Ordering::Relaxed) > 0 {
            let (_, err) = worst.into_inner().expect("violation recorded");
            return Err(err.into());
        }
    }

    // Any tree edge no record matched is foreign to the file.
    for r in 0..t {
        if seen[r >> 6].load(Ordering::Relaxed) & (1u64 << (r & 63)) == 0 {
            return Err(VerifyError::ForeignEdge(result.edges[r]).into());
        }
    }
    Ok(())
}

/// In-RAM convenience used by the bench harness, sweeps and tests: writes
/// `graph` to a temporary binary file, runs the sharded backend over it
/// (certified) and returns the forest. Panics if the run fails — callers
/// hold a well-formed in-RAM graph, so any failure is a bug.
pub fn sharded_msf_graph(graph: &CsrGraph, shard_edges: usize, pool: &ThreadPool) -> MstResult {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "llp-sharded-{}-{}.bin",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let run = (|| -> Result<ShardedRun, ShardedError> {
        let mut w = std::io::BufWriter::new(std::fs::File::create(&path).map_err(IoError::Io)?);
        write_binary(graph, &mut w).map_err(IoError::Io)?;
        std::io::Write::flush(&mut w).map_err(IoError::Io)?;
        drop(w);
        let cfg = ShardedConfig {
            shard_edges,
            ..ShardedConfig::default()
        };
        sharded_msf_file(&path, &cfg, pool)
    })();
    let _ = std::fs::remove_file(&path);
    run.expect("sharded msf over an in-RAM graph").result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter_kruskal::filter_kruskal_par;
    use crate::kruskal::kruskal;
    use llp_graph::generators::{erdos_renyi, random_geometric, rmat, road_network};
    use llp_graph::generators::{RmatParams, RoadParams};
    use llp_graph::samples::fig1;

    fn pool() -> ThreadPool {
        ThreadPool::new(3)
    }

    #[test]
    fn matches_kruskal_on_fig1_at_every_shard_size() {
        let g = fig1();
        let keys = kruskal(&g).canonical_keys();
        let pool = pool();
        for shard_edges in [1, 2, 3, g.num_edges()] {
            let r = sharded_msf_graph(&g, shard_edges, &pool);
            assert_eq!(r.canonical_keys(), keys, "shard_edges {shard_edges}");
        }
    }

    #[test]
    fn matches_reference_across_generator_families() {
        let pool = pool();
        for (name, g) in [
            ("er", erdos_renyi(300, 1200, 7)),
            ("er-sparse", erdos_renyi(200, 120, 3)),
            ("geom", random_geometric(150, 0.15, 5)),
            ("road", road_network(RoadParams::usa_like(12, 12, 9))),
            ("rmat", rmat(RmatParams::graph500(9, 8, 1))),
        ] {
            let want = filter_kruskal_par(&g, &pool).canonical_keys();
            let got = sharded_msf_graph(&g, 257, &pool);
            assert_eq!(got.canonical_keys(), want, "{name}");
        }
    }

    #[test]
    fn file_run_reports_shape_and_certifies() {
        let g = erdos_renyi(400, 1600, 21);
        let path = std::env::temp_dir().join(format!("llp-sharded-test-{}.bin", std::process::id()));
        let mut w = std::io::BufWriter::new(std::fs::File::create(&path).unwrap());
        write_binary(&g, &mut w).unwrap();
        std::io::Write::flush(&mut w).unwrap();
        drop(w);
        let pool = pool();
        let cfg = ShardedConfig {
            shard_edges: 100,
            certify: true,
            read_ahead: 2,
        };
        let run = sharded_msf_file(&path, &cfg, &pool).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(run.num_vertices, 400);
        assert_eq!(run.num_edges, g.num_edges() as u64);
        assert_eq!(run.shards, g.num_edges().div_ceil(100));
        assert!(run.certified);
        assert!(run.result.stats.rounds > 0);
        assert_eq!(
            run.result.canonical_keys(),
            kruskal(&g).canonical_keys()
        );
    }

    #[test]
    fn certification_rejects_a_corrupted_file_not_matching_the_forest() {
        // Build a forest over one file, then certify it against a file
        // whose lightest record was made even lighter: the forest is no
        // longer minimum for the file, and the streaming sweep must say
        // so with a cut violation.
        let g = erdos_renyi(120, 500, 2);
        let pool = pool();
        let path = std::env::temp_dir().join(format!("llp-sharded-bad-{}.bin", std::process::id()));
        let mut w = std::io::BufWriter::new(std::fs::File::create(&path).unwrap());
        write_binary(&g, &mut w).unwrap();
        std::io::Write::flush(&mut w).unwrap();
        drop(w);
        let cfg = ShardedConfig {
            shard_edges: 64,
            certify: false,
            read_ahead: 1,
        };
        let run = sharded_msf_file(&path, &cfg, &pool).unwrap();

        // Rewrite one non-tree record strictly lighter than every weight.
        let tree: std::collections::HashSet<(u32, u32)> = run
            .result
            .edges
            .iter()
            .map(|e| (e.u.min(e.v), e.u.max(e.v)))
            .collect();
        let victim = g
            .edges()
            .position(|e| !tree.contains(&(e.u.min(e.v), e.u.max(e.v))))
            .expect("a non-tree edge exists");
        let mut bytes = std::fs::read(&path).unwrap();
        let off = 28 + victim * 16 + 8;
        bytes[off..off + 8].copy_from_slice(&(-1.0f64).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();

        let err = certify_streaming(&path, run.num_edges, &run.result, &cfg, &pool).unwrap_err();
        std::fs::remove_file(&path).unwrap();
        assert!(
            matches!(err, ShardedError::Verify(VerifyError::CutViolation(_))),
            "{err}"
        );
    }

    #[test]
    fn empty_and_edgeless_files_work() {
        let pool = pool();
        for n in [0usize, 5] {
            let g = CsrGraph::empty(n);
            let r = sharded_msf_graph(&g, 8, &pool);
            assert!(r.edges.is_empty());
            assert_eq!(r.num_trees, n);
        }
    }
}

//! Rooted-tree utilities over MST/MSF results.
//!
//! Algorithms return edge sets; consumers usually want the *rooted*
//! structure the paper describes ("the problem of finding minimum spanning
//! tree rooted at v0 can be reformulated as finding the parent for every
//! node"): parent pointers, depths, subtree queries, path weights.

use crate::result::MstResult;
use llp_graph::{VertexId, NO_VERTEX};
use std::collections::VecDeque;

/// A forest of rooted trees derived from an [`MstResult`].
#[derive(Debug, Clone, PartialEq)]
pub struct RootedForest {
    /// `parent[v]` — parent vertex, or `v` itself for roots.
    pub parent: Vec<VertexId>,
    /// Weight of the edge to the parent (0 for roots).
    pub parent_weight: Vec<f64>,
    /// Hop depth from the root.
    pub depth: Vec<u32>,
    /// Root of each vertex's tree.
    pub root: Vec<VertexId>,
    /// The roots, in increasing id order.
    pub roots: Vec<VertexId>,
}

impl RootedForest {
    /// Orients a forest at the given preferred root (used for the tree
    /// containing it; other trees root at their least vertex).
    ///
    /// # Panics
    /// Panics if the result's edges reference vertices `>= n` or contain a
    /// cycle (impossible for verified algorithm outputs).
    pub fn new(n: usize, result: &MstResult, preferred_root: VertexId) -> Self {
        // Adjacency of the forest.
        let mut adj: Vec<Vec<(VertexId, f64)>> = vec![Vec::new(); n];
        for e in &result.edges {
            adj[e.u as usize].push((e.v, e.w));
            adj[e.v as usize].push((e.u, e.w));
        }
        let mut parent = vec![NO_VERTEX; n];
        let mut parent_weight = vec![0.0; n];
        let mut depth = vec![0u32; n];
        let mut root = vec![NO_VERTEX; n];
        let mut roots = Vec::new();
        let mut queue = VecDeque::new();

        let mut bfs_root = |r: VertexId,
                            parent: &mut Vec<VertexId>,
                            parent_weight: &mut Vec<f64>,
                            depth: &mut Vec<u32>,
                            root: &mut Vec<VertexId>| {
            parent[r as usize] = r;
            root[r as usize] = r;
            queue.push_back(r);
            while let Some(u) = queue.pop_front() {
                for &(v, w) in &adj[u as usize] {
                    if parent[v as usize] == NO_VERTEX {
                        parent[v as usize] = u;
                        parent_weight[v as usize] = w;
                        depth[v as usize] = depth[u as usize] + 1;
                        root[v as usize] = r;
                        queue.push_back(v);
                    }
                }
            }
        };

        if (preferred_root as usize) < n {
            roots.push(preferred_root);
            bfs_root(
                preferred_root,
                &mut parent,
                &mut parent_weight,
                &mut depth,
                &mut root,
            );
        }
        for v in 0..n as VertexId {
            if parent[v as usize] == NO_VERTEX {
                roots.push(v);
                bfs_root(v, &mut parent, &mut parent_weight, &mut depth, &mut root);
            }
        }
        roots.sort_unstable();
        RootedForest {
            parent,
            parent_weight,
            depth,
            root,
            roots,
        }
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.roots.len()
    }

    /// True when `v` is a root.
    pub fn is_root(&self, v: VertexId) -> bool {
        self.parent[v as usize] == v
    }

    /// The path from `v` to its root (inclusive).
    pub fn path_to_root(&self, v: VertexId) -> Vec<VertexId> {
        let mut path = vec![v];
        let mut cur = v;
        while !self.is_root(cur) {
            cur = self.parent[cur as usize];
            path.push(cur);
        }
        path
    }

    /// Total edge weight along the path from `v` to its root.
    pub fn weight_to_root(&self, v: VertexId) -> f64 {
        let mut acc = 0.0;
        let mut cur = v;
        while !self.is_root(cur) {
            acc += self.parent_weight[cur as usize];
            cur = self.parent[cur as usize];
        }
        acc
    }

    /// The heaviest edge key on the unique tree path between `u` and `v`
    /// (`None` when different trees or `u == v`). This is the query behind
    /// the MST *cycle property*: a non-tree edge is MST-consistent iff it
    /// is at least as heavy as every tree edge on the cycle it closes.
    pub fn path_max_key(&self, u: VertexId, v: VertexId) -> Option<llp_graph::EdgeKey> {
        use llp_graph::EdgeKey;
        if self.root[u as usize] != self.root[v as usize] || u == v {
            return None;
        }
        let key_up = |x: VertexId| {
            EdgeKey::new(self.parent_weight[x as usize], x, self.parent[x as usize])
        };
        let (mut a, mut b) = (u, v);
        let mut best: Option<EdgeKey> = None;
        let bump = |k: EdgeKey, best: &mut Option<EdgeKey>| {
            if best.is_none_or(|b| b < k) {
                *best = Some(k);
            }
        };
        while self.depth[a as usize] > self.depth[b as usize] {
            bump(key_up(a), &mut best);
            a = self.parent[a as usize];
        }
        while self.depth[b as usize] > self.depth[a as usize] {
            bump(key_up(b), &mut best);
            b = self.parent[b as usize];
        }
        while a != b {
            bump(key_up(a), &mut best);
            a = self.parent[a as usize];
            bump(key_up(b), &mut best);
            b = self.parent[b as usize];
        }
        best
    }

    /// Weight of the unique tree path between `u` and `v`, or `None` when
    /// they live in different trees.
    pub fn path_weight(&self, u: VertexId, v: VertexId) -> Option<f64> {
        if self.root[u as usize] != self.root[v as usize] {
            return None;
        }
        // Walk both ends up to the LCA, accumulating weights.
        let (mut a, mut b) = (u, v);
        let mut wa = 0.0;
        let mut wb = 0.0;
        while self.depth[a as usize] > self.depth[b as usize] {
            wa += self.parent_weight[a as usize];
            a = self.parent[a as usize];
        }
        while self.depth[b as usize] > self.depth[a as usize] {
            wb += self.parent_weight[b as usize];
            b = self.parent[b as usize];
        }
        while a != b {
            wa += self.parent_weight[a as usize];
            a = self.parent[a as usize];
            wb += self.parent_weight[b as usize];
            b = self.parent[b as usize];
        }
        Some(wa + wb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kruskal::kruskal;
    use llp_graph::samples::fig1;

    fn fig1_forest() -> RootedForest {
        let g = fig1();
        let mst = kruskal(&g);
        RootedForest::new(g.num_vertices(), &mst, 0)
    }

    #[test]
    fn fig1_rooted_structure() {
        let f = fig1_forest();
        assert_eq!(f.num_trees(), 1);
        assert_eq!(f.roots, vec![0]);
        assert!(f.is_root(0));
        // MST edges: (a,c)=4, (b,c)=3, (b,d)=7, (d,e)=2 rooted at a:
        // a -> c -> b -> d -> e
        assert_eq!(f.parent[2], 0);
        assert_eq!(f.parent[1], 2);
        assert_eq!(f.parent[3], 1);
        assert_eq!(f.parent[4], 3);
        assert_eq!(f.depth[4], 4);
    }

    #[test]
    fn path_and_weight_queries() {
        let f = fig1_forest();
        assert_eq!(f.path_to_root(4), vec![4, 3, 1, 2, 0]);
        assert_eq!(f.weight_to_root(4), 2.0 + 7.0 + 3.0 + 4.0);
        assert_eq!(f.path_weight(4, 0), Some(16.0));
        assert_eq!(f.path_weight(4, 3), Some(2.0));
        assert_eq!(f.path_weight(2, 3), Some(3.0 + 7.0));
        assert_eq!(f.path_weight(0, 0), Some(0.0));
    }

    #[test]
    fn path_max_key_finds_heaviest_edge() {
        let f = fig1_forest();
        // Path e..a: edges 2, 7, 3, 4 — the max is 7 = (b,d).
        let k = f.path_max_key(4, 0).unwrap();
        assert_eq!(k.weight(), 7.0);
        // Path c..b is the single edge 3.
        assert_eq!(f.path_max_key(2, 1).unwrap().weight(), 3.0);
        assert!(f.path_max_key(3, 3).is_none());
    }

    #[test]
    fn forest_with_multiple_trees() {
        let g = llp_graph::samples::small_forest();
        let msf = kruskal(&g);
        let f = RootedForest::new(g.num_vertices(), &msf, 0);
        assert_eq!(f.num_trees(), 3);
        assert!(f.path_weight(0, 3).is_none(), "different trees");
        assert!(f.is_root(5), "isolated vertex is its own root");
    }

    #[test]
    fn preferred_root_respected_in_other_trees_too() {
        let g = llp_graph::samples::small_forest();
        let msf = kruskal(&g);
        let f = RootedForest::new(g.num_vertices(), &msf, 4);
        assert!(f.is_root(4));
        assert_eq!(f.root[3], 4);
    }

    #[test]
    fn tree_path_weights_match_mst_distance_on_random_graph() {
        // In a tree, path weight is the sum of unique path edges; verify
        // symmetric and triangle-degenerate properties.
        let g = llp_graph::generators::road_network(
            llp_graph::generators::RoadParams::usa_like(8, 8, 5),
        );
        let mst = kruskal(&g);
        let f = RootedForest::new(g.num_vertices(), &mst, 0);
        for (u, v) in [(0u32, 10u32), (3, 60), (12, 12)] {
            assert_eq!(f.path_weight(u, v), f.path_weight(v, u));
        }
        assert_eq!(f.path_weight(7, 7), Some(0.0));
    }
}

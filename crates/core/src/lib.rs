//! # llp-mst — minimum spanning trees via Lattice Linear Predicates
//!
//! The paper's contribution, implemented in full:
//!
//! | Algorithm | Function | Role in the paper |
//! |---|---|---|
//! | Prim (lazy heap) | [`prim::prim_lazy`] | baseline of Fig. 2 |
//! | Prim (indexed heap) | [`prim::prim_indexed`] | Algorithm 2 verbatim |
//! | Kruskal | [`kruskal::kruskal`] | §III baseline / test oracle |
//! | Filter-Kruskal | [`filter_kruskal::filter_kruskal`] | practical Kruskal baseline |
//! | Filter-Kruskal (parallel) | [`filter_kruskal::filter_kruskal_par`] | pool-parallel partition + filter |
//! | Boruvka (BFS, sequential) | [`boruvka::boruvka_seq`] | Algorithm 3 |
//! | Parallel Boruvka (GBBS-style) | [`parallel_boruvka::boruvka_par`] | baseline of Figs 3–4 |
//! | **LLP-Prim** sequential | [`llp_prim::llp_prim_seq`] | Algorithm 5, "LLP-Prim (1T)" |
//! | **LLP-Prim** parallel | [`llp_prim::llp_prim_par`] | Algorithm 5, Figs 3–4 |
//! | **LLP-Boruvka** | [`llp_boruvka::llp_boruvka`] | Algorithm 6 |
//! | SpMV-Boruvka | [`spmv_boruvka::spmv_boruvka_par`] | Algorithm 6 as min-plus SpMV + SpGEMM contraction |
//! | LLP-Prim spec | [`spec::LlpPrimSpec`] | Algorithm 4 run literally |
//!
//! All algorithms compare edges through [`llp_graph::EdgeKey`] (weight,
//! then endpoints), realising the paper's unique-weight assumption on any
//! input; consequently **every algorithm returns the identical canonical
//! MST/MSF**, which [`verify::verify_msf`] checks against the Kruskal
//! oracle and the test suite asserts pairwise. At road/RMAT scale, where
//! re-running Kruskal is as expensive as the run under test,
//! [`certify::certify_msf`] certifies the same property oracle-free in
//! near-linear time (Borůvka-tree path-max queries).
//!
//! Prim-family functions require a connected graph and return
//! [`result::MstError::Disconnected`] otherwise; Boruvka-family functions
//! compute minimum spanning forests.
//!
//! Every run returns [`stats::AlgoStats`] — heap traffic, early-fix
//! counts, rounds, pointer jumps, CAS/atomic traffic — the
//! machine-independent quantities behind the paper's Figs 2–4.

pub mod boruvka;
pub mod certify;
pub mod contraction;
pub mod dynamic;
pub mod filter_kruskal;
pub mod heap;
pub mod hybrid;
pub mod index;
pub mod kruskal;
pub mod llp_boruvka;
pub mod llp_prim;
pub mod parallel_boruvka;
pub mod prim;
pub mod result;
pub mod semiring;
pub mod sharded;
pub mod spec;
pub mod spmv_boruvka;
pub mod stats;
pub mod tree;
pub mod union_find;
pub mod verify;

pub use result::{MstError, MstResult};
pub use stats::AlgoStats;

/// One-stop imports for examples and downstream code.
pub mod prelude {
    pub use crate::boruvka::boruvka_seq;
    pub use crate::filter_kruskal::{
        filter_kruskal, filter_kruskal_par, filter_kruskal_par_with_base_case,
        filter_kruskal_with_base_case,
    };
    pub use crate::kruskal::{kruskal, kruskal_par_sort};
    pub use crate::hybrid::hybrid_boruvka_prim;
    pub use crate::llp_boruvka::{llp_boruvka, llp_boruvka_from_edges};
    pub use crate::llp_prim::{llp_prim_par, llp_prim_par_with_mwe, llp_prim_seq, llp_prim_seq_with_mwe};
    pub use crate::parallel_boruvka::boruvka_par;
    pub use crate::prim::{prim_indexed, prim_lazy};
    pub use crate::spmv_boruvka::{
        spmv_boruvka_from_edges, spmv_boruvka_par, spmv_boruvka_par_observed, SpmvRound,
    };
    pub use crate::result::{MstError, MstResult};
    pub use crate::stats::AlgoStats;
    pub use crate::certify::{certify_against, certify_msf, certify_msf_par};
    pub use crate::dynamic::{DynamicError, DynamicMsf, EpochReport};
    pub use crate::sharded::{
        sharded_msf_file, sharded_msf_graph, ShardedConfig, ShardedError, ShardedRun,
    };
    pub use crate::index::PathMaxIndex;
    pub use crate::tree::RootedForest;
    pub use crate::verify::{verify_cut_property, verify_cycle_property, verify_forest_structure, verify_msf};
}

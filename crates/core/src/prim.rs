//! Classic Prim's algorithm (the paper's Algorithm 2).
//!
//! Two heap disciplines are provided because the paper discusses both:
//! [`prim_lazy`] inserts duplicate entries and skips stale pops (the
//! variant of the §IV complexity analysis, and the discipline used by the
//! Galois reference implementation), while [`prim_indexed`] adjusts keys in
//! place (`H.insertOrAdjust` in Algorithm 2).
//!
//! All comparisons go through [`EdgeKey`], so the computed tree is the
//! canonical unique-weight MST whatever the raw weight ties.

use crate::heap::{IndexedHeap, LazyHeap};
use crate::result::{MstError, MstResult};
use crate::stats::AlgoStats;
use llp_graph::{CsrGraph, Edge, EdgeKey, VertexId};
use llp_runtime::telemetry;

fn check_root(graph: &CsrGraph, root: VertexId) -> Result<(), MstError> {
    let n = graph.num_vertices();
    if n == 0 {
        return Err(MstError::EmptyGraph);
    }
    if root as usize >= n {
        return Err(MstError::InvalidRoot { root, total: n });
    }
    Ok(())
}

/// Prim with a lazy (duplicate-entry) binary heap.
///
/// Returns the canonical MST rooted conceptually at `root`, or
/// [`MstError::Disconnected`] when the graph has more than one component.
pub fn prim_lazy(graph: &CsrGraph, root: VertexId) -> Result<MstResult, MstError> {
    check_root(graph, root)?;
    let n = graph.num_vertices();
    let mut stats = AlgoStats::default();
    let mut dist: Vec<EdgeKey> = vec![EdgeKey::infinite(); n];
    let mut fixed = vec![false; n];
    let mut edges: Vec<Edge> = Vec::with_capacity(n.saturating_sub(1));
    let mut heap: LazyHeap<EdgeKey> = LazyHeap::new();

    // Fix the root and relax its neighbourhood directly (it has no parent
    // edge, so it never goes through the heap).
    fixed[root as usize] = true;
    let mut fixed_count = 1usize;
    relax_neighbors(graph, root, &mut dist, &fixed, &mut heap, &mut stats);

    let _t = telemetry::span("heap-extract");
    while let Some((key, v)) = heap.pop() {
        if fixed[v as usize] {
            continue; // stale duplicate of an already-fixed vertex
        }
        debug_assert_eq!(key, dist[v as usize], "lazy pop must be fresh");
        fixed[v as usize] = true;
        fixed_count += 1;
        stats.heap_fixes += 1;
        edges.push(Edge::new(key.other(v), v, key.weight()));
        relax_neighbors(graph, v, &mut dist, &fixed, &mut heap, &mut stats);
    }

    stats.heap_pushes = heap.pushes;
    stats.heap_pops = heap.pops;
    if fixed_count < n {
        return Err(MstError::Disconnected {
            reached: fixed_count,
            total: n,
        });
    }
    Ok(MstResult::from_edges(n, edges, stats))
}

fn relax_neighbors(
    graph: &CsrGraph,
    v: VertexId,
    dist: &mut [EdgeKey],
    fixed: &[bool],
    heap: &mut LazyHeap<EdgeKey>,
    stats: &mut AlgoStats,
) {
    for (k, w) in graph.neighbors(v) {
        stats.edges_scanned += 1;
        if fixed[k as usize] {
            continue;
        }
        let key = EdgeKey::new(w, v, k);
        if key < dist[k as usize] {
            dist[k as usize] = key;
            heap.push(key, k);
        }
    }
}

/// Prim with an indexed decrease-key heap (Algorithm 2 verbatim).
pub fn prim_indexed(graph: &CsrGraph, root: VertexId) -> Result<MstResult, MstError> {
    check_root(graph, root)?;
    let n = graph.num_vertices();
    let mut stats = AlgoStats::default();
    let mut dist: Vec<EdgeKey> = vec![EdgeKey::infinite(); n];
    let mut fixed = vec![false; n];
    let mut edges: Vec<Edge> = Vec::with_capacity(n.saturating_sub(1));
    let mut heap: IndexedHeap<EdgeKey> = IndexedHeap::new(n);

    fixed[root as usize] = true;
    let mut fixed_count = 1usize;
    for (k, w) in graph.neighbors(root) {
        stats.edges_scanned += 1;
        let key = EdgeKey::new(w, root, k);
        if key < dist[k as usize] {
            dist[k as usize] = key;
            heap.insert_or_adjust(k, key);
        }
    }

    let _t = telemetry::span("heap-extract");
    while let Some((key, v)) = heap.pop_min() {
        debug_assert_eq!(key, dist[v as usize]);
        fixed[v as usize] = true;
        fixed_count += 1;
        stats.heap_fixes += 1;
        edges.push(Edge::new(key.other(v), v, key.weight()));
        for (k, w) in graph.neighbors(v) {
            stats.edges_scanned += 1;
            if fixed[k as usize] {
                continue;
            }
            let ekey = EdgeKey::new(w, v, k);
            if ekey < dist[k as usize] {
                dist[k as usize] = ekey;
                heap.insert_or_adjust(k, ekey);
            }
        }
    }

    stats.heap_pushes = heap.pushes;
    stats.heap_pops = heap.pops;
    stats.decrease_keys = heap.adjusts;
    if fixed_count < n {
        return Err(MstError::Disconnected {
            reached: fixed_count,
            total: n,
        });
    }
    Ok(MstResult::from_edges(n, edges, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use llp_graph::samples::{fig1, FIG1_MST_WEIGHT};

    #[test]
    fn fig1_mst_weight_and_edges() {
        for f in [prim_lazy, prim_indexed] {
            let mst = f(&fig1(), 0).unwrap();
            assert_eq!(mst.total_weight, FIG1_MST_WEIGHT);
            let mut ws: Vec<f64> = mst.edges.iter().map(|e| e.w).collect();
            ws.sort_by(f64::total_cmp);
            assert_eq!(ws, vec![2.0, 3.0, 4.0, 7.0]); // the paper's {2,3,4,7}
        }
    }

    #[test]
    fn root_choice_does_not_change_edge_set() {
        let g = fig1();
        let base = prim_lazy(&g, 0).unwrap().canonical_keys();
        for root in 1..5 {
            assert_eq!(prim_lazy(&g, root).unwrap().canonical_keys(), base);
            assert_eq!(prim_indexed(&g, root).unwrap().canonical_keys(), base);
        }
    }

    #[test]
    fn lazy_and_indexed_agree() {
        let g = llp_graph::generators::erdos_renyi(200, 1000, 7);
        // may be disconnected: compare errors or results
        match (prim_lazy(&g, 0), prim_indexed(&g, 0)) {
            (Ok(a), Ok(b)) => assert_eq!(a.canonical_keys(), b.canonical_keys()),
            (Err(a), Err(b)) => assert_eq!(a, b),
            other => panic!("variants disagree: {other:?}"),
        }
    }

    #[test]
    fn disconnected_graph_reports_error() {
        let g = CsrGraph::from_edges(4, &[Edge::new(0, 1, 1.0), Edge::new(2, 3, 1.0)]);
        let err = prim_lazy(&g, 0).unwrap_err();
        assert_eq!(
            err,
            MstError::Disconnected {
                reached: 2,
                total: 4
            }
        );
        assert!(prim_indexed(&g, 0).is_err());
    }

    #[test]
    fn single_vertex_graph() {
        let g = CsrGraph::empty(1);
        let mst = prim_lazy(&g, 0).unwrap();
        assert!(mst.edges.is_empty());
        assert_eq!(mst.total_weight, 0.0);
        assert!(mst.is_spanning_tree(1));
    }

    #[test]
    fn empty_graph_and_bad_root_rejected() {
        assert_eq!(prim_lazy(&CsrGraph::empty(0), 0), Err(MstError::EmptyGraph));
        assert_eq!(
            prim_lazy(&CsrGraph::empty(3), 5),
            Err(MstError::InvalidRoot { root: 5, total: 3 })
        );
    }

    #[test]
    fn equal_weights_resolve_canonically() {
        let g = llp_graph::samples::all_equal_weights(6);
        let mst = prim_lazy(&g, 3).unwrap();
        // Canonical MST under EdgeKey tie-breaking is the star on vertex 0.
        for e in &mst.edges {
            assert_eq!(e.canonical_endpoints().0, 0);
        }
        assert_eq!(mst.total_weight, 5.0);
    }

    #[test]
    fn indexed_heap_does_fewer_pushes_than_lazy() {
        let g = llp_graph::generators::complete(60, 3);
        let lazy = prim_lazy(&g, 0).unwrap();
        let idx = prim_indexed(&g, 0).unwrap();
        assert!(idx.stats.heap_pushes <= lazy.stats.heap_pushes);
        assert_eq!(idx.canonical_keys(), lazy.canonical_keys());
    }
}

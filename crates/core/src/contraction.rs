//! Shared Boruvka contraction machinery (one LLP round of Algorithm 6),
//! built on the flat-memory round engine.
//!
//! Used by [`crate::llp_boruvka`] (which runs rounds to exhaustion) and by
//! [`crate::hybrid`] (which runs a few rounds and finishes with Prim on the
//! contracted graph, a classic practical variant the paper's future-work
//! section gestures at).
//!
//! ## Flat-memory round engine
//!
//! Round state lives in plain `u64`/`u32` buffers leased from a
//! [`ScratchArena`] and viewed as atomics only inside the parallel regions
//! that need concurrency:
//!
//! * the per-vertex MWE cell is a single packed [`AtomicU64`] word —
//!   weight discriminant high, edge index low (see
//!   [`llp_runtime::atomics::mwe_propose`]) — replacing the old two-word
//!   `AtomicIndexMin` protocol whose key function chased `work -> keys`
//!   through two extra cache lines per propose;
//! * the survivor filter and endpoint relabel are fused into one
//!   count–scan–scatter pass into a double-buffered [`WorkEdge`] array
//!   (buffers swap between rounds, so steady-state rounds allocate
//!   nothing);
//! * the dense root renumbering writes only root slots of an uninitialised
//!   leased buffer — no `u32::MAX` prefill pass.
//!
//! Because component counts shrink geometrically, every leased buffer fits
//! inside its round-1 incarnation; from round 2 on the engine performs zero
//! heap allocations (pinned by `tests/zero_alloc.rs`).

use crate::stats::AlgoStats;
use llp_graph::{CsrGraph, Edge, EdgeKey};
use llp_runtime::atomics::{as_atomic_u32, as_atomic_u64, mwe_idx, mwe_propose, weight_hi32, MWE_EMPTY};
use llp_runtime::partition::{compact_map_into, count_scan_chunks};
use llp_runtime::telemetry;
use llp_runtime::{
    parallel_for, Counter, ParallelForConfig, ScratchArena, ScratchVec, SendPtr, ThreadPool,
};
use std::sync::atomic::{AtomicBool, Ordering};

/// Pointer-jumps the rooted forest `g` to a star forest with relaxed
/// atomics (the inner LLP instance, Lemma 3/4): every vertex repeatedly
/// adopts its grandparent until the whole forest is flat. Assignments are
/// counted into `jumps`; each sweep is one parallel region in `stats`.
///
/// Shared by the edge-list contraction engine below and the sparse-matrix
/// backend in [`crate::spmv_boruvka`] — the hook-and-compress step is
/// identical no matter how the MWE picks were computed.
pub fn pointer_jump_to_roots(
    pool: &ThreadPool,
    cfg: ParallelForConfig,
    g: &mut [u32],
    jumps: &Counter,
    stats: &mut AlgoStats,
) {
    let n = g.len();
    let g_cells = as_atomic_u32(g);
    loop {
        stats.parallel_regions += 1;
        let changed = AtomicBool::new(false);
        {
            let changed_ref = &changed;
            parallel_for(pool, 0..n, cfg, |j| {
                let p = g_cells[j].load(Ordering::Relaxed);
                let gp = g_cells[p as usize].load(Ordering::Relaxed);
                if p != gp {
                    g_cells[j].store(gp, Ordering::Relaxed);
                    jumps.incr();
                    changed_ref.store(true, Ordering::Relaxed);
                }
            });
        }
        if !changed.load(Ordering::Relaxed) {
            break;
        }
    }
}

/// Renumbers the roots of the star forest `g` densely: returns a leased
/// buffer whose *root* slots hold `0..n_roots` in ascending root order,
/// plus the root count. Non-root slots stay uninitialised (the returned
/// `ScratchVec` keeps len 0) — read root slots through raw pointers only,
/// exactly as the renumber pass wrote them.
pub fn renumber_roots<'a>(
    pool: &ThreadPool,
    arena: &'a ScratchArena,
    g: &[u32],
) -> (ScratchVec<'a, u32>, usize) {
    let n = g.len();
    let mut new_id = arena.lease::<u32>(n);
    let n_roots = {
        let nid_ptr = SendPtr::new(new_id.as_mut_ptr());
        count_scan_chunks(
            pool,
            n,
            arena,
            |r| r.filter(|&v| g[v] == v as u32).count() as u64,
            |r, base| {
                let mut k = base;
                for v in r {
                    if g[v] == v as u32 {
                        // SAFETY: root slots are disjoint across chunks
                        // and written exactly once; non-root slots are
                        // never touched.
                        unsafe { *nid_ptr.get().add(v) = k as u32 };
                        k += 1;
                    }
                }
                k - base
            },
        )
    };
    (new_id, n_roots)
}

/// A contracted edge: endpoints in the current (renumbered) vertex space,
/// the index of the original edge it stands for, and the cached weight
/// discriminant (high 32 bits of the order-preserving weight encoding) so
/// the MWE propose fast path touches no other arrays.
#[derive(Clone, Copy, Debug)]
pub struct WorkEdge {
    pub u: u32,
    pub v: u32,
    pub orig: u32,
    pub whi: u32,
}

/// Mutable contraction state threaded through rounds.
pub struct Contraction {
    /// Original edges (immutable identities for the final forest).
    pub orig_edges: Vec<Edge>,
    /// Canonical keys of the original edges.
    pub keys: Vec<EdgeKey>,
    /// Live contracted edges.
    pub work: Vec<WorkEdge>,
    /// Scatter target for the fused filter+relabel; swapped with `work`
    /// at the end of every round.
    work_next: Vec<WorkEdge>,
    /// Vertices in the current contracted space.
    pub n_cur: usize,
    /// Original-edge indices chosen into the forest so far.
    pub chosen: Vec<u32>,
    /// Pointer-jump assignment counter.
    pub jumps: Counter,
    /// Atomic RMW counter (MWE priority writes).
    pub rmw: Counter,
    /// Reusable round-state buffers (MWE words, parents, renumber tables).
    pub arena: ScratchArena,
}

impl Contraction {
    /// Initial state over a graph.
    pub fn new(graph: &CsrGraph) -> Self {
        Self::from_edge_list(graph.num_vertices(), graph.edges().collect())
    }

    /// Initial state over a raw undirected edge list (no CSR required —
    /// the Boruvka family is edge-centric). Self-loops are skipped;
    /// parallel edges are harmless (only the lighter can ever be an MWE).
    pub fn from_edge_list(n: usize, orig_edges: Vec<Edge>) -> Self {
        let keys: Vec<EdgeKey> = orig_edges.iter().map(Edge::key).collect();
        let work: Vec<WorkEdge> = orig_edges
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.is_self_loop())
            .map(|(i, e)| WorkEdge {
                u: e.u,
                v: e.v,
                orig: i as u32,
                whi: weight_hi32(e.w),
            })
            .collect();
        Contraction {
            orig_edges,
            keys,
            work,
            work_next: Vec::new(),
            n_cur: n,
            chosen: Vec::with_capacity(n.saturating_sub(1)),
            jumps: Counter::new(),
            rmw: Counter::new(),
            arena: ScratchArena::new(),
        }
    }

    /// True when no cross-component edges remain.
    pub fn is_done(&self) -> bool {
        self.work.is_empty()
    }

    /// Runs one full LLP-Boruvka round: per-vertex MWE selection with
    /// symmetry breaking, relaxed pointer jumping to stars, contraction.
    /// Updates `stats` round/region/scan counters.
    pub fn round(&mut self, pool: &ThreadPool, cfg: ParallelForConfig, stats: &mut AlgoStats) {
        debug_assert!(!self.is_done());
        stats.rounds += 1;
        stats.parallel_regions += 4;
        stats.edges_scanned += self.work.len() as u64;
        let n_cur = self.n_cur;
        let m_cur = self.work.len();
        let arena = &self.arena;
        telemetry::record_value("live-edges", m_cur as u64);
        telemetry::record_value("live-vertices", n_cur as u64);

        // Step 1a: per-vertex minimum weight edge, one packed word per
        // vertex. The cached `whi` discriminant resolves almost every
        // propose without loading the key array; only hi-32 ties fall back
        // to the exact EdgeKey comparison.
        let mwe_span = telemetry::span("mwe-compute");
        let mut best = arena.lease_filled::<u64>(pool, cfg, n_cur, MWE_EMPTY);
        {
            let best_cells = as_atomic_u64(&mut best);
            let work_ref: &[WorkEdge] = &self.work;
            let keys_ref: &[EdgeKey] = &self.keys;
            let rmw_ref = &self.rmw;
            parallel_for(pool, 0..m_cur, cfg, |i| {
                let e = work_ref[i];
                let exact = |wi: u32| keys_ref[work_ref[wi as usize].orig as usize];
                mwe_propose(&best_cells[e.u as usize], e.whi, i as u32, exact);
                mwe_propose(&best_cells[e.v as usize], e.whi, i as u32, exact);
                rmw_ref.add(2);
            });
        }
        let best_ro: &[u64] = &best;

        // Step 1b: choose parents with symmetry breaking; G becomes a
        // rooted forest. Vertices with no incident edge root themselves.
        // A mutual choice is a full packed-word match: the cell's winning
        // index determines the whole word.
        let mut g = {
            let work_ref: &[WorkEdge] = &self.work;
            arena.lease_init_with::<u32, _>(pool, cfg, n_cur, |v| {
                let word = best_ro[v];
                if word == MWE_EMPTY {
                    return v as u32; // isolated in the contracted graph
                }
                let e = work_ref[mwe_idx(word) as usize];
                let w = if e.u == v as u32 { e.v } else { e.u };
                let mutual = best_ro[w as usize] == word;
                if mutual && (v as u32) < w {
                    v as u32 // break symmetry: the smaller endpoint roots
                } else {
                    w
                }
            })
        };

        // Step 1c: every non-root's MWE joins the forest (each chosen edge
        // exactly once: mutual pairs add from the non-root side only;
        // otherwise MWEs of distinct vertices are distinct edges). The
        // count–scan–scatter compaction emits in vertex order —
        // deterministic without the old bag-drain-and-sort.
        {
            let g_ro: &[u32] = &g;
            let work_ref: &[WorkEdge] = &self.work;
            let mut round_chosen = arena.lease::<u32>(n_cur);
            compact_map_into(pool, arena, n_cur, &mut round_chosen, |v| {
                (g_ro[v] != v as u32).then(|| work_ref[mwe_idx(best_ro[v]) as usize].orig)
            });
            self.chosen.extend_from_slice(&round_chosen);
        }

        drop(mwe_span);

        // Step 2: pointer jumping with relaxed atomics until G is a star
        // forest (the inner LLP instance, Lemma 3/4).
        let jump_span = telemetry::span("pointer-jump");
        pointer_jump_to_roots(pool, cfg, &mut g, &self.jumps, stats);
        drop(jump_span);

        // Step 3: contract. `g` now maps every vertex to its root.
        // Renumber roots densely into a leased buffer whose non-root slots
        // stay uninitialised (only root slots are ever written or read),
        // then filter + relabel surviving edges in one fused pass into the
        // double buffer.
        let _t = telemetry::span("contract");
        let g_ro: &[u32] = &g;
        let (mut new_id, n_roots) = renumber_roots(pool, arena, g_ro);
        {
            let nid_ptr = SendPtr::new(new_id.as_mut_ptr());
            let work_ref: &[WorkEdge] = &self.work;
            compact_map_into(pool, arena, m_cur, &mut self.work_next, |i| {
                let e = work_ref[i];
                let ru = g_ro[e.u as usize];
                let rv = g_ro[e.v as usize];
                (ru != rv).then(|| WorkEdge {
                    // SAFETY: `ru`/`rv` are roots, whose slots the
                    // renumbering pass initialised.
                    u: unsafe { *nid_ptr.get().add(ru as usize) },
                    v: unsafe { *nid_ptr.get().add(rv as usize) },
                    orig: e.orig,
                    whi: e.whi,
                })
            });
        }
        std::mem::swap(&mut self.work, &mut self.work_next);
        self.work_next.clear();
        self.n_cur = n_roots;
    }

    /// Materialises the chosen original edges.
    pub fn chosen_edges(&self) -> Vec<Edge> {
        self.chosen
            .iter()
            .map(|&i| self.orig_edges[i as usize])
            .collect()
    }

    /// Flushes the atomic counters into `stats` and reports the arena's
    /// high-water footprint to telemetry.
    pub fn finish_stats(&self, stats: &mut AlgoStats) {
        stats.pointer_jumps = self.jumps.get();
        stats.atomic_rmw = self.rmw.get();
        self.arena.report_telemetry();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llp_graph::samples::fig1;

    #[test]
    fn one_round_on_fig1_contracts_to_two_vertices() {
        let g = fig1();
        let pool = ThreadPool::new(2);
        let mut c = Contraction::new(&g);
        let mut stats = AlgoStats::default();
        c.round(&pool, ParallelForConfig::with_grain(64), &mut stats);
        // Paper trace: after round 1, components {a,b,c} and {d,e}.
        assert_eq!(c.n_cur, 2);
        assert_eq!(c.chosen.len(), 3); // edges {4, 3, 2}
        assert!(!c.is_done());
        c.round(&pool, ParallelForConfig::with_grain(64), &mut stats);
        assert!(c.is_done());
        assert_eq!(c.chosen.len(), 4);
    }

    #[test]
    fn rounds_preserve_edge_identity() {
        let g = llp_graph::generators::erdos_renyi(80, 300, 4);
        let pool = ThreadPool::new(2);
        let mut c = Contraction::new(&g);
        let mut stats = AlgoStats::default();
        while !c.is_done() {
            c.round(&pool, ParallelForConfig::with_grain(64), &mut stats);
        }
        // Every chosen edge exists in the input graph.
        for e in c.chosen_edges() {
            assert!(g.neighbors(e.u).any(|(v, w)| v == e.v && w == e.w));
        }
    }

    #[test]
    fn work_edges_cache_their_weight_discriminant() {
        let g = fig1();
        let c = Contraction::new(&g);
        for e in &c.work {
            assert_eq!(e.whi, weight_hi32(c.orig_edges[e.orig as usize].w));
        }
    }

    #[test]
    fn steady_state_rounds_do_not_grow_the_arena() {
        let g = llp_graph::generators::erdos_renyi(3000, 20_000, 7);
        let pool = ThreadPool::new(4);
        let mut c = Contraction::new(&g);
        let mut stats = AlgoStats::default();
        c.round(&pool, ParallelForConfig::with_grain(256), &mut stats);
        let footprint = c.arena.footprint_bytes();
        let caps = c.work.capacity().max(c.work_next.capacity());
        while !c.is_done() {
            c.round(&pool, ParallelForConfig::with_grain(256), &mut stats);
            assert_eq!(c.arena.footprint_bytes(), footprint, "arena grew after round 1");
            assert_eq!(
                c.work.capacity().max(c.work_next.capacity()),
                caps,
                "double buffer reallocated after round 1"
            );
        }
        assert!(c.arena.reuse_count() > 0);
    }
}

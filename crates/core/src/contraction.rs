//! Shared Boruvka contraction machinery (one LLP round of Algorithm 6).
//!
//! Used by [`crate::llp_boruvka`] (which runs rounds to exhaustion) and by
//! [`crate::hybrid`] (which runs a few rounds and finishes with Prim on the
//! contracted graph, a classic practical variant the paper's future-work
//! section gestures at).

use crate::stats::AlgoStats;
use llp_graph::{CsrGraph, Edge, EdgeKey};
use llp_runtime::atomics::{AtomicIndexMin, NO_INDEX};
use llp_runtime::telemetry;
use llp_runtime::{parallel_for, parallel_map_collect, Counter, ParallelForConfig, ThreadPool};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// A contracted edge: endpoints in the current (renumbered) vertex space
/// plus the index of the original edge it stands for.
#[derive(Clone, Copy, Debug)]
pub(crate) struct WorkEdge {
    pub u: u32,
    pub v: u32,
    pub orig: u32,
}

/// Mutable contraction state threaded through rounds.
pub(crate) struct Contraction {
    /// Original edges (immutable identities for the final forest).
    pub orig_edges: Vec<Edge>,
    /// Canonical keys of the original edges.
    pub keys: Vec<EdgeKey>,
    /// Live contracted edges.
    pub work: Vec<WorkEdge>,
    /// Vertices in the current contracted space.
    pub n_cur: usize,
    /// Original-edge indices chosen into the forest so far.
    pub chosen: Vec<u32>,
    /// Pointer-jump assignment counter.
    pub jumps: Counter,
    /// Atomic RMW counter (MWE priority writes).
    pub rmw: Counter,
}

impl Contraction {
    /// Initial state over a graph.
    pub fn new(graph: &CsrGraph) -> Self {
        Self::from_edge_list(graph.num_vertices(), graph.edges().collect())
    }

    /// Initial state over a raw undirected edge list (no CSR required —
    /// the Boruvka family is edge-centric). Self-loops are skipped;
    /// parallel edges are harmless (only the lighter can ever be an MWE).
    pub fn from_edge_list(n: usize, orig_edges: Vec<Edge>) -> Self {
        let keys: Vec<EdgeKey> = orig_edges.iter().map(Edge::key).collect();
        let work: Vec<WorkEdge> = orig_edges
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.is_self_loop())
            .map(|(i, e)| WorkEdge {
                u: e.u,
                v: e.v,
                orig: i as u32,
            })
            .collect();
        Contraction {
            orig_edges,
            keys,
            work,
            n_cur: n,
            chosen: Vec::with_capacity(n.saturating_sub(1)),
            jumps: Counter::new(),
            rmw: Counter::new(),
        }
    }

    /// True when no cross-component edges remain.
    pub fn is_done(&self) -> bool {
        self.work.is_empty()
    }

    /// Runs one full LLP-Boruvka round: per-vertex MWE selection with
    /// symmetry breaking, relaxed pointer jumping to stars, contraction.
    /// Updates `stats` round/region/scan counters.
    pub fn round(&mut self, pool: &ThreadPool, cfg: ParallelForConfig, stats: &mut AlgoStats) {
        debug_assert!(!self.is_done());
        stats.rounds += 1;
        stats.parallel_regions += 4;
        stats.edges_scanned += self.work.len() as u64;
        let n_cur = self.n_cur;
        telemetry::record_value("live-edges", self.work.len() as u64);
        telemetry::record_value("live-vertices", n_cur as u64);

        // Step 1a: per-vertex minimum weight edge (index into `work`).
        let mwe_span = telemetry::span("mwe-compute");
        let best: Vec<AtomicIndexMin> = (0..n_cur).map(|_| AtomicIndexMin::new()).collect();
        {
            let work_ref = &self.work;
            let keys_ref = &self.keys;
            let best_ref = &best;
            let rmw_ref = &self.rmw;
            parallel_for(pool, 0..self.work.len(), cfg, |i| {
                let e = work_ref[i];
                let key_of = |wi: u64| keys_ref[work_ref[wi as usize].orig as usize];
                best_ref[e.u as usize].propose_min_by(i as u64, key_of);
                best_ref[e.v as usize].propose_min_by(i as u64, key_of);
                rmw_ref.add(2);
            });
        }

        // Step 1b: choose parents with symmetry breaking; G becomes a
        // rooted forest. Vertices with no incident edge root themselves.
        let g: Vec<AtomicU32> = {
            let work_ref = &self.work;
            let best_ref = &best;
            parallel_map_collect(pool, 0..n_cur, cfg, |v| {
                let bi = best_ref[v].load(Ordering::Relaxed);
                if bi == NO_INDEX {
                    return v as u32; // isolated in the contracted graph
                }
                let e = work_ref[bi as usize];
                let w = if e.u == v as u32 { e.v } else { e.u };
                let mutual = best_ref[w as usize].load(Ordering::Relaxed) == bi;
                if mutual && (v as u32) < w {
                    v as u32 // break symmetry: the smaller endpoint roots
                } else {
                    w
                }
            })
            .into_iter()
            .map(AtomicU32::new)
            .collect()
        };

        // Step 1c: every non-root's MWE joins the forest (each chosen edge
        // exactly once: mutual pairs add from the non-root side only;
        // otherwise MWEs of distinct vertices are distinct edges).
        {
            let bag: llp_runtime::Bag<u32> = llp_runtime::Bag::new(pool.threads());
            let work_ref = &self.work;
            let best_ref = &best;
            let g_ref = &g;
            let bag_ref = &bag;
            llp_runtime::parallel_for_chunks_ctx(pool, 0..n_cur, cfg, |ctx, chunk| {
                for v in chunk {
                    if g_ref[v].load(Ordering::Relaxed) != v as u32 {
                        let bi = best_ref[v].load(Ordering::Relaxed);
                        bag_ref.push(ctx.tid, work_ref[bi as usize].orig);
                    }
                }
            });
            let mut added = bag.drain_to_vec();
            added.sort_unstable();
            debug_assert!(added.windows(2).all(|w| w[0] != w[1]), "duplicate edge");
            self.chosen.extend(added);
        }

        drop(mwe_span);

        // Step 2: pointer jumping with relaxed atomics until G is a star
        // forest (the inner LLP instance, Lemma 3/4).
        let jump_span = telemetry::span("pointer-jump");
        loop {
            stats.parallel_regions += 1;
            let changed = AtomicBool::new(false);
            {
                let g_ref = &g;
                let changed_ref = &changed;
                let jumps_ref = &self.jumps;
                parallel_for(pool, 0..n_cur, cfg, |j| {
                    let p = g_ref[j].load(Ordering::Relaxed);
                    let gp = g_ref[p as usize].load(Ordering::Relaxed);
                    if p != gp {
                        g_ref[j].store(gp, Ordering::Relaxed);
                        jumps_ref.incr();
                        changed_ref.store(true, Ordering::Relaxed);
                    }
                });
            }
            if !changed.load(Ordering::Relaxed) {
                break;
            }
        }

        drop(jump_span);

        // Step 3: contract. Renumber roots densely, relabel and filter.
        let _t = telemetry::span("contract");
        let root_of: Vec<u32> = g.iter().map(|a| a.load(Ordering::Relaxed)).collect();
        let roots =
            llp_runtime::scan::pack_indices(pool, n_cur, cfg, |v| root_of[v] == v as u32);
        let mut new_id = vec![u32::MAX; n_cur];
        for (dense, &root) in roots.iter().enumerate() {
            new_id[root] = dense as u32;
        }
        let survivors = llp_runtime::scan::pack_indices(pool, self.work.len(), cfg, |i| {
            let e = self.work[i];
            root_of[e.u as usize] != root_of[e.v as usize]
        });
        self.work = survivors
            .into_iter()
            .map(|i| {
                let e = self.work[i];
                WorkEdge {
                    u: new_id[root_of[e.u as usize] as usize],
                    v: new_id[root_of[e.v as usize] as usize],
                    orig: e.orig,
                }
            })
            .collect();
        self.n_cur = roots.len();
    }

    /// Materialises the chosen original edges.
    pub fn chosen_edges(&self) -> Vec<Edge> {
        self.chosen
            .iter()
            .map(|&i| self.orig_edges[i as usize])
            .collect()
    }

    /// Flushes the atomic counters into `stats`.
    pub fn finish_stats(&self, stats: &mut AlgoStats) {
        stats.pointer_jumps = self.jumps.get();
        stats.atomic_rmw = self.rmw.get();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llp_graph::samples::fig1;

    #[test]
    fn one_round_on_fig1_contracts_to_two_vertices() {
        let g = fig1();
        let pool = ThreadPool::new(2);
        let mut c = Contraction::new(&g);
        let mut stats = AlgoStats::default();
        c.round(&pool, ParallelForConfig::with_grain(64), &mut stats);
        // Paper trace: after round 1, components {a,b,c} and {d,e}.
        assert_eq!(c.n_cur, 2);
        assert_eq!(c.chosen.len(), 3); // edges {4, 3, 2}
        assert!(!c.is_done());
        c.round(&pool, ParallelForConfig::with_grain(64), &mut stats);
        assert!(c.is_done());
        assert_eq!(c.chosen.len(), 4);
    }

    #[test]
    fn rounds_preserve_edge_identity() {
        let g = llp_graph::generators::erdos_renyi(80, 300, 4);
        let pool = ThreadPool::new(2);
        let mut c = Contraction::new(&g);
        let mut stats = AlgoStats::default();
        while !c.is_done() {
            c.round(&pool, ParallelForConfig::with_grain(64), &mut stats);
        }
        // Every chosen edge exists in the input graph.
        for e in c.chosen_edges() {
            assert!(g.neighbors(e.u).any(|(v, w)| v == e.v && w == e.w));
        }
    }
}

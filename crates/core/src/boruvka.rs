//! Sequential Boruvka (the paper's Algorithm 3, verbatim structure).
//!
//! Each round: label the components of `(V, T)` by BFS from the least
//! unvisited vertex, find every component's minimum-weight outgoing edge by
//! a full edge scan, add those edges to `T`. Terminates when no component
//! has an outgoing edge, which handles forests (MSF) as well as trees.

use crate::result::MstResult;
use crate::stats::AlgoStats;
use llp_graph::{CsrGraph, Edge, EdgeKey, VertexId, NO_VERTEX};
use llp_runtime::telemetry;
use std::collections::VecDeque;

/// Sequential Boruvka; computes the canonical MSF.
pub fn boruvka_seq(graph: &CsrGraph) -> MstResult {
    let n = graph.num_vertices();
    let mut stats = AlgoStats::default();
    let mut tree: Vec<Edge> = Vec::with_capacity(n.saturating_sub(1));
    // Adjacency of the chosen forest (V, T), rebuilt incrementally.
    let mut forest_adj: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    let mut cid: Vec<VertexId> = vec![NO_VERTEX; n];
    let mut queue: VecDeque<VertexId> = VecDeque::new();

    loop {
        stats.rounds += 1;

        // Component labelling: BFS in (V, T) from every unvisited vertex in
        // increasing id order; labels are the least vertex id per component.
        let label_span = telemetry::span("contract");
        cid.iter_mut().for_each(|c| *c = NO_VERTEX);
        for start in 0..n as VertexId {
            if cid[start as usize] != NO_VERTEX {
                continue;
            }
            cid[start as usize] = start;
            queue.push_back(start);
            while let Some(u) = queue.pop_front() {
                for &v in &forest_adj[u as usize] {
                    if cid[v as usize] == NO_VERTEX {
                        cid[v as usize] = start;
                        queue.push_back(v);
                    }
                }
            }
        }

        drop(label_span);

        // Minimum-weight outgoing edge per component.
        let _t = telemetry::span("mwe-compute");
        let mut mwe: Vec<Option<(EdgeKey, Edge)>> = vec![None; n];
        for e in graph.edges() {
            stats.edges_scanned += 1;
            let cu = cid[e.u as usize];
            let cv = cid[e.v as usize];
            if cu == cv {
                continue;
            }
            let key = e.key();
            for c in [cu, cv] {
                match &mwe[c as usize] {
                    Some((best, _)) if *best <= key => {}
                    _ => mwe[c as usize] = Some((key, e)),
                }
            }
        }

        // Add the chosen edges (an edge can be the MWE of both of its
        // components; dedup within the round by canonical key).
        let mut chosen: Vec<(EdgeKey, Edge)> = mwe.iter().flatten().copied().collect();
        chosen.sort_unstable_by_key(|(k, _)| *k);
        chosen.dedup_by_key(|(k, _)| *k);
        if chosen.is_empty() {
            break; // every component is finished: MSF complete
        }
        for (_, e) in chosen {
            forest_adj[e.u as usize].push(e.v);
            forest_adj[e.v as usize].push(e.u);
            tree.push(e);
        }
    }

    MstResult::from_edges(n, tree, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kruskal::kruskal;
    use llp_graph::samples::{fig1, small_forest, FIG1_MST_WEIGHT, SMALL_FOREST_MSF_WEIGHT};

    #[test]
    fn fig1_trace_matches_paper() {
        let mst = boruvka_seq(&fig1());
        assert_eq!(mst.total_weight, FIG1_MST_WEIGHT);
        // Paper: round 1 adds {4, 3, 2}, round 2 adds {7}; two effective
        // rounds plus the terminating scan.
        assert_eq!(mst.stats.rounds, 3);
        let mut ws: Vec<f64> = mst.edges.iter().map(|e| e.w).collect();
        ws.sort_by(f64::total_cmp);
        assert_eq!(ws, vec![2.0, 3.0, 4.0, 7.0]);
    }

    #[test]
    fn forest_support() {
        let msf = boruvka_seq(&small_forest());
        assert_eq!(msf.total_weight, SMALL_FOREST_MSF_WEIGHT);
        assert_eq!(msf.num_trees, 3);
    }

    #[test]
    fn matches_kruskal_on_random_graphs() {
        for seed in 0..6 {
            let g = llp_graph::generators::erdos_renyi(150, 400, seed);
            assert_eq!(
                boruvka_seq(&g).canonical_keys(),
                kruskal(&g).canonical_keys(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn rounds_are_logarithmic_on_paths() {
        let g = llp_graph::generators::path(1024, 3);
        let mst = boruvka_seq(&g);
        assert_eq!(mst.edges.len(), 1023);
        // Components at least halve per round: <= log2(1024) + final scan.
        assert!(mst.stats.rounds <= 11, "rounds = {}", mst.stats.rounds);
    }

    #[test]
    fn empty_graph_terminates() {
        let r = boruvka_seq(&CsrGraph::empty(4));
        assert!(r.edges.is_empty());
        assert_eq!(r.num_trees, 4);
        assert_eq!(r.stats.rounds, 1);
    }

    #[test]
    fn star_finishes_in_one_effective_round() {
        let g = llp_graph::generators::star(32, 5);
        let mst = boruvka_seq(&g);
        assert_eq!(mst.edges.len(), 31);
        assert!(mst.stats.rounds <= 3);
    }
}

//! Disjoint-set (union–find) structures.
//!
//! [`UnionFind`] is the sequential rank + path-halving structure Kruskal
//! and the verifiers use. [`ConcurrentUnionFind`] is a lock-free variant
//! (CAS hooking of the higher root under the lower, best-effort path
//! halving) used by the parallel Boruvka baseline; it matches the
//! wait-free union-find used in GBBS's connectivity kernels.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Sequential union–find with union by rank and path halving.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Current number of disjoint sets.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Representative of `x`'s set (path halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
    }

    /// Read-only find (no compression), for `&self` contexts.
    pub fn find_immutable(&self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `false` when already joined.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.components -= 1;
        true
    }

    /// True when `a` and `b` are in the same set.
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }
}

/// Lock-free union–find over atomics.
///
/// `union` hooks the *larger* root id under the smaller via CAS, which
/// keeps representatives canonical (the minimum id of the set) — the same
/// convention as the paper's BFS labelling. Path halving is best-effort:
/// failed halving CASes are simply skipped.
#[derive(Debug)]
pub struct ConcurrentUnionFind {
    parent: Vec<AtomicU32>,
    /// CAS retries observed (contention metric).
    retries: AtomicU64,
}

impl ConcurrentUnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        ConcurrentUnionFind {
            parent: (0..n as u32).map(AtomicU32::new).collect(),
            retries: AtomicU64::new(0),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// CAS retries observed so far.
    pub fn cas_retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Representative of `x`'s set, with best-effort path halving.
    pub fn find(&self, mut x: u32) -> u32 {
        loop {
            let p = self.parent[x as usize].load(Ordering::Relaxed);
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize].load(Ordering::Relaxed);
            if p != gp {
                // Best-effort halving; losing the race is harmless.
                let _ = self.parent[x as usize].compare_exchange_weak(
                    p,
                    gp,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
            }
            x = gp;
        }
    }

    /// Merges the sets of `a` and `b`; returns `false` when already joined.
    ///
    /// Linearizable: the winning CAS hooks one root directly under another
    /// root; on failure the find is restarted.
    pub fn union(&self, a: u32, b: u32) -> bool {
        let mut ra = self.find(a);
        let mut rb = self.find(b);
        loop {
            if ra == rb {
                return false;
            }
            // Hook the larger id under the smaller: canonical minimum roots.
            let (hi, lo) = if ra > rb { (ra, rb) } else { (rb, ra) };
            match self.parent[hi as usize].compare_exchange(
                hi,
                lo,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(_) => {
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    ra = self.find(hi);
                    rb = self.find(lo);
                }
            }
        }
    }

    /// True when `a` and `b` are currently in the same set (racy under
    /// concurrent unions; exact once unions quiesce).
    pub fn same(&self, a: u32, b: u32) -> bool {
        loop {
            let ra = self.find(a);
            let rb = self.find(b);
            if ra == rb {
                return true;
            }
            // ra may have been hooked concurrently; confirm it is still root.
            if self.parent[ra as usize].load(Ordering::Acquire) == ra {
                return false;
            }
        }
    }

    /// Snapshot of current representatives (call after parallel phase).
    pub fn labels(&self) -> Vec<u32> {
        (0..self.parent.len() as u32).map(|v| self.find(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llp_runtime::{parallel_for, ParallelForConfig, ThreadPool};

    #[test]
    fn sequential_union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_components(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0));
        assert!(uf.same(0, 1));
        assert!(!uf.same(1, 2));
        assert!(uf.union(1, 3));
        assert!(uf.same(0, 2));
        assert_eq!(uf.num_components(), 2);
    }

    #[test]
    fn sequential_path_halving_converges() {
        let mut uf = UnionFind::new(100);
        for i in 1..100 {
            uf.union(i - 1, i);
        }
        let r = uf.find(99);
        assert!((0..100).all(|i| uf.find(i) == r));
        assert_eq!(uf.num_components(), 1);
    }

    #[test]
    fn concurrent_matches_sequential_semantics() {
        let uf = ConcurrentUnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(4, 5));
        assert!(!uf.union(1, 0));
        assert!(uf.same(0, 1));
        assert!(!uf.same(0, 4));
        assert!(uf.union(1, 5));
        assert!(uf.same(0, 4));
    }

    #[test]
    fn concurrent_roots_are_minimum_ids() {
        let uf = ConcurrentUnionFind::new(5);
        uf.union(4, 3);
        uf.union(3, 2);
        uf.union(2, 0);
        assert_eq!(uf.find(4), 0);
        assert_eq!(uf.find(3), 0);
    }

    #[test]
    fn concurrent_parallel_chain_union() {
        let pool = ThreadPool::new(4);
        let n = 10_000;
        let uf = ConcurrentUnionFind::new(n);
        parallel_for(&pool, 1..n, ParallelForConfig::with_grain(64), |i| {
            uf.union(i as u32 - 1, i as u32);
        });
        let r = uf.find(0);
        assert_eq!(r, 0, "canonical root is the minimum id");
        for i in 0..n as u32 {
            assert_eq!(uf.find(i), 0);
        }
    }

    #[test]
    fn concurrent_parallel_random_unions_match_sequential() {
        use llp_runtime::rng::SmallRng;
        let pool = ThreadPool::new(4);
        let n = 2000;
        let mut rng = SmallRng::seed_from_u64(99);
        let pairs: Vec<(u32, u32)> = (0..3000)
            .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
            .collect();
        let cuf = ConcurrentUnionFind::new(n);
        let pairs_ref = &pairs;
        parallel_for(
            &pool,
            0..pairs.len(),
            ParallelForConfig::with_grain(16),
            |i| {
                let (a, b) = pairs_ref[i];
                cuf.union(a, b);
            },
        );
        let mut suf = UnionFind::new(n);
        for &(a, b) in &pairs {
            suf.union(a, b);
        }
        for a in 0..n as u32 {
            for b in [0u32, 1, 7, 1999] {
                assert_eq!(cuf.same(a, b), suf.same(a, b), "pair ({a},{b})");
            }
        }
    }

    #[test]
    fn empty_structures() {
        assert!(UnionFind::new(0).is_empty());
        assert!(ConcurrentUnionFind::new(0).is_empty());
    }
}

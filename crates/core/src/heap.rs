//! Instrumented binary heaps for the Prim family.
//!
//! Two variants, matching the two Prim implementations the paper discusses:
//!
//! * [`LazyHeap`] — duplicate insertion + lazy deletion, the variant of the
//!   paper's §IV complexity analysis ("instead of adjusting the key in the
//!   heap for a vertex, we simply insert the vertex in the heap"). Pops of
//!   already-fixed vertices are skipped by the caller.
//! * [`IndexedHeap`] — a binary heap with a position index supporting
//!   `insert_or_adjust` (the `H.insertOrAdjust` of Algorithm 2).
//!
//! Both count pushes/pops so benchmarks can report heap traffic — the
//! quantity LLP-Prim's early fixing removes.

/// A min-heap of `(key, vertex)` with duplicate entries and lazy deletion.
///
/// Tracks its peak entry count (reported to telemetry as `heap-peak-len`
/// when the final pop drains it), and releases its backing storage at that
/// point — the duplicate-insertion discipline can balloon the heap to
/// `O(m)` entries, memory a finished run should not keep holding.
#[derive(Debug, Clone)]
pub struct LazyHeap<K: Ord + Copy> {
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(K, u32)>>,
    /// Total insertions.
    pub pushes: u64,
    /// Total removals (including stale entries the caller discards).
    pub pops: u64,
    /// Largest number of simultaneously stored entries.
    peak_len: usize,
}

impl<K: Ord + Copy> Default for LazyHeap<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Copy> LazyHeap<K> {
    /// An empty heap.
    pub fn new() -> Self {
        LazyHeap {
            heap: std::collections::BinaryHeap::new(),
            pushes: 0,
            pops: 0,
            peak_len: 0,
        }
    }

    /// An empty heap with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        LazyHeap {
            heap: std::collections::BinaryHeap::with_capacity(cap),
            pushes: 0,
            pops: 0,
            peak_len: 0,
        }
    }

    /// Inserts `(key, vertex)`.
    #[inline]
    pub fn push(&mut self, key: K, vertex: u32) {
        self.pushes += 1;
        self.heap.push(std::cmp::Reverse((key, vertex)));
        self.peak_len = self.peak_len.max(self.heap.len());
    }

    /// Removes and returns the minimum entry.
    ///
    /// The pop that empties the heap records `heap-peak-len` to telemetry
    /// and shrinks the backing storage, so run reports capture the heap's
    /// high-water mark and a drained heap holds no memory.
    #[inline]
    pub fn pop(&mut self) -> Option<(K, u32)> {
        let e = self.heap.pop().map(|std::cmp::Reverse(p)| p);
        if e.is_some() {
            self.pops += 1;
            if self.heap.is_empty() {
                llp_runtime::telemetry::record_value("heap-peak-len", self.peak_len as u64);
                self.heap.shrink_to_fit();
            }
        }
        e
    }

    /// Largest number of entries the heap has held simultaneously.
    #[inline]
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Current backing-storage capacity (entries).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// True when no entries remain (stale or not).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of stored entries, counting stale duplicates.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Sentinel position meaning "vertex not in heap".
const NOT_IN_HEAP: u32 = u32::MAX;

/// A binary min-heap over vertices with `decrease_key` support.
///
/// Each vertex appears at most once. Positions are tracked in a dense
/// array indexed by vertex id, so the heap must be created with the vertex
/// count up front.
#[derive(Debug, Clone)]
pub struct IndexedHeap<K: Ord + Copy> {
    /// Binary-heap array of `(key, vertex)`.
    data: Vec<(K, u32)>,
    /// `pos[v]` = index of v in `data`, or `NOT_IN_HEAP`.
    pos: Vec<u32>,
    /// Total insertions.
    pub pushes: u64,
    /// Total removals.
    pub pops: u64,
    /// Total decrease-key adjustments.
    pub adjusts: u64,
}

impl<K: Ord + Copy> IndexedHeap<K> {
    /// An empty heap able to hold vertices `0..n`.
    pub fn new(n: usize) -> Self {
        IndexedHeap {
            data: Vec::with_capacity(n.min(1 << 16)),
            pos: vec![NOT_IN_HEAP; n],
            pushes: 0,
            pops: 0,
            adjusts: 0,
        }
    }

    /// True when the heap holds no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of vertices currently in the heap.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when `v` is currently in the heap.
    #[inline]
    pub fn contains(&self, v: u32) -> bool {
        self.pos[v as usize] != NOT_IN_HEAP
    }

    /// Inserts `v` with `key`, or lowers v's key if already present with a
    /// larger key (Algorithm 2's `insertOrAdjust`). Raising a key is a
    /// no-op, matching Prim's monotone relaxation.
    pub fn insert_or_adjust(&mut self, v: u32, key: K) {
        let p = self.pos[v as usize];
        if p == NOT_IN_HEAP {
            self.pushes += 1;
            self.data.push((key, v));
            let i = self.data.len() - 1;
            self.pos[v as usize] = i as u32;
            self.sift_up(i);
        } else if key < self.data[p as usize].0 {
            self.adjusts += 1;
            self.data[p as usize].0 = key;
            self.sift_up(p as usize);
        }
    }

    /// Removes and returns the minimum `(key, vertex)`.
    pub fn pop_min(&mut self) -> Option<(K, u32)> {
        if self.data.is_empty() {
            return None;
        }
        self.pops += 1;
        let min = self.data[0];
        self.pos[min.1 as usize] = NOT_IN_HEAP;
        let last = self.data.pop().unwrap();
        if !self.data.is_empty() {
            self.data[0] = last;
            self.pos[last.1 as usize] = 0;
            self.sift_down(0);
        }
        Some(min)
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.data[i].0 < self.data[parent].0 {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut smallest = i;
            if l < self.data.len() && self.data[l].0 < self.data[smallest].0 {
                smallest = l;
            }
            if r < self.data.len() && self.data[r].0 < self.data[smallest].0 {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.swap(i, smallest);
            i = smallest;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.data.swap(a, b);
        self.pos[self.data[a].1 as usize] = a as u32;
        self.pos[self.data[b].1 as usize] = b as u32;
    }

    /// Heap-order invariant check for tests.
    #[cfg(test)]
    fn check_invariants(&self) {
        for i in 1..self.data.len() {
            assert!(self.data[(i - 1) / 2].0 <= self.data[i].0, "heap order");
        }
        for (i, &(_, v)) in self.data.iter().enumerate() {
            assert_eq!(self.pos[v as usize], i as u32, "position index");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazy_heap_pops_in_order() {
        let mut h = LazyHeap::new();
        for &(k, v) in &[(5u64, 0u32), (1, 1), (3, 2), (1, 3)] {
            h.push(k, v);
        }
        let mut keys = Vec::new();
        while let Some((k, _)) = h.pop() {
            keys.push(k);
        }
        assert_eq!(keys, vec![1, 1, 3, 5]);
        assert_eq!(h.pushes, 4);
        assert_eq!(h.pops, 4);
    }

    #[test]
    fn lazy_heap_allows_duplicates() {
        let mut h = LazyHeap::new();
        h.push(2, 7);
        h.push(1, 7);
        assert_eq!(h.len(), 2);
        assert_eq!(h.pop(), Some((1, 7)));
        assert_eq!(h.pop(), Some((2, 7)));
    }

    #[test]
    fn lazy_heap_tracks_peak_and_shrinks_when_drained() {
        let mut h = LazyHeap::with_capacity(1 << 12);
        for i in 0..1000u32 {
            h.push(1000 - i as u64, i);
        }
        assert_eq!(h.peak_len(), 1000);
        for _ in 0..500 {
            h.pop();
        }
        // Peak is a high-water mark, not the current length.
        assert_eq!(h.peak_len(), 1000);
        while h.pop().is_some() {}
        assert_eq!(h.peak_len(), 1000);
        // The emptying pop released the backing storage.
        assert_eq!(h.capacity(), 0);
    }

    #[test]
    fn indexed_heap_basic_order() {
        let mut h = IndexedHeap::new(10);
        for &(k, v) in &[(5u64, 0u32), (1, 1), (3, 2), (4, 3), (2, 4)] {
            h.insert_or_adjust(v, k);
            h.check_invariants();
        }
        let mut out = Vec::new();
        while let Some((k, v)) = h.pop_min() {
            out.push((k, v));
            h.check_invariants();
        }
        assert_eq!(out, vec![(1, 1), (2, 4), (3, 2), (4, 3), (5, 0)]);
    }

    #[test]
    fn indexed_heap_decrease_key() {
        let mut h = IndexedHeap::new(4);
        h.insert_or_adjust(0, 10);
        h.insert_or_adjust(1, 20);
        h.insert_or_adjust(1, 5); // decrease
        h.check_invariants();
        assert_eq!(h.pop_min(), Some((5, 1)));
        assert_eq!(h.adjusts, 1);
        assert_eq!(h.pushes, 2);
    }

    #[test]
    fn indexed_heap_ignores_key_increase() {
        let mut h = IndexedHeap::new(2);
        h.insert_or_adjust(0, 5);
        h.insert_or_adjust(0, 50);
        assert_eq!(h.pop_min(), Some((5, 0)));
        assert_eq!(h.adjusts, 0);
    }

    #[test]
    fn indexed_heap_reinsertion_after_pop() {
        let mut h = IndexedHeap::new(3);
        h.insert_or_adjust(2, 9);
        assert_eq!(h.pop_min(), Some((9, 2)));
        assert!(!h.contains(2));
        h.insert_or_adjust(2, 4);
        assert!(h.contains(2));
        assert_eq!(h.pop_min(), Some((4, 2)));
    }

    #[test]
    fn indexed_heap_randomised_against_std() {
        let n = 500;
        let mut h = IndexedHeap::new(n);
        let mut reference: Vec<u64> = vec![u64::MAX; n];
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut rand = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..5_000 {
            let v = (rand() % n as u64) as u32;
            let k = rand() % 1_000;
            h.insert_or_adjust(v, k);
            if k < reference[v as usize] {
                reference[v as usize] = k;
            }
        }
        h.check_invariants();
        let mut popped: Vec<(u64, u32)> = Vec::new();
        while let Some(e) = h.pop_min() {
            popped.push(e);
        }
        // Non-decreasing key order.
        assert!(popped.windows(2).all(|w| w[0].0 <= w[1].0));
        // Each vertex left with its minimum inserted key, exactly once.
        let live: Vec<(u32, u64)> = reference
            .iter()
            .enumerate()
            .filter(|(_, &k)| k != u64::MAX)
            .map(|(v, &k)| (v as u32, k))
            .collect();
        let mut got: Vec<(u32, u64)> = popped.iter().map(|&(k, v)| (v, k)).collect();
        got.sort_unstable();
        assert_eq!(got, live);
    }
}

//! Boruvka–Prim hybrid.
//!
//! A classic practical MST recipe (and a natural extension of the paper's
//! two algorithms): run a few LLP-Boruvka contraction rounds — which shrink
//! the vertex count geometrically and parallelise well — then finish the
//! contracted graph with the cache-friendly sequential LLP-Prim. The hybrid
//! inherits Boruvka's parallel start and Prim's low constant factors on the
//! small remainder.
//!
//! Canonicality is preserved: the Prim phase compares contracted edges by
//! their **original** [`EdgeKey`]s, so the tree equals the one every other
//! algorithm in this crate computes.

use crate::contraction::Contraction;
use crate::heap::LazyHeap;
use crate::result::{MstError, MstResult};
use crate::stats::AlgoStats;
use llp_graph::{CsrGraph, EdgeKey};
use llp_runtime::telemetry;
use llp_runtime::{ParallelForConfig, ThreadPool};

/// Boruvka–Prim hybrid: `boruvka_rounds` LLP contraction rounds, then Prim
/// on the contracted remainder. Requires a connected graph (like the Prim
/// family); use [`crate::llp_boruvka`] for forests.
pub fn hybrid_boruvka_prim(
    graph: &CsrGraph,
    pool: &ThreadPool,
    boruvka_rounds: usize,
) -> Result<MstResult, MstError> {
    let n = graph.num_vertices();
    if n == 0 {
        return Err(MstError::EmptyGraph);
    }
    let mut stats = AlgoStats::default();
    let cfg = ParallelForConfig::with_grain(512);

    // Phase 1: contraction rounds.
    let mut c = Contraction::new(graph);
    for _ in 0..boruvka_rounds {
        if c.is_done() {
            break;
        }
        c.round(pool, cfg, &mut stats);
    }

    // Phase 2: Prim over the contracted multigraph, comparing by original
    // edge keys. Build a CSR-style adjacency of (target, work-edge index).
    let n_cur = c.n_cur;
    let mut offsets = vec![0usize; n_cur + 1];
    for e in &c.work {
        offsets[e.u as usize + 1] += 1;
        offsets[e.v as usize + 1] += 1;
    }
    for i in 1..=n_cur {
        offsets[i] += offsets[i - 1];
    }
    let mut cursor = offsets[..n_cur].to_vec();
    let mut adj_target = vec![0u32; c.work.len() * 2];
    let mut adj_widx = vec![0u32; c.work.len() * 2];
    for (wi, e) in c.work.iter().enumerate() {
        for (from, to) in [(e.u, e.v), (e.v, e.u)] {
            let slot = cursor[from as usize];
            adj_target[slot] = to;
            adj_widx[slot] = wi as u32;
            cursor[from as usize] += 1;
        }
    }
    let key_of_widx = |wi: u32| c.keys[c.work[wi as usize].orig as usize];

    if n_cur > 0 && !c.is_done() {
        let mut dist: Vec<EdgeKey> = vec![EdgeKey::infinite(); n_cur];
        let mut best_widx: Vec<u32> = vec![u32::MAX; n_cur];
        let mut fixed = vec![false; n_cur];
        let mut heap: LazyHeap<EdgeKey> = LazyHeap::new();
        let mut reached = 1usize;
        // Collected separately: `key_of_widx` holds an immutable borrow of
        // the contraction state for the duration of the loop.
        let mut prim_chosen: Vec<u32> = Vec::new();

        let relax = |v: usize,
                         fixed: &[bool],
                         dist: &mut [EdgeKey],
                         best_widx: &mut [u32],
                         heap: &mut LazyHeap<EdgeKey>,
                         stats: &mut AlgoStats| {
            for slot in offsets[v]..offsets[v + 1] {
                stats.edges_scanned += 1;
                let to = adj_target[slot] as usize;
                if fixed[to] {
                    continue;
                }
                let key = key_of_widx(adj_widx[slot]);
                if key < dist[to] {
                    dist[to] = key;
                    best_widx[to] = adj_widx[slot];
                    heap.push(key, to as u32);
                }
            }
        };

        fixed[0] = true;
        relax(0, &fixed, &mut dist, &mut best_widx, &mut heap, &mut stats);
        let _t = telemetry::span("heap-extract");
        while let Some((key, v)) = heap.pop() {
            let v = v as usize;
            if fixed[v] {
                continue;
            }
            debug_assert_eq!(key, dist[v]);
            fixed[v] = true;
            reached += 1;
            stats.heap_fixes += 1;
            prim_chosen.push(c.work[best_widx[v] as usize].orig);
            relax(v, &fixed, &mut dist, &mut best_widx, &mut heap, &mut stats);
        }
        stats.heap_pushes = heap.pushes;
        stats.heap_pops = heap.pops;
        c.chosen.extend(prim_chosen);
        if reached < n_cur {
            // Translate the contracted reach back to original-vertex terms.
            let missing = n_cur - reached;
            return Err(MstError::Disconnected {
                reached: n - missing,
                total: n,
            });
        }
    } else if n_cur > 1 {
        // Contraction exhausted all edges but multiple components remain.
        return Err(MstError::Disconnected {
            reached: n - (n_cur - 1),
            total: n,
        });
    }

    c.finish_stats(&mut stats);
    let edges = c.chosen_edges();
    if edges.len() + 1 != n.max(1) {
        return Err(MstError::Disconnected {
            reached: edges.len() + 1,
            total: n,
        });
    }
    Ok(MstResult::from_edges(n, edges, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kruskal::kruskal;
    use llp_graph::samples::{fig1, FIG1_MST_WEIGHT};

    #[test]
    fn fig1_with_various_round_budgets() {
        let g = fig1();
        let pool = ThreadPool::new(2);
        for rounds in 0..4 {
            let mst = hybrid_boruvka_prim(&g, &pool, rounds).unwrap();
            assert_eq!(mst.total_weight, FIG1_MST_WEIGHT, "rounds={rounds}");
            assert_eq!(
                mst.canonical_keys(),
                kruskal(&g).canonical_keys(),
                "rounds={rounds}"
            );
        }
    }

    #[test]
    fn zero_rounds_is_pure_prim() {
        let g = llp_graph::generators::road_network(
            llp_graph::generators::RoadParams::usa_like(15, 15, 3),
        );
        let pool = ThreadPool::new(2);
        let mst = hybrid_boruvka_prim(&g, &pool, 0).unwrap();
        assert_eq!(mst.stats.rounds, 0);
        assert!(mst.stats.heap_fixes > 0);
        assert_eq!(mst.canonical_keys(), kruskal(&g).canonical_keys());
    }

    #[test]
    fn many_rounds_is_pure_boruvka() {
        let g = llp_graph::generators::road_network(
            llp_graph::generators::RoadParams::usa_like(15, 15, 4),
        );
        let pool = ThreadPool::new(2);
        let mst = hybrid_boruvka_prim(&g, &pool, 64).unwrap();
        assert_eq!(mst.stats.heap_fixes, 0);
        assert_eq!(mst.canonical_keys(), kruskal(&g).canonical_keys());
    }

    #[test]
    fn matches_oracle_on_random_connected_graphs() {
        let pool = ThreadPool::new(3);
        for seed in 0..5 {
            let g = llp_graph::generators::road_network(
                llp_graph::generators::RoadParams::usa_like(14, 17, seed),
            );
            for rounds in [1, 2, 3] {
                assert_eq!(
                    hybrid_boruvka_prim(&g, &pool, rounds)
                        .unwrap()
                        .canonical_keys(),
                    kruskal(&g).canonical_keys(),
                    "seed {seed} rounds {rounds}"
                );
            }
        }
    }

    #[test]
    fn duplicate_weights_stay_canonical() {
        let g = llp_graph::samples::all_equal_weights(9);
        let pool = ThreadPool::new(2);
        for rounds in [0, 1, 2] {
            assert_eq!(
                hybrid_boruvka_prim(&g, &pool, rounds)
                    .unwrap()
                    .canonical_keys(),
                kruskal(&g).canonical_keys()
            );
        }
    }

    #[test]
    fn disconnected_rejected() {
        let g = CsrGraph::from_edges(
            4,
            &[
                llp_graph::Edge::new(0, 1, 1.0),
                llp_graph::Edge::new(2, 3, 1.0),
            ],
        );
        let pool = ThreadPool::new(2);
        for rounds in [0, 1, 8] {
            assert!(matches!(
                hybrid_boruvka_prim(&g, &pool, rounds),
                Err(MstError::Disconnected { .. })
            ));
        }
    }

    #[test]
    fn empty_graph_rejected() {
        let pool = ThreadPool::new(1);
        assert!(matches!(
            hybrid_boruvka_prim(&CsrGraph::empty(0), &pool, 1),
            Err(MstError::EmptyGraph)
        ));
    }

    #[test]
    fn singleton_graph_ok() {
        let pool = ThreadPool::new(1);
        let mst = hybrid_boruvka_prim(&CsrGraph::empty(1), &pool, 1).unwrap();
        assert!(mst.edges.is_empty());
    }
}

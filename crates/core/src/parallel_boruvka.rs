//! Parallel Boruvka baseline (GBBS-style, non-LLP).
//!
//! This is the comparison point of the paper's Figs 3–4 ("a fast parallel
//! implementation of Boruvka" from GBBS). Synchronous rounds over a shared
//! edge list:
//!
//! 1. **MWE selection** — every live edge does a `find` on both endpoints
//!    and, when they differ, performs an atomic *priority write* into both
//!    components' best-edge cells (CAS loops keyed by [`llp_graph::EdgeKey`]).
//! 2. **Hooking** — each component's winning edge is committed by a
//!    concurrent union–find `union` (more CAS traffic).
//! 3. **Filtering** — edges whose endpoints merged are packed away.
//!
//! Every step synchronises through atomic read-modify-writes on *shared*
//! cells (component best-edge slots, union–find parents). That per-round
//! synchronization burden is precisely what LLP-Boruvka removes with its
//! per-vertex MWE + relaxed pointer jumping; the `atomic_rmw`/`cas_retries`
//! counters make the contrast measurable on any machine.

use crate::result::MstResult;
use crate::stats::AlgoStats;
use crate::union_find::ConcurrentUnionFind;
use llp_graph::{CsrGraph, Edge};
use llp_runtime::atomics::AtomicIndexMin;
use llp_runtime::telemetry;
use llp_runtime::{parallel_for, Bag, Counter, ParallelForConfig, ThreadPool};
use std::sync::atomic::Ordering;

/// Parallel Boruvka; computes the canonical MSF.
pub fn boruvka_par(graph: &CsrGraph, pool: &ThreadPool) -> MstResult {
    let n = graph.num_vertices();
    let mut stats = AlgoStats::default();
    let all_edges: Vec<Edge> = graph.edges().collect();
    let keys: Vec<llp_graph::EdgeKey> = all_edges.iter().map(Edge::key).collect();

    let uf = ConcurrentUnionFind::new(n);
    let best: Vec<AtomicIndexMin> = (0..n).map(|_| AtomicIndexMin::new()).collect();
    let mut live: Vec<u32> = (0..all_edges.len() as u32).collect();
    let mut chosen: Vec<Edge> = Vec::with_capacity(n.saturating_sub(1));
    let cfg = ParallelForConfig::with_grain(512);
    let rmw = Counter::new();

    while !live.is_empty() {
        stats.rounds += 1;
        stats.parallel_regions += 3;
        telemetry::record_value("live-edges", live.len() as u64);

        // Phase 1: priority-write each live edge into both components.
        {
            let _t = telemetry::span("mwe-compute");
            let live_ref = &live;
            let edges_ref = &all_edges;
            let keys_ref = &keys;
            let best_ref = &best;
            let uf_ref = &uf;
            let rmw_ref = &rmw;
            parallel_for(pool, 0..live.len(), cfg, |i| {
                let ei = live_ref[i];
                let e = edges_ref[ei as usize];
                let ru = uf_ref.find(e.u);
                let rv = uf_ref.find(e.v);
                if ru == rv {
                    return;
                }
                let key_of = |idx: u64| keys_ref[idx as usize];
                best_ref[ru as usize].propose_min_by(ei as u64, key_of);
                best_ref[rv as usize].propose_min_by(ei as u64, key_of);
                rmw_ref.add(2);
            });
        }

        // Phase 2: hook every component along its winning edge.
        let hook_span = telemetry::span("contract");
        let winners: Bag<u32> = Bag::new(pool.threads());
        {
            let live_ref = &live;
            let edges_ref = &all_edges;
            let best_ref = &best;
            let uf_ref = &uf;
            let winners_ref = &winners;
            let rmw_ref = &rmw;
            parallel_for(pool, 0..live.len(), cfg, |i| {
                // Each live edge checks whether it won either endpoint's
                // component slot; the winning edge performs the union. The
                // same edge can win both slots — `union` returns false the
                // second time, so it is committed exactly once.
                let ei = live_ref[i] as u64;
                let e = edges_ref[ei as usize];
                let ru = uf_ref.find(e.u);
                let rv = uf_ref.find(e.v);
                if ru == rv {
                    return;
                }
                let won = best_ref[ru as usize].load(Ordering::Relaxed) == ei
                    || best_ref[rv as usize].load(Ordering::Relaxed) == ei;
                if won {
                    rmw_ref.incr();
                    if uf_ref.union(e.u, e.v) {
                        winners_ref.push(current_segment(pool, i), ei as u32);
                    }
                }
            });
        }
        let mut round_chosen = winners.drain_to_vec();
        if round_chosen.is_empty() {
            break;
        }
        round_chosen.sort_unstable();
        chosen.extend(round_chosen.iter().map(|&ei| all_edges[ei as usize]));

        // Reset winning slots for the next round (only roots that were
        // touched matter, but a full reset keeps the loop simple and is a
        // linear scan without synchronization).
        {
            let best_ref = &best;
            parallel_for(pool, 0..n, cfg, |c| best_ref[c].reset());
        }

        // Phase 3: pack away intra-component edges.
        let survivors = llp_runtime::scan::pack_indices(pool, live.len(), cfg, |i| {
            let e = all_edges[live[i] as usize];
            uf.find(e.u) != uf.find(e.v)
        });
        live = survivors.into_iter().map(|i| live[i]).collect();
        stats.edges_scanned += live.len() as u64;
        drop(hook_span);
    }

    stats.cas_retries = uf.cas_retries();
    stats.atomic_rmw = rmw.get();
    MstResult::from_edges(n, chosen, stats)
}

/// Maps a loop index to a bag segment without thread-identity plumbing:
/// any stable mapping works because bags only need per-segment mutual
/// exclusion, which the internal mutex provides.
fn current_segment(pool: &ThreadPool, i: usize) -> usize {
    i % pool.threads()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kruskal::kruskal;
    use llp_graph::samples::{fig1, small_forest, FIG1_MST_WEIGHT, SMALL_FOREST_MSF_WEIGHT};

    fn pools() -> Vec<ThreadPool> {
        vec![ThreadPool::new(1), ThreadPool::new(4)]
    }

    #[test]
    fn fig1_mst() {
        for pool in pools() {
            let mst = boruvka_par(&fig1(), &pool);
            assert_eq!(mst.total_weight, FIG1_MST_WEIGHT);
            assert_eq!(mst.edges.len(), 4);
        }
    }

    #[test]
    fn forest_support() {
        for pool in pools() {
            let msf = boruvka_par(&small_forest(), &pool);
            assert_eq!(msf.total_weight, SMALL_FOREST_MSF_WEIGHT);
            assert_eq!(msf.num_trees, 3);
        }
    }

    #[test]
    fn matches_kruskal_on_random_graphs() {
        for pool in pools() {
            for seed in 0..5 {
                let g = llp_graph::generators::erdos_renyi(300, 1200, seed);
                assert_eq!(
                    boruvka_par(&g, &pool).canonical_keys(),
                    kruskal(&g).canonical_keys(),
                    "seed {seed} threads {}",
                    pool.threads()
                );
            }
        }
    }

    #[test]
    fn road_graph_connected_tree() {
        let g = llp_graph::generators::road_network(
            llp_graph::generators::RoadParams::usa_like(20, 20, 9),
        );
        let pool = ThreadPool::new(4);
        let mst = boruvka_par(&g, &pool);
        assert!(mst.is_spanning_tree(g.num_vertices()));
        assert_eq!(
            mst.canonical_keys(),
            kruskal(&g).canonical_keys()
        );
    }

    #[test]
    fn empty_graph() {
        let pool = ThreadPool::new(2);
        let r = boruvka_par(&CsrGraph::empty(5), &pool);
        assert!(r.edges.is_empty());
        assert_eq!(r.num_trees, 5);
    }

    #[test]
    fn reports_synchronization_work() {
        let g = llp_graph::generators::erdos_renyi(200, 2000, 1);
        let pool = ThreadPool::new(2);
        let r = boruvka_par(&g, &pool);
        assert!(r.stats.atomic_rmw > 0, "baseline must count RMW traffic");
    }
}

//! Parallel Boruvka baseline (GBBS-style, non-LLP).
//!
//! This is the comparison point of the paper's Figs 3–4 ("a fast parallel
//! implementation of Boruvka" from GBBS). Synchronous rounds over a shared
//! edge list:
//!
//! 1. **MWE selection** — every live edge does a `find` on both endpoints
//!    and, when they differ, performs an atomic *priority write* into both
//!    components' best-edge cells (one packed-word CAS loop per write,
//!    keyed by the weight discriminant with an exact
//!    [`llp_graph::EdgeKey`] tie-break).
//! 2. **Hooking** — each component's winning edge is committed by a
//!    concurrent union–find `union` (more CAS traffic).
//! 3. **Filtering** — edges whose endpoints merged are packed away.
//!
//! Every step synchronises through atomic read-modify-writes on *shared*
//! cells (component best-edge slots, union–find parents). That per-round
//! synchronization burden is precisely what LLP-Boruvka removes with its
//! per-vertex MWE + relaxed pointer jumping; the `atomic_rmw`/`cas_retries`
//! counters make the contrast measurable on any machine.
//!
//! Round state follows the flat-memory discipline of
//! [`crate::contraction`]: the best-edge cells are one whole-run leased
//! `u64` buffer of packed MWE words, winners and survivors compact through
//! arena-backed count–scan–scatter passes, and the live list double-buffers
//! — steady-state rounds perform zero heap allocations. After each round
//! only cells owned by endpoints of *surviving* edges are reset (any root
//! that can receive a proposal next round is `find` of such an endpoint),
//! replacing the old all-`n` reset sweep.

use crate::result::MstResult;
use crate::stats::AlgoStats;
use crate::union_find::ConcurrentUnionFind;
use llp_graph::{CsrGraph, Edge};
use llp_runtime::atomics::{as_atomic_u64, mwe_idx, mwe_propose, weight_hi32, MWE_EMPTY};
use llp_runtime::partition::compact_map_into;
use llp_runtime::scan::pack_indices_in;
use llp_runtime::telemetry;
use llp_runtime::{parallel_for, Counter, ParallelForConfig, ScratchArena, ThreadPool};
use std::sync::atomic::Ordering;

/// Parallel Boruvka; computes the canonical MSF.
pub fn boruvka_par(graph: &CsrGraph, pool: &ThreadPool) -> MstResult {
    boruvka_par_observed(graph, pool, |_| ())
}

/// [`boruvka_par`] with a round observer: `on_round(r)` runs at the top of
/// round `r` (0-based) and once more after the final round, with no
/// algorithm work in between — the hook harnesses (e.g. the counting
/// allocator test) use to snapshot state at exact round boundaries.
pub fn boruvka_par_observed<F>(graph: &CsrGraph, pool: &ThreadPool, mut on_round: F) -> MstResult
where
    F: FnMut(usize),
{
    let n = graph.num_vertices();
    let mut stats = AlgoStats::default();
    let all_edges: Vec<Edge> = graph.edges().collect();
    let keys: Vec<llp_graph::EdgeKey> = all_edges.iter().map(Edge::key).collect();
    let whis: Vec<u32> = all_edges.iter().map(|e| weight_hi32(e.w)).collect();

    let uf = ConcurrentUnionFind::new(n);
    let arena = ScratchArena::new();
    let cfg = ParallelForConfig::with_grain(512);
    // One packed MWE word per component, leased for the whole run.
    let mut best = arena.lease_filled::<u64>(pool, cfg, n, MWE_EMPTY);
    let mut live: Vec<u32> = (0..all_edges.len() as u32).collect();
    let mut live_next: Vec<u32> = Vec::new();
    // Winner counts shrink monotonically (round r commits c_r - c_{r+1}
    // unions and c_{r+1} <= c_r / 2), so this capacity never grows.
    let mut winners: Vec<u32> = Vec::with_capacity(n / 2 + 1);
    let mut chosen: Vec<Edge> = Vec::with_capacity(n.saturating_sub(1));
    let rmw = Counter::new();
    let mut round = 0usize;

    while !live.is_empty() {
        on_round(round);
        round += 1;
        stats.rounds += 1;
        stats.parallel_regions += 3;
        telemetry::record_value("live-edges", live.len() as u64);

        // Phase 1: priority-write each live edge into both components.
        {
            let _t = telemetry::span("mwe-compute");
            let best_cells = as_atomic_u64(&mut best);
            let live_ref: &[u32] = &live;
            let edges_ref: &[Edge] = &all_edges;
            let keys_ref = &keys;
            let whis_ref: &[u32] = &whis;
            let uf_ref = &uf;
            let rmw_ref = &rmw;
            parallel_for(pool, 0..live.len(), cfg, |i| {
                let ei = live_ref[i];
                let e = edges_ref[ei as usize];
                let ru = uf_ref.find(e.u);
                let rv = uf_ref.find(e.v);
                if ru == rv {
                    return;
                }
                let exact = |idx: u32| keys_ref[idx as usize];
                let whi = whis_ref[ei as usize];
                mwe_propose(&best_cells[ru as usize], whi, ei, exact);
                mwe_propose(&best_cells[rv as usize], whi, ei, exact);
                rmw_ref.add(2);
            });
        }

        // Phase 2: hook every component along its winning edge. The
        // exactly-once pack (the predicate commits `union` as a side
        // effect) collects winners in ascending live order — deterministic
        // without the old bag-drain-and-sort.
        let hook_span = telemetry::span("contract");
        {
            let best_ro: &[u64] = &best;
            let live_ref: &[u32] = &live;
            let edges_ref: &[Edge] = &all_edges;
            let uf_ref = &uf;
            let rmw_ref = &rmw;
            pack_indices_in(pool, live.len(), cfg, &arena, &mut winners, |i| {
                // Each live edge checks whether it won either endpoint's
                // component slot; the winning edge performs the union. The
                // same edge can win both slots — `union` returns false the
                // second time, so it is committed exactly once.
                let ei = live_ref[i];
                let e = edges_ref[ei as usize];
                let ru = uf_ref.find(e.u);
                let rv = uf_ref.find(e.v);
                if ru == rv {
                    return false;
                }
                let wu = best_ro[ru as usize];
                let wv = best_ro[rv as usize];
                let won = (wu != MWE_EMPTY && mwe_idx(wu) == ei)
                    || (wv != MWE_EMPTY && mwe_idx(wv) == ei);
                if !won {
                    return false;
                }
                rmw_ref.incr();
                uf_ref.union(e.u, e.v)
            });
        }
        if winners.is_empty() {
            break;
        }
        chosen.extend(winners.iter().map(|&i| all_edges[live[i as usize] as usize]));

        // Phase 3: pack away intra-component edges.
        {
            let live_ref: &[u32] = &live;
            let edges_ref: &[Edge] = &all_edges;
            let uf_ref = &uf;
            compact_map_into(pool, &arena, live.len(), &mut live_next, |i| {
                let ei = live_ref[i];
                let e = edges_ref[ei as usize];
                (uf_ref.find(e.u) != uf_ref.find(e.v)).then_some(ei)
            });
        }
        std::mem::swap(&mut live, &mut live_next);
        stats.edges_scanned += live.len() as u64;

        // Reset best cells for the next round — live components only. A
        // cell is read next round only as `find` of a surviving live
        // edge's endpoint (phases 1–2 guard on `ru != rv`), and no union
        // runs between here and then, so sweeping the new live set covers
        // every readable cell. Stores are idempotent; duplicate endpoints
        // are harmless.
        {
            let best_cells = as_atomic_u64(&mut best);
            let live_ref: &[u32] = &live;
            let edges_ref: &[Edge] = &all_edges;
            let uf_ref = &uf;
            parallel_for(pool, 0..live.len(), cfg, |i| {
                let e = edges_ref[live_ref[i] as usize];
                best_cells[uf_ref.find(e.u) as usize].store(MWE_EMPTY, Ordering::Relaxed);
                best_cells[uf_ref.find(e.v) as usize].store(MWE_EMPTY, Ordering::Relaxed);
            });
        }
        drop(hook_span);
    }
    on_round(round);

    stats.cas_retries = uf.cas_retries();
    stats.atomic_rmw = rmw.get();
    arena.report_telemetry();
    MstResult::from_edges(n, chosen, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kruskal::kruskal;
    use llp_graph::samples::{fig1, small_forest, FIG1_MST_WEIGHT, SMALL_FOREST_MSF_WEIGHT};

    fn pools() -> Vec<ThreadPool> {
        vec![ThreadPool::new(1), ThreadPool::new(4)]
    }

    #[test]
    fn fig1_mst() {
        for pool in pools() {
            let mst = boruvka_par(&fig1(), &pool);
            assert_eq!(mst.total_weight, FIG1_MST_WEIGHT);
            assert_eq!(mst.edges.len(), 4);
        }
    }

    #[test]
    fn forest_support() {
        for pool in pools() {
            let msf = boruvka_par(&small_forest(), &pool);
            assert_eq!(msf.total_weight, SMALL_FOREST_MSF_WEIGHT);
            assert_eq!(msf.num_trees, 3);
        }
    }

    #[test]
    fn matches_kruskal_on_random_graphs() {
        for pool in pools() {
            for seed in 0..5 {
                let g = llp_graph::generators::erdos_renyi(300, 1200, seed);
                assert_eq!(
                    boruvka_par(&g, &pool).canonical_keys(),
                    kruskal(&g).canonical_keys(),
                    "seed {seed} threads {}",
                    pool.threads()
                );
            }
        }
    }

    #[test]
    fn road_graph_connected_tree() {
        let g = llp_graph::generators::road_network(
            llp_graph::generators::RoadParams::usa_like(20, 20, 9),
        );
        let pool = ThreadPool::new(4);
        let mst = boruvka_par(&g, &pool);
        assert!(mst.is_spanning_tree(g.num_vertices()));
        assert_eq!(
            mst.canonical_keys(),
            kruskal(&g).canonical_keys()
        );
    }

    #[test]
    fn empty_graph() {
        let pool = ThreadPool::new(2);
        let r = boruvka_par(&CsrGraph::empty(5), &pool);
        assert!(r.edges.is_empty());
        assert_eq!(r.num_trees, 5);
    }

    #[test]
    fn reports_synchronization_work() {
        let g = llp_graph::generators::erdos_renyi(200, 2000, 1);
        let pool = ThreadPool::new(2);
        let r = boruvka_par(&g, &pool);
        assert!(r.stats.atomic_rmw > 0, "baseline must count RMW traffic");
    }

    #[test]
    fn observer_sees_every_round_boundary() {
        let g = llp_graph::generators::erdos_renyi(300, 1500, 3);
        let pool = ThreadPool::new(2);
        let mut boundaries = Vec::new();
        let r = boruvka_par_observed(&g, &pool, |round| boundaries.push(round));
        // One call per round top plus the terminal call.
        assert_eq!(boundaries.len() as u64, r.stats.rounds + 1);
        assert!(boundaries.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    fn duplicate_weights_stay_canonical() {
        // All-equal weights force every MWE pick through the packed word's
        // exact-key tie-break path.
        let g = llp_graph::samples::all_equal_weights(16);
        for pool in pools() {
            assert_eq!(
                boruvka_par(&g, &pool).canonical_keys(),
                kruskal(&g).canonical_keys()
            );
        }
    }
}

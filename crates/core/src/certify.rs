//! Near-linear, oracle-free MSF certification.
//!
//! [`crate::verify::verify_msf`] certifies a result by re-running Kruskal —
//! an oracle as expensive as the computation under test, useless at the
//! paper's 24M-vertex scale. This module certifies *without an oracle* in
//! near-linear time using the classic MST verification reduction (Tarjan;
//! Komlós; King):
//!
//! Under the workspace's strict [`llp_graph::EdgeKey`] total order the
//! MSF is unique, and a subforest `T ⊆ G` **is** that MSF iff
//!
//! 1. `T`'s edges exist in `G` (with matching weights),
//! 2. `T` is acyclic,
//! 3. `T` spans: no graph edge connects two different trees of `T`,
//! 4. **cycle property**: every non-tree edge is at least as heavy as
//!    every tree edge on the tree path between its endpoints.
//!
//! Check 4 needs path-maximum queries. Instead of walking tree paths
//! (O(m · depth) — hopeless on road networks whose MSTs are thousands of
//! hops deep), we use the **Kruskal merge order** of `T`'s vertices: replay
//! the tree edges in increasing key order, keeping each component's
//! vertices as a linked chain, and on each merge concatenate the two chains
//! and stamp the merge key on the *separator* between them. King's lemma
//! says path-max(u, v) is the key of the merge that first united `u` and
//! `v`; because keys only grow, that is exactly the **largest separator
//! between `u` and `v` in the final chain order** (later merges only ever
//! stamp separators outside the `u..v` interval). So the whole Borůvka-tree
//! LCA machinery collapses to one array of `n` separator keys and a
//! range-maximum structure over it: block prefix/suffix maxima plus a
//! sparse table over per-block maxima answer any cross-block range with
//! four independent loads, and per-position monotone-stack bitmasks cover
//! ranges inside one block. Component boundaries keep an infinite
//! separator, so cross-tree queries answer themselves — no component
//! labels, no Euler tour, no depth arrays; every query touches `n`-sized
//! arrays that stay cache-resident at road/RMAT scale. Total cost:
//! O(n log n) to build — sorting only the `n−1` tree edges (skipped
//! entirely when they already arrive key-sorted, as Kruskal-family outputs
//! do), never the `m` graph edges — and O(1) per graph edge to query.
//!
//! The per-query constant is kept deliberately lean:
//!
//! * keys live in the structure as order-isomorphic `u128`s, so every
//!   range-max comparison is branch-free integer ALU;
//! * no tree-edge hash lookups — a tree edge's key *equals* its own path
//!   maximum, so check 1 degenerates to counting exact key matches (a
//!   mismatch triggers a slow per-edge scan to name the foreign edge);
//! * check 2 falls out of the merge replay (a merge of an already-joined
//!   component is the cycle witness);
//! * check 3 is the infinite-separator sentinel — spanning violations are
//!   discovered by the same `key < path-max` compare that catches cycle
//!   violations, keeping one rare branch in the whole sweep (the failing
//!   vertex is re-scanned slowly to classify and name the error);
//! * when `T` is a single spanning tree, any edge heavier than `T`'s
//!   heaviest passes the cycle property with one register compare, before
//!   any loads.
//!
//! [`certify_msf_par`] parallelizes the query sweep and the tree-edge sort
//! over a [`ThreadPool`]; certification is cheap enough to ride along
//! every benchmarked construction (see the `certified` field of the
//! `llp-mst-run-report/v1` schema).

use crate::result::MstResult;
use crate::union_find::UnionFind;
use crate::verify::VerifyError;
use llp_graph::weight::Weight;
use llp_graph::{CsrGraph, Edge, EdgeKey, VertexId};
use llp_runtime::sort::par_sort_by_key;
use llp_runtime::sync::Mutex;
use llp_runtime::{parallel_for_chunks, telemetry, ParallelForConfig, ThreadPool};
use std::sync::atomic::{AtomicUsize, Ordering};

const NO_NODE: u32 = u32::MAX;

/// Separator-array block width for the range-max structure; equal to the
/// bitmask width, so any in-block range is answered with two bit
/// operations.
const BLOCK: usize = 32;

/// No real key reaches this: its endpoint fields would have to be
/// `u32::MAX` twice, and endpoints are distinct vertex ids.
const INF_KEY: u128 = u128::MAX;

/// Packs `(weight, lo, hi)` into a `u128` whose integer order equals the
/// canonical [`EdgeKey`] order: weight-major (via the usual monotone
/// sign-flip encoding of IEEE 754 doubles), endpoints as tie-break.
#[inline]
fn key_bits(w: Weight, u: VertexId, v: VertexId) -> u128 {
    let (lo, hi) = if u < v { (u, v) } else { (v, u) };
    let b = w.to_bits();
    let ord = if b >> 63 == 0 { b | (1 << 63) } else { !b };
    ((ord as u128) << 64) | ((lo as u128) << 32) | hi as u128
}

/// The Kruskal merge order of a forest: `pos` places every vertex on a
/// line, `sep` holds the merge keys between adjacent positions, and
/// path-max(u, v) is the range maximum of `sep` strictly between the two
/// positions ([`INF_KEY`] ⇔ different trees).
struct MergeOrder {
    /// Position of each vertex in the concatenated merge order.
    pos: Vec<u32>,
    /// `sep[p]`: key of the merge that joined position `p`'s prefix to its
    /// suffix within one component, or [`INF_KEY`] where position `p` ends
    /// a component.
    sep: Vec<u128>,
    /// Monotone-stack bitmask per position: bit `j` of `mask[i]` is set
    /// iff `sep[i - j]` is larger than every separator in `(i-j, i]`. The
    /// argmax of any in-block range `[l, r]` is then `r - msb(mask[r] &
    /// window)`. Used only when a query fits inside one block.
    mask: Vec<u32>,
    /// Running max of `sep` from the enclosing block's start through each
    /// position (inclusive).
    prefix: Vec<u128>,
    /// Running max of `sep` from each position through the enclosing
    /// block's end (inclusive).
    suffix: Vec<u128>,
    /// `sparse[k][b]`: max separator across blocks `b .. b + 2^k` (level 0
    /// is the per-block max). Values, not positions: a cross-block query
    /// is then four independent loads with no argmax indirection.
    sparse: Vec<Vec<u128>>,
    /// When the forest is one spanning tree, the weight of its heaviest
    /// edge: a graph edge strictly heavier passes the cycle property with
    /// a single register compare (no cross-tree queries can exist, so the
    /// spanning check cannot be short-circuited away). Infinite — the
    /// filter never fires — for true forests.
    pass_above: f64,
}

impl MergeOrder {
    /// Replays `result`'s edges in key order over `n` vertices, detecting
    /// cycles in the process.
    fn build(
        n: usize,
        result: &MstResult,
        pool: Option<&ThreadPool>,
    ) -> Result<MergeOrder, VerifyError> {
        // Tree edges in increasing key order. Kruskal-family results are
        // already sorted — detect that in O(t) and skip the sort.
        let keyed: Vec<(EdgeKey, u32)> = {
            let _s = telemetry::span("certify-build-sort");
            let mut keyed: Vec<(EdgeKey, u32)> = result
                .edges
                .iter()
                .enumerate()
                .map(|(i, e)| (e.key(), i as u32))
                .collect();
            if !keyed.windows(2).all(|w| w[0].0 <= w[1].0) {
                match pool {
                    Some(pool) => par_sort_by_key(pool, &mut keyed, |p| p.0),
                    None => keyed.sort_unstable(),
                }
            }
            keyed
        };

        // Merge replay. Each component is a chain (`head`/`last` are valid
        // at union-find roots); a merge concatenates the chains in O(1)
        // and stamps the merge key on the single separator where they now
        // touch. A separator is stamped at most once: once a vertex has a
        // successor it is interior to its chain forever. A merge of an
        // already-joined component is the cycle witness.
        let _s = telemetry::span("certify-build-merge");
        let t = keyed.len();
        let pass_above = if t + 1 == n && t > 0 {
            result.edges[keyed[t - 1].1 as usize].w
        } else {
            f64::INFINITY
        };
        let mut uf = UnionFind::new(n);
        let mut next: Vec<u32> = vec![NO_NODE; n];
        let mut head: Vec<u32> = (0..n as u32).collect();
        let mut last: Vec<u32> = (0..n as u32).collect();
        let mut sep_after: Vec<u128> = vec![INF_KEY; n];
        for &(_, ei) in &keyed {
            let e = &result.edges[ei as usize];
            let ra = uf.find(e.u) as usize;
            let rb = uf.find(e.v) as usize;
            if ra == rb {
                return Err(VerifyError::Cycle(*e));
            }
            let joint = last[ra] as usize;
            sep_after[joint] = key_bits(e.w, e.u, e.v);
            next[joint] = head[rb];
            let (h, l) = (head[ra], last[rb]);
            uf.union(ra as VertexId, rb as VertexId);
            let r = uf.find(ra as VertexId) as usize;
            head[r] = h;
            last[r] = l;
        }
        drop(keyed);
        drop(_s);

        // Walk each root's chain once to lay out positions and gather the
        // separators into merge order. Chain tails keep their infinite
        // separator, which is exactly the component boundary sentinel.
        let _s = telemetry::span("certify-build-scatter");
        let mut pos = vec![0u32; n];
        let mut sep: Vec<u128> = Vec::with_capacity(n);
        for v in 0..n as VertexId {
            if uf.find(v) != v {
                continue;
            }
            let mut x = head[v as usize];
            while x != NO_NODE {
                pos[x as usize] = sep.len() as u32;
                sep.push(sep_after[x as usize]);
                x = next[x as usize];
            }
        }
        debug_assert_eq!(sep.len(), n);
        drop(_s);

        // Two-level range-max over `sep`: per-position monotone-stack
        // masks for O(1) in-block queries; block prefix/suffix maxima and
        // a sparse table over per-block maxima for everything wider.
        let _s = telemetry::span("certify-build-rmq");
        let nblocks = n.div_ceil(BLOCK).max(1);
        let mut mask = vec![0u32; n];
        let mut prefix: Vec<u128> = Vec::with_capacity(n);
        let mut suffix: Vec<u128> = vec![INF_KEY; n];
        let mut block_max = vec![INF_KEY; nblocks];
        for (b, bmax) in block_max.iter_mut().enumerate() {
            let lo = b * BLOCK;
            let hi = ((b + 1) * BLOCK).min(n);
            if lo >= hi {
                continue; // only the n = 0 degenerate block
            }
            let mut m = 0u32;
            let mut run = sep[lo];
            for i in lo..hi {
                m <<= 1;
                while m != 0 && sep[i - m.trailing_zeros() as usize] <= sep[i] {
                    m &= m - 1;
                }
                m |= 1;
                mask[i] = m;
                run = run.max(sep[i]);
                prefix.push(run);
            }
            *bmax = run;
            let mut run = sep[hi - 1];
            for i in (lo..hi).rev() {
                run = run.max(sep[i]);
                suffix[i] = run;
            }
        }
        let levels = usize::BITS as usize - nblocks.leading_zeros() as usize;
        let mut sparse: Vec<Vec<u128>> = Vec::with_capacity(levels);
        sparse.push(block_max);
        let mut k = 1;
        while (1 << k) <= nblocks {
            let prev = &sparse[k - 1];
            let width = 1 << (k - 1);
            let level: Vec<u128> = (0..=nblocks - (1 << k))
                .map(|b| prev[b].max(prev[b + width]))
                .collect();
            sparse.push(level);
            k += 1;
        }

        Ok(MergeOrder {
            pos,
            sep,
            mask,
            prefix,
            suffix,
            sparse,
            pass_above,
        })
    }

    /// Maximum separator in `[l, r]`, both inside one block: the argmax is
    /// the oldest surviving monotone-stack entry within the window.
    #[inline]
    fn inblock(&self, l: usize, r: usize) -> u128 {
        let w = r - l + 1; // 1..=BLOCK
        let mm = self.mask[r] & (u32::MAX >> (32 - w));
        self.sep[r - (31 - mm.leading_zeros() as usize)]
    }

    /// Maximum separator in `lo..=hi`.
    #[inline]
    fn rmq(&self, lo: usize, hi: usize) -> u128 {
        let bl = lo / BLOCK;
        let bh = hi / BLOCK;
        if bl == bh {
            return self.inblock(lo, hi);
        }
        // `lo`'s block tail, `hi`'s block head, and (via the sparse table)
        // the whole blocks strictly between: four independent loads,
        // combined branch-free.
        let mut best = self.suffix[lo].max(self.prefix[hi]);
        if bl + 1 < bh {
            let (a, b) = (bl + 1, bh - 1);
            let k = usize::BITS as usize - 1 - (b - a + 1).leading_zeros() as usize;
            best = best
                .max(self.sparse[k][a])
                .max(self.sparse[k][b + 1 - (1 << k)]);
        }
        best
    }

    /// Maximum tree-edge key on the forest path between the vertices at
    /// positions `pu` and `pv`; [`INF_KEY`] when they live in different
    /// trees.
    #[inline]
    fn path_max_at(&self, pu: u32, pv: u32) -> u128 {
        let (lo, hi) = if pu < pv { (pu, pv) } else { (pv, pu) };
        self.rmq(lo as usize, hi as usize - 1)
    }

    /// [`Self::path_max_at`] addressed by vertex id.
    #[cfg(test)]
    fn path_max(&self, u: VertexId, v: VertexId) -> Option<u128> {
        let max = self.path_max_at(self.pos[u as usize], self.pos[v as usize]);
        if max == INF_KEY {
            None
        } else {
            Some(max)
        }
    }
}

/// Sequential near-linear certification that `result` is the canonical MSF
/// of `graph` — no Kruskal oracle, no O(|T|·m) cut scans.
///
/// Returns the same [`VerifyError`] taxonomy as the exhaustive verifiers:
/// [`VerifyError::ForeignEdge`], [`VerifyError::Cycle`],
/// [`VerifyError::NotSpanning`] or [`VerifyError::CutViolation`].
pub fn certify_msf(graph: &CsrGraph, result: &MstResult) -> Result<(), VerifyError> {
    certify_impl(graph, result, None)
}

/// [`certify_msf`] with the tree-edge sort and the per-edge query sweep
/// parallelized over `pool`.
pub fn certify_msf_par(
    graph: &CsrGraph,
    result: &MstResult,
    pool: &ThreadPool,
) -> Result<(), VerifyError> {
    certify_impl(graph, result, Some(pool))
}

/// Reusable per-worker buffers for [`check_vertex`]'s gather phase.
#[derive(Default)]
struct Scratch {
    pv: Vec<u32>,
    key: Vec<u128>,
}

/// Hot path of the sweep over one vertex's adjacency: how many graph edges
/// were exact key matches of tree edges, or `Err(())` on the first
/// violation — [`classify_vertex`] then re-scans the vertex to name it.
///
/// Runs in two branch-free phases so the out-of-order window is never cut
/// short by data-dependent branches: a gather pass compacts the surviving
/// arcs (forward edges not retired by the weight filter) into `scratch`
/// with a conditional increment, then a query pass folds every range
/// maximum into a violation flag and a match count with no branching at
/// all. Violations surface after the vertex, which is fine: they are
/// terminal, and [`classify_vertex`] re-derives the precise error.
#[inline]
fn check_vertex(
    order: &MergeOrder,
    graph: &CsrGraph,
    u: VertexId,
    scratch: &mut Scratch,
) -> Result<usize, ()> {
    let (targets, weights) = graph.neighbor_slices(u);
    let deg = targets.len();
    if scratch.pv.len() < deg {
        scratch.pv.resize(deg, 0);
        scratch.key.resize(deg, 0);
    }
    let pu = order.pos[u as usize];
    let pass_above = order.pass_above;
    let mut k = 0usize;
    for i in 0..deg {
        let (v, w) = (targets[i], weights[i]);
        scratch.pv[k] = order.pos[v as usize];
        scratch.key[k] = key_bits(w, u, v);
        // Keep forward arcs not already retired by the single-tree weight
        // filter (an edge heavier than every tree edge passes the cycle
        // property outright). Non-short-circuit `&` keeps this a compare
        // and an add, never a branch.
        k += usize::from((v > u) & (w <= pass_above));
    }
    let mut bad = false;
    let mut matched = 0usize;
    for j in 0..k {
        // `key < max` is both failure modes at once: a genuine cycle
        // violation, or `max = INF_KEY` marking a cross-tree edge. A graph
        // edge whose key *equals* the path max is the tree edge joining
        // those components (keys are unique).
        let max_on_path = order.path_max_at(pu, scratch.pv[j]);
        bad |= scratch.key[j] < max_on_path;
        matched += usize::from(scratch.key[j] == max_on_path);
    }
    if bad {
        return Err(());
    }
    Ok(matched)
}

/// Slow mirror of [`check_vertex`], taken only for a vertex whose sweep
/// failed: classifies and names the offending edge.
#[cold]
fn classify_vertex(order: &MergeOrder, graph: &CsrGraph, u: VertexId) -> VerifyError {
    let pu = order.pos[u as usize];
    for (v, w) in graph.neighbors(u) {
        if v <= u || w > order.pass_above {
            continue;
        }
        let max_on_path = order.path_max_at(pu, order.pos[v as usize]);
        if key_bits(w, u, v) < max_on_path {
            return if max_on_path == INF_KEY {
                VerifyError::NotSpanning(Edge::new(u, v, w))
            } else {
                VerifyError::CutViolation(Edge::new(u, v, w))
            };
        }
    }
    unreachable!("classify_vertex called for a vertex with no violation")
}

/// Slow path taken only when the sweep's key-match count disagrees with
/// the tree size: names a tree edge absent from the graph, if any.
fn find_foreign_edge(graph: &CsrGraph, result: &MstResult) -> Option<Edge> {
    result
        .edges
        .iter()
        .find(|e| !graph.neighbors(e.u).any(|(v, w)| v == e.v && w == e.w))
        .copied()
}

fn certify_impl(
    graph: &CsrGraph,
    result: &MstResult,
    pool: Option<&ThreadPool>,
) -> Result<(), VerifyError> {
    let n = graph.num_vertices();
    let t = result.edges.len();
    let order = {
        let _s = telemetry::span("certify-build");
        MergeOrder::build(n, result, pool)?
    };

    // Sweep every graph edge once: non-tree edges must not beat the path
    // maximum between their endpoints (cycle property) and must not cross
    // trees (spanning); exact key matches count tree edges found in the
    // graph. Visiting `u`'s adjacency with the `u < v` filter sees each
    // undirected edge exactly once.
    let _s = telemetry::span("certify-query");
    let matched = match pool {
        None => {
            let mut scratch = Scratch::default();
            let mut matched = 0usize;
            for u in 0..n as VertexId {
                match check_vertex(&order, graph, u, &mut scratch) {
                    Ok(m) => matched += m,
                    Err(()) => return Err(classify_vertex(&order, graph, u)),
                }
            }
            matched
        }
        Some(pool) => {
            // Deterministic error report under parallel sweep: keep the
            // failure whose offending edge has the smallest key.
            let worst: Mutex<Option<(EdgeKey, VerifyError)>> = Mutex::new(None);
            let matched = AtomicUsize::new(0);
            parallel_for_chunks(pool, 0..n, ParallelForConfig::default(), |chunk| {
                let mut scratch = Scratch::default();
                let mut local = 0usize;
                for u in chunk {
                    match check_vertex(&order, graph, u as VertexId, &mut scratch) {
                        Ok(m) => local += m,
                        Err(()) => {
                            let err = classify_vertex(&order, graph, u as VertexId);
                            let key = match &err {
                                VerifyError::CutViolation(e) | VerifyError::NotSpanning(e) => {
                                    e.key()
                                }
                                _ => EdgeKey::infinite(),
                            };
                            let mut w = worst.lock();
                            if w.as_ref().is_none_or(|(k, _)| key < *k) {
                                *w = Some((key, err));
                            }
                            return; // rest of this chunk is moot
                        }
                    }
                }
                matched.fetch_add(local, Ordering::Relaxed);
            });
            if let Some((_, err)) = worst.into_inner() {
                return Err(err);
            }
            matched.into_inner()
        }
    };

    // Every tree edge's key match was counted exactly once, so a shortfall
    // means a tree edge the graph doesn't contain. (An overcount can only
    // come from duplicate parallel edges in the graph; the slow scan then
    // confirms all tree edges are genuinely present.)
    if matched != t {
        if let Some(e) = find_foreign_edge(graph, result) {
            return Err(VerifyError::ForeignEdge(e));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kruskal::kruskal;
    use crate::stats::AlgoStats;
    use crate::verify::verify_msf;
    use llp_graph::samples::{fig1, small_forest};

    #[test]
    fn accepts_msf_on_samples_and_generators() {
        for (name, g) in [
            ("fig1", fig1()),
            ("small_forest", small_forest()),
            ("er", llp_graph::generators::erdos_renyi(200, 600, 7)),
            (
                "road",
                llp_graph::generators::road_network(
                    llp_graph::generators::RoadParams::usa_like(12, 12, 3),
                ),
            ),
        ] {
            let msf = kruskal(&g);
            certify_msf(&g, &msf).unwrap_or_else(|e| panic!("{name}: {e}"));
            let pool = ThreadPool::new(3);
            certify_msf_par(&g, &msf, &pool).unwrap_or_else(|e| panic!("{name} (par): {e}"));
        }
    }

    #[test]
    fn accepts_unsorted_tree_edges() {
        // Parallel algorithms emit tree edges in arbitrary order; the
        // certifier must sort rather than assume Kruskal order.
        let g = llp_graph::generators::erdos_renyi(150, 500, 3);
        let mut msf = kruskal(&g);
        msf.edges.reverse();
        certify_msf(&g, &msf).unwrap();
        let pool = ThreadPool::new(2);
        certify_msf_par(&g, &msf, &pool).unwrap();
    }

    #[test]
    fn key_bits_order_matches_edge_key_order() {
        // The u128 packing must be order-isomorphic to EdgeKey, including
        // negative, zero and subnormal weights.
        let samples = [
            (-3.5, 0u32, 1u32),
            (-0.0, 2, 3),
            (0.0, 1, 4),
            (1e-310, 0, 2),
            (2.0, 0, 1),
            (2.0, 0, 2),
            (2.0, 1, 2),
            (1e300, 5, 6),
        ];
        for &(w1, u1, v1) in &samples {
            for &(w2, u2, v2) in &samples {
                let by_key = EdgeKey::new(w1, u1, v1).cmp(&EdgeKey::new(w2, u2, v2));
                let by_bits = key_bits(w1, u1, v1).cmp(&key_bits(w2, u2, v2));
                assert_eq!(by_key, by_bits, "({w1},{u1},{v1}) vs ({w2},{u2},{v2})");
            }
        }
    }

    #[test]
    fn rejects_suboptimal_spanning_tree_with_cut_violation() {
        let g = fig1();
        // The 9-edge replaces the 7-edge: spanning, acyclic, not minimum.
        let subopt = MstResult::from_edges(
            5,
            vec![
                Edge::new(3, 4, 2.0),
                Edge::new(1, 2, 3.0),
                Edge::new(0, 2, 4.0),
                Edge::new(2, 3, 9.0),
            ],
            AlgoStats::default(),
        );
        assert!(matches!(
            certify_msf(&g, &subopt),
            Err(VerifyError::CutViolation(_))
        ));
    }

    #[test]
    fn rejects_non_spanning_foreign_and_cyclic() {
        let g = fig1();
        let partial = MstResult::from_edges(
            5,
            vec![Edge::new(1, 2, 3.0)],
            AlgoStats::default(),
        );
        assert!(matches!(
            certify_msf(&g, &partial),
            Err(VerifyError::NotSpanning(_))
        ));

        // Swap a real MST edge for a same-endpoints edge with a weight the
        // graph doesn't have: still spanning and acyclic, but foreign.
        let foreign = MstResult::from_edges(
            5,
            vec![
                Edge::new(3, 4, 2.0),
                Edge::new(1, 2, 3.0),
                Edge::new(0, 2, 4.0),
                Edge::new(1, 3, 6.5),
            ],
            AlgoStats::default(),
        );
        assert!(matches!(
            certify_msf(&g, &foreign),
            Err(VerifyError::ForeignEdge(e)) if (e.u, e.v, e.w) == (1, 3, 6.5)
        ));

        let cyclic = MstResult::from_edges(
            5,
            vec![
                Edge::new(1, 2, 3.0),
                Edge::new(0, 2, 4.0),
                Edge::new(0, 1, 5.0),
            ],
            AlgoStats::default(),
        );
        assert!(matches!(
            certify_msf(&g, &cyclic),
            Err(VerifyError::Cycle(_))
        ));
    }

    #[test]
    fn agrees_with_oracle_on_disconnected_forests() {
        // Multiple components plus isolated vertices.
        let g = llp_graph::generators::erdos_renyi(120, 100, 11);
        let msf = kruskal(&g);
        assert!(verify_msf(&g, &msf).is_ok());
        certify_msf(&g, &msf).unwrap();
    }

    #[test]
    fn empty_and_edgeless_graphs_certify() {
        let g = CsrGraph::from_edges(0, &[]);
        let r = MstResult::from_edges(0, vec![], AlgoStats::default());
        certify_msf(&g, &r).unwrap();

        let g = CsrGraph::from_edges(4, &[]);
        let r = MstResult::from_edges(4, vec![], AlgoStats::default());
        certify_msf(&g, &r).unwrap();
        let pool = ThreadPool::new(2);
        certify_msf_par(&g, &r, &pool).unwrap();
    }

    #[test]
    fn deep_path_graph_does_not_overflow() {
        // A 50k-vertex path with monotone weights: one chain absorbs one
        // vertex per merge, the worst case for the replay and the chain
        // walk (and, historically, for a recursive tour).
        let n = 50_000u32;
        let edges: Vec<Edge> = (0..n - 1)
            .map(|i| Edge::new(i, i + 1, i as f64 + 1.0))
            .collect();
        let g = CsrGraph::from_edges(n as usize, &edges);
        let msf = kruskal(&g);
        certify_msf(&g, &msf).unwrap();
    }

    #[test]
    fn parallel_rejection_is_stable_and_matches_sequential() {
        let g = fig1();
        let partial = MstResult::from_edges(
            5,
            vec![Edge::new(1, 2, 3.0)],
            AlgoStats::default(),
        );
        let seq = certify_msf(&g, &partial).unwrap_err();
        assert!(matches!(seq, VerifyError::NotSpanning(_)));
        let pool = ThreadPool::new(4);
        for _ in 0..10 {
            let par = certify_msf_par(&g, &partial, &pool).unwrap_err();
            // The witness is the smallest-key offending edge per chunk, so
            // the exact edge depends on the chunking: fig1 fits in one
            // chunk normally, but chaos grain sweeps may split it and
            // surface a different (equally valid) witness.
            if llp_runtime::chaos::seed_active().is_some() {
                assert!(matches!(par, VerifyError::NotSpanning(_)), "{par:?}");
            } else {
                assert_eq!(par, seq);
            }
        }
    }

    #[test]
    fn range_max_matches_naive_scan() {
        // Exercise the bitmask range-max against a brute-force scan on a
        // real separator array (caterpillar: mixes a long spine with
        // shallow legs, so separators are far from monotone).
        let g = llp_graph::generators::caterpillar(40, 3, 5);
        let msf = kruskal(&g);
        let order = MergeOrder::build(g.num_vertices(), &msf, None).unwrap();
        let len = order.sep.len();
        assert_eq!(len, g.num_vertices());
        for lo in 0..len {
            for hi in lo..len.min(lo + 2 * BLOCK + 2) {
                let got = order.rmq(lo, hi);
                let want = (lo..=hi).map(|i| order.sep[i]).max().unwrap();
                assert_eq!(got, want, "rmq({lo},{hi})");
            }
        }
    }

    #[test]
    fn path_max_matches_tree_walk_on_random_forest() {
        // Cross-check path_max against an explicit BFS path walk on a
        // sparse random forest (several components).
        let g = llp_graph::generators::erdos_renyi(80, 70, 5);
        let msf = kruskal(&g);
        let order = MergeOrder::build(g.num_vertices(), &msf, None).unwrap();

        // Adjacency of the forest itself.
        let n = g.num_vertices();
        let mut adj: Vec<Vec<(u32, u128)>> = vec![Vec::new(); n];
        for e in &msf.edges {
            adj[e.u as usize].push((e.v, key_bits(e.w, e.u, e.v)));
            adj[e.v as usize].push((e.u, key_bits(e.w, e.u, e.v)));
        }
        let walk_max = |s: u32, t: u32| -> Option<u128> {
            let mut best: Vec<Option<u128>> = vec![None; n];
            let mut queue = std::collections::VecDeque::from([s]);
            let mut seen = vec![false; n];
            seen[s as usize] = true;
            while let Some(x) = queue.pop_front() {
                for &(y, k) in &adj[x as usize] {
                    if !seen[y as usize] {
                        seen[y as usize] = true;
                        best[y as usize] = Some(match best[x as usize] {
                            Some(b) if b > k => b,
                            _ => k,
                        });
                        queue.push_back(y);
                    }
                }
            }
            best[t as usize]
        };
        for u in (0..n as u32).step_by(7) {
            for v in (0..n as u32).step_by(5) {
                if u != v {
                    assert_eq!(order.path_max(u, v), walk_max(u, v), "path {u}..{v}");
                }
            }
        }
    }
}

//! Near-linear, oracle-free MSF certification.
//!
//! [`crate::verify::verify_msf`] certifies a result by re-running Kruskal —
//! an oracle as expensive as the computation under test, useless at the
//! paper's 24M-vertex scale. This module certifies *without an oracle* in
//! near-linear time using the classic MST verification reduction (Tarjan;
//! Komlós; King):
//!
//! Under the workspace's strict [`llp_graph::EdgeKey`] total order the
//! MSF is unique, and a subforest `T ⊆ G` **is** that MSF iff
//!
//! 1. `T`'s edges exist in `G` (with matching weights),
//! 2. `T` is acyclic,
//! 3. `T` spans: no graph edge connects two different trees of `T`,
//! 4. **cycle property**: every non-tree edge is at least as heavy as
//!    every tree edge on the tree path between its endpoints.
//!
//! Check 4 needs path-maximum queries. The King-style machinery that
//! answers them — the Kruskal merge-order separator array plus an O(1)
//! range-max structure — lives in [`crate::index`] as the reusable
//! [`PathMaxIndex`]: building it *is* checks 1-in-part and 2 (the merge
//! replay rejects cycles and out-of-range endpoints), and this module is a
//! thin consumer that sweeps the graph's edges against it. The same index
//! an operator builds once to serve `component` / `path_max` /
//! `connected_under` traffic (see `llp-serve`) is the one certification
//! queries — verify and serve share one code path.
//!
//! The per-query constant is kept deliberately lean:
//!
//! * keys live in the index as order-isomorphic `u128`s, so every
//!   range-max comparison is branch-free integer ALU;
//! * no tree-edge hash lookups — a tree edge's key *equals* its own path
//!   maximum, so check 1 degenerates to counting exact key matches (a
//!   mismatch triggers a slow per-edge scan to name the foreign edge);
//! * check 2 falls out of the index's merge replay (a merge of an
//!   already-joined component is the cycle witness);
//! * check 3 is the infinite-separator sentinel — spanning violations are
//!   discovered by the same `key < path-max` compare that catches cycle
//!   violations, keeping one rare branch in the whole sweep (the failing
//!   vertex is re-scanned slowly to classify and name the error);
//! * when `T` is a single spanning tree, any edge heavier than `T`'s
//!   heaviest passes the cycle property with one register compare, before
//!   any loads.
//!
//! [`certify_msf_par`] parallelizes the query sweep and the tree-edge sort
//! over a [`ThreadPool`]; certification is cheap enough to ride along
//! every benchmarked construction (see the `certified` field of the
//! `llp-mst-run-report/v1` schema).

use crate::index::{key_bits, PathMaxIndex, INF_KEY};
use crate::result::MstResult;
use crate::verify::VerifyError;
use llp_graph::{CsrGraph, Edge, EdgeKey, VertexId};
use llp_runtime::sync::Mutex;
use llp_runtime::{parallel_for_chunks, telemetry, ParallelForConfig, ThreadPool};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Sequential near-linear certification that `result` is the canonical MSF
/// of `graph` — no Kruskal oracle, no O(|T|·m) cut scans.
///
/// Returns the same [`VerifyError`] taxonomy as the exhaustive verifiers:
/// [`VerifyError::ForeignEdge`], [`VerifyError::Cycle`],
/// [`VerifyError::NotSpanning`] or [`VerifyError::CutViolation`].
pub fn certify_msf(graph: &CsrGraph, result: &MstResult) -> Result<(), VerifyError> {
    certify_impl(graph, result, None)
}

/// [`certify_msf`] with the tree-edge sort and the per-edge query sweep
/// parallelized over `pool`.
pub fn certify_msf_par(
    graph: &CsrGraph,
    result: &MstResult,
    pool: &ThreadPool,
) -> Result<(), VerifyError> {
    certify_impl(graph, result, Some(pool))
}

/// Reusable per-worker buffers for [`check_vertex`]'s gather phase.
#[derive(Default)]
struct Scratch {
    pv: Vec<u32>,
    key: Vec<u128>,
}

/// Hot path of the sweep over one vertex's adjacency: how many graph edges
/// were exact key matches of tree edges, or `Err(())` on the first
/// violation — [`classify_vertex`] then re-scans the vertex to name it.
///
/// Runs in two branch-free phases so the out-of-order window is never cut
/// short by data-dependent branches: a gather pass compacts the surviving
/// arcs (forward edges not retired by the weight filter) into `scratch`
/// with a conditional increment, then a query pass folds every range
/// maximum into a violation flag and a match count with no branching at
/// all. Violations surface after the vertex, which is fine: they are
/// terminal, and [`classify_vertex`] re-derives the precise error.
#[inline]
fn check_vertex(
    index: &PathMaxIndex,
    graph: &CsrGraph,
    u: VertexId,
    scratch: &mut Scratch,
) -> Result<usize, ()> {
    let (targets, weights) = graph.neighbor_slices(u);
    let deg = targets.len();
    if scratch.pv.len() < deg {
        scratch.pv.resize(deg, 0);
        scratch.key.resize(deg, 0);
    }
    let pu = index.pos[u as usize];
    let pass_above = index.pass_above;
    let mut k = 0usize;
    for i in 0..deg {
        let (v, w) = (targets[i], weights[i]);
        scratch.pv[k] = index.pos[v as usize];
        scratch.key[k] = key_bits(w, u, v);
        // Keep forward arcs not already retired by the single-tree weight
        // filter (an edge heavier than every tree edge passes the cycle
        // property outright). Non-short-circuit `&` keeps this a compare
        // and an add, never a branch.
        k += usize::from((v > u) & (w <= pass_above));
    }
    let mut bad = false;
    let mut matched = 0usize;
    for j in 0..k {
        // `key < max` is both failure modes at once: a genuine cycle
        // violation, or `max = INF_KEY` marking a cross-tree edge. A graph
        // edge whose key *equals* the path max is the tree edge joining
        // those components (keys are unique).
        let max_on_path = index.path_max_at(pu, scratch.pv[j]);
        bad |= scratch.key[j] < max_on_path;
        matched += usize::from(scratch.key[j] == max_on_path);
    }
    if bad {
        return Err(());
    }
    Ok(matched)
}

/// Slow mirror of [`check_vertex`], taken only for a vertex whose sweep
/// failed: classifies and names the offending edge.
#[cold]
fn classify_vertex(index: &PathMaxIndex, graph: &CsrGraph, u: VertexId) -> VerifyError {
    let pu = index.pos[u as usize];
    for (v, w) in graph.neighbors(u) {
        if v <= u || w > index.pass_above {
            continue;
        }
        let max_on_path = index.path_max_at(pu, index.pos[v as usize]);
        if key_bits(w, u, v) < max_on_path {
            return if max_on_path == INF_KEY {
                VerifyError::NotSpanning(Edge::new(u, v, w))
            } else {
                VerifyError::CutViolation(Edge::new(u, v, w))
            };
        }
    }
    unreachable!("classify_vertex called for a vertex with no violation")
}

/// Slow path taken only when the sweep's key-match count disagrees with
/// the tree size: names a tree edge absent from the graph, if any.
fn find_foreign_edge(graph: &CsrGraph, result: &MstResult) -> Option<Edge> {
    result
        .edges
        .iter()
        .find(|e| !graph.neighbors(e.u).any(|(v, w)| v == e.v && w == e.w))
        .copied()
}

fn certify_impl(
    graph: &CsrGraph,
    result: &MstResult,
    pool: Option<&ThreadPool>,
) -> Result<(), VerifyError> {
    let n = graph.num_vertices();
    let t = result.edges.len();
    let index = {
        let _s = telemetry::span("certify-build");
        match pool {
            Some(pool) => PathMaxIndex::build_par(n, result, pool)?,
            None => PathMaxIndex::build(n, result)?,
        }
    };
    certify_against(graph, result, &index, pool)?;
    debug_assert_eq!(index.num_components() + t, n);
    Ok(())
}

/// The query half of certification: sweeps every graph edge against an
/// already-built [`PathMaxIndex`] of `result`. Callers that keep the index
/// around for serving (e.g. `llp-serve`) use this directly so the build
/// cost is paid once.
pub fn certify_against(
    graph: &CsrGraph,
    result: &MstResult,
    index: &PathMaxIndex,
    pool: Option<&ThreadPool>,
) -> Result<(), VerifyError> {
    let n = graph.num_vertices();
    let t = result.edges.len();
    assert_eq!(
        index.num_vertices(),
        n,
        "index built over a different vertex set than the graph"
    );

    // Sweep every graph edge once: non-tree edges must not beat the path
    // maximum between their endpoints (cycle property) and must not cross
    // trees (spanning); exact key matches count tree edges found in the
    // graph. Visiting `u`'s adjacency with the `u < v` filter sees each
    // undirected edge exactly once.
    let _s = telemetry::span("certify-query");
    let matched = match pool {
        None => {
            let mut scratch = Scratch::default();
            let mut matched = 0usize;
            for u in 0..n as VertexId {
                match check_vertex(index, graph, u, &mut scratch) {
                    Ok(m) => matched += m,
                    Err(()) => return Err(classify_vertex(index, graph, u)),
                }
            }
            matched
        }
        Some(pool) => {
            // Deterministic error report under parallel sweep: keep the
            // failure whose offending edge has the smallest key.
            let worst: Mutex<Option<(EdgeKey, VerifyError)>> = Mutex::new(None);
            let matched = AtomicUsize::new(0);
            parallel_for_chunks(pool, 0..n, ParallelForConfig::default(), |chunk| {
                let mut scratch = Scratch::default();
                let mut local = 0usize;
                for u in chunk {
                    match check_vertex(index, graph, u as VertexId, &mut scratch) {
                        Ok(m) => local += m,
                        Err(()) => {
                            let err = classify_vertex(index, graph, u as VertexId);
                            let key = match &err {
                                VerifyError::CutViolation(e) | VerifyError::NotSpanning(e) => {
                                    e.key()
                                }
                                _ => EdgeKey::infinite(),
                            };
                            let mut w = worst.lock();
                            if w.as_ref().is_none_or(|(k, _)| key < *k) {
                                *w = Some((key, err));
                            }
                            return; // rest of this chunk is moot
                        }
                    }
                }
                matched.fetch_add(local, Ordering::Relaxed);
            });
            if let Some((_, err)) = worst.into_inner() {
                return Err(err);
            }
            matched.into_inner()
        }
    };

    // Every tree edge's key match was counted exactly once, so a shortfall
    // means a tree edge the graph doesn't contain. (An overcount can only
    // come from duplicate parallel edges in the graph; the slow scan then
    // confirms all tree edges are genuinely present.)
    if matched != t {
        if let Some(e) = find_foreign_edge(graph, result) {
            return Err(VerifyError::ForeignEdge(e));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kruskal::kruskal;
    use crate::stats::AlgoStats;
    use crate::verify::verify_msf;
    use llp_graph::samples::{fig1, small_forest};

    #[test]
    fn accepts_msf_on_samples_and_generators() {
        for (name, g) in [
            ("fig1", fig1()),
            ("small_forest", small_forest()),
            ("er", llp_graph::generators::erdos_renyi(200, 600, 7)),
            (
                "road",
                llp_graph::generators::road_network(
                    llp_graph::generators::RoadParams::usa_like(12, 12, 3),
                ),
            ),
        ] {
            let msf = kruskal(&g);
            certify_msf(&g, &msf).unwrap_or_else(|e| panic!("{name}: {e}"));
            let pool = ThreadPool::new(3);
            certify_msf_par(&g, &msf, &pool).unwrap_or_else(|e| panic!("{name} (par): {e}"));
        }
    }

    #[test]
    fn accepts_unsorted_tree_edges() {
        // Parallel algorithms emit tree edges in arbitrary order; the
        // certifier must sort rather than assume Kruskal order.
        let g = llp_graph::generators::erdos_renyi(150, 500, 3);
        let mut msf = kruskal(&g);
        msf.edges.reverse();
        certify_msf(&g, &msf).unwrap();
        let pool = ThreadPool::new(2);
        certify_msf_par(&g, &msf, &pool).unwrap();
    }

    #[test]
    fn key_bits_order_matches_edge_key_order() {
        // The u128 packing must be order-isomorphic to EdgeKey, including
        // negative, zero and subnormal weights.
        let samples = [
            (-3.5, 0u32, 1u32),
            (-0.0, 2, 3),
            (0.0, 1, 4),
            (1e-310, 0, 2),
            (2.0, 0, 1),
            (2.0, 0, 2),
            (2.0, 1, 2),
            (1e300, 5, 6),
        ];
        for &(w1, u1, v1) in &samples {
            for &(w2, u2, v2) in &samples {
                let by_key = EdgeKey::new(w1, u1, v1).cmp(&EdgeKey::new(w2, u2, v2));
                let by_bits = key_bits(w1, u1, v1).cmp(&key_bits(w2, u2, v2));
                assert_eq!(by_key, by_bits, "({w1},{u1},{v1}) vs ({w2},{u2},{v2})");
            }
        }
    }

    #[test]
    fn rejects_suboptimal_spanning_tree_with_cut_violation() {
        let g = fig1();
        // The 9-edge replaces the 7-edge: spanning, acyclic, not minimum.
        let subopt = MstResult::from_edges(
            5,
            vec![
                Edge::new(3, 4, 2.0),
                Edge::new(1, 2, 3.0),
                Edge::new(0, 2, 4.0),
                Edge::new(2, 3, 9.0),
            ],
            AlgoStats::default(),
        );
        assert!(matches!(
            certify_msf(&g, &subopt),
            Err(VerifyError::CutViolation(_))
        ));
    }

    #[test]
    fn rejects_non_spanning_foreign_and_cyclic() {
        let g = fig1();
        let partial = MstResult::from_edges(
            5,
            vec![Edge::new(1, 2, 3.0)],
            AlgoStats::default(),
        );
        assert!(matches!(
            certify_msf(&g, &partial),
            Err(VerifyError::NotSpanning(_))
        ));

        // Swap a real MST edge for a same-endpoints edge with a weight the
        // graph doesn't have: still spanning and acyclic, but foreign.
        let foreign = MstResult::from_edges(
            5,
            vec![
                Edge::new(3, 4, 2.0),
                Edge::new(1, 2, 3.0),
                Edge::new(0, 2, 4.0),
                Edge::new(1, 3, 6.5),
            ],
            AlgoStats::default(),
        );
        assert!(matches!(
            certify_msf(&g, &foreign),
            Err(VerifyError::ForeignEdge(e)) if (e.u, e.v, e.w) == (1, 3, 6.5)
        ));

        let cyclic = MstResult::from_edges(
            5,
            vec![
                Edge::new(1, 2, 3.0),
                Edge::new(0, 2, 4.0),
                Edge::new(0, 1, 5.0),
            ],
            AlgoStats::default(),
        );
        assert!(matches!(
            certify_msf(&g, &cyclic),
            Err(VerifyError::Cycle(_))
        ));
    }

    #[test]
    fn agrees_with_oracle_on_disconnected_forests() {
        // Multiple components plus isolated vertices.
        let g = llp_graph::generators::erdos_renyi(120, 100, 11);
        let msf = kruskal(&g);
        assert!(verify_msf(&g, &msf).is_ok());
        certify_msf(&g, &msf).unwrap();
    }

    #[test]
    fn empty_and_edgeless_graphs_certify() {
        let g = CsrGraph::from_edges(0, &[]);
        let r = MstResult::from_edges(0, vec![], AlgoStats::default());
        certify_msf(&g, &r).unwrap();

        let g = CsrGraph::from_edges(4, &[]);
        let r = MstResult::from_edges(4, vec![], AlgoStats::default());
        certify_msf(&g, &r).unwrap();
        let pool = ThreadPool::new(2);
        certify_msf_par(&g, &r, &pool).unwrap();
    }

    #[test]
    fn deep_path_graph_does_not_overflow() {
        // A 50k-vertex path with monotone weights: one chain absorbs one
        // vertex per merge, the worst case for the replay and the chain
        // walk (and, historically, for a recursive tour).
        let n = 50_000u32;
        let edges: Vec<Edge> = (0..n - 1)
            .map(|i| Edge::new(i, i + 1, i as f64 + 1.0))
            .collect();
        let g = CsrGraph::from_edges(n as usize, &edges);
        let msf = kruskal(&g);
        certify_msf(&g, &msf).unwrap();
    }

    #[test]
    fn parallel_rejection_is_stable_and_matches_sequential() {
        let g = fig1();
        let partial = MstResult::from_edges(
            5,
            vec![Edge::new(1, 2, 3.0)],
            AlgoStats::default(),
        );
        let seq = certify_msf(&g, &partial).unwrap_err();
        assert!(matches!(seq, VerifyError::NotSpanning(_)));
        let pool = ThreadPool::new(4);
        for _ in 0..10 {
            let par = certify_msf_par(&g, &partial, &pool).unwrap_err();
            // The witness is the smallest-key offending edge per chunk, so
            // the exact edge depends on the chunking: fig1 fits in one
            // chunk normally, but chaos grain sweeps may split it and
            // surface a different (equally valid) witness.
            if llp_runtime::chaos::seed_active().is_some() {
                assert!(matches!(par, VerifyError::NotSpanning(_)), "{par:?}");
            } else {
                assert_eq!(par, seq);
            }
        }
    }

    #[test]
    fn path_max_matches_tree_walk_on_random_forest() {
        // Cross-check path_max against an explicit BFS path walk on a
        // sparse random forest (several components).
        let g = llp_graph::generators::erdos_renyi(80, 70, 5);
        let msf = kruskal(&g);
        let index = PathMaxIndex::build(g.num_vertices(), &msf).unwrap();

        // Adjacency of the forest itself.
        let n = g.num_vertices();
        let mut adj: Vec<Vec<(u32, u128)>> = vec![Vec::new(); n];
        for e in &msf.edges {
            adj[e.u as usize].push((e.v, key_bits(e.w, e.u, e.v)));
            adj[e.v as usize].push((e.u, key_bits(e.w, e.u, e.v)));
        }
        let walk_max = |s: u32, t: u32| -> Option<u128> {
            let mut best: Vec<Option<u128>> = vec![None; n];
            let mut queue = std::collections::VecDeque::from([s]);
            let mut seen = vec![false; n];
            seen[s as usize] = true;
            while let Some(x) = queue.pop_front() {
                for &(y, k) in &adj[x as usize] {
                    if !seen[y as usize] {
                        seen[y as usize] = true;
                        best[y as usize] = Some(match best[x as usize] {
                            Some(b) if b > k => b,
                            _ => k,
                        });
                        queue.push_back(y);
                    }
                }
            }
            best[t as usize]
        };
        for u in (0..n as u32).step_by(7) {
            for v in (0..n as u32).step_by(5) {
                if u != v {
                    assert_eq!(index.path_max_key(u, v), walk_max(u, v), "path {u}..{v}");
                }
            }
        }
    }

    #[test]
    fn certify_against_reuses_a_prebuilt_index() {
        // The serve-style flow: build once, certify against it, then keep
        // answering queries from the same index.
        let g = llp_graph::generators::erdos_renyi(150, 400, 13);
        let msf = kruskal(&g);
        let index = PathMaxIndex::build(g.num_vertices(), &msf).unwrap();
        certify_against(&g, &msf, &index, None).unwrap();
        let pool = ThreadPool::new(2);
        certify_against(&g, &msf, &index, Some(&pool)).unwrap();
        assert_eq!(index.num_components(), msf.num_trees);
    }
}

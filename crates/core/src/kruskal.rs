//! Kruskal's algorithm: sort by weight, grow a forest with union–find.
//!
//! Kruskal is the workspace's *reference oracle*: it is the simplest
//! correct MSF algorithm, so every other algorithm's output is validated
//! against it in tests and in `verify`. [`kruskal_par_sort`] offloads the
//! dominant sorting cost to the parallel runtime (the paper notes Kruskal
//! itself is hard to parallelise beyond the sort because of the serial heap
//! / ordered scan).

use crate::result::MstResult;
use crate::stats::AlgoStats;
use crate::union_find::UnionFind;
use llp_graph::algo::connected_components;
use llp_graph::{CsrGraph, Edge};
use llp_runtime::{sort::par_sort_by_key, ThreadPool};

/// Sequential Kruskal. Computes the canonical MSF (works on disconnected
/// graphs; the number of trees is `MstResult::num_trees`).
pub fn kruskal(graph: &CsrGraph) -> MstResult {
    let mut edges: Vec<Edge> = graph.edges().collect();
    edges.sort_unstable_by_key(Edge::key);
    scan(graph, edges)
}

/// Kruskal with the sort done on the thread pool.
pub fn kruskal_par_sort(graph: &CsrGraph, pool: &ThreadPool) -> MstResult {
    let mut edges: Vec<Edge> = graph.edges().collect();
    par_sort_by_key(pool, &mut edges, Edge::key);
    let mut result = scan(graph, edges);
    result.stats.parallel_regions += 1;
    result
}

fn scan(graph: &CsrGraph, sorted_edges: Vec<Edge>) -> MstResult {
    let n = graph.num_vertices();
    // The forest is complete after exactly `n - C` successful unions, where
    // `C` counts connected components: a BFS labelling is O(n + m) — far
    // below the O(m log m) sort that precedes this scan — and lets
    // disconnected inputs stop early too, instead of draining the whole
    // sorted tail hunting for an (n - 1)-th union that never comes.
    let msf_edges = n - connected_components(graph).num_components;
    let mut stats = AlgoStats::default();
    let mut uf = UnionFind::new(n);
    let mut chosen = Vec::with_capacity(msf_edges);
    for e in sorted_edges {
        if chosen.len() == msf_edges {
            break; // spanning forest complete
        }
        stats.edges_scanned += 1;
        if uf.union(e.u, e.v) {
            chosen.push(e);
        }
    }
    MstResult::from_edges(n, chosen, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use llp_graph::samples::{fig1, small_forest, FIG1_MST_WEIGHT, SMALL_FOREST_MSF_WEIGHT};

    #[test]
    fn fig1_mst() {
        let mst = kruskal(&fig1());
        assert_eq!(mst.total_weight, FIG1_MST_WEIGHT);
        assert_eq!(mst.num_trees, 1);
        assert_eq!(mst.edges.len(), 4);
    }

    #[test]
    fn forest_handling() {
        let msf = kruskal(&small_forest());
        assert_eq!(msf.total_weight, SMALL_FOREST_MSF_WEIGHT);
        assert_eq!(msf.num_trees, 3); // triangle, edge, isolated vertex
    }

    #[test]
    fn par_sort_variant_matches() {
        let g = llp_graph::generators::erdos_renyi(500, 3000, 11);
        let pool = ThreadPool::new(4);
        assert_eq!(
            kruskal(&g).canonical_keys(),
            kruskal_par_sort(&g, &pool).canonical_keys()
        );
    }

    #[test]
    fn agrees_with_prim_on_connected_graphs() {
        for seed in 0..5 {
            let g = llp_graph::generators::road_network(
                llp_graph::generators::RoadParams::usa_like(12, 12, seed),
            );
            let k = kruskal(&g);
            let p = crate::prim::prim_lazy(&g, 0).unwrap();
            assert_eq!(k.canonical_keys(), p.canonical_keys(), "seed {seed}");
        }
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(kruskal(&CsrGraph::empty(0)).edges.len(), 0);
        let r = kruskal(&CsrGraph::empty(3));
        assert_eq!(r.num_trees, 3);
    }

    #[test]
    fn early_exit_skips_tail_edges() {
        // A path plus many heavy extra edges: the scan stops after n-1 unions.
        let mut b = llp_graph::GraphBuilder::new(50);
        for i in 1..50u32 {
            b.add_edge(i - 1, i, i as f64 * 0.001);
        }
        for i in 0..48u32 {
            b.add_edge(i, i + 2, 1000.0 + i as f64);
        }
        let g = b.build();
        let r = kruskal(&g);
        assert_eq!(r.edges.len(), 49);
        assert!(r.stats.edges_scanned < g.num_edges() as u64);
    }

    #[test]
    fn early_exit_on_disconnected_forests() {
        // Two path components plus heavy intra-component extras: the scan
        // stops after n - C unions instead of draining the sorted tail.
        let mut b = llp_graph::GraphBuilder::new(40);
        for i in 1..20u32 {
            b.add_edge(i - 1, i, i as f64 * 0.001);
        }
        for i in 21..40u32 {
            b.add_edge(i - 1, i, i as f64 * 0.001);
        }
        for i in 0..18u32 {
            b.add_edge(i, i + 2, 1000.0 + i as f64);
        }
        for i in 20..38u32 {
            b.add_edge(i, i + 2, 2000.0 + i as f64);
        }
        let g = b.build();
        let r = kruskal(&g);
        assert_eq!(r.num_trees, 2);
        assert_eq!(r.edges.len(), 38); // n - C = 40 - 2
        assert!(
            r.stats.edges_scanned < g.num_edges() as u64,
            "scanned {} of {} edges",
            r.stats.edges_scanned,
            g.num_edges()
        );
        let pool = ThreadPool::new(2);
        assert_eq!(
            kruskal_par_sort(&g, &pool).canonical_keys(),
            r.canonical_keys()
        );
    }
}

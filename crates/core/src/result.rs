//! MST / MSF results and errors.

use crate::stats::AlgoStats;
use llp_graph::{Edge, EdgeKey};

/// Outcome of an MST/MSF computation.
#[derive(Debug, Clone, PartialEq)]
pub struct MstResult {
    /// The chosen tree/forest edges (orientation unspecified).
    pub edges: Vec<Edge>,
    /// Sum of the chosen edge weights.
    pub total_weight: f64,
    /// Number of trees in the forest (`1` for a spanning tree).
    pub num_trees: usize,
    /// Work metrics of the run.
    pub stats: AlgoStats,
}

impl MstResult {
    /// Assembles a result from chosen edges.
    ///
    /// Panics (with the edge/vertex counts) when `edges` holds more than
    /// `num_vertices − 1` edges — a forest cannot, so the caller handed in
    /// something that is not a forest. Callers that can transiently
    /// over-supply edges (e.g. batched dynamic updates) should use
    /// [`MstResult::try_from_edges`] and surface the error instead.
    pub fn from_edges(num_vertices: usize, edges: Vec<Edge>, stats: AlgoStats) -> Self {
        match Self::try_from_edges(num_vertices, edges, stats) {
            Ok(r) => r,
            Err(ForestOverflow { edges, vertices }) => panic!(
                "MstResult::from_edges: {edges} edges cannot form a forest \
                 over {vertices} vertices (at most {} are possible)",
                vertices.saturating_sub(1)
            ),
        }
    }

    /// [`MstResult::from_edges`] with the `num_trees = n − |edges|`
    /// subtraction checked: more edges than a forest over `num_vertices`
    /// can hold is an error, not an underflowing panic.
    pub fn try_from_edges(
        num_vertices: usize,
        edges: Vec<Edge>,
        stats: AlgoStats,
    ) -> Result<Self, ForestOverflow> {
        let Some(num_trees) = num_vertices.checked_sub(edges.len()) else {
            return Err(ForestOverflow {
                edges: edges.len(),
                vertices: num_vertices,
            });
        };
        let total_weight = edges.iter().map(|e| e.w).sum();
        Ok(MstResult {
            edges,
            total_weight,
            num_trees,
            stats,
        })
    }

    /// Canonical sorted edge keys, for exact cross-algorithm comparison.
    pub fn canonical_keys(&self) -> Vec<EdgeKey> {
        let mut keys: Vec<EdgeKey> = self.edges.iter().map(Edge::key).collect();
        keys.sort_unstable();
        keys
    }

    /// True when this result spans a single tree over `n` vertices.
    pub fn is_spanning_tree(&self, n: usize) -> bool {
        n > 0 && self.edges.len() == n - 1
    }
}

/// A claimed forest with more edges than vertices — the
/// `num_trees = n − |edges|` bookkeeping cannot be satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForestOverflow {
    /// Edges supplied.
    pub edges: usize,
    /// Vertices of the claimed forest.
    pub vertices: usize,
}

impl std::fmt::Display for ForestOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} edges cannot form a forest over {} vertices",
            self.edges, self.vertices
        )
    }
}

impl std::error::Error for ForestOverflow {}

/// Errors from tree-only algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MstError {
    /// The input graph is not connected; no spanning tree exists. Prim-type
    /// algorithms require connectivity (the paper: "LLP-Prim considers a
    /// spanning tree, i.e. assumes the graph is fully connected"); use the
    /// Boruvka family for forests.
    Disconnected {
        /// Vertices reached from the root before exhaustion.
        reached: usize,
        /// Total vertices.
        total: usize,
    },
    /// The requested root vertex does not exist.
    InvalidRoot {
        /// The offending root.
        root: u32,
        /// Total vertices.
        total: usize,
    },
    /// The graph has no vertices.
    EmptyGraph,
}

impl std::fmt::Display for MstError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MstError::Disconnected { reached, total } => write!(
                f,
                "graph is disconnected: reached {reached} of {total} vertices \
                 (use a Boruvka-family algorithm for spanning forests)"
            ),
            MstError::InvalidRoot { root, total } => {
                write!(f, "root {root} out of range (graph has {total} vertices)")
            }
            MstError::EmptyGraph => write!(f, "graph has no vertices"),
        }
    }
}

impl std::error::Error for MstError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_computes_weight_and_trees() {
        let r = MstResult::from_edges(
            4,
            vec![Edge::new(0, 1, 1.5), Edge::new(1, 2, 2.5)],
            AlgoStats::default(),
        );
        assert_eq!(r.total_weight, 4.0);
        assert_eq!(r.num_trees, 2); // {0,1,2} and {3}
        assert!(!r.is_spanning_tree(4));
        assert!(r.is_spanning_tree(3));
    }

    #[test]
    fn canonical_keys_sorted_and_orientation_free() {
        let a = MstResult::from_edges(
            3,
            vec![Edge::new(1, 0, 2.0), Edge::new(2, 1, 1.0)],
            AlgoStats::default(),
        );
        let b = MstResult::from_edges(
            3,
            vec![Edge::new(1, 2, 1.0), Edge::new(0, 1, 2.0)],
            AlgoStats::default(),
        );
        assert_eq!(a.canonical_keys(), b.canonical_keys());
    }

    #[test]
    fn from_edges_overflow_is_a_descriptive_panic_and_try_is_an_error() {
        let too_many = vec![
            Edge::new(0, 1, 1.0),
            Edge::new(1, 2, 1.0),
            Edge::new(0, 2, 1.0),
        ];
        let err = MstResult::try_from_edges(2, too_many.clone(), AlgoStats::default())
            .unwrap_err();
        assert_eq!(
            err,
            ForestOverflow {
                edges: 3,
                vertices: 2
            }
        );
        assert!(err.to_string().contains("3 edges"));

        let panic = std::panic::catch_unwind(|| {
            MstResult::from_edges(2, too_many, AlgoStats::default())
        })
        .unwrap_err();
        let msg = panic
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("cannot form a forest"), "{msg}");
    }

    #[test]
    fn error_messages_render() {
        let e = MstError::Disconnected {
            reached: 3,
            total: 10,
        };
        assert!(e.to_string().contains("disconnected"));
        assert!(MstError::EmptyGraph.to_string().contains("no vertices"));
    }
}

//! LLP-Prim (the paper's Algorithm 5: "Early Fixing").
//!
//! Prim's algorithm fixes exactly one vertex per heap extraction. The LLP
//! formulation (Algorithm 4) shows a vertex may be *fixed early*, without
//! ever entering the heap, whenever it is joined to an already-fixed vertex
//! `z` by an edge that is the **minimum-weight edge (MWE) of either
//! endpoint** — such an edge is always in the MST, and `z` being fixed
//! makes it the new vertex's parent edge.
//!
//! The implementation keeps a bag `R` of freshly fixed vertices. Processing
//! `R` cascades: fixing `k` can make further neighbours fixable, all
//! without heap traffic, and all items of `R` can be processed **in
//! parallel**. Relaxations that do not early-fix are collected in a side
//! set `Q`; only when `R` runs dry is `Q` flushed into the heap and a
//! single minimum extracted (the classic Prim step), reseeding `R`.
//!
//! Invariants making any schedule correct (and the output canonical):
//! * every early-fix edge is some vertex's MWE, hence an MST edge;
//! * every heap fix extracts the minimum-key cut edge between fixed and
//!   non-fixed vertices, an MST edge by the cut property;
//! * each fix claims a distinct vertex (CAS in the parallel version), so
//!   `n - 1` distinct MST edges are chosen: exactly the canonical MST.
//!
//! [`llp_prim_seq`] is the paper's *LLP-Prim (1T)*: the same algorithm with
//! plain arrays and no atomics (Fig. 2). [`llp_prim_par`] processes `R` as
//! parallel frontiers (Figs 3–4).

use crate::heap::LazyHeap;
use crate::result::{MstError, MstResult};
use crate::stats::AlgoStats;
use llp_graph::{CsrGraph, Edge, EdgeKey, VertexId};
use llp_runtime::atomics::{AtomicIndexMin, NO_INDEX};
use llp_runtime::telemetry;
use llp_runtime::{
    parallel_for_chunks, parallel_for_chunks_ctx, Bag, Counter, ParallelForConfig, ThreadPool,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

fn check_root(graph: &CsrGraph, root: VertexId) -> Result<(), MstError> {
    let n = graph.num_vertices();
    if n == 0 {
        return Err(MstError::EmptyGraph);
    }
    if root as usize >= n {
        return Err(MstError::InvalidRoot { root, total: n });
    }
    Ok(())
}

/// LLP-Prim, single-threaded ("LLP-Prim (1T)" in the paper's figures).
///
/// Computes the per-vertex MWE table internally; when the table is
/// available from graph loading (the paper: "the set MWE can be computed
/// when the graph is input"), use [`llp_prim_seq_with_mwe`] to avoid
/// paying for it per run.
///
/// ```
/// use llp_mst::llp_prim::llp_prim_seq;
///
/// let graph = llp_graph::samples::fig1();
/// let mst = llp_prim_seq(&graph, 0).unwrap();
/// assert_eq!(mst.total_weight, 16.0); // the paper's {2, 3, 4, 7}
/// assert_eq!(mst.stats.early_fixes, 3); // c, b, e never touch the heap
/// ```
pub fn llp_prim_seq(graph: &CsrGraph, root: VertexId) -> Result<MstResult, MstError> {
    let mwe: Vec<EdgeKey> = {
        let _t = telemetry::span("mwe-compute");
        (0..graph.num_vertices() as VertexId)
            .map(|v| graph.min_edge(v).unwrap_or_else(EdgeKey::infinite))
            .collect()
    };
    llp_prim_seq_with_mwe(graph, root, &mwe)
}

/// LLP-Prim (1T) with a precomputed minimum-weight-edge table
/// (`mwe[v] =` the canonical minimum edge adjacent to `v`, or
/// [`EdgeKey::infinite`] for isolated vertices).
pub fn llp_prim_seq_with_mwe(
    graph: &CsrGraph,
    root: VertexId,
    mwe: &[EdgeKey],
) -> Result<MstResult, MstError> {
    check_root(graph, root)?;
    let n = graph.num_vertices();
    assert_eq!(mwe.len(), n, "mwe table must cover every vertex");
    let mut stats = AlgoStats::default();

    let mut dist: Vec<EdgeKey> = vec![EdgeKey::infinite(); n];
    let mut fixed = vec![false; n];
    let mut edges: Vec<Edge> = Vec::with_capacity(n - 1);
    let mut r_set: Vec<VertexId> = Vec::new();
    let mut q_set: Vec<VertexId> = Vec::new();
    let mut heap: LazyHeap<EdgeKey> = LazyHeap::new();

    fixed[root as usize] = true;
    let mut fixed_count = 1usize;
    r_set.push(root);

    loop {
        // Drain R: process freshly fixed vertices, cascading early fixes.
        {
            let _t = telemetry::span("frontier-wave");
            telemetry::record_value("frontier-size", r_set.len() as u64);
            while let Some(j) = r_set.pop() {
                for (k, w) in graph.neighbors(j) {
                    stats.edges_scanned += 1;
                    if fixed[k as usize] {
                        continue;
                    }
                    let key = EdgeKey::new(w, j, k);
                    if key == mwe[j as usize] || key == mwe[k as usize] {
                        // Early fix: an MWE into the fixed set is a tree edge.
                        fixed[k as usize] = true;
                        fixed_count += 1;
                        stats.early_fixes += 1;
                        edges.push(Edge::new(j, k, w));
                        r_set.push(k);
                    } else if key < dist[k as usize] {
                        dist[k as usize] = key;
                        q_set.push(k);
                    }
                }
            }
        }

        // Flush Q into the heap (deferred insertions: vertices fixed while
        // in Q never touch the heap — the work LLP-Prim saves over Prim).
        {
            let _t = telemetry::span("q-flush");
            telemetry::record_value("q-flush-size", q_set.len() as u64);
            for k in q_set.drain(..) {
                if !fixed[k as usize] {
                    heap.push(dist[k as usize], k);
                }
            }
        }

        // Classic Prim step: fix the nearest non-fixed vertex.
        let _t = telemetry::span("heap-extract");
        telemetry::record_value("heap-size", heap.len() as u64);
        let mut reseeded = false;
        while let Some((key, k)) = heap.pop() {
            if fixed[k as usize] {
                continue; // stale entry
            }
            debug_assert_eq!(key, dist[k as usize]);
            fixed[k as usize] = true;
            fixed_count += 1;
            stats.heap_fixes += 1;
            edges.push(Edge::new(key.other(k), k, key.weight()));
            r_set.push(k);
            reseeded = true;
            break;
        }
        drop(_t);
        if !reseeded {
            break;
        }
    }

    stats.heap_pushes = heap.pushes;
    stats.heap_pops = heap.pops;
    if fixed_count < n {
        return Err(MstError::Disconnected {
            reached: fixed_count,
            total: n,
        });
    }
    Ok(MstResult::from_edges(n, edges, stats))
}

/// LLP-Prim, parallel: the `R` set is processed as parallel frontiers.
///
/// Per-vertex state is lock-free:
/// * `fixed[k]` — claimed once via CAS (the *advance* of Algorithm 4);
/// * `best[k]` — atomic argmin over incoming arcs, keyed exactly like
///   [`EdgeKey`], so relaxation races resolve to the canonical parent;
/// * `parent_arc[k]` — written only by k's unique fixer.
///
/// The heap is touched only between frontier waves, by one thread — the
/// paper's `Q`-batching ("to avoid the expense of inserting these vertices
/// in the heap... only when we are done processing R, we call
/// H.insertOrAdjust on vertices in Q").
pub fn llp_prim_par(
    graph: &CsrGraph,
    root: VertexId,
    pool: &ThreadPool,
) -> Result<MstResult, MstError> {
    let mwe: Vec<EdgeKey> = {
        let _t = telemetry::span("mwe-compute");
        graph.compute_mwe(pool)
    };
    llp_prim_par_with_mwe(graph, root, pool, &mwe)
}

/// Parallel LLP-Prim with a precomputed MWE table (see
/// [`llp_prim_seq_with_mwe`]).
pub fn llp_prim_par_with_mwe(
    graph: &CsrGraph,
    root: VertexId,
    pool: &ThreadPool,
    mwe: &[EdgeKey],
) -> Result<MstResult, MstError> {
    check_root(graph, root)?;
    let n = graph.num_vertices();
    assert_eq!(mwe.len(), n, "mwe table must cover every vertex");
    let mut stats = AlgoStats::default();
    let cfg = ParallelForConfig::with_grain(64);

    // arc_source[a] = the vertex whose adjacency list contains arc `a`;
    // lets the argmin key be computed in O(1) from an arc index.
    let arc_source: Vec<VertexId> = build_arc_sources(graph, pool);

    let fixed: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    let best: Vec<AtomicIndexMin> = (0..n).map(|_| AtomicIndexMin::new()).collect();
    let parent_arc: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(NO_INDEX)).collect();
    let rmw = Counter::new();
    let scans = Counter::new();
    let early = Counter::new();

    let mut frontier: Vec<VertexId> = Vec::new();
    let mut q_buf: Vec<VertexId> = Vec::new();
    let mut heap: LazyHeap<EdgeKey> = LazyHeap::new();
    let mut heap_fixes = 0u64;
    // Reused across waves: allocating bags per wave would dominate the many
    // short rounds on sparse graphs.
    let next: Bag<VertexId> = Bag::new(pool.threads());
    let q_bag: Bag<VertexId> = Bag::new(pool.threads());
    let mut q_wave: Vec<VertexId> = Vec::new();

    fixed[root as usize].store(true, Ordering::Relaxed);
    frontier.push(root);

    let key_of_arc = |a: u64| -> EdgeKey {
        let a = a as usize;
        let (targets, weights) = arc_slices(graph, a);
        EdgeKey::new(weights, arc_source[a], targets)
    };

    loop {
        // Parallel frontier waves, cascading early fixes.
        while !frontier.is_empty() {
            stats.parallel_regions += 1;
            {
                let _t = telemetry::span("frontier-wave");
                telemetry::record_value("frontier-size", frontier.len() as u64);
                let frontier_ref = &frontier;
                let fixed_ref = &fixed;
                let best_ref = &best;
                let parent_ref = &parent_arc;
                let mwe_ref = &mwe;
                let next_ref = &next;
                let q_ref = &q_bag;
                let rmw_ref = &rmw;
                let scans_ref = &scans;
                let early_ref = &early;
                let arc_source_ref = &arc_source;
                parallel_for_chunks_ctx(pool, 0..frontier.len(), cfg, |ctx, chunk| {
                    let seg = ctx.tid; // own bag segment: uncontended pushes
                    let mut local_scans = 0u64;
                    for fi in chunk {
                        let j = frontier_ref[fi];
                        let (lo, hi) = graph_arc_range(graph, j);
                        for a in lo..hi {
                            local_scans += 1;
                            let (k, w) = arc_slices(graph, a);
                            if fixed_ref[k as usize].load(Ordering::Relaxed) {
                                continue;
                            }
                            let key = EdgeKey::new(w, j, k);
                            if key == mwe_ref[j as usize] || key == mwe_ref[k as usize] {
                                rmw_ref.incr();
                                if fixed_ref[k as usize]
                                    .compare_exchange(
                                        false,
                                        true,
                                        Ordering::AcqRel,
                                        Ordering::Relaxed,
                                    )
                                    .is_ok()
                                {
                                    parent_ref[k as usize]
                                        .store(a as u64, Ordering::Release);
                                    early_ref.incr();
                                    next_ref.push(seg, k);
                                }
                            } else {
                                rmw_ref.incr();
                                let improved = best_ref[k as usize].propose_min_by(
                                    a as u64,
                                    |arc| {
                                        let (_, wt) = arc_slices(graph, arc as usize);
                                        (
                                            llp_graph::weight::f64_to_ordered(wt),
                                            arc_source_ref[arc as usize],
                                        )
                                    },
                                );
                                if improved {
                                    q_ref.push(seg, k);
                                }
                            }
                        }
                    }
                    scans_ref.add(local_scans);
                });
            }
            telemetry::record_value("bag-occupancy", next.len() as u64);
            next.drain_into(&mut frontier);
            // Q is flushed lazily: remember the candidates for heap entry.
            q_bag.drain_into(&mut q_wave);
            q_buf.append(&mut q_wave);
        }

        // Single-threaded heap phase (the paper's Q flush + one extraction).
        {
            let _t = telemetry::span("q-flush");
            telemetry::record_value("q-flush-size", q_buf.len() as u64);
            for &k in &q_buf {
                if !fixed[k as usize].load(Ordering::Relaxed) {
                    let arc = best[k as usize].load(Ordering::Acquire);
                    if arc == NO_INDEX {
                        // k was proposed by a thread whose `propose_min_by`
                        // lost every round *and* whose winning competitor's
                        // vertex got early-fixed later: nothing to insert.
                        // (Not reachable under the current propose/push
                        // protocol, but a stale entry must never turn into
                        // an out-of-bounds arc read in release builds.)
                        continue;
                    }
                    heap.push(key_of_arc(arc), k);
                }
            }
            q_buf.clear();
        }

        let _t = telemetry::span("heap-extract");
        telemetry::record_value("heap-size", heap.len() as u64);
        let mut reseeded = false;
        while let Some((key, k)) = heap.pop() {
            if fixed[k as usize].load(Ordering::Relaxed) {
                continue;
            }
            let arc = best[k as usize].load(Ordering::Acquire);
            if arc == NO_INDEX {
                // No surviving proposal for k (see the flush guard above):
                // drop the entry rather than dereference NO_INDEX.
                continue;
            }
            // The heap key was computed when k was flushed; `best[k]` may
            // have been improved by a *later* wave whose flush pushed a
            // second, fresher entry. Never trust a popped key without
            // re-reading `best[k]`: re-push under the fresh key and let the
            // heap re-order instead of fixing k through a stale arc.
            let fresh = key_of_arc(arc);
            if key != fresh {
                telemetry::counter_add("heap-stale-repush", 1);
                heap.push(fresh, k);
                continue;
            }
            fixed[k as usize].store(true, Ordering::Relaxed);
            parent_arc[k as usize].store(arc, Ordering::Relaxed);
            heap_fixes += 1;
            frontier.push(k);
            reseeded = true;
            break;
        }
        drop(_t);
        if !reseeded {
            break;
        }
    }

    // Collect the tree (single-threaded epilogue; all writes are visible
    // after the final pool barrier).
    let mut edges: Vec<Edge> = Vec::with_capacity(n - 1);
    let mut fixed_count = 0usize;
    for v in 0..n {
        if fixed[v].load(Ordering::Relaxed) {
            fixed_count += 1;
            if v as VertexId != root {
                let arc = parent_arc[v].load(Ordering::Relaxed) as usize;
                let (_, w) = arc_slices(graph, arc);
                edges.push(Edge::new(arc_source[arc], v as VertexId, w));
            }
        }
    }
    if fixed_count < n {
        return Err(MstError::Disconnected {
            reached: fixed_count,
            total: n,
        });
    }

    stats.heap_pushes = heap.pushes;
    stats.heap_pops = heap.pops;
    stats.heap_fixes = heap_fixes;
    stats.early_fixes = early.get();
    stats.edges_scanned = scans.get();
    stats.atomic_rmw = rmw.get();
    Ok(MstResult::from_edges(n, edges, stats))
}

/// Builds the arc → source-vertex table.
///
/// The fill is memory-bound, so it parallelises over *arc* chunks rather
/// than vertices (vertex chunks would be badly skewed on power-law
/// graphs). Each chunk locates its first source vertex by binary search
/// on the CSR offsets, then walks the ranges forward; chunks write
/// disjoint slices of `out`.
fn build_arc_sources(graph: &CsrGraph, pool: &ThreadPool) -> Vec<VertexId> {
    let _t = telemetry::span("arc-sources");
    let m = graph.num_arcs();
    let n = graph.num_vertices();
    let mut out = vec![0 as VertexId; m];
    if m == 0 {
        return out;
    }

    struct Ptr(*mut VertexId);
    // SAFETY: chunks are disjoint index ranges; each slot is written once.
    unsafe impl Sync for Ptr {}
    let ptr = Ptr(out.as_mut_ptr());
    let ptr = &ptr;
    parallel_for_chunks(
        pool,
        0..m,
        ParallelForConfig::with_grain(4096),
        move |chunk| {
            // First vertex whose arc range extends past the chunk start.
            let (mut lo_v, mut hi_v) = (0usize, n);
            while lo_v < hi_v {
                let mid = lo_v + (hi_v - lo_v) / 2;
                if graph_arc_range(graph, mid as VertexId).1 <= chunk.start {
                    lo_v = mid + 1;
                } else {
                    hi_v = mid;
                }
            }
            let mut v = lo_v;
            let mut a = chunk.start;
            while a < chunk.end {
                let (_, hi) = graph_arc_range(graph, v as VertexId);
                let stop = hi.min(chunk.end);
                for i in a..stop {
                    // SAFETY: `i` lies in this chunk only.
                    unsafe { *ptr.0.add(i) = v as VertexId };
                }
                a = a.max(stop);
                if hi <= chunk.end {
                    v += 1; // range exhausted (empty ranges just skip ahead)
                } else {
                    break;
                }
            }
        },
    );
    out
}

/// The arc index range of vertex `v` (positions in the CSR arc arrays).
#[inline]
fn graph_arc_range(graph: &CsrGraph, v: VertexId) -> (usize, usize) {
    graph.arc_range(v)
}

/// Target and weight of arc `a`.
#[inline]
fn arc_slices(graph: &CsrGraph, a: usize) -> (VertexId, f64) {
    graph.arc(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kruskal::kruskal;
    use crate::prim::prim_lazy;
    use llp_graph::samples::{fig1, FIG1_MST_WEIGHT};

    #[test]
    fn fig1_sequential_matches_paper() {
        let mst = llp_prim_seq(&fig1(), 0).unwrap();
        assert_eq!(mst.total_weight, FIG1_MST_WEIGHT);
        let mut ws: Vec<f64> = mst.edges.iter().map(|e| e.w).collect();
        ws.sort_by(f64::total_cmp);
        assert_eq!(ws, vec![2.0, 3.0, 4.0, 7.0]);
        // Paper trace: c, b, e fixed early; only d goes through the heap.
        assert_eq!(mst.stats.early_fixes, 3);
        assert_eq!(mst.stats.heap_fixes, 1);
    }

    #[test]
    fn fig1_parallel_matches() {
        for threads in [1, 2, 4] {
            let pool = ThreadPool::new(threads);
            let mst = llp_prim_par(&fig1(), 0, &pool).unwrap();
            assert_eq!(mst.total_weight, FIG1_MST_WEIGHT);
            assert_eq!(mst.stats.early_fixes, 3);
        }
    }

    #[test]
    fn matches_prim_on_random_connected_graphs() {
        let pool = ThreadPool::new(4);
        for seed in 0..8 {
            let g = llp_graph::generators::road_network(
                llp_graph::generators::RoadParams::usa_like(15, 15, seed),
            );
            let reference = prim_lazy(&g, 0).unwrap().canonical_keys();
            assert_eq!(
                llp_prim_seq(&g, 0).unwrap().canonical_keys(),
                reference,
                "seq seed {seed}"
            );
            assert_eq!(
                llp_prim_par(&g, 0, &pool).unwrap().canonical_keys(),
                reference,
                "par seed {seed}"
            );
        }
    }

    #[test]
    fn rmat_graphs_with_kruskal_oracle() {
        let pool = ThreadPool::new(4);
        for seed in 0..4 {
            let g = llp_graph::generators::rmat(
                llp_graph::generators::RmatParams::graph500(8, 16, seed),
            );
            let oracle = kruskal(&g);
            if oracle.num_trees == 1 {
                assert_eq!(
                    llp_prim_par(&g, 0, &pool).unwrap().canonical_keys(),
                    oracle.canonical_keys(),
                    "seed {seed}"
                );
            } else {
                assert!(llp_prim_par(&g, 0, &pool).is_err(), "seed {seed}");
            }
        }
    }

    #[test]
    fn root_invariance() {
        let g = fig1();
        let pool = ThreadPool::new(2);
        let base = llp_prim_seq(&g, 0).unwrap().canonical_keys();
        for root in 1..5 {
            assert_eq!(llp_prim_seq(&g, root).unwrap().canonical_keys(), base);
            assert_eq!(
                llp_prim_par(&g, root, &pool).unwrap().canonical_keys(),
                base
            );
        }
    }

    #[test]
    fn early_fixing_reduces_heap_traffic_vs_prim() {
        // The headline mechanism: LLP-Prim must do strictly fewer heap
        // operations than classic Prim on any nontrivial graph.
        for seed in 0..4 {
            let g = llp_graph::generators::road_network(
                llp_graph::generators::RoadParams::usa_like(40, 40, seed),
            );
            let prim = prim_lazy(&g, 0).unwrap();
            let llp = llp_prim_seq(&g, 0).unwrap();
            assert!(
                llp.stats.heap_ops() < prim.stats.heap_ops(),
                "seed {seed}: llp {} vs prim {}",
                llp.stats.heap_ops(),
                prim.stats.heap_ops()
            );
            assert!(llp.stats.early_fixes > 0);
        }
    }

    #[test]
    fn disconnected_graph_reports_error() {
        let g = CsrGraph::from_edges(4, &[Edge::new(0, 1, 1.0), Edge::new(2, 3, 1.0)]);
        assert!(matches!(
            llp_prim_seq(&g, 0),
            Err(MstError::Disconnected {
                reached: 2,
                total: 4
            })
        ));
        let pool = ThreadPool::new(2);
        assert!(llp_prim_par(&g, 0, &pool).is_err());
    }

    #[test]
    fn singleton_and_invalid_inputs() {
        assert!(llp_prim_seq(&CsrGraph::empty(1), 0).unwrap().edges.is_empty());
        assert_eq!(
            llp_prim_seq(&CsrGraph::empty(0), 0),
            Err(MstError::EmptyGraph)
        );
        assert!(matches!(
            llp_prim_seq(&CsrGraph::empty(2), 9),
            Err(MstError::InvalidRoot { .. })
        ));
    }

    #[test]
    fn equal_weights_resolve_canonically() {
        let g = llp_graph::samples::all_equal_weights(7);
        let pool = ThreadPool::new(4);
        let oracle = kruskal(&g).canonical_keys();
        assert_eq!(llp_prim_seq(&g, 2).unwrap().canonical_keys(), oracle);
        assert_eq!(llp_prim_par(&g, 2, &pool).unwrap().canonical_keys(), oracle);
    }

    #[test]
    fn arc_sources_parallel_fill_matches_sequential() {
        // Reference: the obvious sequential per-vertex fill.
        fn sequential(graph: &CsrGraph) -> Vec<llp_graph::VertexId> {
            let mut out = vec![0; graph.num_arcs()];
            for v in 0..graph.num_vertices() as u32 {
                let (lo, hi) = graph.arc_range(v);
                for slot in &mut out[lo..hi] {
                    *slot = v;
                }
            }
            out
        }
        use llp_runtime::rng::SmallRng;
        for seed in 0..24u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            // Mix of shapes, including graphs with many isolated vertices
            // (empty CSR ranges) and skewed degrees.
            let n = rng.gen_range(1usize..300);
            let m = rng.gen_range(0usize..900);
            let mut b = llp_graph::GraphBuilder::new(n);
            for _ in 0..m {
                let u = rng.gen_range(0u32..n as u32);
                let hub = rng.gen_bool(0.3);
                let v = if hub { 0 } else { rng.gen_range(0u32..n as u32) };
                if u != v {
                    b.add_edge(u, v, rng.gen_range(1u32..50) as f64);
                }
            }
            let g = b.build();
            let want = sequential(&g);
            for threads in [1, 2, 4, 7] {
                let pool = ThreadPool::new(threads);
                assert_eq!(
                    build_arc_sources(&g, &pool),
                    want,
                    "seed {seed} threads {threads}"
                );
            }
        }
        // Degenerate shapes.
        let empty = CsrGraph::empty(5);
        let pool = ThreadPool::new(3);
        assert!(build_arc_sources(&empty, &pool).is_empty());
    }

    #[test]
    fn contention_stress_equal_weight_graphs_stay_canonical() {
        // Adversarial input for the CAS protocol: every weight equal, so
        // every relaxation is a tie broken purely by (weight, source,
        // target) — the maximum number of propose_min_by races per vertex.
        // Oversubscribed pools (threads >> cores) force preemption inside
        // the frontier wave, the interleaving the release-mode heap-phase
        // guards exist for.
        let complete = llp_graph::samples::all_equal_weights(24);
        let grid = {
            let mut b = llp_graph::GraphBuilder::new(64);
            for r in 0..8u32 {
                for c in 0..8u32 {
                    let v = r * 8 + c;
                    if c + 1 < 8 {
                        b.add_edge(v, v + 1, 1.0);
                    }
                    if r + 1 < 8 {
                        b.add_edge(v, v + 8, 1.0);
                    }
                }
            }
            b.build()
        };
        for g in [&complete, &grid] {
            let oracle = kruskal(g).canonical_keys();
            for threads in [2, 4, 8, 16] {
                let pool = ThreadPool::new(threads);
                for rep in 0..8 {
                    let got = llp_prim_par(g, 0, &pool).unwrap();
                    assert_eq!(
                        got.canonical_keys(),
                        oracle,
                        "threads {threads} rep {rep}"
                    );
                    // Accounting survives contention: each non-root vertex
                    // fixed exactly once, by exactly one mechanism.
                    assert_eq!(
                        got.stats.early_fixes + got.stats.heap_fixes,
                        (g.num_vertices() - 1) as u64,
                        "threads {threads} rep {rep}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_deterministic_across_schedules() {
        let g = llp_graph::generators::erdos_renyi(400, 2400, 5);
        if kruskal(&g).num_trees != 1 {
            return; // want a connected instance for this seed
        }
        let oracle = kruskal(&g).canonical_keys();
        for threads in [1, 2, 3, 4] {
            let pool = ThreadPool::new(threads);
            for _ in 0..3 {
                assert_eq!(
                    llp_prim_par(&g, 0, &pool).unwrap().canonical_keys(),
                    oracle,
                    "threads {threads}"
                );
            }
        }
    }
}

//! Executable specification of LLP-Prim (the paper's Algorithm 4).
//!
//! Algorithm 4 states LLP-Prim directly from the definitions: the state
//! vector `G` holds every non-root vertex's *proposed parent edge*
//! (initially its minimum adjacent edge); a vertex is **fixed** when
//! following proposed edges reaches the root; `j` is **forbidden** when it
//! is the non-fixed endpoint of the minimum-weight edge in the cut
//! `E' = {(i,k) : fixed(i) ∧ ¬fixed(k)}`; advancing sets `G[j]` to that
//! cut edge.
//!
//! Run through the generic `llp-core` solver this is O(n·m) per advance —
//! useless as an implementation, invaluable as an oracle: the optimised
//! [`crate::llp_prim`] must produce exactly the same tree. Requires a
//! connected graph (the paper's stated precondition for LLP-Prim); on a
//! disconnected graph the predicate is not detectable (E' empties before
//! all vertices fix) and [`LlpPrimSpec::solve`] reports it.

use crate::result::{MstError, MstResult};
use crate::stats::AlgoStats;
use llp_core::{solve_sequential, LlpProblem};
use llp_graph::{CsrGraph, Edge, EdgeKey, VertexId};

/// The Algorithm 4 problem instance.
pub struct LlpPrimSpec<'g> {
    graph: &'g CsrGraph,
    root: VertexId,
    bottom: Vec<EdgeKey>,
}

impl<'g> LlpPrimSpec<'g> {
    /// Creates the instance rooted at `root`.
    pub fn new(graph: &'g CsrGraph, root: VertexId) -> Result<Self, MstError> {
        let n = graph.num_vertices();
        if n == 0 {
            return Err(MstError::EmptyGraph);
        }
        if root as usize >= n {
            return Err(MstError::InvalidRoot { root, total: n });
        }
        let bottom = (0..n as VertexId)
            .map(|v| graph.min_edge(v).unwrap_or_else(EdgeKey::infinite))
            .collect();
        Ok(LlpPrimSpec {
            graph,
            root,
            bottom,
        })
    }

    /// Which vertices are fixed under proposal vector `g`: those whose
    /// proposed-edge path reaches the root.
    fn fixed_set(&self, g: &[EdgeKey]) -> Vec<bool> {
        let n = self.graph.num_vertices();
        let mut fixed = vec![false; n];
        fixed[self.root as usize] = true;
        // Iterate to a fixpoint: v is fixed if its proposed edge leads to a
        // fixed vertex. (O(n²) worst case; this is a specification.)
        loop {
            let mut changed = false;
            for v in 0..n as VertexId {
                if fixed[v as usize] || g[v as usize] == EdgeKey::infinite() {
                    continue;
                }
                let to = g[v as usize].other(v);
                if fixed[to as usize] {
                    fixed[v as usize] = true;
                    changed = true;
                }
            }
            if !changed {
                return fixed;
            }
        }
    }

    /// The minimum cut edge of `E'(G)` with its non-fixed endpoint, if any.
    fn min_cut_edge(&self, g: &[EdgeKey]) -> Option<(EdgeKey, VertexId)> {
        let fixed = self.fixed_set(g);
        let mut best: Option<(EdgeKey, VertexId)> = None;
        for i in 0..self.graph.num_vertices() as VertexId {
            if !fixed[i as usize] {
                continue;
            }
            for (k, w) in self.graph.neighbors(i) {
                if fixed[k as usize] {
                    continue;
                }
                let key = EdgeKey::new(w, i, k);
                if best.is_none_or(|(b, _)| key < b) {
                    best = Some((key, k));
                }
            }
        }
        best
    }

    /// Solves the spec and assembles the MST.
    pub fn solve(&self) -> Result<MstResult, MstError> {
        let n = self.graph.num_vertices();
        let solution =
            solve_sequential(self).expect("advance never leaves the lattice in Algorithm 4");
        let fixed = self.fixed_set(&solution.state);
        let reached = fixed.iter().filter(|&&f| f).count();
        if reached < n {
            return Err(MstError::Disconnected { reached, total: n });
        }
        let mut stats = AlgoStats::default();
        stats.rounds = solution.stats.rounds;
        let edges: Vec<Edge> = (0..n as VertexId)
            .filter(|&v| v != self.root)
            .map(|v| {
                let key = solution.state[v as usize];
                Edge::new(key.other(v), v, key.weight())
            })
            .collect();
        Ok(MstResult::from_edges(n, edges, stats))
    }
}

impl LlpProblem for LlpPrimSpec<'_> {
    type State = EdgeKey;

    fn num_indices(&self) -> usize {
        self.graph.num_vertices()
    }

    fn bottom(&self, j: usize) -> EdgeKey {
        self.bottom[j]
    }

    fn forbidden(&self, g: &[EdgeKey], j: usize) -> bool {
        // The root never proposes; isolated vertices are unreachable.
        if j as VertexId == self.root {
            return false;
        }
        match self.min_cut_edge(g) {
            Some((_, k)) => k == j as VertexId,
            None => false,
        }
    }

    fn advance(&self, g: &[EdgeKey], j: usize) -> Option<EdgeKey> {
        let (key, k) = self.min_cut_edge(g).expect("forbidden implies cut edge");
        debug_assert_eq!(k, j as VertexId);
        Some(key)
    }

    fn name(&self) -> &str {
        "llp-prim-spec"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kruskal::kruskal;
    use crate::llp_prim::llp_prim_seq;
    use llp_graph::samples::{fig1, FIG1_MST_WEIGHT};

    #[test]
    fn fig1_spec_finds_the_mst() {
        let g = fig1();
        let spec = LlpPrimSpec::new(&g, 0).unwrap();
        let mst = spec.solve().unwrap();
        assert_eq!(mst.total_weight, FIG1_MST_WEIGHT);
    }

    #[test]
    fn fig1_bottom_matches_paper_initial_vector() {
        let g = fig1();
        let spec = LlpPrimSpec::new(&g, 0).unwrap();
        // Paper: initially G[b]=3, G[c]=3, G[d]=2, G[e]=2.
        assert_eq!(spec.bottom(1).weight(), 3.0);
        assert_eq!(spec.bottom(2).weight(), 3.0);
        assert_eq!(spec.bottom(3).weight(), 2.0);
        assert_eq!(spec.bottom(4).weight(), 2.0);
    }

    #[test]
    fn spec_matches_optimised_llp_prim() {
        for seed in 0..5 {
            let g = llp_graph::generators::road_network(
                llp_graph::generators::RoadParams::usa_like(5, 6, seed),
            );
            let spec = LlpPrimSpec::new(&g, 0).unwrap().solve().unwrap();
            let fast = llp_prim_seq(&g, 0).unwrap();
            assert_eq!(
                spec.canonical_keys(),
                fast.canonical_keys(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn spec_matches_kruskal_on_tiny_random_graphs() {
        for seed in 0..8 {
            let g = llp_graph::generators::erdos_renyi(12, 40, seed);
            if kruskal(&g).num_trees != 1 {
                continue;
            }
            let spec = LlpPrimSpec::new(&g, 0).unwrap().solve().unwrap();
            assert_eq!(
                spec.canonical_keys(),
                kruskal(&g).canonical_keys(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn disconnected_detected() {
        let g = CsrGraph::from_edges(4, &[Edge::new(0, 1, 1.0), Edge::new(2, 3, 1.0)]);
        let spec = LlpPrimSpec::new(&g, 0).unwrap();
        assert!(matches!(
            spec.solve(),
            Err(MstError::Disconnected {
                reached: 2,
                total: 4
            })
        ));
    }

    #[test]
    fn invalid_inputs() {
        assert!(matches!(
            LlpPrimSpec::new(&CsrGraph::empty(0), 0),
            Err(MstError::EmptyGraph)
        ));
        assert!(matches!(
            LlpPrimSpec::new(&CsrGraph::empty(2), 7),
            Err(MstError::InvalidRoot { .. })
        ));
    }
}

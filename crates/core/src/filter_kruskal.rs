//! Filter-Kruskal (Osipov–Sanders–Singler).
//!
//! The practical Kruskal variant: quicksort-style pivot partitioning where
//! the *light* half is solved first and the *heavy* half is **filtered** —
//! edges whose endpoints the light half already connected are discarded
//! without ever being sorted. On random weights the expected work drops
//! from O(m log m) to O(m + n log n log (m/n)); the paper's §III discusses
//! Kruskal's sorting bottleneck, and this is the standard engineering
//! answer to it, included here as an additional baseline.

use crate::result::MstResult;
use crate::stats::AlgoStats;
use crate::union_find::UnionFind;
use llp_graph::{CsrGraph, Edge};
use llp_runtime::telemetry;

/// Below this many edges, sort-and-scan beats further partitioning.
const BASE_CASE: usize = 1024;

/// Filter-Kruskal; computes the canonical MSF.
pub fn filter_kruskal(graph: &CsrGraph) -> MstResult {
    let n = graph.num_vertices();
    let mut edges: Vec<Edge> = graph.edges().collect();
    let mut uf = UnionFind::new(n);
    let mut chosen: Vec<Edge> = Vec::with_capacity(n.saturating_sub(1));
    let mut stats = AlgoStats::default();
    // Introsort-style depth budget: degenerate pivot sequences fall back to
    // sort-and-scan instead of deep recursion.
    let depth_budget = 2 * (usize::BITS - edges.len().leading_zeros()) as usize + 16;
    {
        let _t = telemetry::span("partition");
        telemetry::record_value("edges-input", edges.len() as u64);
        recurse(&mut edges, &mut uf, &mut chosen, &mut stats, depth_budget);
    }
    chosen.sort_unstable_by_key(Edge::key); // canonical output order
    MstResult::from_edges(n, chosen, stats)
}

fn recurse(
    edges: &mut Vec<Edge>,
    uf: &mut UnionFind,
    chosen: &mut Vec<Edge>,
    stats: &mut AlgoStats,
    depth_budget: usize,
) {
    // The heavy half is handled by looping (tail recursion elimination);
    // only the light half recurses.
    loop {
        if edges.is_empty() {
            return;
        }
        if edges.len() <= BASE_CASE || depth_budget == 0 {
            edges.sort_unstable_by_key(Edge::key);
            for e in edges.drain(..) {
                stats.edges_scanned += 1;
                if uf.union(e.u, e.v) {
                    chosen.push(e);
                }
            }
            return;
        }
        stats.rounds += 1; // partitioning levels

        // Median-of-three pivot on the canonical key. Keys are distinct, so
        // the max of the sample is strictly above the pivot: both halves
        // are non-empty and every level makes progress.
        let a = edges[0].key();
        let b = edges[edges.len() / 2].key();
        let c = edges[edges.len() - 1].key();
        let pivot = {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            if c < lo {
                lo
            } else if c > hi {
                hi
            } else {
                c
            }
        };

        let mut light: Vec<Edge> = Vec::new();
        let mut heavy: Vec<Edge> = Vec::new();
        for e in edges.drain(..) {
            if e.key() <= pivot {
                light.push(e);
            } else {
                heavy.push(e);
            }
        }
        recurse(&mut light, uf, chosen, stats, depth_budget - 1);
        // Filter step: heavy edges already intra-component cannot be in the
        // MSF — drop them before doing any sorting work on them.
        heavy.retain(|e| {
            stats.edges_scanned += 1;
            uf.find(e.u) != uf.find(e.v)
        });
        *edges = heavy; // loop continues on the filtered heavy half
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kruskal::kruskal;
    use llp_graph::samples::{fig1, small_forest, FIG1_MST_WEIGHT};

    #[test]
    fn fig1_mst() {
        let mst = filter_kruskal(&fig1());
        assert_eq!(mst.total_weight, FIG1_MST_WEIGHT);
        assert_eq!(mst.canonical_keys(), kruskal(&fig1()).canonical_keys());
    }

    #[test]
    fn forest_support() {
        let msf = filter_kruskal(&small_forest());
        assert_eq!(msf.canonical_keys(), kruskal(&small_forest()).canonical_keys());
        assert_eq!(msf.num_trees, 3);
    }

    #[test]
    fn matches_kruskal_above_base_case() {
        // Enough edges to force real partitioning levels.
        for seed in 0..4 {
            let g = llp_graph::generators::erdos_renyi(800, 6000, seed);
            let fk = filter_kruskal(&g);
            assert_eq!(fk.canonical_keys(), kruskal(&g).canonical_keys(), "seed {seed}");
            assert!(fk.stats.rounds > 0, "partitioning should trigger");
        }
    }

    #[test]
    fn filtering_skips_work_on_dense_graphs() {
        // On a dense graph most heavy edges are filtered: fewer scans than
        // the m edges classic Kruskal sorts (scans here count base-case
        // emission + filter checks, both cheaper than sorting).
        let g = llp_graph::generators::complete(120, 7);
        let fk = filter_kruskal(&g);
        assert_eq!(fk.canonical_keys(), kruskal(&g).canonical_keys());
    }

    #[test]
    fn duplicate_weights_canonical() {
        let g = llp_graph::samples::all_equal_weights(60);
        assert_eq!(
            filter_kruskal(&g).canonical_keys(),
            kruskal(&g).canonical_keys()
        );
    }

    #[test]
    fn degenerate_inputs() {
        assert!(filter_kruskal(&CsrGraph::empty(0)).edges.is_empty());
        assert_eq!(filter_kruskal(&CsrGraph::empty(7)).num_trees, 7);
    }

    #[test]
    fn road_and_rmat_agreement() {
        let road = llp_graph::generators::road_network(
            llp_graph::generators::RoadParams::usa_like(40, 40, 2),
        );
        assert_eq!(
            filter_kruskal(&road).canonical_keys(),
            kruskal(&road).canonical_keys()
        );
        let rmat = llp_graph::generators::rmat(
            llp_graph::generators::RmatParams::graph500(10, 16, 2),
        );
        assert_eq!(
            filter_kruskal(&rmat).canonical_keys(),
            kruskal(&rmat).canonical_keys()
        );
    }
}

//! Filter-Kruskal (Osipov–Sanders–Singler), sequential and parallel.
//!
//! The practical Kruskal variant: quicksort-style pivot partitioning where
//! the *light* half is solved first and the *heavy* half is **filtered** —
//! edges whose endpoints the light half already connected are discarded
//! without ever being sorted. On random weights the expected work drops
//! from O(m log m) to O(m + n log n log (m/n)); the paper's §III discusses
//! Kruskal's sorting bottleneck, and this is the standard engineering
//! answer to it.
//!
//! [`filter_kruskal_par`] runs the data-parallel steps on the thread pool:
//! the pivot partition uses the scan-based three-way partition from
//! [`llp_runtime::partition`], the filter drops intra-component edges with
//! [`retain_parallel`] over concurrent *read-only* union-find lookups
//! ([`UnionFind::find_immutable`] snapshots roots without path compression,
//! so no writes race; a sequential epilogue re-compresses the survivors'
//! paths), and base-case sorts go through the parallel sample sort. The
//! union operations themselves stay sequential — they are O(n α(n)) total,
//! far below the O(m) partition/filter traffic the pool absorbs.
//!
//! Both variants share one recursion, so their telemetry — the `partition`
//! / `filter` spans and the `fk-partition-rounds`, `fk-filter-kept`,
//! `fk-filter-dropped` counters plus the `fk-recursion-depth` /
//! `fk-base-case` series — is identical for identical inputs, which the
//! golden-trace test in `tests/paper_traces.rs` pins down.

use crate::result::MstResult;
use crate::stats::AlgoStats;
use crate::union_find::UnionFind;
use llp_graph::{CsrGraph, Edge, EdgeKey};
use llp_runtime::partition::{partition3_in_place, partition3_seq, retain_parallel};
use llp_runtime::sort::par_sort_by_key;
use llp_runtime::{telemetry, ThreadPool};

/// Below this many edges, sort-and-scan beats further partitioning.
const BASE_CASE: usize = 1024;

/// The parallel variant partitions a little longer: partition and filter
/// passes scale with the pool, the base-case union scan does not.
const PAR_BASE_CASE: usize = 4096;

/// Filter-Kruskal; computes the canonical MSF.
pub fn filter_kruskal(graph: &CsrGraph) -> MstResult {
    run(graph, None, BASE_CASE)
}

/// [`filter_kruskal`] with an explicit base-case threshold (testing knob:
/// small thresholds force deterministic deep recursions on tiny graphs).
pub fn filter_kruskal_with_base_case(graph: &CsrGraph, base_case: usize) -> MstResult {
    run(graph, None, base_case)
}

/// Parallel Filter-Kruskal: partition, filter and base-case sorts on the
/// pool; computes the canonical MSF.
pub fn filter_kruskal_par(graph: &CsrGraph, pool: &ThreadPool) -> MstResult {
    run(graph, Some(pool), PAR_BASE_CASE)
}

/// [`filter_kruskal_par`] with an explicit base-case threshold.
pub fn filter_kruskal_par_with_base_case(
    graph: &CsrGraph,
    pool: &ThreadPool,
    base_case: usize,
) -> MstResult {
    run(graph, Some(pool), base_case)
}

fn run(graph: &CsrGraph, pool: Option<&ThreadPool>, base_case: usize) -> MstResult {
    let n = graph.num_vertices();
    let mut edges: Vec<Edge> = graph.edges().collect();
    // Introsort-style depth budget: degenerate pivot sequences fall back to
    // sort-and-scan instead of deep recursion.
    let depth_budget = 2 * (usize::BITS - edges.len().leading_zeros()) as usize + 16;
    let mut ctx = FilterCtx {
        uf: UnionFind::new(n),
        chosen: Vec::with_capacity(n.saturating_sub(1)),
        stats: AlgoStats::default(),
        pool,
        base_case: base_case.max(1),
    };
    {
        let _t = telemetry::span("partition");
        telemetry::record_value("edges-input", edges.len() as u64);
        ctx.recurse(&mut edges, depth_budget, 0);
    }
    let FilterCtx {
        mut chosen, stats, ..
    } = ctx;
    match pool {
        // canonical output order
        Some(pool) => par_sort_by_key(pool, &mut chosen, Edge::key),
        None => chosen.sort_unstable_by_key(Edge::key),
    }
    MstResult::from_edges(n, chosen, stats)
}

/// State threaded through the recursion; `pool: None` is the sequential
/// variant.
struct FilterCtx<'p> {
    uf: UnionFind,
    chosen: Vec<Edge>,
    stats: AlgoStats,
    pool: Option<&'p ThreadPool>,
    base_case: usize,
}

impl FilterCtx<'_> {
    fn recurse(&mut self, edges: &mut Vec<Edge>, depth_budget: usize, depth: u64) {
        // The heavy half is handled by looping (tail recursion elimination);
        // only the light half recurses.
        loop {
            if edges.is_empty() {
                return;
            }
            if edges.len() <= self.base_case || depth_budget == 0 {
                telemetry::record_value("fk-base-case", edges.len() as u64);
                self.sort_and_scan(edges);
                return;
            }
            self.stats.rounds += 1; // partitioning levels
            telemetry::counter_add("fk-partition-rounds", 1);
            telemetry::record_value("fk-recursion-depth", depth);

            let pivot = median_of_three(edges);
            let light_len = self.partition(edges, pivot);
            let mut heavy = edges.split_off(light_len);
            self.recurse(edges, depth_budget - 1, depth + 1);
            self.filter(&mut heavy);
            *edges = heavy; // loop continues on the filtered heavy half
        }
    }

    /// Three-way pivot partition; returns the light length (keys <= pivot).
    fn partition(&mut self, edges: &mut [Edge], pivot: EdgeKey) -> usize {
        let (lt, eq) = match self.pool {
            Some(pool) => {
                self.stats.parallel_regions += 1;
                partition3_in_place(pool, edges, |e| e.key().cmp(&pivot))
            }
            None => partition3_seq(edges, |e| e.key().cmp(&pivot)),
        };
        lt + eq
    }

    /// Base case: sort the remaining edges and grow the forest.
    fn sort_and_scan(&mut self, edges: &mut Vec<Edge>) {
        match self.pool {
            Some(pool) => {
                self.stats.parallel_regions += 1;
                par_sort_by_key(pool, edges, Edge::key);
            }
            None => edges.sort_unstable_by_key(Edge::key),
        }
        for e in edges.drain(..) {
            self.stats.edges_scanned += 1;
            if self.uf.union(e.u, e.v) {
                self.chosen.push(e);
            }
        }
    }

    /// Filter step: heavy edges already intra-component cannot be in the
    /// MSF — drop them before doing any sorting work on them.
    fn filter(&mut self, heavy: &mut Vec<Edge>) {
        let _t = telemetry::span("filter");
        let before = heavy.len();
        match self.pool {
            Some(pool) => {
                self.stats.parallel_regions += 1;
                // Concurrent lookups snapshot roots read-only: no path
                // compression during the parallel phase, so threads never
                // write the parent array they are racing to read.
                let uf: &UnionFind = &self.uf;
                retain_parallel(pool, heavy, |e| {
                    uf.find_immutable(e.u) != uf.find_immutable(e.v)
                });
                // Sequential epilogue: path-halve the survivors' endpoints
                // so later rounds keep union-find's amortised bounds.
                for e in heavy.iter() {
                    self.uf.find(e.u);
                    self.uf.find(e.v);
                }
            }
            None => {
                let uf = &mut self.uf;
                heavy.retain(|e| uf.find(e.u) != uf.find(e.v));
            }
        }
        self.stats.edges_scanned += before as u64;
        telemetry::counter_add("fk-filter-kept", heavy.len() as u64);
        telemetry::counter_add("fk-filter-dropped", (before - heavy.len()) as u64);
    }
}

/// Median-of-three pivot on the canonical key. Keys are distinct (short of
/// exact duplicate edges), so the max of the sample is strictly above the
/// pivot: both halves are non-empty and every level makes progress.
fn median_of_three(edges: &[Edge]) -> EdgeKey {
    let a = edges[0].key();
    let b = edges[edges.len() / 2].key();
    let c = edges[edges.len() - 1].key();
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    if c < lo {
        lo
    } else if c > hi {
        hi
    } else {
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kruskal::kruskal;
    use llp_graph::samples::{fig1, small_forest, FIG1_MST_WEIGHT};

    #[test]
    fn fig1_mst() {
        let mst = filter_kruskal(&fig1());
        assert_eq!(mst.total_weight, FIG1_MST_WEIGHT);
        assert_eq!(mst.canonical_keys(), kruskal(&fig1()).canonical_keys());
    }

    #[test]
    fn fig1_mst_par() {
        let pool = ThreadPool::new(4);
        let mst = filter_kruskal_par(&fig1(), &pool);
        assert_eq!(mst.total_weight, FIG1_MST_WEIGHT);
        assert_eq!(mst.canonical_keys(), kruskal(&fig1()).canonical_keys());
    }

    #[test]
    fn forest_support() {
        let msf = filter_kruskal(&small_forest());
        assert_eq!(msf.canonical_keys(), kruskal(&small_forest()).canonical_keys());
        assert_eq!(msf.num_trees, 3);
        let pool = ThreadPool::new(2);
        let msf_par = filter_kruskal_par(&small_forest(), &pool);
        assert_eq!(msf_par.canonical_keys(), msf.canonical_keys());
        assert_eq!(msf_par.num_trees, 3);
    }

    #[test]
    fn matches_kruskal_above_base_case() {
        // Enough edges to force real partitioning levels.
        let pool = ThreadPool::new(4);
        for seed in 0..4 {
            let g = llp_graph::generators::erdos_renyi(800, 6000, seed);
            let oracle = kruskal(&g).canonical_keys();
            let fk = filter_kruskal(&g);
            assert_eq!(fk.canonical_keys(), oracle, "seed {seed}");
            assert!(fk.stats.rounds > 0, "partitioning should trigger");
            let fkp = filter_kruskal_par_with_base_case(&g, &pool, 1024);
            assert_eq!(fkp.canonical_keys(), oracle, "par, seed {seed}");
            assert!(fkp.stats.rounds > 0, "parallel partitioning should trigger");
            assert!(fkp.stats.parallel_regions > 0);
        }
    }

    #[test]
    fn seq_and_par_trace_identically() {
        // Same base case => same pivots, same partition sizes, same filter
        // outcomes: the machine-independent stats must agree exactly.
        let pool = ThreadPool::new(4);
        for seed in [3u64, 9] {
            let g = llp_graph::generators::erdos_renyi(600, 5000, seed);
            let s = filter_kruskal_with_base_case(&g, 256);
            let p = filter_kruskal_par_with_base_case(&g, &pool, 256);
            assert_eq!(s.canonical_keys(), p.canonical_keys(), "seed {seed}");
            assert_eq!(s.stats.rounds, p.stats.rounds, "seed {seed}");
            assert_eq!(s.stats.edges_scanned, p.stats.edges_scanned, "seed {seed}");
        }
    }

    #[test]
    fn filtering_skips_work_on_dense_graphs() {
        // On a dense graph most heavy edges are filtered: fewer scans than
        // the m edges classic Kruskal sorts (scans here count base-case
        // emission + filter checks, both cheaper than sorting).
        let g = llp_graph::generators::complete(120, 7);
        let fk = filter_kruskal(&g);
        assert_eq!(fk.canonical_keys(), kruskal(&g).canonical_keys());
    }

    #[test]
    fn duplicate_weights_canonical() {
        let g = llp_graph::samples::all_equal_weights(60);
        assert_eq!(
            filter_kruskal(&g).canonical_keys(),
            kruskal(&g).canonical_keys()
        );
        let pool = ThreadPool::new(2);
        assert_eq!(
            filter_kruskal_par_with_base_case(&g, &pool, 8).canonical_keys(),
            kruskal(&g).canonical_keys()
        );
    }

    #[test]
    fn degenerate_inputs() {
        assert!(filter_kruskal(&CsrGraph::empty(0)).edges.is_empty());
        assert_eq!(filter_kruskal(&CsrGraph::empty(7)).num_trees, 7);
        let pool = ThreadPool::new(2);
        assert!(filter_kruskal_par(&CsrGraph::empty(0), &pool).edges.is_empty());
        assert_eq!(filter_kruskal_par(&CsrGraph::empty(7), &pool).num_trees, 7);
    }

    #[test]
    fn road_and_rmat_agreement() {
        let pool = ThreadPool::new(4);
        let road = llp_graph::generators::road_network(
            llp_graph::generators::RoadParams::usa_like(40, 40, 2),
        );
        let oracle = kruskal(&road).canonical_keys();
        assert_eq!(filter_kruskal(&road).canonical_keys(), oracle);
        assert_eq!(filter_kruskal_par(&road, &pool).canonical_keys(), oracle);
        let rmat = llp_graph::generators::rmat(
            llp_graph::generators::RmatParams::graph500(10, 16, 2),
        );
        let oracle = kruskal(&rmat).canonical_keys();
        assert_eq!(filter_kruskal(&rmat).canonical_keys(), oracle);
        assert_eq!(filter_kruskal_par(&rmat, &pool).canonical_keys(), oracle);
    }
}

//! Fully dynamic MSF: batched edge insertions and deletions as epochs on
//! the lattice.
//!
//! The paper's fixed-point framing (and Alves & Garg's common LLP
//! framework) treats MSF construction as advancing a global state vector
//! up a lattice until a predicate holds. Nothing in that framing requires
//! starting from the bottom: a *batch of updates* re-enters the lattice
//! from a warm start — the previous epoch's certified forest — and only
//! the state the batch invalidates is recomputed. [`DynamicMsf`] realises
//! that as an epoch loop over the machinery earlier PRs built:
//!
//! * **Insertions** resolve via the **cycle property against the
//!   [`PathMaxIndex`]** — the certifier's query becomes the update rule.
//!   An inserted edge `e = (u, v, w)` whose endpoints share a tree enters
//!   the forest iff its key beats `path_max(u, v)`; when it wins it
//!   *evicts* exactly that bottleneck edge (the classic exchange
//!   argument, exact for a single insert per tree). Inserts that lose
//!   stay in the graph as non-tree edges. Classification of the whole
//!   batch is a parallel read-only sweep over the frozen epoch index
//!   (chaos-instrumented chunk claims, like every other sweep in the
//!   workspace).
//! * **Deletions** (and every insert the fast path cannot decide exactly
//!   — trees receiving several inserts, inserts linking two trees, trees
//!   that lost a tree edge) fall back to a **scoped re-run of the
//!   flat-memory contraction engine** over only the *dirty* components:
//!   the same decompose-locally-then-recombine shape as Sanders &
//!   Schimek's Borůvka-filter, but scoped by the previous epoch's
//!   component map instead of by shard. Because edges never cross
//!   component boundaries (cross-tree inserts dirty both trees), the MSF
//!   of the dirty region unioned with the untouched trees is the MSF of
//!   the whole graph — and because the dirty vertices are relabelled
//!   *monotonically*, `EdgeKey` tie-breaks are preserved and the scoped
//!   run returns exactly the canonical forest restriction.
//! * **Certification**: every epoch snapshot is re-certified with the
//!   oracle-free sweep ([`certify_against`]) against the freshly rebuilt
//!   index, so a served epoch is never weaker than the from-scratch
//!   pipeline. The lattice never retracts: a certified epoch is a fixed
//!   point, and the next batch advances from it.
//!
//! Failure posture: inputs are validated (range, self-loops, non-finite
//! weights) *before* any state is touched, so user errors are clean
//! [`DynamicError`]s with the structure untouched. An error *after*
//! mutation began ([`DynamicError::Overflow`] /
//! [`DynamicError::Certify`]) indicates an internal invariant violation;
//! the structure must then be discarded and rebuilt — it never serves an
//! uncertified epoch.

use crate::certify::certify_against;
use crate::index::PathMaxIndex;
use crate::llp_boruvka::llp_boruvka_from_edges;
use crate::result::{ForestOverflow, MstResult};
use crate::stats::AlgoStats;
use crate::verify::VerifyError;
use llp_graph::{CsrGraph, Edge, EdgeKey, VertexId};
use llp_runtime::sync::Mutex;
use llp_runtime::{parallel_for_chunks, telemetry, ParallelForConfig, ThreadPool};
use std::collections::HashMap;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

/// Below this many fresh inserts the classification sweep runs inline —
/// the parallel fan-out costs more than the queries.
const PAR_CLASSIFY_THRESHOLD: usize = 64;

/// A rejected or failed dynamic update.
#[derive(Debug, Clone, PartialEq)]
pub enum DynamicError {
    /// An update named a vertex outside `0..n`.
    OutOfRange(Edge),
    /// An inserted edge had both endpoints equal.
    SelfLoop(Edge),
    /// An inserted edge carried a NaN or infinite weight.
    NonFiniteWeight(Edge),
    /// The epoch assembled more tree edges than vertices — an internal
    /// invariant violation (the batched exchange produced a non-forest).
    Overflow(ForestOverflow),
    /// The epoch snapshot failed certification — an internal invariant
    /// violation; the structure must be rebuilt from scratch.
    Certify(VerifyError),
}

impl std::fmt::Display for DynamicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DynamicError::OutOfRange(e) => {
                write!(f, "update ({}, {}) names a vertex out of range", e.u, e.v)
            }
            DynamicError::SelfLoop(e) => write!(f, "insert ({}, {}) is a self-loop", e.u, e.v),
            DynamicError::NonFiniteWeight(e) => write!(
                f,
                "insert ({}, {}) carries non-finite weight {}",
                e.u, e.v, e.w
            ),
            DynamicError::Overflow(o) => write!(f, "epoch produced a non-forest: {o}"),
            DynamicError::Certify(e) => write!(f, "epoch snapshot failed certification: {e}"),
        }
    }
}

impl std::error::Error for DynamicError {}

impl From<VerifyError> for DynamicError {
    fn from(e: VerifyError) -> Self {
        DynamicError::Certify(e)
    }
}

/// What one [`DynamicMsf::apply_batch`] epoch did, with per-phase wall
/// clock — the numbers the dynamic bench aggregates into
/// `llp-mst-dynamic-report/v1`.
#[derive(Debug, Clone, Copy, Default)]
pub struct EpochReport {
    /// Epoch number after this batch (starts at 0 for the initial build).
    pub epoch: u64,
    /// Fresh edges added to the graph.
    pub inserts_applied: usize,
    /// Inserts naming an edge already present (no-ops).
    pub inserts_duplicate: usize,
    /// Edges removed from the graph.
    pub deletes_applied: usize,
    /// Deletes naming an edge not present (no-ops).
    pub deletes_missing: usize,
    /// Inserts that entered the forest by evicting their bottleneck edge
    /// (the cycle-property fast path).
    pub fast_swaps: usize,
    /// Inserts settled as non-tree edges by one path-max query.
    pub fast_rejects: usize,
    /// Inserts joining two previously separate trees (resolved in the
    /// scoped re-run).
    pub links: usize,
    /// Trees of the previous epoch that went through the scoped re-run.
    pub dirty_components: usize,
    /// Vertices handed to the scoped contraction re-run.
    pub rebuild_vertices: usize,
    /// Edges handed to the scoped contraction re-run.
    pub rebuild_edges: usize,
    /// Whether the forest changed (and the index was rebuilt).
    pub tree_changed: bool,
    /// Classification sweep, milliseconds.
    pub classify_ms: f64,
    /// Scoped contraction re-run, milliseconds.
    pub rebuild_ms: f64,
    /// Index rebuild, milliseconds.
    pub index_ms: f64,
    /// Certification sweep, milliseconds.
    pub certify_ms: f64,
}

impl EpochReport {
    /// Updates this epoch actually consumed (applied + no-ops) — the
    /// numerator of the bench's edges/sec.
    pub fn updates(&self) -> usize {
        self.inserts_applied + self.inserts_duplicate + self.deletes_applied + self.deletes_missing
    }
}

/// How a fresh insert relates to the frozen epoch index.
#[derive(Clone, Copy)]
enum InsertClass {
    /// Endpoints in different trees: the insert merges them (scoped
    /// re-run decides the resulting forest).
    Link { cu: u32, cv: u32 },
    /// Endpoints share a tree: the cycle property decides, with the
    /// bottleneck already in hand for the eviction.
    Intra {
        comp: u32,
        beats: bool,
        bottleneck: EdgeKey,
    },
}

/// An epoch-based fully dynamic minimum spanning forest.
///
/// Owns the current graph (adjacency lists), the certified forest of the
/// latest epoch, and its [`PathMaxIndex`]. [`DynamicMsf::apply_batch`]
/// advances one epoch; queries go through [`DynamicMsf::index`], which is
/// an `Arc` so a server can keep answering from a snapshot while the next
/// epoch is being applied.
pub struct DynamicMsf {
    n: usize,
    /// Undirected adjacency, both directions. The graph is simple:
    /// parallel edges are deduplicated on construction (smallest key
    /// wins) and duplicate inserts are no-ops.
    adj: Vec<Vec<(VertexId, f64)>>,
    /// Current undirected edge count.
    m: usize,
    /// The certified forest of the latest epoch.
    msf: MstResult,
    /// Path-max index over `msf`, shared with snapshot readers.
    index: Arc<PathMaxIndex>,
    /// Batches applied so far.
    epoch: u64,
    /// Whether each epoch ends with a full certification sweep
    /// (default: yes — an epoch that is not certified is not published).
    certify_epochs: bool,
}

impl DynamicMsf {
    /// Builds the initial epoch from a CSR graph: flat-memory contraction
    /// for the forest, [`PathMaxIndex`] for queries, certification sweep
    /// before anything is served.
    pub fn new(graph: &CsrGraph, pool: &ThreadPool) -> Result<DynamicMsf, DynamicError> {
        Self::from_edges(graph.num_vertices(), graph.edges().collect(), pool)
    }

    /// Builds the initial epoch from a raw undirected edge list.
    ///
    /// Validates endpoints, self-loops and weight finiteness; parallel
    /// edges are deduplicated keeping the smallest [`EdgeKey`] (the only
    /// one the canonical MSF can ever use).
    pub fn from_edges(
        n: usize,
        edges: Vec<Edge>,
        pool: &ThreadPool,
    ) -> Result<DynamicMsf, DynamicError> {
        let _s = telemetry::span("dynamic-build");
        let mut adj: Vec<Vec<(VertexId, f64)>> = vec![Vec::new(); n];
        let mut m = 0usize;
        let mut kept: Vec<Edge> = Vec::with_capacity(edges.len());
        for e in edges {
            validate_insert(&e, n)?;
            let (lo, hi) = e.canonical_endpoints();
            match adj[lo as usize].iter().position(|&(x, _)| x == hi) {
                Some(i) => {
                    // Parallel edge: keep the smaller key.
                    let old = adj[lo as usize][i].1;
                    if e.key() < EdgeKey::new(old, lo, hi) {
                        adj[lo as usize][i].1 = e.w;
                        let j = adj[hi as usize]
                            .iter()
                            .position(|&(x, _)| x == lo)
                            .expect("mirror arc");
                        adj[hi as usize][j].1 = e.w;
                    }
                }
                None => {
                    adj[lo as usize].push((hi, e.w));
                    adj[hi as usize].push((lo, e.w));
                    m += 1;
                }
            }
        }
        // Emit each undirected edge once, post-dedup.
        for (u, list) in adj.iter().enumerate() {
            for &(v, w) in list {
                if (u as u32) < v {
                    kept.push(Edge::new(u as u32, v, w));
                }
            }
        }

        let msf = llp_boruvka_from_edges(n, kept, pool);
        let index = Arc::new(PathMaxIndex::build_par(n, &msf, pool)?);
        let this = DynamicMsf {
            n,
            adj,
            m,
            msf,
            index,
            epoch: 0,
            certify_epochs: true,
        };
        this.certify_now(pool)?;
        Ok(this)
    }

    /// Vertices of the graph (fixed for the structure's lifetime).
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Current undirected edge count.
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Batches applied so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The certified forest of the latest epoch.
    pub fn msf(&self) -> &MstResult {
        &self.msf
    }

    /// The latest epoch's query index. Clone the `Arc` to keep serving a
    /// snapshot while the next batch applies.
    pub fn index(&self) -> &Arc<PathMaxIndex> {
        &self.index
    }

    /// Disables (or re-enables) the per-epoch certification sweep. Only
    /// meant for benchmarking the raw update pipeline; a production epoch
    /// should always be certified before it is served.
    pub fn set_certify_epochs(&mut self, certify: bool) {
        self.certify_epochs = certify;
    }

    /// The current undirected edge set (each edge once, `u < v`).
    pub fn current_edges(&self) -> Vec<Edge> {
        let mut out = Vec::with_capacity(self.m);
        for (u, list) in self.adj.iter().enumerate() {
            for &(v, w) in list {
                if (u as u32) < v {
                    out.push(Edge::new(u as u32, v, w));
                }
            }
        }
        out
    }

    /// Applies one batch of updates and advances the epoch.
    ///
    /// Deletes are applied first (so a batch can delete an edge and
    /// re-insert it at a new weight), then inserts. Inserts of edges
    /// already present and deletes of absent edges are counted no-ops.
    /// Returns the epoch's [`EpochReport`]; on `Err` for invalid *input*
    /// (range / self-loop / non-finite) no state was touched.
    pub fn apply_batch(
        &mut self,
        inserts: &[Edge],
        deletes: &[(VertexId, VertexId)],
        pool: &ThreadPool,
    ) -> Result<EpochReport, DynamicError> {
        let _s = telemetry::span("dynamic-epoch");
        // Validate everything before touching anything.
        for e in inserts {
            validate_insert(e, self.n)?;
        }
        for &(u, v) in deletes {
            if (u as usize) >= self.n || (v as usize) >= self.n {
                return Err(DynamicError::OutOfRange(Edge::new(u, v, 0.0)));
            }
        }

        let mut report = EpochReport {
            epoch: self.epoch + 1,
            ..EpochReport::default()
        };
        let num_components = self.index.num_components();
        let mut dirty = vec![false; num_components];

        // ---- Deletes: drop arcs; a lost *tree* edge dirties its tree.
        let tree: HashSet<(u32, u32)> = self
            .msf
            .edges
            .iter()
            .map(Edge::canonical_endpoints)
            .collect();
        for &(u, v) in deletes {
            let (lo, hi) = if u <= v { (u, v) } else { (v, u) };
            if lo == hi || self.remove_edge(lo, hi).is_none() {
                report.deletes_missing += 1;
                continue;
            }
            report.deletes_applied += 1;
            if tree.contains(&(lo, hi)) {
                dirty[self.index.component(lo) as usize] = true;
            }
        }

        // ---- Inserts, phase 1: mutate the graph, keeping the fresh ones.
        let mut fresh: Vec<Edge> = Vec::with_capacity(inserts.len());
        for e in inserts {
            let (lo, hi) = e.canonical_endpoints();
            if self.adj[lo as usize].iter().any(|&(x, _)| x == hi) {
                report.inserts_duplicate += 1;
                continue;
            }
            self.adj[lo as usize].push((hi, e.w));
            self.adj[hi as usize].push((lo, e.w));
            self.m += 1;
            report.inserts_applied += 1;
            fresh.push(Edge::new(lo, hi, e.w));
        }

        // ---- Inserts, phase 2: classify against the frozen epoch index.
        // Read-only parallel sweep; chunk claims go through the chaos
        // scheduler like every other sweep in the workspace.
        let t = Instant::now();
        let classes: Vec<InsertClass> = {
            let _s = telemetry::span("dynamic-classify");
            let index = &*self.index;
            if fresh.len() < PAR_CLASSIFY_THRESHOLD || pool.threads() <= 1 {
                fresh.iter().map(|e| classify_one(e, index)).collect()
            } else {
                let acc: Mutex<Vec<(usize, Vec<InsertClass>)>> = Mutex::new(Vec::new());
                parallel_for_chunks(
                    pool,
                    0..fresh.len(),
                    ParallelForConfig::default(),
                    |chunk| {
                        let start = chunk.start;
                        let local: Vec<InsertClass> =
                            chunk.map(|i| classify_one(&fresh[i], index)).collect();
                        acc.lock().push((start, local));
                    },
                );
                let mut out: Vec<Option<InsertClass>> = vec![None; fresh.len()];
                for (start, local) in acc.into_inner() {
                    for (i, c) in local.into_iter().enumerate() {
                        out[start + i] = Some(c);
                    }
                }
                out.into_iter()
                    .map(|c| c.expect("classified every fresh insert"))
                    .collect()
            }
        };
        report.classify_ms = t.elapsed().as_secs_f64() * 1e3;

        // ---- Inserts, phase 3: group. Cross-tree links and trees with
        // more than one intra-tree insert go to the scoped re-run;
        // single-insert clean trees take the exact exchange fast path.
        for c in &classes {
            if let InsertClass::Link { cu, cv } = *c {
                dirty[cu as usize] = true;
                dirty[cv as usize] = true;
                report.links += 1;
            }
        }
        let mut per_comp: HashMap<u32, Vec<usize>> = HashMap::new();
        for (i, c) in classes.iter().enumerate() {
            if let InsertClass::Intra { comp, .. } = *c {
                per_comp.entry(comp).or_default().push(i);
            }
        }
        let mut winners: Vec<Edge> = Vec::new();
        let mut evicted: HashSet<(u32, u32)> = HashSet::new();
        for (&comp, idxs) in &per_comp {
            if dirty[comp as usize] {
                continue; // the re-run sees these edges in the graph
            }
            if idxs.len() > 1 {
                // Two inserts into one tree interact (the second exchange
                // depends on the first); defer both to the re-run.
                dirty[comp as usize] = true;
                continue;
            }
            let InsertClass::Intra {
                beats, bottleneck, ..
            } = classes[idxs[0]]
            else {
                unreachable!("per_comp holds only Intra classes");
            };
            if beats {
                evicted.insert((bottleneck.lo(), bottleneck.hi()));
                winners.push(fresh[idxs[0]]);
                report.fast_swaps += 1;
            } else {
                report.fast_rejects += 1;
            }
        }

        // ---- Scoped re-run over the dirty trees.
        let t = Instant::now();
        let dirty_any = dirty.iter().any(|&d| d);
        report.dirty_components = dirty.iter().filter(|&&d| d).count();
        let mut rebuilt: Vec<Edge> = Vec::new();
        if dirty_any {
            let _s = telemetry::span("dynamic-rebuild");
            // Ascending scan ⇒ the old→local relabel is monotone, so
            // every EdgeKey comparison (weight, then endpoints) orders
            // local edges exactly as the original ids would — the scoped
            // run returns the canonical forest restriction verbatim.
            let mut local_of: Vec<u32> = vec![u32::MAX; self.n];
            let mut verts: Vec<u32> = Vec::new();
            for v in 0..self.n {
                if dirty[self.index.component(v as u32) as usize] {
                    local_of[v] = verts.len() as u32;
                    verts.push(v as u32);
                }
            }
            let mut local_edges: Vec<Edge> = Vec::new();
            for &v in &verts {
                for &(w, wt) in &self.adj[v as usize] {
                    if v < w {
                        debug_assert_ne!(
                            local_of[w as usize],
                            u32::MAX,
                            "edge ({v}, {w}) escapes the dirty region"
                        );
                        local_edges.push(Edge::new(local_of[v as usize], local_of[w as usize], wt));
                    }
                }
            }
            report.rebuild_vertices = verts.len();
            report.rebuild_edges = local_edges.len();
            let sub = llp_boruvka_from_edges(verts.len(), local_edges, pool);
            rebuilt.extend(
                sub.edges
                    .iter()
                    .map(|e| Edge::new(verts[e.u as usize], verts[e.v as usize], e.w)),
            );
        }
        report.rebuild_ms = t.elapsed().as_secs_f64() * 1e3;

        // ---- Assemble the next forest: untouched trees' edges, minus
        // fast-path evictions, plus fast-path winners and the re-run.
        report.tree_changed = dirty_any || report.fast_swaps > 0;
        let graph_changed = report.inserts_applied > 0 || report.deletes_applied > 0;
        if report.tree_changed {
            let mut new_edges: Vec<Edge> =
                Vec::with_capacity(self.msf.edges.len() + winners.len() + rebuilt.len());
            for e in &self.msf.edges {
                if dirty[self.index.component(e.u) as usize]
                    || evicted.contains(&e.canonical_endpoints())
                {
                    continue;
                }
                new_edges.push(*e);
            }
            new_edges.extend(winners);
            new_edges.extend(rebuilt);
            let msf = MstResult::try_from_edges(self.n, new_edges, AlgoStats::default())
                .map_err(DynamicError::Overflow)?;

            let t = Instant::now();
            let index = {
                let _s = telemetry::span("dynamic-index");
                Arc::new(PathMaxIndex::build_par(self.n, &msf, pool)?)
            };
            report.index_ms = t.elapsed().as_secs_f64() * 1e3;
            self.msf = msf;
            self.index = index;
        }

        if self.certify_epochs && (report.tree_changed || graph_changed) {
            let t = Instant::now();
            self.certify_now(pool)?;
            report.certify_ms = t.elapsed().as_secs_f64() * 1e3;
        }

        self.epoch += 1;
        telemetry::counter_add("dynamic-epochs", 1);
        telemetry::counter_add("dynamic-inserts-applied", report.inserts_applied as u64);
        telemetry::counter_add("dynamic-deletes-applied", report.deletes_applied as u64);
        telemetry::counter_add("dynamic-fast-swaps", report.fast_swaps as u64);
        telemetry::counter_add("dynamic-rebuild-vertices", report.rebuild_vertices as u64);
        Ok(report)
    }

    /// Full certification sweep of the current forest against the current
    /// graph, through the current index.
    fn certify_now(&self, pool: &ThreadPool) -> Result<(), DynamicError> {
        let _s = telemetry::span("dynamic-certify");
        let edges = self.current_edges();
        let graph = CsrGraph::from_edges_parallel(pool, self.n, &edges);
        certify_against(&graph, &self.msf, &self.index, Some(pool))?;
        Ok(())
    }

    /// Removes `(lo, hi)` from both adjacency lists; `None` if absent.
    fn remove_edge(&mut self, lo: u32, hi: u32) -> Option<f64> {
        let i = self.adj[lo as usize].iter().position(|&(x, _)| x == hi)?;
        let (_, w) = self.adj[lo as usize].swap_remove(i);
        let j = self.adj[hi as usize]
            .iter()
            .position(|&(x, _)| x == lo)
            .expect("mirror arc present");
        self.adj[hi as usize].swap_remove(j);
        self.m -= 1;
        Some(w)
    }
}

/// Classifies one fresh insert against the frozen epoch index.
fn classify_one(e: &Edge, index: &PathMaxIndex) -> InsertClass {
    let cu = index.component(e.u);
    let cv = index.component(e.v);
    if cu != cv {
        return InsertClass::Link { cu, cv };
    }
    let bottleneck = index
        .path_max(e.u, e.v)
        .expect("distinct vertices in one tree have a path");
    InsertClass::Intra {
        comp: cu,
        beats: e.key() < bottleneck,
        bottleneck,
    }
}

fn validate_insert(e: &Edge, n: usize) -> Result<(), DynamicError> {
    if (e.u as usize) >= n || (e.v as usize) >= n {
        return Err(DynamicError::OutOfRange(*e));
    }
    if e.u == e.v {
        return Err(DynamicError::SelfLoop(*e));
    }
    if !e.w.is_finite() {
        return Err(DynamicError::NonFiniteWeight(*e));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kruskal::kruskal;

    fn pool() -> ThreadPool {
        ThreadPool::new(2)
    }

    /// Recompute the canonical MSF of the dynamic structure's current
    /// graph from scratch and compare edge sets.
    fn assert_matches_recompute(d: &DynamicMsf) {
        let edges = d.current_edges();
        let g = CsrGraph::from_edges(d.num_vertices(), &edges);
        let want = kruskal(&g);
        assert_eq!(d.msf().canonical_keys(), want.canonical_keys());
        assert_eq!(d.msf().num_trees, want.num_trees);
    }

    #[test]
    fn losing_insert_stays_out_of_the_tree() {
        let p = pool();
        // Path 0-1-2 with light edges; a heavy chord loses.
        let edges = vec![Edge::new(0, 1, 1.0), Edge::new(1, 2, 2.0)];
        let mut d = DynamicMsf::from_edges(3, edges, &p).unwrap();
        let r = d
            .apply_batch(&[Edge::new(0, 2, 9.0)], &[], &p)
            .unwrap();
        assert_eq!(r.fast_rejects, 1);
        assert_eq!(r.fast_swaps, 0);
        assert!(!r.tree_changed);
        assert_eq!(d.num_edges(), 3);
        assert_matches_recompute(&d);
    }

    #[test]
    fn winning_insert_evicts_the_bottleneck() {
        let p = pool();
        let edges = vec![Edge::new(0, 1, 1.0), Edge::new(1, 2, 5.0)];
        let mut d = DynamicMsf::from_edges(3, edges, &p).unwrap();
        let r = d
            .apply_batch(&[Edge::new(0, 2, 2.0)], &[], &p)
            .unwrap();
        assert_eq!(r.fast_swaps, 1);
        assert!(r.tree_changed);
        // The 5.0 edge is evicted but stays in the graph.
        assert_eq!(d.num_edges(), 3);
        assert_eq!(d.msf().edges.len(), 2);
        assert!((d.msf().total_weight - 3.0).abs() < 1e-12);
        assert_matches_recompute(&d);
    }

    #[test]
    fn linking_insert_merges_trees_via_rebuild() {
        let p = pool();
        let edges = vec![Edge::new(0, 1, 1.0), Edge::new(2, 3, 1.0)];
        let mut d = DynamicMsf::from_edges(4, edges, &p).unwrap();
        assert_eq!(d.msf().num_trees, 2);
        let r = d
            .apply_batch(&[Edge::new(1, 2, 0.5)], &[], &p)
            .unwrap();
        assert_eq!(r.links, 1);
        assert_eq!(r.dirty_components, 2);
        assert_eq!(d.msf().num_trees, 1);
        assert_matches_recompute(&d);
    }

    #[test]
    fn deleting_a_tree_edge_finds_the_replacement() {
        let p = pool();
        // Cycle: tree is 0-1, 1-2; deleting 1-2 promotes the chord 0-2.
        let edges = vec![
            Edge::new(0, 1, 1.0),
            Edge::new(1, 2, 2.0),
            Edge::new(0, 2, 3.0),
        ];
        let mut d = DynamicMsf::from_edges(3, edges, &p).unwrap();
        let r = d.apply_batch(&[], &[(2, 1)], &p).unwrap();
        assert_eq!(r.deletes_applied, 1);
        assert_eq!(r.dirty_components, 1);
        assert_eq!(d.msf().num_trees, 1);
        assert!((d.msf().total_weight - 4.0).abs() < 1e-12);
        assert_matches_recompute(&d);
    }

    #[test]
    fn disconnecting_delete_splits_the_forest() {
        let p = pool();
        let edges = vec![Edge::new(0, 1, 1.0), Edge::new(1, 2, 2.0)];
        let mut d = DynamicMsf::from_edges(3, edges, &p).unwrap();
        let r = d.apply_batch(&[], &[(0, 1)], &p).unwrap();
        assert_eq!(r.deletes_applied, 1);
        assert_eq!(d.msf().num_trees, 2);
        assert_eq!(d.num_edges(), 1);
        assert_matches_recompute(&d);
    }

    #[test]
    fn empty_batch_is_a_certified_noop() {
        let p = pool();
        let mut d =
            DynamicMsf::from_edges(3, vec![Edge::new(0, 1, 1.0)], &p).unwrap();
        let before = d.msf().canonical_keys();
        let r = d.apply_batch(&[], &[], &p).unwrap();
        assert_eq!(r.updates(), 0);
        assert!(!r.tree_changed);
        assert_eq!(d.epoch(), 1);
        assert_eq!(d.msf().canonical_keys(), before);
    }

    #[test]
    fn duplicate_insert_and_missing_delete_are_noops() {
        let p = pool();
        let mut d =
            DynamicMsf::from_edges(3, vec![Edge::new(0, 1, 1.0)], &p).unwrap();
        let r = d
            .apply_batch(&[Edge::new(1, 0, 7.0)], &[(1, 2)], &p)
            .unwrap();
        assert_eq!(r.inserts_duplicate, 1);
        assert_eq!(r.deletes_missing, 1);
        assert_eq!(r.updates(), 2);
        assert_eq!(d.num_edges(), 1);
        assert_matches_recompute(&d);
    }

    #[test]
    fn delete_then_reinsert_in_one_batch_updates_the_weight() {
        let p = pool();
        let edges = vec![Edge::new(0, 1, 1.0), Edge::new(1, 2, 2.0)];
        let mut d = DynamicMsf::from_edges(3, edges, &p).unwrap();
        let r = d
            .apply_batch(&[Edge::new(0, 1, 0.25)], &[(0, 1)], &p)
            .unwrap();
        assert_eq!(r.deletes_applied, 1);
        assert_eq!(r.inserts_applied, 1);
        assert!((d.msf().total_weight - 2.25).abs() < 1e-12);
        assert_matches_recompute(&d);
    }

    #[test]
    fn invalid_updates_error_without_touching_state() {
        let p = pool();
        let mut d =
            DynamicMsf::from_edges(3, vec![Edge::new(0, 1, 1.0)], &p).unwrap();
        let before_edges = d.num_edges();
        let before_epoch = d.epoch();
        assert!(matches!(
            d.apply_batch(&[Edge::new(0, 9, 1.0)], &[], &p),
            Err(DynamicError::OutOfRange(_))
        ));
        assert!(matches!(
            d.apply_batch(&[Edge::new(1, 1, 1.0)], &[], &p),
            Err(DynamicError::SelfLoop(_))
        ));
        assert!(matches!(
            d.apply_batch(&[Edge::new(0, 2, f64::NAN)], &[], &p),
            Err(DynamicError::NonFiniteWeight(_))
        ));
        assert!(matches!(
            d.apply_batch(&[], &[(0, 9)], &p),
            Err(DynamicError::OutOfRange(_))
        ));
        assert_eq!(d.num_edges(), before_edges);
        assert_eq!(d.epoch(), before_epoch);
    }

    #[test]
    fn parallel_edge_dedup_keeps_the_smallest_key() {
        let p = pool();
        let edges = vec![
            Edge::new(0, 1, 3.0),
            Edge::new(1, 0, 1.0),
            Edge::new(0, 1, 2.0),
        ];
        let d = DynamicMsf::from_edges(2, edges, &p).unwrap();
        assert_eq!(d.num_edges(), 1);
        assert!((d.msf().total_weight - 1.0).abs() < 1e-12);
    }

    #[test]
    fn many_epochs_of_mixed_updates_stay_canonical() {
        let p = pool();
        let g = llp_graph::generators::erdos_renyi(60, 120, 3);
        let mut d = DynamicMsf::new(&g, &p).unwrap();
        let mut rng = llp_runtime::rng::SmallRng::seed_from_u64(7);
        for _ in 0..6 {
            let mut inserts = Vec::new();
            let mut deletes = Vec::new();
            for _ in 0..10 {
                let u = rng.gen_range(0..60u32);
                let v = rng.gen_range(0..60u32);
                if u == v {
                    continue;
                }
                if rng.gen_bool(0.5) {
                    inserts.push(Edge::new(u, v, rng.gen_range(1..8u32) as f64 / 2.0));
                } else {
                    deletes.push((u, v));
                }
            }
            d.apply_batch(&inserts, &deletes, &p).unwrap();
            assert_matches_recompute(&d);
        }
        assert_eq!(d.epoch(), 6);
    }
}

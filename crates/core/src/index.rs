//! `PathMaxIndex` — the certified forest as an O(1) answer engine.
//!
//! [`crate::certify`] verifies an MSF via King-style path-maximum queries:
//! replay the tree edges in Kruskal merge order, keep each component's
//! vertices as a linked chain, and stamp each merge's key on the separator
//! where the two chains now touch. King's lemma says path-max(u, v) is the
//! key of the merge that first united `u` and `v`, which — because merge
//! keys only grow — is exactly the **largest separator between `u` and `v`
//! in the final chain order**. The whole Borůvka-tree LCA machinery
//! collapses to one array of `n` separator keys plus a two-level range-max
//! structure (per-block monotone-stack bitmasks, block prefix/suffix
//! maxima, a sparse table over per-block maxima), and every query is a
//! handful of independent loads.
//!
//! That machinery answers far more than "is this forest minimal": it is a
//! complete post-construction query service over the certified MSF. This
//! module is its public home — [`crate::certify::certify_msf`] and
//! [`crate::certify::certify_msf_par`] are now thin consumers of the same
//! index that downstream code (e.g. the `llp-serve` query server) builds
//! once and queries forever:
//!
//! * [`PathMaxIndex::component`] — which tree of the forest a vertex
//!   belongs to (dense ids in `0..num_components`), O(1);
//! * [`PathMaxIndex::path_max`] — the bottleneck (maximum-key) edge on the
//!   unique tree path between two vertices, O(1), `None` across trees;
//! * [`PathMaxIndex::connected_under`] — single-linkage clustering: are
//!   two vertices connected using only edges of weight ≤ λ? Because the
//!   MSF is a minimax-path tree, this is one path-max query, O(1) for any
//!   threshold — no union-find rebuild per λ;
//! * [`PathMaxIndex::bottleneck`] — [`PathMaxIndex::path_max`] as a plain
//!   [`Edge`], the shape wire protocols want.
//!
//! Build cost is O(n log n) — sorting only the `t ≤ n − 1` tree edges
//! (skipped when they already arrive key-sorted, as Kruskal-family outputs
//! do), never the `m` graph edges — and the replay detects cycles for
//! free, so a successful build proves the input is a forest. Keys live as
//! order-isomorphic `u128`s ([`key_bits`]), so every range-max comparison
//! is branch-free integer ALU, and the packing is invertible: a query
//! decodes the winning separator straight back to the bottleneck edge
//! without storing edge payloads.

use crate::result::MstResult;
use crate::union_find::UnionFind;
use crate::verify::VerifyError;
use llp_graph::weight::{ordered_to_f64, Weight};
use llp_graph::{Edge, EdgeKey, VertexId};
use llp_runtime::sort::par_sort_by_key;
use llp_runtime::{telemetry, ThreadPool};

const NO_NODE: u32 = u32::MAX;

/// Separator-array block width for the range-max structure; equal to the
/// bitmask width, so any in-block range is answered with two bit
/// operations.
pub(crate) const BLOCK: usize = 32;

/// No real key reaches this: its endpoint fields would have to be
/// `u32::MAX` twice, and endpoints are distinct vertex ids.
pub(crate) const INF_KEY: u128 = u128::MAX;

/// Packs `(weight, lo, hi)` into a `u128` whose integer order equals the
/// canonical [`EdgeKey`] order: weight-major (via the usual monotone
/// sign-flip encoding of IEEE 754 doubles), endpoints as tie-break.
#[inline]
pub(crate) fn key_bits(w: Weight, u: VertexId, v: VertexId) -> u128 {
    let (lo, hi) = if u < v { (u, v) } else { (v, u) };
    let b = w.to_bits();
    let ord = if b >> 63 == 0 { b | (1 << 63) } else { !b };
    ((ord as u128) << 64) | ((lo as u128) << 32) | hi as u128
}

/// Inverse of [`key_bits`]: recovers the edge a packed separator encodes.
#[inline]
fn key_from_bits(k: u128) -> EdgeKey {
    EdgeKey::new(ordered_to_f64((k >> 64) as u64), (k >> 32) as u32, k as u32)
}

/// O(1) component / path-max / threshold-connectivity queries over a
/// certified minimum spanning forest.
///
/// Construction replays the forest's Kruskal merge order ([module
/// docs](self)); the result is four `n`-sized arrays plus an
/// O(n / [`BLOCK`] · log n) sparse table, all cache-resident at road/RMAT
/// scale. Building from a non-forest fails with
/// [`VerifyError::Cycle`] / [`VerifyError::ForeignEdge`], so holding a
/// `PathMaxIndex` is itself a structural certificate.
///
/// Queries take vertex ids in `0..num_vertices` and panic on out-of-range
/// ids, mirroring the rest of the workspace's slice-indexed APIs; wire
/// frontends validate ids before calling.
pub struct PathMaxIndex {
    /// Position of each vertex in the concatenated merge order.
    pub(crate) pos: Vec<u32>,
    /// Dense component id of each vertex, in chain layout order.
    comp: Vec<u32>,
    /// Number of trees in the forest (isolated vertices included).
    num_components: usize,
    /// `sep[p]`: key of the merge that joined position `p`'s prefix to its
    /// suffix within one component, or [`INF_KEY`] where position `p` ends
    /// a component.
    pub(crate) sep: Vec<u128>,
    /// Monotone-stack bitmask per position: bit `j` of `mask[i]` is set
    /// iff `sep[i - j]` is larger than every separator in `(i-j, i]`. The
    /// argmax of any in-block range `[l, r]` is then `r - msb(mask[r] &
    /// window)`. Used only when a query fits inside one block.
    mask: Vec<u32>,
    /// Running max of `sep` from the enclosing block's start through each
    /// position (inclusive).
    prefix: Vec<u128>,
    /// Running max of `sep` from each position through the enclosing
    /// block's end (inclusive).
    suffix: Vec<u128>,
    /// `sparse[k][b]`: max separator across blocks `b .. b + 2^k` (level 0
    /// is the per-block max). Values, not positions: a cross-block query
    /// is then four independent loads with no argmax indirection.
    sparse: Vec<Vec<u128>>,
    /// When the forest is one spanning tree, the weight of its heaviest
    /// edge: a graph edge strictly heavier passes the cycle property with
    /// a single register compare (no cross-tree queries can exist, so the
    /// spanning check cannot be short-circuited away). Infinite — the
    /// filter never fires — for true forests.
    pub(crate) pass_above: f64,
}

impl PathMaxIndex {
    /// Builds the index from a forest over `n` vertices, sequentially.
    ///
    /// Fails with [`VerifyError::Cycle`] when `result` is not a forest and
    /// [`VerifyError::ForeignEdge`] when an edge names a vertex `≥ n` —
    /// the build is exactly the acyclicity half of certification.
    pub fn build(n: usize, result: &MstResult) -> Result<PathMaxIndex, VerifyError> {
        Self::build_impl(n, result, None)
    }

    /// [`Self::build`] with the tree-edge sort parallelized over `pool`.
    pub fn build_par(
        n: usize,
        result: &MstResult,
        pool: &ThreadPool,
    ) -> Result<PathMaxIndex, VerifyError> {
        Self::build_impl(n, result, Some(pool))
    }

    /// Replays `result`'s edges in key order over `n` vertices, detecting
    /// cycles in the process.
    fn build_impl(
        n: usize,
        result: &MstResult,
        pool: Option<&ThreadPool>,
    ) -> Result<PathMaxIndex, VerifyError> {
        if let Some(e) = result
            .edges
            .iter()
            .find(|e| (e.u as usize) >= n || (e.v as usize) >= n)
        {
            return Err(VerifyError::ForeignEdge(*e));
        }

        // Tree edges in increasing key order. Kruskal-family results are
        // already sorted — detect that in O(t) and skip the sort.
        let keyed: Vec<(EdgeKey, u32)> = {
            let _s = telemetry::span("index-build-sort");
            let mut keyed: Vec<(EdgeKey, u32)> = result
                .edges
                .iter()
                .enumerate()
                .map(|(i, e)| (e.key(), i as u32))
                .collect();
            if !keyed.windows(2).all(|w| w[0].0 <= w[1].0) {
                match pool {
                    Some(pool) => par_sort_by_key(pool, &mut keyed, |p| p.0),
                    None => keyed.sort_unstable(),
                }
            }
            keyed
        };

        // Merge replay. Each component is a chain (`head`/`last` are valid
        // at union-find roots); a merge concatenates the chains in O(1)
        // and stamps the merge key on the single separator where they now
        // touch. A separator is stamped at most once: once a vertex has a
        // successor it is interior to its chain forever. A merge of an
        // already-joined component is the cycle witness.
        let _s = telemetry::span("index-build-merge");
        let t = keyed.len();
        let pass_above = if t + 1 == n && t > 0 {
            result.edges[keyed[t - 1].1 as usize].w
        } else {
            f64::INFINITY
        };
        let mut uf = UnionFind::new(n);
        let mut next: Vec<u32> = vec![NO_NODE; n];
        let mut head: Vec<u32> = (0..n as u32).collect();
        let mut last: Vec<u32> = (0..n as u32).collect();
        let mut sep_after: Vec<u128> = vec![INF_KEY; n];
        for &(_, ei) in &keyed {
            let e = &result.edges[ei as usize];
            let ra = uf.find(e.u) as usize;
            let rb = uf.find(e.v) as usize;
            if ra == rb {
                return Err(VerifyError::Cycle(*e));
            }
            let joint = last[ra] as usize;
            sep_after[joint] = key_bits(e.w, e.u, e.v);
            next[joint] = head[rb];
            let (h, l) = (head[ra], last[rb]);
            uf.union(ra as VertexId, rb as VertexId);
            let r = uf.find(ra as VertexId) as usize;
            head[r] = h;
            last[r] = l;
        }
        drop(keyed);
        drop(_s);

        // Walk each root's chain once to lay out positions, component ids
        // and the separators in merge order. Chain tails keep their
        // infinite separator, which is exactly the component boundary
        // sentinel.
        let _s = telemetry::span("index-build-scatter");
        let mut pos = vec![0u32; n];
        let mut comp = vec![0u32; n];
        let mut num_components = 0usize;
        let mut sep: Vec<u128> = Vec::with_capacity(n);
        for v in 0..n as VertexId {
            if uf.find(v) != v {
                continue;
            }
            let c = num_components as u32;
            num_components += 1;
            let mut x = head[v as usize];
            while x != NO_NODE {
                pos[x as usize] = sep.len() as u32;
                comp[x as usize] = c;
                sep.push(sep_after[x as usize]);
                x = next[x as usize];
            }
        }
        debug_assert_eq!(sep.len(), n);
        drop(_s);

        // Two-level range-max over `sep`: per-position monotone-stack
        // masks for O(1) in-block queries; block prefix/suffix maxima and
        // a sparse table over per-block maxima for everything wider.
        let _s = telemetry::span("index-build-rmq");
        let nblocks = n.div_ceil(BLOCK).max(1);
        let mut mask = vec![0u32; n];
        let mut prefix: Vec<u128> = Vec::with_capacity(n);
        let mut suffix: Vec<u128> = vec![INF_KEY; n];
        let mut block_max = vec![INF_KEY; nblocks];
        for (b, bmax) in block_max.iter_mut().enumerate() {
            let lo = b * BLOCK;
            let hi = ((b + 1) * BLOCK).min(n);
            if lo >= hi {
                continue; // only the n = 0 degenerate block
            }
            let mut m = 0u32;
            let mut run = sep[lo];
            for i in lo..hi {
                m <<= 1;
                while m != 0 && sep[i - m.trailing_zeros() as usize] <= sep[i] {
                    m &= m - 1;
                }
                m |= 1;
                mask[i] = m;
                run = run.max(sep[i]);
                prefix.push(run);
            }
            *bmax = run;
            let mut run = sep[hi - 1];
            for i in (lo..hi).rev() {
                run = run.max(sep[i]);
                suffix[i] = run;
            }
        }
        let levels = usize::BITS as usize - nblocks.leading_zeros() as usize;
        let mut sparse: Vec<Vec<u128>> = Vec::with_capacity(levels);
        sparse.push(block_max);
        let mut k = 1;
        while (1 << k) <= nblocks {
            let prev = &sparse[k - 1];
            let width = 1 << (k - 1);
            let level: Vec<u128> = (0..=nblocks - (1 << k))
                .map(|b| prev[b].max(prev[b + width]))
                .collect();
            sparse.push(level);
            k += 1;
        }

        Ok(PathMaxIndex {
            pos,
            comp,
            num_components,
            sep,
            mask,
            prefix,
            suffix,
            sparse,
            pass_above,
        })
    }

    /// Number of vertices the index was built over.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.pos.len()
    }

    /// Number of trees in the forest, isolated vertices included.
    #[inline]
    pub fn num_components(&self) -> usize {
        self.num_components
    }

    /// Dense id (`0..num_components`) of the tree containing `u`.
    #[inline]
    pub fn component(&self, u: VertexId) -> u32 {
        self.comp[u as usize]
    }

    /// Whether `u` and `v` lie in the same tree of the forest.
    #[inline]
    pub fn connected(&self, u: VertexId, v: VertexId) -> bool {
        self.comp[u as usize] == self.comp[v as usize]
    }

    /// The bottleneck of the unique forest path between `u` and `v`: the
    /// maximum-key tree edge on it. `None` when `u == v` (the path is
    /// empty) or the vertices lie in different trees.
    #[inline]
    pub fn path_max(&self, u: VertexId, v: VertexId) -> Option<EdgeKey> {
        if u == v {
            return None;
        }
        let max = self.path_max_at(self.pos[u as usize], self.pos[v as usize]);
        if max == INF_KEY {
            None
        } else {
            Some(key_from_bits(max))
        }
    }

    /// [`Self::path_max`] as a plain [`Edge`] (canonical `u < v`
    /// orientation) — the shape wire protocols and reports want.
    #[inline]
    pub fn bottleneck(&self, u: VertexId, v: VertexId) -> Option<Edge> {
        self.path_max(u, v)
            .map(|k| Edge::new(k.lo(), k.hi(), k.weight()))
    }

    /// Single-linkage threshold connectivity: are `u` and `v` connected
    /// using only forest edges of weight ≤ `lambda`?
    ///
    /// Because the MSF is a minimax-path tree, its path bottleneck is the
    /// minimum over *all* graph paths, so this answers threshold
    /// connectivity on the original graph too. One O(1) query per (u, v,
    /// λ); sweeping λ never rebuilds anything. `lambda` comparisons use
    /// raw weights (ties at exactly `lambda` are connected).
    #[inline]
    pub fn connected_under(&self, u: VertexId, v: VertexId, lambda: f64) -> bool {
        if u == v {
            return true;
        }
        let max = self.path_max_at(self.pos[u as usize], self.pos[v as usize]);
        max != INF_KEY && key_from_bits(max).weight() <= lambda
    }

    /// Maximum separator in `[l, r]`, both inside one block: the argmax is
    /// the oldest surviving monotone-stack entry within the window.
    #[inline]
    fn inblock(&self, l: usize, r: usize) -> u128 {
        let w = r - l + 1; // 1..=BLOCK
        let mm = self.mask[r] & (u32::MAX >> (32 - w));
        self.sep[r - (31 - mm.leading_zeros() as usize)]
    }

    /// Maximum separator in `lo..=hi`.
    #[inline]
    pub(crate) fn rmq(&self, lo: usize, hi: usize) -> u128 {
        let bl = lo / BLOCK;
        let bh = hi / BLOCK;
        if bl == bh {
            return self.inblock(lo, hi);
        }
        // `lo`'s block tail, `hi`'s block head, and (via the sparse table)
        // the whole blocks strictly between: four independent loads,
        // combined branch-free.
        let mut best = self.suffix[lo].max(self.prefix[hi]);
        if bl + 1 < bh {
            let (a, b) = (bl + 1, bh - 1);
            let k = usize::BITS as usize - 1 - (b - a + 1).leading_zeros() as usize;
            best = best
                .max(self.sparse[k][a])
                .max(self.sparse[k][b + 1 - (1 << k)]);
        }
        best
    }

    /// Raw maximum tree-edge key on the forest path between the vertices
    /// at positions `pu` and `pv`; [`INF_KEY`] when they live in different
    /// trees. This is the certifier's hot path: no decode, no `Option`.
    #[inline]
    pub(crate) fn path_max_at(&self, pu: u32, pv: u32) -> u128 {
        let (lo, hi) = if pu < pv { (pu, pv) } else { (pv, pu) };
        self.rmq(lo as usize, hi as usize - 1)
    }

    /// [`Self::path_max_at`] addressed by vertex id, as the raw packed
    /// key.
    #[cfg(test)]
    pub(crate) fn path_max_key(&self, u: VertexId, v: VertexId) -> Option<u128> {
        let max = self.path_max_at(self.pos[u as usize], self.pos[v as usize]);
        if max == INF_KEY {
            None
        } else {
            Some(max)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kruskal::kruskal;
    use crate::stats::AlgoStats;

    #[test]
    fn key_bits_round_trips_through_key_from_bits() {
        for &(w, u, v) in &[
            (-3.5, 0u32, 1u32),
            (-0.0, 2, 3),
            (0.0, 1, 4),
            (1e-310, 0, 2),
            (2.0, 7, 3),
            (1e300, 5, 6),
        ] {
            assert_eq!(key_from_bits(key_bits(w, u, v)), EdgeKey::new(w, u, v));
        }
    }

    #[test]
    fn range_max_matches_naive_scan() {
        // Exercise the bitmask range-max against a brute-force scan on a
        // real separator array (caterpillar: mixes a long spine with
        // shallow legs, so separators are far from monotone).
        let g = llp_graph::generators::caterpillar(40, 3, 5);
        let msf = kruskal(&g);
        let index = PathMaxIndex::build(g.num_vertices(), &msf).unwrap();
        let len = index.sep.len();
        assert_eq!(len, g.num_vertices());
        for lo in 0..len {
            for hi in lo..len.min(lo + 2 * BLOCK + 2) {
                let got = index.rmq(lo, hi);
                let want = (lo..=hi).map(|i| index.sep[i]).max().unwrap();
                assert_eq!(got, want, "rmq({lo},{hi})");
            }
        }
    }

    #[test]
    fn components_match_union_find() {
        let g = llp_graph::generators::erdos_renyi(120, 100, 11);
        let n = g.num_vertices();
        let msf = kruskal(&g);
        let index = PathMaxIndex::build(n, &msf).unwrap();
        assert_eq!(index.num_components(), msf.num_trees);

        let mut uf = UnionFind::new(n);
        for e in &msf.edges {
            uf.union(e.u, e.v);
        }
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                assert_eq!(
                    index.connected(u, v),
                    uf.find(u) == uf.find(v),
                    "connected({u},{v})"
                );
                assert_eq!(
                    index.component(u) == index.component(v),
                    uf.find(u) == uf.find(v)
                );
            }
        }
        // Dense ids.
        let mut seen = vec![false; index.num_components()];
        for u in 0..n as u32 {
            seen[index.component(u) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bottleneck_is_a_real_tree_edge() {
        let g = llp_graph::generators::erdos_renyi(90, 200, 3);
        let msf = kruskal(&g);
        let index = PathMaxIndex::build(g.num_vertices(), &msf).unwrap();
        let tree_keys: Vec<EdgeKey> = msf.edges.iter().map(Edge::key).collect();
        let mut answered = 0;
        for u in (0..g.num_vertices() as u32).step_by(3) {
            for v in (0..g.num_vertices() as u32).step_by(7) {
                if let Some(k) = index.path_max(u, v) {
                    assert!(tree_keys.contains(&k), "path_max({u},{v}) = {k:?}");
                    let e = index.bottleneck(u, v).unwrap();
                    assert_eq!((e.u, e.v, e.w), (k.lo(), k.hi(), k.weight()));
                    answered += 1;
                } else {
                    assert!(u == v || !index.connected(u, v));
                }
            }
        }
        assert!(answered > 0);
    }

    #[test]
    fn connected_under_matches_threshold_union_find() {
        // Single-linkage ground truth: union-find over the *graph* edges
        // of weight <= lambda (the MSF bottleneck must agree, because the
        // MSF minimises path maxima over all graph paths).
        let g = llp_graph::generators::erdos_renyi(80, 160, 9);
        let n = g.num_vertices();
        let msf = kruskal(&g);
        let index = PathMaxIndex::build(n, &msf).unwrap();
        for lambda in [0.0, 0.1, 0.35, 0.5, 0.8, 1.0, f64::INFINITY] {
            let mut uf = UnionFind::new(n);
            for e in g.edges() {
                if e.w <= lambda {
                    uf.union(e.u, e.v);
                }
            }
            for u in (0..n as u32).step_by(5) {
                for v in (0..n as u32).step_by(3) {
                    assert_eq!(
                        index.connected_under(u, v, lambda),
                        uf.find(u) == uf.find(v),
                        "connected_under({u},{v},{lambda})"
                    );
                }
            }
        }
    }

    #[test]
    fn rejects_cycles_and_out_of_range_edges() {
        let cyclic = MstResult::from_edges(
            3,
            vec![
                Edge::new(0, 1, 1.0),
                Edge::new(1, 2, 2.0),
                Edge::new(0, 2, 3.0),
            ],
            AlgoStats::default(),
        );
        assert!(matches!(
            PathMaxIndex::build(3, &cyclic),
            Err(VerifyError::Cycle(_))
        ));

        let oob = MstResult::from_edges(
            9,
            vec![Edge::new(0, 7, 1.0)],
            AlgoStats::default(),
        );
        assert!(matches!(
            PathMaxIndex::build(4, &oob),
            Err(VerifyError::ForeignEdge(e)) if e.v == 7
        ));
    }

    #[test]
    fn empty_and_singleton_indices() {
        let r = MstResult::from_edges(0, vec![], AlgoStats::default());
        let index = PathMaxIndex::build(0, &r).unwrap();
        assert_eq!(index.num_components(), 0);

        let r = MstResult::from_edges(3, vec![], AlgoStats::default());
        let index = PathMaxIndex::build(3, &r).unwrap();
        assert_eq!(index.num_components(), 3);
        assert!(!index.connected(0, 2));
        assert!(index.path_max(0, 2).is_none());
        assert!(index.connected_under(1, 1, 0.0));
        assert!(!index.connected_under(0, 1, f64::INFINITY));
    }
}

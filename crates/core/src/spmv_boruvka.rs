//! SpMV-Borůvka: the Borůvka round as sparse linear algebra (the 12th
//! algorithm), after Baer, Kanakagiri & Solomonik, "Parallel Minimum
//! Spanning Forest Computation using Sparse Matrix Kernels".
//!
//! Where the flat-memory engine in [`crate::contraction`] is
//! *edge-centric* — every round sweeps an edge list and proposes each edge
//! to both endpoints — this backend is *row-centric*: the live graph is a
//! contracted adjacency matrix in CSR form (one row per component, one
//! stored nonzero per directed arc), and each round computes
//!
//! 1. **`y = A ⊗ x` over the min-plus semiring** ([`crate::semiring`]):
//!    a row-wise argmin. Chunks are claimed over the *arc* space (load
//!    balance on skewed rows — an RMAT hub row can hold a large fraction
//!    of all arcs); each chunk locates its starting row by binary search
//!    on the row offsets and folds candidates into the per-row packed
//!    [`AtomicU64`](std::sync::atomic::AtomicU64) MWE cell with
//!    [`mwe_propose`], so row fragments split across chunks merge exactly
//!    like in-row folds (the `⊕` laws proved in the semiring tests).
//! 2. **Hook-and-compress**: the argmin column of every row names its
//!    parent (mutual picks break toward the smaller row id), then the
//!    shared [`pointer_jump_to_roots`] flattens the pseudoforest.
//! 3. **SpGEMM-style contraction**: `A' = P^T A P` for the hook matrix
//!    `P`, realised as a row/col merge — surviving arcs are grouped by
//!    their *new* row id via [`group_by_key_in`] (the wide-key counting
//!    distribution; component counts routinely exceed the `u16` class cap
//!    of `distribute_by_class_in`) while columns are relabelled through
//!    the dense root renumbering of [`renumber_roots`]. Parallel arcs
//!    between merged components are kept — only the lighter can ever win
//!    a cell — and intra-component arcs are dropped.
//!
//! All round state lives on leased [`ScratchArena`] buffers and the arc
//! array is double-buffered, so steady-state rounds allocate nothing
//! (pinned by `tests/zero_alloc.rs`) and every chunk claim runs through
//! the chaos scheduler's instrumented cursors.
//!
//! ## Determinism
//!
//! Ties are resolved by the exact key `(EdgeKey, edge id)` — a strict
//! total order over undirected edge *instances*, identical for both arc
//! directions of one edge. That makes every cell's winner unique no
//! matter how arcs are ordered within a row or interleaved by the
//! scheduler, which is what the mutual-hook check relies on (duplicate
//! edges share an `EdgeKey`; comparing by edge id prevents two racing
//! cells from committing *different* duplicates and forming an undetected
//! 2-cycle). Consequently round traces and the final forest are
//! bit-identical across thread counts and chaos schedules.

use crate::contraction::{pointer_jump_to_roots, renumber_roots};
use crate::result::MstResult;
use crate::stats::AlgoStats;
use llp_graph::{CsrGraph, Edge, EdgeKey};
use llp_runtime::atomics::{as_atomic_u64, mwe_idx, mwe_propose, weight_hi32, MWE_EMPTY};
use llp_runtime::partition::{compact_map_into, group_by_key_in};
use llp_runtime::telemetry;
use llp_runtime::{
    parallel_for, parallel_for_chunks, Counter, ParallelForConfig, ScratchArena, SendPtr,
    ThreadPool,
};

/// One stored nonzero of the contracted adjacency matrix: the column
/// (neighbouring component), the original-edge identity it stands for,
/// and the cached weight discriminant so the argmin fast path touches no
/// other arrays.
#[derive(Clone, Copy, Debug)]
struct SpmvArc {
    col: u32,
    orig: u32,
    whi: u32,
}

/// Per-round snapshot handed to [`spmv_boruvka_par_observed`]'s hook —
/// the live matrix dimension and nonzero count before the round runs,
/// plus the forest edges committed so far. Deterministic across thread
/// counts (the seq==par proptests compare these bit-for-bit).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpmvRound {
    /// Round ordinal (0-based; the final snapshot has `round == rounds`).
    pub round: usize,
    /// Rows of the live matrix (components not yet merged).
    pub rows: usize,
    /// Stored nonzeros (live directed arcs).
    pub nnz: usize,
    /// Forest edges committed so far.
    pub chosen: usize,
}

/// SpMV-Borůvka; computes the canonical MSF.
pub fn spmv_boruvka_par(graph: &CsrGraph, pool: &ThreadPool) -> MstResult {
    spmv_boruvka_par_observed(graph, pool, |_| ())
}

/// SpMV-Borůvka over a raw undirected edge list (no CSR required — the
/// initial matrix is assembled by the same grouping pass that rebuilds it
/// between rounds). Self-loops are ignored; endpoints must be `< n`.
pub fn spmv_boruvka_from_edges(n: usize, edges: Vec<Edge>, pool: &ThreadPool) -> MstResult {
    assert!(
        edges.iter().all(|e| (e.u as usize) < n && (e.v as usize) < n),
        "edge endpoint out of range"
    );
    drive(SpmvState::from_edge_list(n, edges, pool), n, pool, |_| ())
}

/// [`spmv_boruvka_par`] with a per-round observer: `on_round` fires with
/// the state snapshot at the top of every round and once more after the
/// final round (so it sees both the initial and the drained matrix).
pub fn spmv_boruvka_par_observed<F: FnMut(SpmvRound)>(
    graph: &CsrGraph,
    pool: &ThreadPool,
    on_round: F,
) -> MstResult {
    let n = graph.num_vertices();
    drive(
        SpmvState::from_edge_list(n, graph.edges().collect(), pool),
        n,
        pool,
        on_round,
    )
}

/// Mutable SpMV state threaded through rounds: the CSR matrix (row
/// offsets + arc array, double-buffered), original edge identities, and
/// the arena all round state is leased from.
struct SpmvState {
    /// Original edges (immutable identities for the final forest).
    orig_edges: Vec<Edge>,
    /// Canonical keys of the original edges.
    keys: Vec<EdgeKey>,
    /// Row offsets of the live matrix (`n_cur + 1` entries).
    row_off: Vec<u64>,
    /// Stored nonzeros, grouped by row.
    arcs: Vec<SpmvArc>,
    /// Double buffers for the SpGEMM rebuild; swapped every round.
    row_off_next: Vec<u64>,
    arcs_next: Vec<SpmvArc>,
    /// Rows of the live matrix.
    n_cur: usize,
    /// Original-edge indices chosen into the forest so far.
    chosen: Vec<u32>,
    /// Pointer-jump assignment counter.
    jumps: Counter,
    /// Atomic RMW counter (argmin proposes).
    rmw: Counter,
    /// Reusable round-state buffers.
    arena: ScratchArena,
}

impl SpmvState {
    /// Assembles the initial matrix: both arcs of every non-loop edge,
    /// grouped by source row with the same wide-key counting distribution
    /// the contraction rebuild uses.
    fn from_edge_list(n: usize, orig_edges: Vec<Edge>, pool: &ThreadPool) -> Self {
        let keys: Vec<EdgeKey> = orig_edges.iter().map(Edge::key).collect();
        let arena = ScratchArena::new();
        let m2 = orig_edges.len() * 2;
        let mut row_off = Vec::new();
        let mut arcs: Vec<SpmvArc> = Vec::with_capacity(m2);
        {
            let edges_ref: &[Edge] = &orig_edges;
            let arcs_ptr = SendPtr::new(arcs.as_mut_ptr());
            let total = group_by_key_in(
                pool,
                &arena,
                m2,
                n,
                &mut row_off,
                |i| {
                    let e = edges_ref[i / 2];
                    (!e.is_self_loop()).then_some(if i % 2 == 0 { e.u } else { e.v })
                },
                |i, slot| {
                    let e = edges_ref[i / 2];
                    let col = if i % 2 == 0 { e.v } else { e.u };
                    // SAFETY: slots partition 0..total and `arcs` has
                    // capacity m2 >= total; each slot written exactly once.
                    unsafe {
                        arcs_ptr.get().add(slot).write(SpmvArc {
                            col,
                            orig: (i / 2) as u32,
                            whi: weight_hi32(e.w),
                        })
                    };
                },
            );
            // SAFETY: exactly `total` leading slots were initialised.
            unsafe { arcs.set_len(total) };
        }
        SpmvState {
            orig_edges,
            keys,
            row_off,
            arcs,
            row_off_next: Vec::new(),
            arcs_next: Vec::new(),
            n_cur: n,
            chosen: Vec::with_capacity(n.saturating_sub(1)),
            jumps: Counter::new(),
            rmw: Counter::new(),
            arena,
        }
    }

    /// True when the matrix has no stored nonzeros left.
    fn is_done(&self) -> bool {
        self.arcs.is_empty()
    }

    /// One SpMV-Borůvka round: row-wise min-plus argmin, hook-and-compress,
    /// SpGEMM-style row/col contraction.
    fn round(&mut self, pool: &ThreadPool, cfg: ParallelForConfig, stats: &mut AlgoStats) {
        debug_assert!(!self.is_done());
        stats.rounds += 1;
        stats.parallel_regions += 6;
        stats.edges_scanned += self.arcs.len() as u64;
        let n_cur = self.n_cur;
        let m = self.arcs.len();
        let arena = &self.arena;
        telemetry::record_value("live-vertices", n_cur as u64);
        telemetry::record_value("live-arcs", m as u64);

        // Step 1: y = A (x) x over min-plus — the row-wise argmin. Work is
        // chunked over arcs, not rows; a chunk binary-searches its first
        // row and walks the offsets forward, so a hub row spanning many
        // chunks is reduced cooperatively through its atomic cell.
        let mwe_span = telemetry::span("spmv-argmin");
        let mut best = arena.lease_filled::<u64>(pool, cfg, n_cur, MWE_EMPTY);
        {
            let best_cells = as_atomic_u64(&mut best);
            let row_off: &[u64] = &self.row_off;
            let arcs_ref: &[SpmvArc] = &self.arcs;
            let keys_ref: &[EdgeKey] = &self.keys;
            let rmw_ref = &self.rmw;
            let exact = |ai: u32| {
                let o = arcs_ref[ai as usize].orig;
                (keys_ref[o as usize], o)
            };
            parallel_for_chunks(pool, 0..m, cfg, |chunk| {
                let mut r = row_off.partition_point(|&o| (o as usize) <= chunk.start) - 1;
                for a in chunk {
                    while (row_off[r + 1] as usize) <= a {
                        r += 1;
                    }
                    let arc = arcs_ref[a];
                    mwe_propose(&best_cells[r], arc.whi, a as u32, exact);
                    rmw_ref.incr();
                }
            });
        }
        let best_ro: &[u64] = &best;
        let arcs_ref: &[SpmvArc] = &self.arcs;

        // Step 2a: hook. Every row with a winning arc adopts its argmin
        // column as parent; empty rows (isolated components) root
        // themselves. A mutual pick is detected by *edge identity* — the
        // two cells hold different arc indices (one per direction), so the
        // packed words differ and only the shared `orig` identifies the
        // pair; the smaller row id becomes the root.
        let mut g = arena.lease_init_with::<u32, _>(pool, cfg, n_cur, |v| {
            let word = best_ro[v];
            if word == MWE_EMPTY {
                return v as u32;
            }
            let arc = arcs_ref[mwe_idx(word) as usize];
            let w = arc.col;
            let ww = best_ro[w as usize];
            let mutual = ww != MWE_EMPTY && arcs_ref[mwe_idx(ww) as usize].orig == arc.orig;
            if mutual && (v as u32) < w {
                v as u32
            } else {
                w
            }
        });

        // Step 2b: every non-root row's argmin joins the forest (mutual
        // pairs commit from the non-root side only; otherwise winners of
        // distinct rows are distinct edges). Emission is in row order —
        // deterministic.
        {
            let g_ro: &[u32] = &g;
            let mut round_chosen = arena.lease::<u32>(n_cur);
            compact_map_into(pool, arena, n_cur, &mut round_chosen, |v| {
                (g_ro[v] != v as u32).then(|| arcs_ref[mwe_idx(best_ro[v]) as usize].orig)
            });
            self.chosen.extend_from_slice(&round_chosen);
        }
        drop(mwe_span);

        // Step 2c: compress the pseudoforest to stars (shared with the
        // edge-list engine).
        let jump_span = telemetry::span("pointer-jump");
        pointer_jump_to_roots(pool, cfg, &mut g, &self.jumps, stats);
        drop(jump_span);

        // Step 3: SpGEMM-style contraction. Roots get dense new ids; each
        // surviving arc (endpoints in different components) is grouped by
        // its new row id and its column relabelled — one wide-key counting
        // distribution builds offsets and arc array of A' in place.
        let _t = telemetry::span("spgemm-contract");
        let g_ro: &[u32] = &g;
        let (mut new_id, n_roots) = renumber_roots(pool, arena, g_ro);

        // The source row of every arc, recovered from the row offsets
        // (rows are contiguous arc ranges, so this is a row-parallel fill).
        let mut arc_src = arena.lease::<u32>(m);
        {
            let src_ptr = SendPtr::new(arc_src.as_mut_ptr());
            let row_off: &[u64] = &self.row_off;
            parallel_for(pool, 0..n_cur, cfg, |r| {
                let lo = row_off[r] as usize;
                let hi = row_off[r + 1] as usize;
                for a in lo..hi {
                    // SAFETY: row ranges partition 0..m; each slot written
                    // exactly once.
                    unsafe { *src_ptr.get().add(a) = r as u32 };
                }
            });
            // SAFETY: every slot in 0..m was initialised above.
            unsafe { arc_src.set_len(m) };
        }

        self.arcs_next.clear();
        self.arcs_next.reserve(m);
        {
            let nid_ptr = SendPtr::new(new_id.as_mut_ptr());
            let next_ptr = SendPtr::new(self.arcs_next.as_mut_ptr());
            let arc_src_ro: &[u32] = &arc_src;
            let total = group_by_key_in(
                pool,
                arena,
                m,
                n_roots,
                &mut self.row_off_next,
                |a| {
                    let ru = g_ro[arc_src_ro[a] as usize];
                    let rv = g_ro[arcs_ref[a].col as usize];
                    // SAFETY: `ru` is a root, whose slot the renumbering
                    // initialised.
                    (ru != rv).then(|| unsafe { *nid_ptr.get().add(ru as usize) })
                },
                |a, slot| {
                    let arc = arcs_ref[a];
                    let rv = g_ro[arc.col as usize];
                    // SAFETY: `rv` is a root slot (initialised); output
                    // slots partition 0..total and `arcs_next` has capacity
                    // m >= total.
                    unsafe {
                        next_ptr.get().add(slot).write(SpmvArc {
                            col: *nid_ptr.get().add(rv as usize),
                            orig: arc.orig,
                            whi: arc.whi,
                        })
                    };
                },
            );
            // SAFETY: exactly `total` leading slots were initialised.
            unsafe { self.arcs_next.set_len(total) };
        }
        std::mem::swap(&mut self.arcs, &mut self.arcs_next);
        std::mem::swap(&mut self.row_off, &mut self.row_off_next);
        self.n_cur = n_roots;
    }

    /// Materialises the chosen original edges.
    fn chosen_edges(&self) -> Vec<Edge> {
        self.chosen
            .iter()
            .map(|&i| self.orig_edges[i as usize])
            .collect()
    }
}

fn drive<F: FnMut(SpmvRound)>(
    mut s: SpmvState,
    n: usize,
    pool: &ThreadPool,
    mut on_round: F,
) -> MstResult {
    let mut stats = AlgoStats::default();
    let cfg = ParallelForConfig::with_grain(512);
    let mut round = 0usize;
    while !s.is_done() {
        on_round(SpmvRound {
            round,
            rows: s.n_cur,
            nnz: s.arcs.len(),
            chosen: s.chosen.len(),
        });
        s.round(pool, cfg, &mut stats);
        round += 1;
    }
    on_round(SpmvRound {
        round,
        rows: s.n_cur,
        nnz: 0,
        chosen: s.chosen.len(),
    });
    stats.pointer_jumps = s.jumps.get();
    stats.atomic_rmw = s.rmw.get();
    s.arena.report_telemetry();
    let chosen = s.chosen_edges();
    MstResult::from_edges(n, chosen, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kruskal::kruskal;
    use llp_graph::samples::{fig1, small_forest, FIG1_MST_WEIGHT, SMALL_FOREST_MSF_WEIGHT};

    fn pools() -> Vec<ThreadPool> {
        vec![ThreadPool::new(1), ThreadPool::new(4)]
    }

    #[test]
    fn fig1_matches_paper_trace() {
        for pool in pools() {
            let mst = spmv_boruvka_par(&fig1(), &pool);
            assert_eq!(mst.total_weight, FIG1_MST_WEIGHT);
            assert_eq!(mst.stats.rounds, 2);
            let mut ws: Vec<f64> = mst.edges.iter().map(|e| e.w).collect();
            ws.sort_by(f64::total_cmp);
            assert_eq!(ws, vec![2.0, 3.0, 4.0, 7.0]);
        }
    }

    #[test]
    fn fig1_round_trace_matches_contraction_semantics() {
        let pool = ThreadPool::new(2);
        let mut trace = Vec::new();
        let _ = spmv_boruvka_par_observed(&fig1(), &pool, |r| trace.push(r));
        // Round 0 starts with 5 rows and 14 arcs (7 edges, both
        // directions); round 1 sees components {a,b,c} and {d,e}.
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0], SpmvRound { round: 0, rows: 5, nnz: 14, chosen: 0 });
        assert_eq!(trace[1].rows, 2);
        assert_eq!(trace[1].chosen, 3);
        assert_eq!(trace[2], SpmvRound { round: 2, rows: 1, nnz: 0, chosen: 4 });
    }

    #[test]
    fn forest_support() {
        for pool in pools() {
            let msf = spmv_boruvka_par(&small_forest(), &pool);
            assert_eq!(msf.total_weight, SMALL_FOREST_MSF_WEIGHT);
            assert_eq!(msf.num_trees, 3);
        }
    }

    #[test]
    fn matches_kruskal_on_random_graphs() {
        for pool in pools() {
            for seed in 0..6 {
                let g = llp_graph::generators::erdos_renyi(250, 900, seed);
                assert_eq!(
                    spmv_boruvka_par(&g, &pool).canonical_keys(),
                    kruskal(&g).canonical_keys(),
                    "seed {seed} threads {}",
                    pool.threads()
                );
            }
        }
    }

    #[test]
    fn road_and_rmat_graphs() {
        let pool = ThreadPool::new(4);
        let road = llp_graph::generators::road_network(
            llp_graph::generators::RoadParams::usa_like(25, 25, 3),
        );
        assert_eq!(
            spmv_boruvka_par(&road, &pool).canonical_keys(),
            kruskal(&road).canonical_keys()
        );
        let rmat = llp_graph::generators::rmat(llp_graph::generators::RmatParams::graph500(
            9, 8, 4,
        ));
        assert_eq!(
            spmv_boruvka_par(&rmat, &pool).canonical_keys(),
            kruskal(&rmat).canonical_keys()
        );
    }

    #[test]
    fn edge_list_entry_matches_csr_entry() {
        let pool = ThreadPool::new(2);
        for seed in 0..4 {
            let g = llp_graph::generators::erdos_renyi(150, 500, seed);
            let edges: Vec<llp_graph::Edge> = g.edges().collect();
            let via_csr = spmv_boruvka_par(&g, &pool);
            let via_edges = spmv_boruvka_from_edges(g.num_vertices(), edges, &pool);
            assert_eq!(via_csr.canonical_keys(), via_edges.canonical_keys());
        }
    }

    #[test]
    fn edge_list_entry_skips_self_loops() {
        let pool = ThreadPool::new(1);
        let edges = vec![
            llp_graph::Edge::new(0, 0, 1.0), // self loop: ignored
            llp_graph::Edge::new(0, 1, 2.0),
            llp_graph::Edge::new(1, 2, 3.0),
        ];
        let msf = spmv_boruvka_from_edges(3, edges, &pool);
        assert_eq!(msf.total_weight, 5.0);
        assert_eq!(msf.num_trees, 1);
    }

    #[test]
    fn duplicate_edges_with_identical_weights_stay_canonical() {
        // The regression the (EdgeKey, edge id) tie-break exists for: two
        // racing cells must never commit *different* copies of a duplicate
        // edge (that would form an undetected 2-cycle in the hook forest).
        let pool = ThreadPool::new(4);
        for seed in 0..8u64 {
            let mut rng = llp_runtime::rng::SmallRng::seed_from_u64(seed);
            let n = 40usize;
            let mut edges = Vec::new();
            for _ in 0..160 {
                let u = (rng.next_u64() % n as u64) as u32;
                let v = (rng.next_u64() % n as u64) as u32;
                let w = (rng.next_u64() % 3) as f64 + 1.0;
                edges.push(llp_graph::Edge::new(u, v, w));
                if rng.next_u64().is_multiple_of(4) {
                    edges.push(llp_graph::Edge::new(u, v, w)); // exact duplicate
                }
            }
            let spmv = spmv_boruvka_from_edges(n, edges.clone(), &pool);
            let llp = crate::llp_boruvka::llp_boruvka_from_edges(n, edges, &pool);
            assert_eq!(spmv.canonical_keys(), llp.canonical_keys(), "seed {seed}");
            assert_eq!(spmv.total_weight, llp.total_weight, "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn edge_list_entry_rejects_bad_endpoints() {
        let pool = ThreadPool::new(1);
        let _ = spmv_boruvka_from_edges(2, vec![llp_graph::Edge::new(0, 5, 1.0)], &pool);
    }

    #[test]
    fn empty_graph() {
        let pool = ThreadPool::new(2);
        let r = spmv_boruvka_par(&CsrGraph::empty(3), &pool);
        assert!(r.edges.is_empty());
        assert_eq!(r.num_trees, 3);
        assert_eq!(r.stats.rounds, 0);
    }

    #[test]
    fn rounds_shrink_geometrically() {
        let g = llp_graph::generators::path(4096, 8);
        let pool = ThreadPool::new(2);
        let mst = spmv_boruvka_par(&g, &pool);
        assert_eq!(mst.edges.len(), 4095);
        assert!(mst.stats.rounds <= 13, "rounds = {}", mst.stats.rounds);
    }

    #[test]
    fn observer_sees_every_round_boundary() {
        let pool = ThreadPool::new(2);
        let g = llp_graph::generators::erdos_renyi(500, 2500, 5);
        let mut trace = Vec::new();
        let r = spmv_boruvka_par_observed(&g, &pool, |s| trace.push(s));
        assert_eq!(trace.len() as u64, r.stats.rounds + 1);
        assert_eq!(trace.last().unwrap().nnz, 0);
        assert_eq!(trace.last().unwrap().chosen, r.edges.len());
        // Rows and nonzeros shrink strictly between rounds.
        for pair in trace.windows(2) {
            assert!(pair[1].rows < pair[0].rows);
            assert!(pair[1].nnz < pair[0].nnz);
        }
    }

    #[test]
    fn steady_state_rounds_do_not_grow_the_arena() {
        let g = llp_graph::generators::erdos_renyi(3000, 20_000, 7);
        let pool = ThreadPool::new(4);
        let mut s = SpmvState::from_edge_list(g.num_vertices(), g.edges().collect(), &pool);
        let mut stats = AlgoStats::default();
        let cfg = ParallelForConfig::with_grain(256);
        s.round(&pool, cfg, &mut stats);
        let footprint = s.arena.footprint_bytes();
        let caps = s.arcs.capacity().max(s.arcs_next.capacity());
        while !s.is_done() {
            s.round(&pool, cfg, &mut stats);
            assert_eq!(s.arena.footprint_bytes(), footprint, "arena grew after round 1");
            assert_eq!(
                s.arcs.capacity().max(s.arcs_next.capacity()),
                caps,
                "double buffer reallocated after round 1"
            );
        }
        assert!(s.arena.reuse_count() > 0);
    }
}

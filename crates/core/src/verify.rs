//! MST/MSF verification.
//!
//! Structural checks (spanning forest of the right shape), the Kruskal
//! oracle (canonical edge-set equality), and a direct cut-property check
//! used on small inputs by the property tests.

use crate::kruskal::kruskal;
use crate::result::MstResult;
use crate::union_find::UnionFind;
use llp_graph::algo::connectivity::connected_components;
use llp_graph::{CsrGraph, Edge};

/// A verification failure, with what went wrong.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// An edge in the result does not exist in the graph.
    ForeignEdge(Edge),
    /// The result contains a cycle.
    Cycle(Edge),
    /// The result has the wrong number of edges for a spanning forest.
    WrongEdgeCount {
        /// Edges present in the result.
        got: usize,
        /// `n - #components` of the input graph.
        want: usize,
    },
    /// A graph edge connects two trees the result leaves unjoined: the
    /// forest fails to span a connected component. Carries the offending
    /// (non-tree) graph edge whose endpoints the forest does not connect.
    NotSpanning(Edge),
    /// The result's edge set differs from the canonical MSF.
    NotMinimum {
        /// Weight of the submitted forest.
        got_weight: f64,
        /// Weight of the canonical MSF.
        min_weight: f64,
    },
    /// A tree edge is not the minimum edge across the cut it defines.
    CutViolation(Edge),
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::ForeignEdge(e) => write!(f, "edge ({},{}) not in graph", e.u, e.v),
            VerifyError::Cycle(e) => write!(f, "edge ({},{}) closes a cycle", e.u, e.v),
            VerifyError::WrongEdgeCount { got, want } => {
                write!(f, "forest has {got} edges, expected {want}")
            }
            VerifyError::NotSpanning(e) => write!(
                f,
                "forest does not span its component: graph edge ({},{}) \
                 connects two unjoined trees",
                e.u, e.v
            ),
            VerifyError::NotMinimum {
                got_weight,
                min_weight,
            } => write!(f, "forest weighs {got_weight}, minimum is {min_weight}"),
            VerifyError::CutViolation(e) => {
                write!(f, "edge ({},{}) is not minimal across its cut", e.u, e.v)
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Structural check: the edges exist in the graph, are acyclic, and span
/// exactly the graph's components.
pub fn verify_forest_structure(graph: &CsrGraph, result: &MstResult) -> Result<(), VerifyError> {
    let n = graph.num_vertices();
    // Edge membership with matching weight.
    for e in &result.edges {
        let exists = graph
            .neighbors(e.u)
            .any(|(v, w)| v == e.v && w == e.w);
        if !exists {
            return Err(VerifyError::ForeignEdge(*e));
        }
    }
    // Acyclic.
    let mut uf = UnionFind::new(n);
    for e in &result.edges {
        if !uf.union(e.u, e.v) {
            return Err(VerifyError::Cycle(*e));
        }
    }
    // Spans every component.
    let want = n - connected_components(graph).num_components;
    if result.edges.len() != want {
        return Err(VerifyError::WrongEdgeCount {
            got: result.edges.len(),
            want,
        });
    }
    Ok(())
}

/// Full verification: structure plus exact match with the canonical MSF
/// computed by Kruskal.
pub fn verify_msf(graph: &CsrGraph, result: &MstResult) -> Result<(), VerifyError> {
    verify_forest_structure(graph, result)?;
    let oracle = kruskal(graph);
    if result.canonical_keys() != oracle.canonical_keys() {
        return Err(VerifyError::NotMinimum {
            got_weight: result.total_weight,
            min_weight: oracle.total_weight,
        });
    }
    Ok(())
}

/// Direct cycle-property check (no oracle): every *non-tree* edge must be
/// at least as heavy (under the canonical order) as every tree edge on the
/// tree path between its endpoints — otherwise swapping would improve the
/// forest. O(m · tree depth) via [`crate::tree::RootedForest`]; the dual
/// of [`verify_cut_property`].
pub fn verify_cycle_property(graph: &CsrGraph, result: &MstResult) -> Result<(), VerifyError> {
    let forest = crate::tree::RootedForest::new(graph.num_vertices(), result, 0);
    let tree_keys: std::collections::HashSet<_> =
        result.edges.iter().map(Edge::key).collect();
    for e in graph.edges() {
        let key = e.key();
        if tree_keys.contains(&key) {
            continue;
        }
        match forest.path_max_key(e.u, e.v) {
            Some(max_on_path) if key < max_on_path => {
                return Err(VerifyError::CutViolation(e));
            }
            Some(_) => {}
            None => {
                // Endpoints in different trees but a connecting edge exists:
                // the forest fails to span a component. (Formerly reported
                // as `WrongEdgeCount` with a fabricated `want`.)
                return Err(VerifyError::NotSpanning(e));
            }
        }
    }
    Ok(())
}

/// Direct cut-property check (no oracle): every tree edge must be the
/// minimum-key graph edge crossing the cut obtained by removing it from
/// its tree. O(|T| · m) — use on small graphs.
pub fn verify_cut_property(graph: &CsrGraph, result: &MstResult) -> Result<(), VerifyError> {
    let n = graph.num_vertices();
    for (i, e) in result.edges.iter().enumerate() {
        // Partition vertices by the forest minus edge i.
        let mut uf = UnionFind::new(n);
        for (j, f) in result.edges.iter().enumerate() {
            if j != i {
                uf.union(f.u, f.v);
            }
        }
        let side = uf.find(e.u);
        // e must be the minimum graph edge between the two sides.
        let key = e.key();
        for g in graph.edges() {
            let cu = uf.find(g.u);
            let cv = uf.find(g.v);
            let crosses = (cu == side) != (cv == side);
            if crosses && cu != cv && g.key() < key {
                return Err(VerifyError::CutViolation(*e));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::AlgoStats;
    use llp_graph::samples::fig1;

    fn mst_of_fig1() -> MstResult {
        kruskal(&fig1())
    }

    #[test]
    fn accepts_the_real_mst() {
        let g = fig1();
        let mst = mst_of_fig1();
        verify_forest_structure(&g, &mst).unwrap();
        verify_msf(&g, &mst).unwrap();
        verify_cut_property(&g, &mst).unwrap();
        verify_cycle_property(&g, &mst).unwrap();
    }

    #[test]
    fn cycle_property_rejects_suboptimal_tree() {
        let g = fig1();
        // Swap the 7-edge for the 9-edge: still spanning, not minimum. The
        // non-tree 7-edge (b,d) is lighter than the 9-edge on its cycle.
        let subopt = MstResult::from_edges(
            5,
            vec![
                Edge::new(3, 4, 2.0),
                Edge::new(1, 2, 3.0),
                Edge::new(0, 2, 4.0),
                Edge::new(2, 3, 9.0),
            ],
            AlgoStats::default(),
        );
        assert!(matches!(
            verify_cycle_property(&g, &subopt),
            Err(VerifyError::CutViolation(_))
        ));
    }

    #[test]
    fn cycle_property_accepts_msf_on_random_graphs() {
        for seed in 0..5 {
            let g = llp_graph::generators::erdos_renyi(80, 250, seed);
            let msf = kruskal(&g);
            verify_cycle_property(&g, &msf).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn rejects_foreign_edges() {
        let g = fig1();
        let fake = MstResult::from_edges(
            5,
            vec![Edge::new(0, 4, 1.0)], // no such edge
            AlgoStats::default(),
        );
        assert!(matches!(
            verify_forest_structure(&g, &fake),
            Err(VerifyError::ForeignEdge(_))
        ));
    }

    #[test]
    fn rejects_cycles() {
        let g = fig1();
        let cyclic = MstResult::from_edges(
            5,
            vec![
                Edge::new(1, 2, 3.0),
                Edge::new(0, 2, 4.0),
                Edge::new(0, 1, 5.0), // closes the triangle
            ],
            AlgoStats::default(),
        );
        assert!(matches!(
            verify_forest_structure(&g, &cyclic),
            Err(VerifyError::Cycle(_))
        ));
    }

    #[test]
    fn rejects_non_spanning() {
        let g = fig1();
        let partial = MstResult::from_edges(
            5,
            vec![Edge::new(1, 2, 3.0)],
            AlgoStats::default(),
        );
        assert!(matches!(
            verify_forest_structure(&g, &partial),
            Err(VerifyError::WrongEdgeCount { got: 1, want: 4 })
        ));
    }

    #[test]
    fn cycle_property_reports_non_spanning_with_offending_edge() {
        let g = fig1();
        // Drop the (d,e)=2 edge: vertex 4 is stranded, and the graph edges
        // reaching it cross between unjoined trees.
        let partial = MstResult::from_edges(
            5,
            vec![
                Edge::new(1, 2, 3.0),
                Edge::new(0, 2, 4.0),
                Edge::new(1, 3, 7.0),
            ],
            AlgoStats::default(),
        );
        match verify_cycle_property(&g, &partial) {
            Err(VerifyError::NotSpanning(e)) => {
                assert!(
                    e.u == 4 || e.v == 4,
                    "offending edge must touch the stranded vertex, got ({},{})",
                    e.u,
                    e.v
                );
            }
            other => panic!("expected NotSpanning, got {other:?}"),
        }
    }

    #[test]
    fn rejects_suboptimal_spanning_tree() {
        let g = fig1();
        // Spanning but includes the 9 edge instead of 7: weight 18 > 16.
        let subopt = MstResult::from_edges(
            5,
            vec![
                Edge::new(3, 4, 2.0),
                Edge::new(1, 2, 3.0),
                Edge::new(0, 2, 4.0),
                Edge::new(2, 3, 9.0),
            ],
            AlgoStats::default(),
        );
        verify_forest_structure(&g, &subopt).unwrap();
        assert!(matches!(
            verify_msf(&g, &subopt),
            Err(VerifyError::NotMinimum { .. })
        ));
        assert!(matches!(
            verify_cut_property(&g, &subopt),
            Err(VerifyError::CutViolation(_))
        ));
    }

    #[test]
    fn forest_inputs_verify() {
        let g = llp_graph::samples::small_forest();
        let msf = kruskal(&g);
        verify_msf(&g, &msf).unwrap();
        verify_cut_property(&g, &msf).unwrap();
    }
}

//! Machine-independent work metrics.
//!
//! The paper's speedup claims reduce to work and synchronization structure:
//! LLP-Prim beats Prim because early fixing removes heap operations;
//! LLP-Boruvka beats parallel Boruvka because pointer jumping with relaxed
//! writes replaces contended priority updates. These counters expose that
//! structure directly, so the benchmark harness can reproduce the *shape*
//! of Figs 2–4 even on machines with fewer cores than the paper's 48-vCPU
//! testbed.

/// Per-run work metrics. Every algorithm fills the fields relevant to it;
/// the rest stay zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlgoStats {
    /// Heap insertions (lazy or indexed).
    pub heap_pushes: u64,
    /// Heap removals, including lazy-deleted stale entries.
    pub heap_pops: u64,
    /// Indexed-heap decrease-key operations.
    pub decrease_keys: u64,
    /// Directed edge explorations.
    pub edges_scanned: u64,
    /// Vertices fixed through the LLP early-fixing (MWE) rule.
    pub early_fixes: u64,
    /// Vertices fixed by a heap extraction (classic Prim path).
    pub heap_fixes: u64,
    /// Boruvka / solver rounds.
    pub rounds: u64,
    /// Pointer-jump assignments (`G[j] := G[G[j]]`).
    pub pointer_jumps: u64,
    /// Compare-and-swap retries (contention proxy).
    pub cas_retries: u64,
    /// Atomic read-modify-write operations issued (synchronization proxy).
    pub atomic_rmw: u64,
    /// Parallel-region launches (barrier proxy).
    pub parallel_regions: u64,
}

impl AlgoStats {
    /// Total heap traffic, the quantity LLP-Prim is designed to reduce.
    pub fn heap_ops(&self) -> u64 {
        self.heap_pushes + self.heap_pops + self.decrease_keys
    }

    /// Coarse synchronization score used by the ablation benches.
    pub fn sync_score(&self) -> u64 {
        self.atomic_rmw + self.cas_retries + self.parallel_regions
    }

    /// Component-wise sum (for aggregating repeated runs).
    pub fn merge(&self, other: &AlgoStats) -> AlgoStats {
        AlgoStats {
            heap_pushes: self.heap_pushes + other.heap_pushes,
            heap_pops: self.heap_pops + other.heap_pops,
            decrease_keys: self.decrease_keys + other.decrease_keys,
            edges_scanned: self.edges_scanned + other.edges_scanned,
            early_fixes: self.early_fixes + other.early_fixes,
            heap_fixes: self.heap_fixes + other.heap_fixes,
            rounds: self.rounds + other.rounds,
            pointer_jumps: self.pointer_jumps + other.pointer_jumps,
            cas_retries: self.cas_retries + other.cas_retries,
            atomic_rmw: self.atomic_rmw + other.atomic_rmw,
            parallel_regions: self.parallel_regions + other.parallel_regions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_ops_sums_traffic() {
        let s = AlgoStats {
            heap_pushes: 3,
            heap_pops: 2,
            decrease_keys: 1,
            ..Default::default()
        };
        assert_eq!(s.heap_ops(), 6);
    }

    #[test]
    fn merge_adds_fields() {
        let a = AlgoStats {
            rounds: 2,
            edges_scanned: 10,
            ..Default::default()
        };
        let b = AlgoStats {
            rounds: 3,
            pointer_jumps: 7,
            ..Default::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.rounds, 5);
        assert_eq!(m.edges_scanned, 10);
        assert_eq!(m.pointer_jumps, 7);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(AlgoStats::default().heap_ops(), 0);
        assert_eq!(AlgoStats::default().sync_score(), 0);
    }
}

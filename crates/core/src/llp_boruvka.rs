//! LLP-Boruvka (the paper's Algorithm 6).
//!
//! Recursive Boruvka where each round is structured to need "little to no
//! synchronization between vertices":
//!
//! 1. **Per-vertex MWE + symmetry breaking** — every vertex `v` picks its
//!    minimum-weight edge `mwe(v) = (v, w)` and sets `G[v] := w`, except
//!    when the choice is mutual (`mwe(w) = (w, v)`) and `v < w`, in which
//!    case `G[v] := v` — making `v` the root and `G` a rooted forest. Each
//!    non-root's chosen edge joins the MSF.
//! 2. **LLP pointer jumping** — the rooted trees are flattened to rooted
//!    stars with the predicate `B ≡ ∀j : G[j] = G[G[j]]`
//!    (`forbidden(j) ≡ G[j] ≠ G[G[j]]`, `advance: G[j] := G[G[j]]`),
//!    run with relaxed atomic loads/stores — no CAS, no locks (Lemma 3/4:
//!    every intermediate pointer is a valid ancestor, so racy readers only
//!    ever observe correct states).
//! 3. **Contraction** — roots are renumbered densely; edges with distinct
//!    root labels survive into the recursive instance, carrying their
//!    original edge identity so the final forest references input vertices.
//!
//! The per-round machinery lives in the crate-private `contraction` module (shared with the
//! Boruvka–Prim [`crate::hybrid`]). Compare with
//! [`crate::parallel_boruvka`], which synchronises through shared
//! per-component CAS cells and a concurrent union–find every round.

use crate::contraction::Contraction;
use crate::result::MstResult;
use crate::stats::AlgoStats;
use llp_graph::{CsrGraph, Edge};
use llp_runtime::{ParallelForConfig, ThreadPool};

/// LLP-Boruvka; computes the canonical MSF.
pub fn llp_boruvka(graph: &CsrGraph, pool: &ThreadPool) -> MstResult {
    drive(Contraction::new(graph), graph.num_vertices(), pool)
}

/// LLP-Boruvka over a raw undirected edge list — the Boruvka family never
/// needs adjacency, so pipelines that already hold an edge list (e.g.
/// streaming loaders, contraction outputs) can skip CSR construction
/// entirely. Self-loops are ignored; endpoints must be `< n`.
pub fn llp_boruvka_from_edges(n: usize, edges: Vec<Edge>, pool: &ThreadPool) -> MstResult {
    assert!(
        edges.iter().all(|e| (e.u as usize) < n && (e.v as usize) < n),
        "edge endpoint out of range"
    );
    drive(Contraction::from_edge_list(n, edges), n, pool)
}

fn drive(mut c: Contraction, n: usize, pool: &ThreadPool) -> MstResult {
    let mut stats = AlgoStats::default();
    let cfg = ParallelForConfig::with_grain(512);
    while !c.is_done() {
        c.round(pool, cfg, &mut stats);
    }
    c.finish_stats(&mut stats);
    MstResult::from_edges(n, c.chosen_edges(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kruskal::kruskal;
    use llp_graph::samples::{fig1, small_forest, FIG1_MST_WEIGHT, SMALL_FOREST_MSF_WEIGHT};

    fn pools() -> Vec<ThreadPool> {
        vec![ThreadPool::new(1), ThreadPool::new(4)]
    }

    #[test]
    fn fig1_matches_paper_trace() {
        for pool in pools() {
            let mst = llp_boruvka(&fig1(), &pool);
            assert_eq!(mst.total_weight, FIG1_MST_WEIGHT);
            // Paper: first iteration chooses {4, 3, 2} (a,c), (b,c), (d,e);
            // second iteration chooses {7}; two rounds total.
            assert_eq!(mst.stats.rounds, 2);
            let mut ws: Vec<f64> = mst.edges.iter().map(|e| e.w).collect();
            ws.sort_by(f64::total_cmp);
            assert_eq!(ws, vec![2.0, 3.0, 4.0, 7.0]);
        }
    }

    #[test]
    fn forest_support() {
        for pool in pools() {
            let msf = llp_boruvka(&small_forest(), &pool);
            assert_eq!(msf.total_weight, SMALL_FOREST_MSF_WEIGHT);
            assert_eq!(msf.num_trees, 3);
        }
    }

    #[test]
    fn matches_kruskal_on_random_graphs() {
        for pool in pools() {
            for seed in 0..6 {
                let g = llp_graph::generators::erdos_renyi(250, 900, seed);
                assert_eq!(
                    llp_boruvka(&g, &pool).canonical_keys(),
                    kruskal(&g).canonical_keys(),
                    "seed {seed} threads {}",
                    pool.threads()
                );
            }
        }
    }

    #[test]
    fn road_and_rmat_graphs() {
        let pool = ThreadPool::new(4);
        let road = llp_graph::generators::road_network(
            llp_graph::generators::RoadParams::usa_like(25, 25, 3),
        );
        assert_eq!(
            llp_boruvka(&road, &pool).canonical_keys(),
            kruskal(&road).canonical_keys()
        );
        let rmat = llp_graph::generators::rmat(llp_graph::generators::RmatParams::graph500(
            9, 8, 4,
        ));
        assert_eq!(
            llp_boruvka(&rmat, &pool).canonical_keys(),
            kruskal(&rmat).canonical_keys()
        );
    }

    #[test]
    fn no_cas_in_pointer_jumping() {
        // LLP-Boruvka must do strictly less synchronization than the
        // baseline: no union-find, no per-component CAS beyond MWE writes.
        let g = llp_graph::generators::erdos_renyi(300, 2000, 2);
        let pool = ThreadPool::new(2);
        let llp = llp_boruvka(&g, &pool);
        let base = crate::parallel_boruvka::boruvka_par(&g, &pool);
        assert_eq!(llp.stats.cas_retries, 0);
        assert!(llp.stats.pointer_jumps > 0);
        assert_eq!(llp.canonical_keys(), base.canonical_keys());
    }

    #[test]
    fn edge_list_entry_matches_csr_entry() {
        let pool = ThreadPool::new(2);
        for seed in 0..4 {
            let g = llp_graph::generators::erdos_renyi(150, 500, seed);
            let edges: Vec<llp_graph::Edge> = g.edges().collect();
            let via_csr = llp_boruvka(&g, &pool);
            let via_edges = llp_boruvka_from_edges(g.num_vertices(), edges, &pool);
            assert_eq!(via_csr.canonical_keys(), via_edges.canonical_keys());
        }
    }

    #[test]
    fn edge_list_entry_skips_self_loops() {
        let pool = ThreadPool::new(1);
        let edges = vec![
            llp_graph::Edge::new(0, 0, 1.0), // self loop: ignored
            llp_graph::Edge::new(0, 1, 2.0),
            llp_graph::Edge::new(1, 2, 3.0),
        ];
        let msf = llp_boruvka_from_edges(3, edges, &pool);
        assert_eq!(msf.total_weight, 5.0);
        assert_eq!(msf.num_trees, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn edge_list_entry_rejects_bad_endpoints() {
        let pool = ThreadPool::new(1);
        let _ = llp_boruvka_from_edges(2, vec![llp_graph::Edge::new(0, 5, 1.0)], &pool);
    }

    #[test]
    fn empty_graph() {
        let pool = ThreadPool::new(2);
        let r = llp_boruvka(&CsrGraph::empty(3), &pool);
        assert!(r.edges.is_empty());
        assert_eq!(r.num_trees, 3);
        assert_eq!(r.stats.rounds, 0);
    }

    #[test]
    fn rounds_shrink_geometrically() {
        let g = llp_graph::generators::path(4096, 8);
        let pool = ThreadPool::new(2);
        let mst = llp_boruvka(&g, &pool);
        assert_eq!(mst.edges.len(), 4095);
        assert!(mst.stats.rounds <= 13, "rounds = {}", mst.stats.rounds);
    }
}

//! The min-plus (tropical) semiring behind the SpMV formulation of the
//! Borůvka round, stated over the packed MWE words the runtime already
//! uses for its atomic reductions.
//!
//! Baer, Kanakagiri & Solomonik express one Borůvka round as `y = A ⊗ x`
//! over a select/min semiring: `⊕` picks the smaller of two candidate
//! edges, `⊗` combines a matrix nonzero (an edge weight) with a vector
//! entry. Our carrier for `⊕` is the packed `u64` MWE word — weight
//! discriminant in the high 32 bits, candidate index in the low 32
//! (see [`llp_runtime::atomics::mwe_pack`]) — so the *same* value both
//! folds sequentially through [`plus`] and merges concurrently through
//! [`llp_runtime::atomics::mwe_propose`]; the semiring laws proved here
//! are exactly what makes the concurrent fold order-insensitive.
//!
//! Tie-breaking is the load-bearing part: two candidates can share a
//! weight discriminant (duplicate weights quantise to the same high 32
//! bits), so `⊕` falls back to an exact key the caller supplies per
//! index. As long as that key space is *totally* ordered — the SpMV
//! backend uses `(EdgeKey, edge id)`, isomorphic to the global canonical
//! edge order — `⊕` is associative, commutative, and idempotent, and the
//! argmin every row computes is unique and deterministic regardless of
//! arc order or thread schedule. The unit tests pin those laws plus the
//! order isomorphism (satellite: the same invariant the dynamic scoped
//! recompute relies on).

use llp_runtime::atomics::{mwe_idx, mwe_whi, MWE_EMPTY};

/// The additive identity `0̄` of the min-plus semiring over packed words:
/// the empty cell, losing `⊕` against every real candidate.
pub const PLUS_IDENTITY: u64 = MWE_EMPTY;

/// The multiplicative identity of tropical `⊗` (adding a zero-cost hop).
pub const TIMES_IDENTITY: f64 = 0.0;

/// The annihilator of tropical `⊗` — and the weight meaning "no edge",
/// which `⊕` treats as maximal.
pub const ANNIHILATOR: f64 = f64::INFINITY;

/// The semiring addition `a ⊕ b`: keeps whichever packed word denotes the
/// smaller candidate. The high-32 weight discriminant decides almost every
/// comparison; on a discriminant tie the caller's `exact_key` (any `Ord`
/// key over candidate indices) resolves it, and only a *full* tie — equal
/// exact keys — falls back to keeping `a` (the incumbent), mirroring
/// [`llp_runtime::atomics::mwe_propose`]. With an injective `exact_key`
/// that last case only arises for `a == b`, which is what makes `⊕`
/// genuinely commutative.
#[inline]
pub fn plus<K: Ord>(a: u64, b: u64, exact_key: impl Fn(u32) -> K) -> u64 {
    if b == MWE_EMPTY {
        return a;
    }
    if a == MWE_EMPTY {
        return b;
    }
    let (wa, wb) = (mwe_whi(a), mwe_whi(b));
    if wa != wb {
        return if wa < wb { a } else { b };
    }
    if a == b || exact_key(mwe_idx(a)) <= exact_key(mwe_idx(b)) {
        a
    } else {
        b
    }
}

/// The semiring multiplication `a ⊗ b` over tropical weights: saturating
/// addition. `TIMES_IDENTITY` (0) is its identity and `ANNIHILATOR` (+∞)
/// absorbs, which is how "no entry" propagates through a sparse product.
/// The MSF SpMV only ever multiplies by the identity (selecting an edge
/// costs its own weight), so this exists to state — and test — the full
/// semiring, not because the kernel needs a general `⊗`.
#[inline]
pub fn times(a: f64, b: f64) -> f64 {
    a + b
}

/// Folds a row of candidate words with [`plus`] — the sequential
/// reference for what a row of the min-plus SpMV computes. The concurrent
/// kernel must agree with this fold for every permutation of `words`
/// (pinned by the tests below and by the seq==par proptests).
pub fn fold_row<K: Ord>(words: impl IntoIterator<Item = u64>, exact_key: impl Fn(u32) -> K) -> u64 {
    words
        .into_iter()
        .fold(PLUS_IDENTITY, |acc, w| plus(acc, w, &exact_key))
}

#[cfg(test)]
mod tests {
    use super::*;
    use llp_graph::{Edge, EdgeKey};
    use llp_runtime::atomics::{as_atomic_u64, mwe_pack, mwe_propose, weight_hi32};
    use llp_runtime::rng::SmallRng;

    /// Deterministic pseudo-random edge set with plenty of duplicate
    /// weights (quantised to a handful of values) so discriminant ties are
    /// the common case, not the exception.
    fn tie_heavy_edges(seed: u64, n_edges: usize) -> Vec<Edge> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n_edges)
            .map(|_| {
                let u = (rng.next_u64() % 50) as u32;
                let v = (rng.next_u64() % 50) as u32;
                let w = (rng.next_u64() % 4) as f64 + 1.0;
                Edge { u, v, w }
            })
            .collect()
    }

    fn words_of(edges: &[Edge]) -> Vec<u64> {
        edges
            .iter()
            .enumerate()
            .map(|(i, e)| mwe_pack(weight_hi32(e.w), i as u32))
            .collect()
    }

    /// The exact key the SpMV backend uses: canonical edge key, then edge
    /// identity — a strict total order over edge *instances*.
    fn exact(edges: &[Edge]) -> impl Fn(u32) -> (EdgeKey, u32) + '_ {
        |i: u32| (edges[i as usize].key(), i)
    }

    #[test]
    fn plus_identity_laws() {
        let edges = tie_heavy_edges(1, 64);
        for &w in &words_of(&edges) {
            assert_eq!(plus(PLUS_IDENTITY, w, exact(&edges)), w);
            assert_eq!(plus(w, PLUS_IDENTITY, exact(&edges)), w);
        }
        assert_eq!(
            plus(PLUS_IDENTITY, PLUS_IDENTITY, exact(&edges)),
            PLUS_IDENTITY
        );
    }

    #[test]
    fn times_identity_and_annihilator_laws() {
        for w in [0.0, 1.0, 2.5, 1e300] {
            assert_eq!(times(TIMES_IDENTITY, w), w);
            assert_eq!(times(w, TIMES_IDENTITY), w);
            assert_eq!(times(ANNIHILATOR, w), ANNIHILATOR);
            assert_eq!(times(w, ANNIHILATOR), ANNIHILATOR);
        }
        // The annihilator of ⊗ is the identity of ⊕: +∞ packs above every
        // finite weight discriminant, so it loses every ⊕.
        let edges = vec![Edge { u: 0, v: 1, w: 1e308 }];
        let heavy = mwe_pack(weight_hi32(f64::INFINITY), 7);
        let finite = words_of(&edges)[0];
        assert_eq!(plus(heavy, finite, |i: u32| i), finite);
    }

    #[test]
    fn plus_is_commutative_associative_idempotent() {
        let edges = tie_heavy_edges(2, 48);
        let words = words_of(&edges);
        for &a in &words {
            assert_eq!(plus(a, a, exact(&edges)), a, "idempotence");
            for &b in &words {
                let ab = plus(a, b, exact(&edges));
                assert_eq!(ab, plus(b, a, exact(&edges)), "commutativity");
                for &c in &words {
                    assert_eq!(
                        plus(ab, c, exact(&edges)),
                        plus(a, plus(b, c, exact(&edges)), exact(&edges)),
                        "associativity"
                    );
                }
            }
        }
    }

    /// The argmin `⊕` computes is isomorphic to the global `EdgeKey`
    /// order: for any two distinct candidates, `⊕` picks exactly the one
    /// whose `(EdgeKey, id)` is smaller — including full-weight duplicate
    /// edges, where only the id separates them.
    #[test]
    fn plus_tie_breaking_is_isomorphic_to_edge_key_order() {
        let edges = tie_heavy_edges(3, 96);
        let words = words_of(&edges);
        let key = exact(&edges);
        for (i, &a) in words.iter().enumerate() {
            for (j, &b) in words.iter().enumerate() {
                let picked = plus(a, b, exact(&edges));
                let want = if key(i as u32) <= key(j as u32) { a } else { b };
                assert_eq!(picked, want, "⊕ disagrees with (EdgeKey, id) at ({i}, {j})");
            }
        }
    }

    /// Folding a row with `plus` is order-insensitive and agrees with the
    /// plain min-by-key over the same candidates.
    #[test]
    fn fold_row_matches_min_by_key_under_any_order() {
        let edges = tie_heavy_edges(4, 40);
        let words = words_of(&edges);
        let key = exact(&edges);
        let want = (0..edges.len() as u32)
            .min_by_key(|&i| key(i))
            .map(|i| words[i as usize])
            .unwrap();
        let mut rng = SmallRng::seed_from_u64(99);
        let mut shuffled = words.clone();
        for trial in 0..32 {
            // Fisher-Yates with the in-repo rng.
            for i in (1..shuffled.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                shuffled.swap(i, j);
            }
            assert_eq!(
                fold_row(shuffled.iter().copied(), exact(&edges)),
                want,
                "fold order changed the argmin (trial {trial})"
            );
        }
    }

    /// The sequential `plus` fold and the concurrent CAS-based
    /// `mwe_propose` accumulation compute the same cell value — the law
    /// that lets the SpMV kernel merge row fragments from racing chunks.
    #[test]
    fn plus_fold_agrees_with_mwe_propose_accumulation() {
        let edges = tie_heavy_edges(5, 64);
        let words = words_of(&edges);
        let key = exact(&edges);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut order: Vec<usize> = (0..words.len()).collect();
        for trial in 0..16 {
            for i in (1..order.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            let mut cell = [MWE_EMPTY];
            {
                let cells = as_atomic_u64(&mut cell);
                for &i in &order {
                    let e = &edges[i];
                    mwe_propose(&cells[0], weight_hi32(e.w), i as u32, &key);
                }
            }
            assert_eq!(
                cell[0],
                fold_row(words.iter().copied(), &key),
                "propose order diverged from the ⊕ fold (trial {trial})"
            );
        }
    }
}

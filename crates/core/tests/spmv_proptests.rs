//! Property-style tests for the SpMV-Borůvka backend: seed sweeps over
//! adversarial random inputs (disconnected forests, tie-heavy duplicate
//! weights, self-loops and parallel edges) cross-checked against
//! `filter_kruskal_par` and the oracle-free certifier, plus the
//! determinism property the algebraic formulation promises — sequential
//! and parallel runs produce *bit-identical* round traces and forests.
//! Cases are deterministic sweeps over [`llp_runtime::rng::SmallRng`]
//! (hermetic builds cannot depend on `proptest`).

use llp_graph::generators::{barabasi_albert, erdos_renyi, random_geometric};
use llp_graph::{Edge, GraphBuilder};
use llp_mst::certify::certify_msf_par;
use llp_mst::prelude::{
    filter_kruskal_par, spmv_boruvka_from_edges, spmv_boruvka_par, spmv_boruvka_par_observed,
    SpmvRound,
};
use llp_runtime::rng::SmallRng;
use llp_runtime::ThreadPool;

const CASES: u64 = 48;

/// Raw multigraph edge list: self-loops, exact-duplicate parallel edges,
/// and weights quantised to a handful of values so discriminant ties are
/// the common case. Returns `(n, edges)`.
fn adversarial_edges(seed: u64) -> (usize, Vec<Edge>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = rng.gen_range(2usize..120);
    let m = rng.gen_range(0usize..400);
    let mut edges = Vec::with_capacity(m + m / 4);
    for _ in 0..m {
        let u = rng.gen_range(0u32..n as u32);
        // 1 in 8 edges is a self-loop — the backend must drop them.
        let v = if rng.gen_range(0u32..8) == 0 {
            u
        } else {
            rng.gen_range(0u32..n as u32)
        };
        let w = rng.gen_range(1u32..5) as f64;
        edges.push(Edge { u, v, w });
        // 1 in 4 edges is duplicated verbatim — a parallel edge with the
        // identical weight, separable only by edge identity.
        if rng.gen_range(0u32..4) == 0 {
            edges.push(Edge { u, v, w });
        }
    }
    (n, edges)
}

/// The sanitised CSR view of a raw multigraph (self-loops dropped,
/// parallel edges collapsed to the canonical minimum) — same MSF.
fn sanitised(n: usize, edges: &[Edge]) -> llp_graph::CsrGraph {
    let mut b = GraphBuilder::new(n);
    for e in edges {
        b.add_edge(e.u, e.v, e.w);
    }
    b.build()
}

#[test]
fn spmv_matches_filter_kruskal_on_adversarial_multigraphs() {
    let pool = ThreadPool::new(4);
    for seed in 0..CASES {
        let (n, edges) = adversarial_edges(seed);
        let g = sanitised(n, &edges);
        let oracle = filter_kruskal_par(&g, &pool);
        // The backend consumes the raw multigraph; self-loops can never be
        // tree edges and of parallel duplicates either instance has the
        // same canonical key, so the forests must agree exactly.
        let r = spmv_boruvka_from_edges(n, edges, &pool);
        assert_eq!(r.canonical_keys(), oracle.canonical_keys(), "seed {seed}");
        assert_eq!(r.num_trees, oracle.num_trees, "seed {seed}");
        assert_eq!(r.total_weight, oracle.total_weight, "seed {seed}");
        certify_msf_par(&g, &r, &pool).unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
    }
}

#[test]
fn spmv_matches_filter_kruskal_on_disconnected_forests() {
    // m ~ n/2 .. 2n: almost every instance is a forest of many trees, so
    // rounds hit components that finish early and rows that empty out.
    let pool = ThreadPool::new(4);
    let mut forests = 0;
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5f5f);
        let n = rng.gen_range(4usize..400);
        let m = rng.gen_range(n / 2..2 * n);
        let g = erdos_renyi(n, m, seed);
        let oracle = filter_kruskal_par(&g, &pool);
        let r = spmv_boruvka_par(&g, &pool);
        assert_eq!(r.canonical_keys(), oracle.canonical_keys(), "seed {seed}");
        assert_eq!(r.num_trees, oracle.num_trees, "seed {seed}");
        if r.num_trees > 1 {
            forests += 1;
        }
        certify_msf_par(&g, &r, &pool).unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
    }
    assert!(
        forests * 2 > CASES as usize,
        "sweep lost its point: only {forests}/{CASES} cases were disconnected"
    );
}

#[test]
fn spmv_matches_filter_kruskal_on_generator_families() {
    // Structured families the sweep binary also uses: hub-heavy
    // preferential attachment and (possibly disconnected) geometric
    // graphs — skewed and near-planar row-degree distributions.
    let pool = ThreadPool::new(4);
    for seed in 0..6u64 {
        let ba = barabasi_albert(800, 3, seed);
        let rgg = random_geometric(600, (4.0 / 600.0f64).sqrt(), seed);
        for (name, g) in [("ba", &ba), ("rgg", &rgg)] {
            let oracle = filter_kruskal_par(g, &pool);
            let r = spmv_boruvka_par(g, &pool);
            assert_eq!(r.canonical_keys(), oracle.canonical_keys(), "{name}, seed {seed}");
            assert_eq!(r.num_trees, oracle.num_trees, "{name}, seed {seed}");
            certify_msf_par(g, &r, &pool)
                .unwrap_or_else(|e| panic!("{name}, seed {seed}: {e:?}"));
        }
    }
}

#[test]
fn sequential_and_parallel_round_traces_are_bit_identical() {
    // The algebraic backend's determinism claim: because ⊕ is
    // order-insensitive (semiring tests) the per-round trace — live rows,
    // live arcs, edges chosen — and the final forest are identical under
    // any thread schedule, not merely weight-equal.
    let seq_pool = ThreadPool::new(1);
    let par_pool = ThreadPool::new(4);
    for seed in 0..24u64 {
        let (n, edges) = adversarial_edges(seed ^ 0xabcd);
        let g = sanitised(n, &edges);
        let mut seq_trace: Vec<SpmvRound> = Vec::new();
        let mut par_trace: Vec<SpmvRound> = Vec::new();
        let seq = spmv_boruvka_par_observed(&g, &seq_pool, |r| seq_trace.push(r));
        let par = spmv_boruvka_par_observed(&g, &par_pool, |r| par_trace.push(r));
        assert_eq!(seq_trace, par_trace, "seed {seed}: round traces diverged");
        assert_eq!(
            seq.canonical_keys(),
            par.canonical_keys(),
            "seed {seed}: forests diverged"
        );
        // Bit-identical, not approximately equal: the same edges summed in
        // canonical order on both sides.
        assert_eq!(
            seq.total_weight.to_bits(),
            par.total_weight.to_bits(),
            "seed {seed}: total weights not bit-identical"
        );
        assert_eq!(seq.stats.rounds, par.stats.rounds, "seed {seed}");
    }
}

#[test]
fn round_trace_is_stable_across_repeat_runs() {
    // Same pool, same graph, many runs: the trace is a pure function of
    // the input, so repeats must reproduce it exactly (this is what the
    // chaos matrix perturbs schedules against).
    let pool = ThreadPool::new(4);
    let g = erdos_renyi(1000, 3000, 17);
    let mut first: Option<(Vec<SpmvRound>, Vec<llp_graph::EdgeKey>)> = None;
    for run in 0..8 {
        let mut trace = Vec::new();
        let r = spmv_boruvka_par_observed(&g, &pool, |s| trace.push(s));
        let keys = r.canonical_keys();
        match &first {
            None => first = Some((trace, keys)),
            Some((t0, k0)) => {
                assert_eq!(&trace, t0, "run {run}: trace diverged");
                assert_eq!(&keys, k0, "run {run}: forest diverged");
            }
        }
    }
}

//! Property-style tests for the MST crate's data structures: heaps against
//! the standard library, concurrent against sequential union–find, and the
//! Prim heap disciplines against each other. Cases are deterministic seed
//! sweeps over [`llp_runtime::rng::SmallRng`] (hermetic builds cannot depend
//! on `proptest`).

use llp_mst::heap::{IndexedHeap, LazyHeap};
use llp_mst::union_find::{ConcurrentUnionFind, UnionFind};
use llp_runtime::rng::SmallRng;

const CASES: u64 = 64;

#[test]
fn lazy_heap_pops_sorted() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let len = rng.gen_range(0usize..500);
        let entries: Vec<(u64, u32)> = (0..len)
            .map(|_| (rng.gen_range(0u64..1000), rng.gen_range(0u32..100)))
            .collect();
        let mut h: LazyHeap<u64> = LazyHeap::new();
        for &(k, v) in &entries {
            h.push(k, v);
        }
        let mut popped = Vec::new();
        while let Some((k, _)) = h.pop() {
            popped.push(k);
        }
        assert!(popped.windows(2).all(|w| w[0] <= w[1]), "seed {seed}");
        assert_eq!(popped.len(), entries.len(), "seed {seed}");
        assert_eq!(h.pushes, entries.len() as u64, "seed {seed}");
        assert_eq!(h.pops, entries.len() as u64, "seed {seed}");
    }
}

#[test]
fn indexed_heap_tracks_minimum_per_vertex() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let len = rng.gen_range(0usize..600);
        let ops: Vec<(u32, u64)> = (0..len)
            .map(|_| (rng.gen_range(0u32..50), rng.gen_range(0u64..1000)))
            .collect();
        let mut h: IndexedHeap<u64> = IndexedHeap::new(50);
        let mut min_key = vec![u64::MAX; 50];
        for &(v, k) in &ops {
            h.insert_or_adjust(v, k);
            if k < min_key[v as usize] {
                min_key[v as usize] = k;
            }
        }
        let mut popped = Vec::new();
        while let Some((k, v)) = h.pop_min() {
            popped.push((v, k));
        }
        // Sorted by key.
        assert!(popped.windows(2).all(|w| w[0].1 <= w[1].1), "seed {seed}");
        // Each live vertex appears once with its minimum.
        let mut got = popped.clone();
        got.sort_unstable();
        let want: Vec<(u32, u64)> = (0..50u32)
            .filter(|&v| min_key[v as usize] != u64::MAX)
            .map(|v| (v, min_key[v as usize]))
            .collect();
        assert_eq!(got, want, "seed {seed}");
    }
}

#[test]
fn union_find_implementations_agree() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = rng.gen_range(1usize..200);
        let len = rng.gen_range(0usize..400);
        let mut seq = UnionFind::new(n);
        let conc = ConcurrentUnionFind::new(n);
        for _ in 0..len {
            let a = rng.gen_range(0u32..n as u32);
            let b = rng.gen_range(0u32..n as u32);
            let s = seq.union(a, b);
            let c = conc.union(a, b);
            assert_eq!(s, c, "seed {seed}: union({a}, {b})");
        }
        for a in 0..n as u32 {
            for b in 0..n as u32 {
                assert_eq!(seq.same(a, b), conc.same(a, b), "seed {seed}");
            }
        }
    }
}

#[test]
fn union_find_component_count_is_exact() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = rng.gen_range(1usize..100);
        let len = rng.gen_range(0usize..200);
        let mut uf = UnionFind::new(n);
        let mut merges = 0;
        for _ in 0..len {
            if uf.union(rng.gen_range(0u32..n as u32), rng.gen_range(0u32..n as u32)) {
                merges += 1;
            }
        }
        assert_eq!(uf.num_components(), n - merges, "seed {seed}");
    }
}

#[test]
fn prim_heap_disciplines_agree() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = rng.gen_range(2usize..40);
        let extra = rng.gen_range(0usize..150);
        // Connected graph: spine + random extras with tie-heavy weights.
        let mut b = llp_graph::GraphBuilder::new(n);
        for i in 1..n as u32 {
            b.add_edge(i - 1, i, 5.0 + (i % 3) as f64);
        }
        for _ in 0..extra {
            let u = rng.gen_range(0u32..n as u32);
            let v = rng.gen_range(0u32..n as u32);
            if u != v {
                b.add_edge(u, v, rng.gen_range(1u32..9) as f64);
            }
        }
        let g = b.build();
        let lazy = llp_mst::prim::prim_lazy(&g, 0).unwrap();
        let idx = llp_mst::prim::prim_indexed(&g, 0).unwrap();
        assert_eq!(lazy.canonical_keys(), idx.canonical_keys(), "seed {seed}");
        // The indexed heap never stores duplicates, so it pops at most n-1
        // non-stale entries while lazy may pop more.
        assert!(idx.stats.heap_pops <= lazy.stats.heap_pops, "seed {seed}");
    }
}

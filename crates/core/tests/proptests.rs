//! Property tests for the MST crate's data structures: heaps against the
//! standard library, concurrent against sequential union–find, and the
//! Prim heap disciplines against each other.

use llp_mst::heap::{IndexedHeap, LazyHeap};
use llp_mst::union_find::{ConcurrentUnionFind, UnionFind};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lazy_heap_pops_sorted(entries in proptest::collection::vec((0u64..1000, 0u32..100), 0..500)) {
        let mut h: LazyHeap<u64> = LazyHeap::new();
        for &(k, v) in &entries {
            h.push(k, v);
        }
        let mut popped = Vec::new();
        while let Some((k, _)) = h.pop() {
            popped.push(k);
        }
        prop_assert!(popped.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(popped.len(), entries.len());
        prop_assert_eq!(h.pushes, entries.len() as u64);
        prop_assert_eq!(h.pops, entries.len() as u64);
    }

    #[test]
    fn indexed_heap_tracks_minimum_per_vertex(
        ops in proptest::collection::vec((0u32..50, 0u64..1000), 0..600),
    ) {
        let mut h: IndexedHeap<u64> = IndexedHeap::new(50);
        let mut min_key = vec![u64::MAX; 50];
        for &(v, k) in &ops {
            h.insert_or_adjust(v, k);
            if k < min_key[v as usize] {
                min_key[v as usize] = k;
            }
        }
        let mut popped = Vec::new();
        while let Some((k, v)) = h.pop_min() {
            popped.push((v, k));
        }
        // Sorted by key.
        prop_assert!(popped.windows(2).all(|w| w[0].1 <= w[1].1));
        // Each live vertex appears once with its minimum.
        let mut got = popped.clone();
        got.sort_unstable();
        let want: Vec<(u32, u64)> = (0..50u32)
            .filter(|&v| min_key[v as usize] != u64::MAX)
            .map(|v| (v, min_key[v as usize]))
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn union_find_implementations_agree(
        n in 1usize..200,
        unions in proptest::collection::vec((0u32..200, 0u32..200), 0..400),
    ) {
        let mut seq = UnionFind::new(n);
        let conc = ConcurrentUnionFind::new(n);
        for &(a, b) in &unions {
            let (a, b) = (a % n as u32, b % n as u32);
            let s = seq.union(a, b);
            let c = conc.union(a, b);
            prop_assert_eq!(s, c, "union({}, {})", a, b);
        }
        for a in 0..n as u32 {
            for b in 0..n as u32 {
                prop_assert_eq!(seq.same(a, b), conc.same(a, b));
            }
        }
    }

    #[test]
    fn union_find_component_count_is_exact(
        n in 1usize..100,
        unions in proptest::collection::vec((0u32..100, 0u32..100), 0..200),
    ) {
        let mut uf = UnionFind::new(n);
        let mut merges = 0;
        for &(a, b) in &unions {
            if uf.union(a % n as u32, b % n as u32) {
                merges += 1;
            }
        }
        prop_assert_eq!(uf.num_components(), n - merges);
    }

    #[test]
    fn prim_heap_disciplines_agree(
        n in 2usize..40,
        extra in proptest::collection::vec((0u32..40, 0u32..40, 1u32..9), 0..150),
    ) {
        // Connected graph: spine + random extras with tie-heavy weights.
        let mut b = llp_graph::GraphBuilder::new(n);
        for i in 1..n as u32 {
            b.add_edge(i - 1, i, 5.0 + (i % 3) as f64);
        }
        for &(u, v, w) in &extra {
            let (u, v) = (u % n as u32, v % n as u32);
            if u != v {
                b.add_edge(u, v, w as f64);
            }
        }
        let g = b.build();
        let lazy = llp_mst::prim::prim_lazy(&g, 0).unwrap();
        let idx = llp_mst::prim::prim_indexed(&g, 0).unwrap();
        prop_assert_eq!(lazy.canonical_keys(), idx.canonical_keys());
        // The indexed heap never stores duplicates, so it pops at most n-1
        // non-stale entries while lazy may pop more.
        prop_assert!(idx.stats.heap_pops <= lazy.stats.heap_pops);
    }
}

//! Property-style tests for the MST crate's data structures: heaps against
//! the standard library, concurrent against sequential union–find, the
//! Prim heap disciplines against each other, and the Filter-Kruskal family
//! against the Kruskal oracle. Cases are deterministic seed sweeps over
//! [`llp_runtime::rng::SmallRng`] (hermetic builds cannot depend on
//! `proptest`).

use llp_mst::heap::{IndexedHeap, LazyHeap};
use llp_mst::prelude::{
    filter_kruskal, filter_kruskal_par, filter_kruskal_par_with_base_case,
    filter_kruskal_with_base_case, kruskal,
};
use llp_mst::union_find::{ConcurrentUnionFind, UnionFind};
use llp_runtime::rng::SmallRng;
use llp_runtime::ThreadPool;

const CASES: u64 = 64;

#[test]
fn lazy_heap_pops_sorted() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let len = rng.gen_range(0usize..500);
        let entries: Vec<(u64, u32)> = (0..len)
            .map(|_| (rng.gen_range(0u64..1000), rng.gen_range(0u32..100)))
            .collect();
        let mut h: LazyHeap<u64> = LazyHeap::new();
        for &(k, v) in &entries {
            h.push(k, v);
        }
        let mut popped = Vec::new();
        while let Some((k, _)) = h.pop() {
            popped.push(k);
        }
        assert!(popped.windows(2).all(|w| w[0] <= w[1]), "seed {seed}");
        assert_eq!(popped.len(), entries.len(), "seed {seed}");
        assert_eq!(h.pushes, entries.len() as u64, "seed {seed}");
        assert_eq!(h.pops, entries.len() as u64, "seed {seed}");
    }
}

#[test]
fn indexed_heap_tracks_minimum_per_vertex() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let len = rng.gen_range(0usize..600);
        let ops: Vec<(u32, u64)> = (0..len)
            .map(|_| (rng.gen_range(0u32..50), rng.gen_range(0u64..1000)))
            .collect();
        let mut h: IndexedHeap<u64> = IndexedHeap::new(50);
        let mut min_key = vec![u64::MAX; 50];
        for &(v, k) in &ops {
            h.insert_or_adjust(v, k);
            if k < min_key[v as usize] {
                min_key[v as usize] = k;
            }
        }
        let mut popped = Vec::new();
        while let Some((k, v)) = h.pop_min() {
            popped.push((v, k));
        }
        // Sorted by key.
        assert!(popped.windows(2).all(|w| w[0].1 <= w[1].1), "seed {seed}");
        // Each live vertex appears once with its minimum.
        let mut got = popped.clone();
        got.sort_unstable();
        let want: Vec<(u32, u64)> = (0..50u32)
            .filter(|&v| min_key[v as usize] != u64::MAX)
            .map(|v| (v, min_key[v as usize]))
            .collect();
        assert_eq!(got, want, "seed {seed}");
    }
}

#[test]
fn union_find_implementations_agree() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = rng.gen_range(1usize..200);
        let len = rng.gen_range(0usize..400);
        let mut seq = UnionFind::new(n);
        let conc = ConcurrentUnionFind::new(n);
        for _ in 0..len {
            let a = rng.gen_range(0u32..n as u32);
            let b = rng.gen_range(0u32..n as u32);
            let s = seq.union(a, b);
            let c = conc.union(a, b);
            assert_eq!(s, c, "seed {seed}: union({a}, {b})");
        }
        for a in 0..n as u32 {
            for b in 0..n as u32 {
                assert_eq!(seq.same(a, b), conc.same(a, b), "seed {seed}");
            }
        }
    }
}

#[test]
fn union_find_component_count_is_exact() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = rng.gen_range(1usize..100);
        let len = rng.gen_range(0usize..200);
        let mut uf = UnionFind::new(n);
        let mut merges = 0;
        for _ in 0..len {
            if uf.union(rng.gen_range(0u32..n as u32), rng.gen_range(0u32..n as u32)) {
                merges += 1;
            }
        }
        assert_eq!(uf.num_components(), n - merges, "seed {seed}");
    }
}

#[test]
fn prim_heap_disciplines_agree() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = rng.gen_range(2usize..40);
        let extra = rng.gen_range(0usize..150);
        // Connected graph: spine + random extras with tie-heavy weights.
        let mut b = llp_graph::GraphBuilder::new(n);
        for i in 1..n as u32 {
            b.add_edge(i - 1, i, 5.0 + (i % 3) as f64);
        }
        for _ in 0..extra {
            let u = rng.gen_range(0u32..n as u32);
            let v = rng.gen_range(0u32..n as u32);
            if u != v {
                b.add_edge(u, v, rng.gen_range(1u32..9) as f64);
            }
        }
        let g = b.build();
        let lazy = llp_mst::prim::prim_lazy(&g, 0).unwrap();
        let idx = llp_mst::prim::prim_indexed(&g, 0).unwrap();
        assert_eq!(lazy.canonical_keys(), idx.canonical_keys(), "seed {seed}");
        // The indexed heap never stores duplicates, so it pops at most n-1
        // non-stale entries while lazy may pop more.
        assert!(idx.stats.heap_pops <= lazy.stats.heap_pops, "seed {seed}");
    }
}

#[test]
fn filter_kruskal_family_matches_kruskal_oracle() {
    // Random multigraphs with tie-heavy integer weights (EdgeKey breaks the
    // ties) that are frequently disconnected forests; a tiny forced base
    // case drives deep partition/filter recursions even on small inputs.
    let pool = ThreadPool::new(4);
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = rng.gen_range(2usize..120);
        let m = rng.gen_range(0usize..500);
        let mut b = llp_graph::GraphBuilder::new(n);
        for _ in 0..m {
            let u = rng.gen_range(0u32..n as u32);
            let v = rng.gen_range(0u32..n as u32);
            if u != v {
                b.add_edge(u, v, rng.gen_range(1u32..6) as f64);
            }
        }
        let g = b.build();
        let oracle = kruskal(&g);
        let oracle_keys = oracle.canonical_keys();
        for (name, r) in [
            ("filter_kruskal", filter_kruskal(&g)),
            ("filter_kruskal(base=4)", filter_kruskal_with_base_case(&g, 4)),
            ("filter_kruskal_par", filter_kruskal_par(&g, &pool)),
            (
                "filter_kruskal_par(base=4)",
                filter_kruskal_par_with_base_case(&g, &pool, 4),
            ),
        ] {
            assert_eq!(r.canonical_keys(), oracle_keys, "{name}, seed {seed}");
            assert_eq!(r.num_trees, oracle.num_trees, "{name}, seed {seed}");
            assert_eq!(r.total_weight, oracle.total_weight, "{name}, seed {seed}");
        }
    }
}

#[test]
fn filter_kruskal_par_matches_kruskal_on_large_sparse_graphs() {
    // Edge counts above the runtime's parallel-partition threshold, so the
    // scan-based partition/filter/sample-sort paths actually run on the
    // pool; m = 3n leaves some instances disconnected.
    let pool = ThreadPool::new(4);
    for seed in 0..4u64 {
        let g = llp_graph::generators::erdos_renyi(3000, 9000, seed);
        let oracle = kruskal(&g);
        let fk = filter_kruskal_par(&g, &pool);
        assert_eq!(fk.canonical_keys(), oracle.canonical_keys(), "seed {seed}");
        assert_eq!(fk.num_trees, oracle.num_trees, "seed {seed}");
        let fk_small = filter_kruskal_par_with_base_case(&g, &pool, 512);
        assert_eq!(fk_small.canonical_keys(), oracle.canonical_keys(), "seed {seed}");
        assert!(fk_small.stats.rounds > 0, "seed {seed}: partitioning should trigger");
        assert!(fk_small.stats.parallel_regions > 0, "seed {seed}");
    }
}

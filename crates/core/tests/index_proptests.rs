//! Property-style tests for [`llp_mst::index::PathMaxIndex`]: the O(1)
//! answers are compared against a naive tree-path walk (BFS parent
//! trace, then a max over the traced edges) on seeded random forests.
//! Cases are deterministic seed sweeps over
//! [`llp_runtime::rng::SmallRng`] (hermetic builds cannot depend on
//! `proptest`).
//!
//! The sweep deliberately covers the index's block machinery: vertex
//! counts straddling the 32-position block size (31/32/33/63/64/65 and
//! random non-multiples), long paths whose queries cross many block
//! boundaries, and multi-component forests where queries must answer
//! `None` across trees.

use llp_graph::Edge;
use llp_mst::index::PathMaxIndex;
use llp_mst::result::MstResult;
use llp_mst::union_find::UnionFind;
use llp_runtime::rng::SmallRng;
use llp_runtime::ThreadPool;
use std::collections::VecDeque;

const CASES: u64 = 48;

/// A random forest over `n` vertices: each vertex after the first either
/// starts a new tree (probability `p_break`) or attaches to a uniformly
/// random earlier vertex with a uniform weight. A quarter of the weights
/// collide at 0.5 to exercise the endpoint tiebreak.
fn random_forest(rng: &mut SmallRng, n: usize, p_break: f64) -> Vec<Edge> {
    let mut edges = Vec::new();
    for v in 1..n as u32 {
        if rng.gen_bool(p_break) {
            continue; // v roots a new tree
        }
        let u = rng.gen_range(0..v);
        let w = if rng.gen_bool(0.25) {
            0.5 // deliberate tie: order falls to the endpoint pair
        } else {
            rng.gen::<f64>()
        };
        edges.push(Edge::new(u, v, w));
    }
    edges
}

/// Naive reference: BFS from `u` over the tree adjacency, trace parents
/// back from `v`, and take the maximum edge key on the path.
fn naive_path_max(n: usize, edges: &[Edge], u: u32, v: u32) -> Option<Edge> {
    if u == v {
        return None;
    }
    let mut adj: Vec<Vec<(u32, Edge)>> = vec![Vec::new(); n];
    for e in edges {
        adj[e.u as usize].push((e.v, *e));
        adj[e.v as usize].push((e.u, *e));
    }
    let mut parent: Vec<Option<(u32, Edge)>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = VecDeque::from([u]);
    seen[u as usize] = true;
    while let Some(x) = queue.pop_front() {
        for &(y, e) in &adj[x as usize] {
            if !seen[y as usize] {
                seen[y as usize] = true;
                parent[y as usize] = Some((x, e));
                queue.push_back(y);
            }
        }
    }
    if !seen[v as usize] {
        return None;
    }
    let mut best: Option<Edge> = None;
    let mut cur = v;
    while cur != u {
        let (prev, e) = parent[cur as usize].unwrap();
        if best.is_none_or(|b| e.key() > b.key()) {
            best = Some(e);
        }
        cur = prev;
    }
    best
}

fn build(n: usize, edges: Vec<Edge>) -> (PathMaxIndex, Vec<Edge>) {
    let result = MstResult::from_edges(n, edges, Default::default());
    let index = PathMaxIndex::build(n, &result).expect("forests must index");
    (index, result.edges)
}

#[test]
fn path_max_matches_naive_walk_on_random_forests() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        // Deliberately not a multiple of the 32-position block size most
        // of the time.
        let n = rng.gen_range(2usize..300);
        let (index, edges) = build(n, random_forest(&mut rng, n, 0.08));
        for _ in 0..64 {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            let want = naive_path_max(n, &edges, u, v);
            let got = index.path_max(u, v);
            assert_eq!(
                got.map(|k| (k.lo(), k.hi())),
                want.map(|e| e.key()).map(|k| (k.lo(), k.hi())),
                "seed {seed}, n {n}, query ({u}, {v})"
            );
            // The decoded bottleneck is the same physical edge.
            let bottleneck = index.bottleneck(u, v);
            assert_eq!(
                bottleneck.map(|e| e.key()),
                want.map(|e| e.key()),
                "seed {seed}, n {n}, query ({u}, {v})"
            );
            if let (Some(b), Some(w)) = (bottleneck, want) {
                assert_eq!(b.w, w.w, "seed {seed}: decoded weight must survive");
            }
        }
    }
}

#[test]
fn block_boundary_sizes_and_straddling_queries() {
    // Path forests at sizes around the 32-position block boundary: the
    // chain layout makes every adjacent pair one separator apart, and
    // long-range queries cross many blocks.
    for &n in &[2usize, 31, 32, 33, 63, 64, 65, 95, 96, 97, 255, 256, 257] {
        let mut rng = SmallRng::seed_from_u64(n as u64);
        let edges: Vec<Edge> = (1..n as u32)
            .map(|v| Edge::new(v - 1, v, rng.gen::<f64>()))
            .collect();
        let (index, edges) = build(n, edges);
        let mut queries: Vec<(u32, u32)> = vec![(0, n as u32 - 1)];
        // Pairs hugging every block multiple that fits.
        for b in (32..n).step_by(32) {
            let b = b as u32;
            queries.push((b - 1, b));
            queries.push((b - 1, (b + 1).min(n as u32 - 1)));
            queries.push((0, b));
        }
        for _ in 0..32 {
            queries.push((rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)));
        }
        for (u, v) in queries {
            assert_eq!(
                index.path_max(u, v),
                naive_path_max(n, &edges, u, v).map(|e| e.key()),
                "n {n}, query ({u}, {v})"
            );
        }
    }
}

#[test]
fn components_and_thresholds_match_union_find() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xc0ff_ee00);
        let n = rng.gen_range(1usize..250);
        let forest = random_forest(&mut rng, n, 0.15);
        let (index, edges) = build(n, forest);

        let mut uf = UnionFind::new(n);
        for e in &edges {
            uf.union(e.u, e.v);
        }
        assert_eq!(index.num_components(), uf.num_components(), "seed {seed}");

        // Threshold connectivity under three random λ values per case.
        for _ in 0..3 {
            let lambda = rng.gen::<f64>();
            let mut tf = UnionFind::new(n);
            for e in edges.iter().filter(|e| e.w <= lambda) {
                tf.union(e.u, e.v);
            }
            for _ in 0..48 {
                let u = rng.gen_range(0..n as u32);
                let v = rng.gen_range(0..n as u32);
                assert_eq!(
                    index.connected(u, v),
                    uf.find(u) == uf.find(v),
                    "seed {seed}, ({u}, {v})"
                );
                assert_eq!(
                    index.connected_under(u, v, lambda),
                    tf.find(u) == tf.find(v),
                    "seed {seed}, λ {lambda}, ({u}, {v})"
                );
            }
        }
    }
}

#[test]
fn parallel_build_is_bit_identical_to_sequential() {
    let pool = ThreadPool::new(3);
    for seed in 0..CASES / 2 {
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9));
        let n = rng.gen_range(1usize..400);
        let forest = random_forest(&mut rng, n, 0.1);
        let result = MstResult::from_edges(n, forest, Default::default());
        let seq = PathMaxIndex::build(n, &result).unwrap();
        let par = PathMaxIndex::build_par(n, &result, &pool).unwrap();
        assert_eq!(seq.num_components(), par.num_components(), "seed {seed}");
        for _ in 0..64 {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            assert_eq!(seq.path_max(u, v), par.path_max(u, v), "seed {seed}");
            assert_eq!(seq.component(u), par.component(u), "seed {seed}");
        }
    }
}

//! Seed-sweep agreement between the oracle-free certifier and the
//! Kruskal-oracle verifier, in both directions: genuine MSFs must be
//! accepted by both, mutated forests rejected by both. Cases are
//! deterministic seed sweeps (hermetic builds cannot depend on
//! `proptest`).

use llp_graph::generators::{erdos_renyi, random_geometric, road_network, RoadParams};
use llp_graph::{CsrGraph, Edge};
use llp_mst::prelude::{
    certify_msf, certify_msf_par, filter_kruskal_par, filter_kruskal_par_with_base_case, kruskal,
    sharded_msf_graph, spmv_boruvka_par, verify_msf,
};
use llp_mst::{AlgoStats, MstResult};
use llp_runtime::rng::SmallRng;
use llp_runtime::{chaos, ThreadPool};

const CASES: u64 = 16;

/// A spread of families: dense-ish connected, sparse disconnected forest,
/// geometric, and grid-like road.
fn graphs(seed: u64) -> Vec<CsrGraph> {
    vec![
        erdos_renyi(150, 400, seed),
        erdos_renyi(120, 90, seed ^ 0xA5),
        random_geometric(130, 0.18, seed),
        road_network(RoadParams::usa_like(10, 12, seed)),
    ]
}

fn forest(n: usize, edges: Vec<Edge>) -> MstResult {
    MstResult::from_edges(n, edges, AlgoStats::default())
}

#[test]
fn certifier_and_oracle_accept_genuine_msfs() {
    let pool = ThreadPool::new(3);
    for seed in 0..CASES {
        for (gi, g) in graphs(seed).into_iter().enumerate() {
            let msf = kruskal(&g);
            verify_msf(&g, &msf).unwrap_or_else(|e| panic!("oracle seed {seed} graph {gi}: {e}"));
            certify_msf(&g, &msf)
                .unwrap_or_else(|e| panic!("certifier seed {seed} graph {gi}: {e}"));
            certify_msf_par(&g, &msf, &pool)
                .unwrap_or_else(|e| panic!("par certifier seed {seed} graph {gi}: {e}"));
        }
    }
}

#[test]
fn certifier_and_oracle_reject_mutated_forests() {
    for seed in 0..CASES {
        for (gi, g) in graphs(seed).into_iter().enumerate() {
            let msf = kruskal(&g);
            if msf.edges.is_empty() {
                continue;
            }
            let n = g.num_vertices();
            let mut rng = SmallRng::seed_from_u64(seed * 31 + gi as u64);
            let i = rng.gen_range(0usize..msf.edges.len());

            // Drop one tree edge: no longer spanning.
            let mut edges = msf.edges.clone();
            edges.remove(i);
            let dropped = forest(n, edges);
            assert!(verify_msf(&g, &dropped).is_err(), "oracle/drop {seed}/{gi}");
            assert!(certify_msf(&g, &dropped).is_err(), "certify/drop {seed}/{gi}");

            // Heavier weight on one tree edge: foreign to the graph (and
            // a cut violation against the original edge).
            let mut edges = msf.edges.clone();
            edges[i].w += 0.5;
            let heavier = forest(n, edges);
            assert!(verify_msf(&g, &heavier).is_err(), "oracle/heavy {seed}/{gi}");
            assert!(certify_msf(&g, &heavier).is_err(), "certify/heavy {seed}/{gi}");

            // Duplicate one tree edge: a two-edge cycle.
            let mut edges = msf.edges.clone();
            edges.push(edges[i]);
            let cyclic = forest(n, edges);
            assert!(verify_msf(&g, &cyclic).is_err(), "oracle/cycle {seed}/{gi}");
            assert!(certify_msf(&g, &cyclic).is_err(), "certify/cycle {seed}/{gi}");
        }
    }
}

#[test]
fn filter_kruskal_par_certifies_and_rejects_mutations_under_chaos_seeds() {
    // The parallel partition/filter paths under every chaos seed the CI
    // matrix runs: genuine outputs are accepted by oracle and certifier,
    // mutated ones rejected. Without the `chaos` feature the seeds are
    // inert and this is a plain accept/reject sweep.
    let pool = ThreadPool::new(4);
    for chaos_seed in [1u64, 2, 3, 4] {
        chaos::set_seed(Some(chaos_seed));
        for seed in 0..4u64 {
            for (gi, g) in graphs(seed).into_iter().enumerate() {
                // A small base case forces partition + filter rounds even on
                // these sub-threshold graphs.
                let msf = filter_kruskal_par_with_base_case(&g, &pool, 16);
                assert_eq!(
                    msf.canonical_keys(),
                    filter_kruskal_par(&g, &pool).canonical_keys(),
                    "base-case invariance {chaos_seed}/{seed}/{gi}"
                );
                verify_msf(&g, &msf)
                    .unwrap_or_else(|e| panic!("oracle {chaos_seed}/{seed}/{gi}: {e}"));
                certify_msf(&g, &msf)
                    .unwrap_or_else(|e| panic!("certify {chaos_seed}/{seed}/{gi}: {e}"));
                certify_msf_par(&g, &msf, &pool)
                    .unwrap_or_else(|e| panic!("certify_par {chaos_seed}/{seed}/{gi}: {e}"));

                if msf.edges.is_empty() {
                    continue;
                }
                let n = g.num_vertices();
                let mut rng = SmallRng::seed_from_u64(chaos_seed * 101 + seed * 31 + gi as u64);
                let i = rng.gen_range(0usize..msf.edges.len());

                let mut edges = msf.edges.clone();
                edges.remove(i);
                let dropped = forest(n, edges);
                assert!(verify_msf(&g, &dropped).is_err(), "oracle/drop {chaos_seed}/{seed}/{gi}");
                assert!(
                    certify_msf(&g, &dropped).is_err(),
                    "certify/drop {chaos_seed}/{seed}/{gi}"
                );

                let mut edges = msf.edges.clone();
                edges[i].w += 0.5;
                let heavier = forest(n, edges);
                assert!(
                    verify_msf(&g, &heavier).is_err(),
                    "oracle/heavy {chaos_seed}/{seed}/{gi}"
                );
                assert!(
                    certify_msf(&g, &heavier).is_err(),
                    "certify/heavy {chaos_seed}/{seed}/{gi}"
                );

                let mut edges = msf.edges.clone();
                edges.push(edges[i]);
                let cyclic = forest(n, edges);
                assert!(
                    verify_msf(&g, &cyclic).is_err(),
                    "oracle/cycle {chaos_seed}/{seed}/{gi}"
                );
                assert!(
                    certify_msf(&g, &cyclic).is_err(),
                    "certify/cycle {chaos_seed}/{seed}/{gi}"
                );
            }
        }
        chaos::set_seed(None);
    }
}

#[test]
fn sharded_ooc_certifies_and_agrees_under_chaos_seeds() {
    // The out-of-core backend under every chaos seed the CI matrix runs:
    // its per-shard contraction rounds, parallel filter scans and sorted
    // merges all run on the pool, and each run is already certified by
    // its own streaming sweep over the temp file. On top of that, assert
    // cross-family agreement and in-RAM oracle + certifier acceptance —
    // and that replaying the same graph under the same chaos seed is
    // bit-identical (the forest is a pure function of the edge file).
    let pool = ThreadPool::new(4);
    for chaos_seed in [1u64, 2, 3, 4] {
        chaos::set_seed(Some(chaos_seed));
        for seed in 0..4u64 {
            for (gi, g) in graphs(seed).into_iter().enumerate() {
                // Shard small enough that every graph folds across shards.
                let shard = g.num_edges() / 5 + 1;
                let msf = sharded_msf_graph(&g, shard, &pool);
                assert_eq!(
                    msf.canonical_keys(),
                    filter_kruskal_par(&g, &pool).canonical_keys(),
                    "cross-family agreement {chaos_seed}/{seed}/{gi}"
                );
                verify_msf(&g, &msf)
                    .unwrap_or_else(|e| panic!("oracle {chaos_seed}/{seed}/{gi}: {e}"));
                certify_msf(&g, &msf)
                    .unwrap_or_else(|e| panic!("certify {chaos_seed}/{seed}/{gi}: {e}"));
                certify_msf_par(&g, &msf, &pool)
                    .unwrap_or_else(|e| panic!("certify_par {chaos_seed}/{seed}/{gi}: {e}"));

                let replay = sharded_msf_graph(&g, shard, &pool);
                assert_eq!(replay.edges.len(), msf.edges.len());
                for (x, y) in replay.edges.iter().zip(&msf.edges) {
                    assert_eq!(
                        (x.u, x.v, x.w.to_bits()),
                        (y.u, y.v, y.w.to_bits()),
                        "replay divergence {chaos_seed}/{seed}/{gi}"
                    );
                }
            }
        }
        chaos::set_seed(None);
    }
}

#[test]
fn spmv_boruvka_certifies_and_rejects_mutations_under_chaos_seeds() {
    // Same matrix for the SpMV backend: its row-argmin chunk claims and
    // grouped contraction scatters run under every chaos seed; genuine
    // outputs are accepted by oracle and certifier and agree with the
    // Kruskal-family forest, mutated ones are rejected by both.
    let pool = ThreadPool::new(4);
    for chaos_seed in [1u64, 2, 3, 4] {
        chaos::set_seed(Some(chaos_seed));
        for seed in 0..4u64 {
            for (gi, g) in graphs(seed).into_iter().enumerate() {
                let msf = spmv_boruvka_par(&g, &pool);
                assert_eq!(
                    msf.canonical_keys(),
                    filter_kruskal_par(&g, &pool).canonical_keys(),
                    "cross-family agreement {chaos_seed}/{seed}/{gi}"
                );
                verify_msf(&g, &msf)
                    .unwrap_or_else(|e| panic!("oracle {chaos_seed}/{seed}/{gi}: {e}"));
                certify_msf(&g, &msf)
                    .unwrap_or_else(|e| panic!("certify {chaos_seed}/{seed}/{gi}: {e}"));
                certify_msf_par(&g, &msf, &pool)
                    .unwrap_or_else(|e| panic!("certify_par {chaos_seed}/{seed}/{gi}: {e}"));

                if msf.edges.is_empty() {
                    continue;
                }
                let n = g.num_vertices();
                let mut rng = SmallRng::seed_from_u64(chaos_seed * 131 + seed * 37 + gi as u64);
                let i = rng.gen_range(0usize..msf.edges.len());

                let mut edges = msf.edges.clone();
                edges.remove(i);
                let dropped = forest(n, edges);
                assert!(verify_msf(&g, &dropped).is_err(), "oracle/drop {chaos_seed}/{seed}/{gi}");
                assert!(
                    certify_msf(&g, &dropped).is_err(),
                    "certify/drop {chaos_seed}/{seed}/{gi}"
                );

                let mut edges = msf.edges.clone();
                edges[i].w += 0.5;
                let heavier = forest(n, edges);
                assert!(
                    verify_msf(&g, &heavier).is_err(),
                    "oracle/heavy {chaos_seed}/{seed}/{gi}"
                );
                assert!(
                    certify_msf(&g, &heavier).is_err(),
                    "certify/heavy {chaos_seed}/{seed}/{gi}"
                );

                let mut edges = msf.edges.clone();
                edges.push(edges[i]);
                let cyclic = forest(n, edges);
                assert!(
                    verify_msf(&g, &cyclic).is_err(),
                    "oracle/cycle {chaos_seed}/{seed}/{gi}"
                );
                assert!(
                    certify_msf(&g, &cyclic).is_err(),
                    "certify/cycle {chaos_seed}/{seed}/{gi}"
                );
            }
        }
        chaos::set_seed(None);
    }
}

//! Pins the flat-memory round engine's central claim: once the scratch
//! arena and double buffers are warm (after round 1), contraction rounds
//! perform **zero heap allocations** — for the LLP-Boruvka engine
//! ([`llp_mst::contraction::Contraction`], whose round loop *is*
//! `llp_boruvka`'s drive loop), for the GBBS-style baseline
//! ([`llp_mst::parallel_boruvka::boruvka_par_observed`]), and for the
//! SpMV backend ([`llp_mst::spmv_boruvka::spmv_boruvka_par_observed`]),
//! whose rounds rebuild a contracted CSR yet still run entirely out of
//! leased and double-buffered storage.
//!
//! Method: a counting global allocator tallies every `alloc`/`realloc`
//! across all threads; the tests snapshot the tally at exact round
//! boundaries and assert the per-round delta is zero from the second
//! round on. Telemetry is disabled and no chaos seed is set, so the
//! measured windows contain only algorithm work (both subsystems are
//! allocation-free when off; pool broadcasts dispatch through a raw task
//! pointer and never box).

use llp_mst::contraction::Contraction;
use llp_mst::parallel_boruvka::boruvka_par_observed;
use llp_mst::spmv_boruvka::spmv_boruvka_par_observed;
use llp_mst::stats::AlgoStats;
use llp_runtime::{chaos, telemetry, ParallelForConfig, ThreadPool};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The tally is process-global, so the tests in this binary must not
/// overlap.
static SERIAL: Mutex<()> = Mutex::new(());

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// A graph big enough for several contraction rounds at a parallel grain.
fn test_graph() -> llp_graph::CsrGraph {
    llp_graph::generators::erdos_renyi(3000, 20_000, 7)
}

#[test]
fn llp_contraction_rounds_are_allocation_free_after_warmup() {
    let _serial = SERIAL.lock().unwrap();
    telemetry::set_enabled(false);
    chaos::set_seed(None);

    let g = test_graph();
    let pool = ThreadPool::new(4);
    let cfg = ParallelForConfig::with_grain(256);
    let mut c = Contraction::new(&g);
    let mut stats = AlgoStats::default();

    let mut per_round = Vec::with_capacity(64);
    while !c.is_done() {
        let before = allocs();
        c.round(&pool, cfg, &mut stats);
        let after = allocs();
        per_round.push(after - before);
    }
    telemetry::set_enabled(true);

    assert!(
        per_round.len() >= 3,
        "graph too small to exercise steady state: {} rounds",
        per_round.len()
    );
    // Round 1 warms the arena and the double buffer; every later round
    // must run entirely out of reused storage.
    assert!(
        per_round[1..].iter().all(|&d| d == 0),
        "steady-state rounds allocated: per-round counts {per_round:?}"
    );
}

#[test]
fn boruvka_par_rounds_are_allocation_free_after_warmup() {
    let _serial = SERIAL.lock().unwrap();
    telemetry::set_enabled(false);
    chaos::set_seed(None);

    let g = test_graph();
    let pool = ThreadPool::new(4);

    // `on_round(r)` fires at the top of round r plus once after the final
    // round, so consecutive snapshots bracket exactly one round. The vec
    // is pre-sized: the observer itself must not allocate mid-window.
    let mut at_boundary = Vec::with_capacity(64);
    let r = boruvka_par_observed(&g, &pool, |_| at_boundary.push(allocs()));
    telemetry::set_enabled(true);

    assert!(r.stats.rounds >= 3, "only {} rounds", r.stats.rounds);
    let per_round: Vec<u64> = at_boundary.windows(2).map(|w| w[1] - w[0]).collect();
    assert_eq!(per_round.len() as u64, r.stats.rounds);
    assert!(
        per_round[1..].iter().all(|&d| d == 0),
        "steady-state rounds allocated: per-round counts {per_round:?}"
    );
}

#[test]
fn spmv_boruvka_rounds_are_allocation_free_after_warmup() {
    let _serial = SERIAL.lock().unwrap();
    telemetry::set_enabled(false);
    chaos::set_seed(None);

    let g = test_graph();
    let pool = ThreadPool::new(4);

    // Round 1 sizes the arena leases, the double-buffered arc/offset
    // arrays and the chosen-edge vec; arcs shrink monotonically under
    // contraction, so every later round — argmin, hook, jump, and the
    // SpGEMM-style rebuild included — must reuse that storage untouched.
    let mut at_boundary = Vec::with_capacity(64);
    let r = spmv_boruvka_par_observed(&g, &pool, |_| at_boundary.push(allocs()));
    telemetry::set_enabled(true);

    assert!(r.stats.rounds >= 3, "only {} rounds", r.stats.rounds);
    let per_round: Vec<u64> = at_boundary.windows(2).map(|w| w[1] - w[0]).collect();
    assert_eq!(per_round.len() as u64, r.stats.rounds);
    assert!(
        per_round[1..].iter().all(|&d| d == 0),
        "steady-state rounds allocated: per-round counts {per_round:?}"
    );
}

//! Seed-sweep property tests for the fully dynamic MSF: after any mix of
//! insert/delete epochs, [`DynamicMsf`] must hold exactly the canonical
//! forest a from-scratch `filter_kruskal_par` recompute of the surviving
//! edge set produces, and every epoch snapshot must pass the oracle-free
//! `certify_msf_par` sweep. Weights are tie-heavy on purpose (the
//! `EdgeKey` order breaks the ties), deletes frequently disconnect, and
//! deleted edges go back in through later epochs. Deterministic seed
//! sweeps over [`llp_runtime::rng::SmallRng`] (hermetic builds cannot
//! depend on `proptest`).

use llp_graph::{CsrGraph, Edge};
use llp_mst::dynamic::DynamicMsf;
use llp_mst::prelude::{certify_msf_par, filter_kruskal_par};
use llp_runtime::rng::SmallRng;
use llp_runtime::ThreadPool;
use std::collections::HashMap;

const CASES: u64 = 24;

/// The ground truth the dynamic structure races against: a plain map of
/// the surviving undirected edges, mutated with the same batch semantics
/// (deletes first, then insert-if-absent).
struct Mirror {
    n: usize,
    edges: HashMap<(u32, u32), f64>,
}

impl Mirror {
    fn apply(&mut self, inserts: &[Edge], deletes: &[(u32, u32)]) {
        for &(u, v) in deletes {
            let (lo, hi) = if u <= v { (u, v) } else { (v, u) };
            self.edges.remove(&(lo, hi));
        }
        for e in inserts {
            self.edges.entry(e.canonical_endpoints()).or_insert(e.w);
        }
    }

    fn edge_list(&self) -> Vec<Edge> {
        let mut v: Vec<Edge> = self
            .edges
            .iter()
            .map(|(&(lo, hi), &w)| Edge::new(lo, hi, w))
            .collect();
        v.sort_unstable_by_key(Edge::key);
        v
    }
}

/// Asserts the dynamic structure equals a from-scratch recompute of its
/// mirror, and that its snapshot passes full certification.
fn assert_epoch_sound(d: &DynamicMsf, mirror: &Mirror, pool: &ThreadPool, ctx: &str) {
    let edges = mirror.edge_list();
    let graph = CsrGraph::from_edges(mirror.n, &edges);
    let want = filter_kruskal_par(&graph, pool);
    assert_eq!(
        d.msf().canonical_keys(),
        want.canonical_keys(),
        "{ctx}: dynamic forest diverged from recompute"
    );
    assert_eq!(d.msf().num_trees, want.num_trees, "{ctx}");
    assert!(
        (d.msf().total_weight - want.total_weight).abs() < 1e-9,
        "{ctx}: weight {} vs {}",
        d.msf().total_weight,
        want.total_weight
    );
    certify_msf_par(&graph, d.msf(), pool)
        .unwrap_or_else(|e| panic!("{ctx}: epoch snapshot failed certification: {e}"));
}

#[test]
fn random_epochs_match_recompute_and_certify() {
    let pool = ThreadPool::new(4);
    // Totals across the sweep, to prove both the exchange fast path and
    // the scoped-rebuild path actually ran (not just one of them).
    let (mut fast_swaps, mut fast_rejects, mut rebuilds, mut links) = (0u64, 0u64, 0u64, 0u64);
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = rng.gen_range(2usize..80);

        // Initial graph: unique random pairs with tie-heavy weights.
        let mut mirror = Mirror {
            n,
            edges: HashMap::new(),
        };
        for _ in 0..rng.gen_range(0usize..250) {
            let u = rng.gen_range(0u32..n as u32);
            let v = rng.gen_range(0u32..n as u32);
            if u != v {
                let (lo, hi) = if u <= v { (u, v) } else { (v, u) };
                mirror
                    .edges
                    .entry((lo, hi))
                    .or_insert(rng.gen_range(1u32..5) as f64);
            }
        }
        let mut d = DynamicMsf::from_edges(n, mirror.edge_list(), &pool)
            .unwrap_or_else(|e| panic!("seed {seed}: build: {e}"));
        assert_epoch_sound(&d, &mirror, &pool, &format!("seed {seed} epoch 0"));

        // A pool of edges we deleted, to re-insert in later epochs.
        let mut graveyard: Vec<(u32, u32)> = Vec::new();
        let epochs = rng.gen_range(3usize..6);
        for epoch in 1..=epochs {
            let mut inserts: Vec<Edge> = Vec::new();
            let mut deletes: Vec<(u32, u32)> = Vec::new();
            if rng.gen_bool(0.1) {
                // Empty batch: still an epoch, still certified.
            } else {
                // Deletes: mostly real edges (tree edges included, so
                // components disconnect), some misses. Sorted so the
                // picks are a function of the seed alone (HashMap
                // iteration order is randomized per process, and the
                // cross-sweep coverage assertions below need the same
                // batches every run).
                let mut live: Vec<(u32, u32)> = mirror.edges.keys().copied().collect();
                live.sort_unstable();
                for _ in 0..rng.gen_range(0usize..8) {
                    if !live.is_empty() && rng.gen_bool(0.75) {
                        let pick = live[rng.gen_range(0usize..live.len())];
                        deletes.push(pick);
                        graveyard.push(pick);
                    } else {
                        let u = rng.gen_range(0u32..n as u32);
                        let v = rng.gen_range(0u32..n as u32);
                        deletes.push((u, v));
                    }
                }
                // Inserts: fresh random pairs, plus re-insertions of
                // previously deleted edges at (usually new) weights.
                for _ in 0..rng.gen_range(0usize..10) {
                    let (u, v) = if !graveyard.is_empty() && rng.gen_bool(0.3) {
                        graveyard[rng.gen_range(0usize..graveyard.len())]
                    } else {
                        (rng.gen_range(0u32..n as u32), rng.gen_range(0u32..n as u32))
                    };
                    if u != v {
                        inserts.push(Edge::new(u, v, rng.gen_range(1u32..5) as f64));
                    }
                }
            }

            let report = d
                .apply_batch(&inserts, &deletes, &pool)
                .unwrap_or_else(|e| panic!("seed {seed} epoch {epoch}: {e}"));
            mirror.apply(&inserts, &deletes);
            assert_eq!(report.epoch, epoch as u64, "seed {seed}");
            fast_swaps += report.fast_swaps as u64;
            fast_rejects += report.fast_rejects as u64;
            links += report.links as u64;
            rebuilds += u64::from(report.dirty_components > 0);
            assert_epoch_sound(&d, &mirror, &pool, &format!("seed {seed} epoch {epoch}"));
        }
        assert_eq!(d.epoch(), epochs as u64, "seed {seed}");
        assert_eq!(d.num_edges(), mirror.edges.len(), "seed {seed}");
    }
    // The sweep must have exercised every update path.
    assert!(fast_swaps > 0, "no insert ever won via the fast path");
    assert!(fast_rejects > 0, "no insert ever lost via the fast path");
    assert!(links > 0, "no insert ever linked two trees");
    assert!(rebuilds > 0, "no epoch ever took the scoped-rebuild path");
}

#[test]
fn single_insert_epochs_ride_the_fast_path_and_match_recompute() {
    // A connected graph receiving one intra-tree insert per epoch: every
    // epoch must resolve via the exchange fast path (no scoped rebuild),
    // and still match the from-scratch recompute exactly.
    let pool = ThreadPool::new(4);
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(1000 + seed);
        let n = rng.gen_range(3usize..60);
        let mut mirror = Mirror {
            n,
            edges: HashMap::new(),
        };
        // Spine keeps it connected; extras make path-max non-trivial.
        for i in 1..n as u32 {
            mirror
                .edges
                .insert((i - 1, i), rng.gen_range(2u32..6) as f64);
        }
        for _ in 0..rng.gen_range(0usize..40) {
            let u = rng.gen_range(0u32..n as u32);
            let v = rng.gen_range(0u32..n as u32);
            if u != v {
                let (lo, hi) = if u <= v { (u, v) } else { (v, u) };
                mirror
                    .edges
                    .entry((lo, hi))
                    .or_insert(rng.gen_range(2u32..6) as f64);
            }
        }
        let mut d = DynamicMsf::from_edges(n, mirror.edge_list(), &pool).unwrap();

        for epoch in 0..6 {
            // One fresh intra-tree edge (graph is connected ⇒ any fresh
            // pair is intra-tree); weight 1 beats everything, weight 9
            // loses to everything — both fast-path verdicts occur.
            let mut pick = None;
            for _ in 0..64 {
                let u = rng.gen_range(0u32..n as u32);
                let v = rng.gen_range(0u32..n as u32);
                let (lo, hi) = if u <= v { (u, v) } else { (v, u) };
                if u != v && !mirror.edges.contains_key(&(lo, hi)) {
                    pick = Some((lo, hi));
                    break;
                }
            }
            let Some((lo, hi)) = pick else { continue };
            let w = if rng.gen_bool(0.5) { 1.0 } else { 9.0 };
            let inserts = [Edge::new(lo, hi, w)];
            let report = d.apply_batch(&inserts, &[], &pool).unwrap();
            mirror.apply(&inserts, &[]);
            assert_eq!(
                report.fast_swaps + report.fast_rejects,
                1,
                "seed {seed} epoch {epoch}: expected the fast path"
            );
            assert_eq!(report.dirty_components, 0, "seed {seed} epoch {epoch}");
            if w == 9.0 {
                // Every other weight is ≤ 6, so a 9.0 insert can never
                // beat the path max. (A 1.0 insert *usually* wins but may
                // lose an EdgeKey tie-break against an earlier 1.0 win,
                // so only the losing direction is asserted exactly.)
                assert_eq!(report.fast_swaps, 0, "seed {seed} epoch {epoch}");
            }
            assert_epoch_sound(&d, &mirror, &pool, &format!("seed {seed} epoch {epoch}"));
        }
    }
}

#[test]
fn empty_and_noop_batches_leave_the_forest_bit_identical() {
    let pool = ThreadPool::new(2);
    for seed in 0..8u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = 40;
        let mut mirror = Mirror {
            n,
            edges: HashMap::new(),
        };
        for _ in 0..120 {
            let u = rng.gen_range(0u32..n as u32);
            let v = rng.gen_range(0u32..n as u32);
            if u != v {
                let (lo, hi) = if u <= v { (u, v) } else { (v, u) };
                mirror
                    .edges
                    .entry((lo, hi))
                    .or_insert(rng.gen_range(1u32..4) as f64);
            }
        }
        let mut d = DynamicMsf::from_edges(n, mirror.edge_list(), &pool).unwrap();
        let before = d.msf().canonical_keys();

        // Empty batch.
        let r = d.apply_batch(&[], &[], &pool).unwrap();
        assert!(!r.tree_changed, "seed {seed}");
        // All-noop batch: duplicate insert + missing delete.
        let some_edge = *mirror.edges.keys().next().unwrap();
        let missing = (0u32, 0u32); // self-pair never exists
        let r = d
            .apply_batch(
                &[Edge::new(some_edge.0, some_edge.1, 99.0)],
                &[(missing.0, missing.1)],
                &pool,
            )
            .unwrap();
        assert_eq!(r.inserts_duplicate, 1, "seed {seed}");
        assert_eq!(r.deletes_missing, 1, "seed {seed}");
        assert!(!r.tree_changed, "seed {seed}");

        assert_eq!(d.msf().canonical_keys(), before, "seed {seed}");
        assert_eq!(d.epoch(), 2, "seed {seed}");
        assert_epoch_sound(&d, &mirror, &pool, &format!("seed {seed}"));
    }
}

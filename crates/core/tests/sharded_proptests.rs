//! Property-style tests for the out-of-core sharded Borůvka-filter:
//! seed sweeps over adversarial raw edge files (tie-heavy duplicate
//! weights, exact-duplicate parallel records, disconnected forests)
//! cross-checked against `filter_kruskal_par` across shard sizes from
//! degenerate (1 edge per shard) to single-shard (the whole file), plus
//! the replay property — two runs over the same file are bit-identical.
//! Cases are deterministic sweeps over [`llp_runtime::rng::SmallRng`]
//! (hermetic builds cannot depend on `proptest`).

use llp_graph::io::BinaryWriter;
use llp_graph::{Edge, GraphBuilder};
use llp_mst::prelude::{filter_kruskal_par, sharded_msf_file, ShardedConfig};
use llp_runtime::rng::SmallRng;
use llp_runtime::ThreadPool;
use std::io::BufWriter;
use std::path::PathBuf;

const CASES: u64 = 24;

/// Raw multigraph edge list for the on-disk format: exact-duplicate
/// parallel records and weights quantised to a handful of values so
/// discriminant ties are the common case. (No self-loops — the binary
/// format rejects them at write time, like the readers do on ingest.)
/// Returns `(n, edges)`.
fn adversarial_edges(seed: u64, density: f64) -> (usize, Vec<Edge>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = rng.gen_range(2usize..120);
    let m = ((n as f64 * density) as usize).max(1);
    let m = rng.gen_range(0usize..2 * m).max(1);
    let mut edges = Vec::with_capacity(m + m / 4);
    for _ in 0..m {
        let u = rng.gen_range(0u32..n as u32);
        let v = rng.gen_range(0u32..n as u32);
        if u == v {
            continue;
        }
        let w = rng.gen_range(1u32..5) as f64;
        edges.push(Edge { u, v, w });
        // 1 in 4 records is duplicated verbatim — a parallel edge with
        // the identical weight, separable only by edge identity.
        if rng.gen_range(0u32..4) == 0 {
            edges.push(Edge { u, v, w });
        }
    }
    (n, edges)
}

/// The sanitised CSR view of the raw file (parallel records collapsed to
/// the canonical minimum) — same MSF, so the in-RAM oracle applies.
fn sanitised(n: usize, edges: &[Edge]) -> llp_graph::CsrGraph {
    let mut b = GraphBuilder::new(n);
    for e in edges {
        b.add_edge(e.u, e.v, e.w);
    }
    b.build()
}

/// Writes the raw record multiset to a fresh temp file and returns its path.
fn write_temp(tag: &str, seed: u64, n: usize, edges: &[Edge]) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "llp-sharded-prop-{tag}-{}-{seed}.bin",
        std::process::id()
    ));
    let f = std::fs::File::create(&path).unwrap();
    let mut w = BinaryWriter::new(BufWriter::new(f), n).unwrap();
    w.write_edges(edges).unwrap();
    w.finish().unwrap();
    path
}

/// Shard sizes from fully degenerate to single-shard.
fn shard_sizes(m: usize) -> [usize; 4] {
    [1, 7, 64, m.max(1)]
}

#[test]
fn sharded_matches_filter_kruskal_on_adversarial_multigraphs() {
    let pool = ThreadPool::new(4);
    for seed in 0..CASES {
        let (n, edges) = adversarial_edges(seed, 3.0);
        let g = sanitised(n, &edges);
        let oracle = filter_kruskal_par(&g, &pool);
        let path = write_temp("multi", seed, n, &edges);
        for shard_edges in shard_sizes(edges.len()) {
            let cfg = ShardedConfig { shard_edges, ..ShardedConfig::default() };
            let run = sharded_msf_file(&path, &cfg, &pool)
                .unwrap_or_else(|e| panic!("seed {seed} shard {shard_edges}: {e}"));
            assert!(run.certified, "seed {seed} shard {shard_edges}");
            let r = &run.result;
            assert_eq!(
                r.canonical_keys(),
                oracle.canonical_keys(),
                "seed {seed} shard {shard_edges}"
            );
            assert_eq!(r.num_trees, oracle.num_trees, "seed {seed} shard {shard_edges}");
            assert_eq!(r.total_weight, oracle.total_weight, "seed {seed} shard {shard_edges}");
        }
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn sharded_matches_filter_kruskal_on_disconnected_forests() {
    // density ~ 0.5..2 edges per vertex: almost every instance is a
    // forest of many trees, so shards repeatedly fold candidates that
    // never connect and the merge must preserve every component.
    let pool = ThreadPool::new(4);
    for seed in 0..CASES {
        let (n, edges) = adversarial_edges(1000 + seed, 1.0);
        let g = sanitised(n, &edges);
        let oracle = filter_kruskal_par(&g, &pool);
        assert!(oracle.num_trees >= 1);
        let path = write_temp("forest", seed, n, &edges);
        for shard_edges in shard_sizes(edges.len()) {
            let cfg = ShardedConfig { shard_edges, ..ShardedConfig::default() };
            let run = sharded_msf_file(&path, &cfg, &pool)
                .unwrap_or_else(|e| panic!("seed {seed} shard {shard_edges}: {e}"));
            assert!(run.certified, "seed {seed} shard {shard_edges}");
            assert_eq!(
                run.result.canonical_keys(),
                oracle.canonical_keys(),
                "seed {seed} shard {shard_edges}"
            );
            assert_eq!(
                run.result.num_trees, oracle.num_trees,
                "seed {seed} shard {shard_edges}"
            );
        }
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn sharded_replay_is_bit_identical() {
    // Same file, same config, different pool widths: the canonical MSF
    // is a pure function of the file, so the full edge vectors (order
    // included — results are key-sorted) must match bit for bit.
    let narrow = ThreadPool::new(1);
    let wide = ThreadPool::new(4);
    for seed in 0..8 {
        let (n, edges) = adversarial_edges(2000 + seed, 4.0);
        let path = write_temp("replay", seed, n, &edges);
        let cfg = ShardedConfig { shard_edges: 13, ..ShardedConfig::default() };
        let a = sharded_msf_file(&path, &cfg, &narrow).unwrap();
        let b = sharded_msf_file(&path, &cfg, &wide).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(a.result.total_weight, b.result.total_weight, "seed {seed}");
        assert_eq!(a.result.edges.len(), b.result.edges.len(), "seed {seed}");
        for (x, y) in a.result.edges.iter().zip(&b.result.edges) {
            assert_eq!((x.u, x.v, x.w.to_bits()), (y.u, y.v, y.w.to_bits()), "seed {seed}");
        }
        assert_eq!(a.shards, b.shards, "seed {seed}");
    }
}

//! Property tests for the graph substrate: builders, CSR invariants,
//! generators and I/O round-trips on arbitrary inputs.

use llp_graph::generators::{erdos_renyi, road_network, RoadParams};
use llp_graph::io::{read_binary, read_dimacs, write_binary, write_dimacs};
use llp_graph::{CsrGraph, Edge, EdgeKey, GraphBuilder};
use llp_runtime::ThreadPool;
use proptest::prelude::*;

fn arb_raw_edges(max_n: u32, max_m: usize) -> impl Strategy<Value = (u32, Vec<(u32, u32, f64)>)> {
    (2..max_n).prop_flat_map(move |n| {
        (
            Just(n),
            proptest::collection::vec((0..n, 0..n, 0u32..100), 0..max_m)
                .prop_map(|v| v.into_iter().map(|(u, w, x)| (u, w, x as f64)).collect()),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn builder_always_produces_valid_simple_graphs((n, raw) in arb_raw_edges(50, 400)) {
        let mut b = GraphBuilder::new(n as usize);
        for &(u, v, w) in &raw {
            if u != v {
                b.add_edge(u, v, w);
            }
        }
        let g = b.build();
        prop_assert!(g.validate().is_ok());
        // Simple graph: no duplicate neighbour entries.
        for v in 0..n {
            let mut ts: Vec<u32> = g.neighbors(v).map(|(t, _)| t).collect();
            let before = ts.len();
            ts.sort_unstable();
            ts.dedup();
            prop_assert_eq!(ts.len(), before, "vertex {} has parallel arcs", v);
        }
    }

    #[test]
    fn builder_keeps_minimum_of_parallel_edges((n, raw) in arb_raw_edges(20, 200)) {
        let mut b = GraphBuilder::new(n as usize);
        let mut best = std::collections::HashMap::new();
        for &(u, v, w) in &raw {
            if u != v {
                b.add_edge(u, v, w);
                let key = (u.min(v), u.max(v));
                let e = best.entry(key).or_insert(w);
                if w < *e {
                    *e = w;
                }
            }
        }
        let g = b.build();
        prop_assert_eq!(g.num_edges(), best.len());
        for e in g.edges() {
            prop_assert_eq!(e.w, best[&e.canonical_endpoints()]);
        }
    }

    #[test]
    fn csr_edges_round_trip((n, raw) in arb_raw_edges(40, 300)) {
        let mut b = GraphBuilder::new(n as usize);
        for &(u, v, w) in &raw {
            if u != v {
                b.add_edge(u, v, w);
            }
        }
        let g = b.build();
        // edges() -> from_edges reproduces the same graph.
        let edges: Vec<Edge> = g.edges().collect();
        let g2 = CsrGraph::from_edges(n as usize, &edges);
        let mut k1: Vec<EdgeKey> = g.edges().map(|e| e.key()).collect();
        let mut k2: Vec<EdgeKey> = g2.edges().map(|e| e.key()).collect();
        k1.sort_unstable();
        k2.sort_unstable();
        prop_assert_eq!(k1, k2);
    }

    #[test]
    fn parallel_csr_equals_sequential((n, raw) in arb_raw_edges(40, 300), threads in 1usize..5) {
        let mut b = GraphBuilder::new(n as usize);
        for &(u, v, w) in &raw {
            if u != v {
                b.add_edge(u, v, w);
            }
        }
        let g = b.build();
        let edges: Vec<Edge> = g.edges().collect();
        let pool = ThreadPool::new(threads);
        let p = CsrGraph::from_edges_parallel(&pool, n as usize, &edges);
        prop_assert!(p.validate().is_ok());
        prop_assert_eq!(p.compute_mwe(&pool), g.compute_mwe(&pool));
    }

    #[test]
    fn binary_io_round_trips_any_graph((n, raw) in arb_raw_edges(30, 200)) {
        let mut b = GraphBuilder::new(n as usize);
        for &(u, v, w) in &raw {
            if u != v {
                b.add_edge(u, v, w);
            }
        }
        let g = b.build();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(buf.as_slice()).unwrap();
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn dimacs_io_round_trips_integer_weights(n in 2u32..30, m in 0usize..150, seed in 0u64..100) {
        // DIMACS prints decimal weights; integers survive exactly.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n as usize);
        for _ in 0..m {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                b.add_edge(u, v, rng.gen_range(1..1000) as f64);
            }
        }
        let g = b.build();
        let mut buf = Vec::new();
        write_dimacs(&g, &mut buf).unwrap();
        let g2 = read_dimacs(std::io::BufReader::new(buf.as_slice())).unwrap();
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn edge_key_total_order_is_strict_on_distinct_edges((n, raw) in arb_raw_edges(20, 100)) {
        let mut b = GraphBuilder::new(n as usize);
        for &(u, v, w) in &raw {
            if u != v {
                b.add_edge(u, v, w);
            }
        }
        let g = b.build();
        let keys: Vec<EdgeKey> = g.edges().map(|e| e.key()).collect();
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                prop_assert_ne!(keys[i], keys[j]);
            }
        }
    }

    #[test]
    fn er_generator_is_deterministic_and_valid(n in 2usize..200, m in 0usize..600, seed in 0u64..50) {
        let a = erdos_renyi(n, m, seed);
        let b = erdos_renyi(n, m, seed);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.validate().is_ok());
        prop_assert!(a.num_edges() <= m);
    }

    #[test]
    fn road_generator_always_connected(rows in 1usize..20, cols in 1usize..20, seed in 0u64..20) {
        let g = road_network(RoadParams::usa_like(rows, cols, seed));
        prop_assert_eq!(g.num_vertices(), rows * cols);
        prop_assert!(llp_graph::algo::is_connected(&g));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Robustness: the text readers must never panic on arbitrary input —
    /// they return `Err` for anything malformed.
    #[test]
    fn dimacs_reader_never_panics(junk in proptest::collection::vec(proptest::num::u8::ANY, 0..400)) {
        let _ = read_dimacs(std::io::BufReader::new(junk.as_slice()));
    }

    #[test]
    fn metis_reader_never_panics(junk in proptest::collection::vec(proptest::num::u8::ANY, 0..400)) {
        let _ = llp_graph::io::read_metis(std::io::BufReader::new(junk.as_slice()));
    }

    #[test]
    fn edge_list_reader_never_panics(junk in "[ -~\n]{0,300}") {
        let _ = llp_graph::io::read_edge_list(std::io::BufReader::new(junk.as_bytes()), 0);
    }

    #[test]
    fn binary_reader_never_panics(junk in proptest::collection::vec(proptest::num::u8::ANY, 0..400)) {
        let _ = read_binary(junk.as_slice());
    }

    #[test]
    fn metis_round_trips((n, raw) in arb_raw_edges(25, 150)) {
        use llp_graph::io::{read_metis, write_metis};
        let mut b = GraphBuilder::new(n as usize);
        for &(u, v, w) in &raw {
            if u != v {
                b.add_edge(u, v, w);
            }
        }
        let g = b.build();
        let mut buf = Vec::new();
        write_metis(&g, &mut buf).unwrap();
        let g2 = read_metis(std::io::BufReader::new(buf.as_slice())).unwrap();
        prop_assert_eq!(g, g2);
    }
}

//! Property-style tests for the graph substrate: builders, CSR invariants,
//! generators and I/O round-trips on randomised inputs. Cases are
//! deterministic seed sweeps over [`llp_runtime::rng::SmallRng`] (hermetic
//! builds cannot depend on `proptest`).

use llp_graph::generators::{erdos_renyi, road_network, RoadParams};
use llp_graph::io::{read_binary, read_dimacs, write_binary, write_dimacs};
use llp_graph::{CsrGraph, Edge, EdgeKey, GraphBuilder};
use llp_runtime::rng::SmallRng;
use llp_runtime::ThreadPool;

const CASES: u64 = 48;

/// Random raw edge triples over `2..max_n` vertices (self-loops included,
/// the builder must reject them).
fn raw_edges(rng: &mut SmallRng, max_n: u32, max_m: usize) -> (u32, Vec<(u32, u32, f64)>) {
    let n = rng.gen_range(2..max_n);
    let m = rng.gen_range(0..max_m);
    let edges = (0..m)
        .map(|_| {
            (
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                rng.gen_range(0u32..100) as f64,
            )
        })
        .collect();
    (n, edges)
}

fn build(n: u32, raw: &[(u32, u32, f64)]) -> CsrGraph {
    let mut b = GraphBuilder::new(n as usize);
    for &(u, v, w) in raw {
        if u != v {
            b.add_edge(u, v, w);
        }
    }
    b.build()
}

#[test]
fn builder_always_produces_valid_simple_graphs() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (n, raw) = raw_edges(&mut rng, 50, 400);
        let g = build(n, &raw);
        assert!(g.validate().is_ok(), "seed {seed}");
        // Simple graph: no duplicate neighbour entries.
        for v in 0..n {
            let mut ts: Vec<u32> = g.neighbors(v).map(|(t, _)| t).collect();
            let before = ts.len();
            ts.sort_unstable();
            ts.dedup();
            assert_eq!(ts.len(), before, "seed {seed}: vertex {v} has parallel arcs");
        }
    }
}

#[test]
fn builder_keeps_minimum_of_parallel_edges() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (n, raw) = raw_edges(&mut rng, 20, 200);
        let mut best = std::collections::HashMap::new();
        let mut b = GraphBuilder::new(n as usize);
        for &(u, v, w) in &raw {
            if u != v {
                b.add_edge(u, v, w);
                let key = (u.min(v), u.max(v));
                let e = best.entry(key).or_insert(w);
                if w < *e {
                    *e = w;
                }
            }
        }
        let g = b.build();
        assert_eq!(g.num_edges(), best.len(), "seed {seed}");
        for e in g.edges() {
            assert_eq!(e.w, best[&e.canonical_endpoints()], "seed {seed}");
        }
    }
}

#[test]
fn csr_edges_round_trip() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (n, raw) = raw_edges(&mut rng, 40, 300);
        let g = build(n, &raw);
        // edges() -> from_edges reproduces the same graph.
        let edges: Vec<Edge> = g.edges().collect();
        let g2 = CsrGraph::from_edges(n as usize, &edges);
        let mut k1: Vec<EdgeKey> = g.edges().map(|e| e.key()).collect();
        let mut k2: Vec<EdgeKey> = g2.edges().map(|e| e.key()).collect();
        k1.sort_unstable();
        k2.sort_unstable();
        assert_eq!(k1, k2, "seed {seed}");
    }
}

#[test]
fn parallel_csr_equals_sequential() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (n, raw) = raw_edges(&mut rng, 40, 300);
        let threads = rng.gen_range(1usize..5);
        let g = build(n, &raw);
        let edges: Vec<Edge> = g.edges().collect();
        let pool = ThreadPool::new(threads);
        let p = CsrGraph::from_edges_parallel(&pool, n as usize, &edges);
        assert!(p.validate().is_ok(), "seed {seed}");
        assert_eq!(p.compute_mwe(&pool), g.compute_mwe(&pool), "seed {seed}");
    }
}

#[test]
fn binary_io_round_trips_any_graph() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (n, raw) = raw_edges(&mut rng, 30, 200);
        let g = build(n, &raw);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(buf.as_slice()).unwrap();
        assert_eq!(g, g2, "seed {seed}");
    }
}

#[test]
fn dimacs_io_round_trips_integer_weights() {
    for seed in 0..CASES {
        // DIMACS prints decimal weights; integers survive exactly.
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = rng.gen_range(2u32..30);
        let m = rng.gen_range(0usize..150);
        let mut b = GraphBuilder::new(n as usize);
        for _ in 0..m {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                b.add_edge(u, v, rng.gen_range(1..1000) as f64);
            }
        }
        let g = b.build();
        let mut buf = Vec::new();
        write_dimacs(&g, &mut buf).unwrap();
        let g2 = read_dimacs(std::io::BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(g, g2, "seed {seed}");
    }
}

#[test]
fn edge_key_total_order_is_strict_on_distinct_edges() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (n, raw) = raw_edges(&mut rng, 20, 100);
        let g = build(n, &raw);
        let keys: Vec<EdgeKey> = g.edges().map(|e| e.key()).collect();
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                assert_ne!(keys[i], keys[j], "seed {seed}");
            }
        }
    }
}

#[test]
fn er_generator_is_deterministic_and_valid() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = rng.gen_range(2usize..200);
        let m = rng.gen_range(0usize..600);
        let a = erdos_renyi(n, m, seed);
        let b = erdos_renyi(n, m, seed);
        assert_eq!(&a, &b, "seed {seed}");
        assert!(a.validate().is_ok(), "seed {seed}");
        assert!(a.num_edges() <= m, "seed {seed}");
    }
}

#[test]
fn road_generator_always_connected() {
    for seed in 0..20 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let rows = rng.gen_range(1usize..20);
        let cols = rng.gen_range(1usize..20);
        let g = road_network(RoadParams::usa_like(rows, cols, seed));
        assert_eq!(g.num_vertices(), rows * cols, "seed {seed}");
        assert!(llp_graph::algo::is_connected(&g), "seed {seed}");
    }
}

/// Robustness: the readers must never panic on arbitrary input — they
/// return `Err` for anything malformed.
#[test]
fn readers_never_panic_on_junk() {
    for seed in 0..96 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let len = rng.gen_range(0usize..400);
        let junk: Vec<u8> = (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect();
        let _ = read_dimacs(std::io::BufReader::new(junk.as_slice()));
        let _ = llp_graph::io::read_metis(std::io::BufReader::new(junk.as_slice()));
        let _ = read_binary(junk.as_slice());
        // Printable-ASCII junk for the line-oriented edge-list reader.
        let text: String = (0..len)
            .map(|_| {
                let c = rng.gen_range(0u32..96);
                if c == 95 {
                    '\n'
                } else {
                    char::from_u32(c + 32).unwrap()
                }
            })
            .collect();
        let _ = llp_graph::io::read_edge_list(std::io::BufReader::new(text.as_bytes()), 0);
    }
}

#[test]
fn metis_round_trips() {
    use llp_graph::io::{read_metis, write_metis};
    for seed in 0..96 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (n, raw) = raw_edges(&mut rng, 25, 150);
        let g = build(n, &raw);
        let mut buf = Vec::new();
        write_metis(&g, &mut buf).unwrap();
        let g2 = read_metis(std::io::BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(g, g2, "seed {seed}");
    }
}

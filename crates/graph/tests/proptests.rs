//! Property-style tests for the graph substrate: builders, CSR invariants,
//! generators and I/O round-trips on randomised inputs. Cases are
//! deterministic seed sweeps over [`llp_runtime::rng::SmallRng`] (hermetic
//! builds cannot depend on `proptest`).

use llp_graph::generators::{erdos_renyi, road_network, RoadParams};
use llp_graph::io::{read_binary, read_dimacs, write_binary, write_dimacs};
use llp_graph::{CsrGraph, Edge, EdgeKey, GraphBuilder};
use llp_runtime::rng::SmallRng;
use llp_runtime::ThreadPool;

const CASES: u64 = 48;

/// Random raw edge triples over `2..max_n` vertices (self-loops included,
/// the builder must reject them).
fn raw_edges(rng: &mut SmallRng, max_n: u32, max_m: usize) -> (u32, Vec<(u32, u32, f64)>) {
    let n = rng.gen_range(2..max_n);
    let m = rng.gen_range(0..max_m);
    let edges = (0..m)
        .map(|_| {
            (
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                rng.gen_range(0u32..100) as f64,
            )
        })
        .collect();
    (n, edges)
}

fn build(n: u32, raw: &[(u32, u32, f64)]) -> CsrGraph {
    let mut b = GraphBuilder::new(n as usize);
    for &(u, v, w) in raw {
        if u != v {
            b.add_edge(u, v, w);
        }
    }
    b.build()
}

#[test]
fn builder_always_produces_valid_simple_graphs() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (n, raw) = raw_edges(&mut rng, 50, 400);
        let g = build(n, &raw);
        assert!(g.validate().is_ok(), "seed {seed}");
        // Simple graph: no duplicate neighbour entries.
        for v in 0..n {
            let mut ts: Vec<u32> = g.neighbors(v).map(|(t, _)| t).collect();
            let before = ts.len();
            ts.sort_unstable();
            ts.dedup();
            assert_eq!(ts.len(), before, "seed {seed}: vertex {v} has parallel arcs");
        }
    }
}

#[test]
fn builder_keeps_minimum_of_parallel_edges() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (n, raw) = raw_edges(&mut rng, 20, 200);
        let mut best = std::collections::HashMap::new();
        let mut b = GraphBuilder::new(n as usize);
        for &(u, v, w) in &raw {
            if u != v {
                b.add_edge(u, v, w);
                let key = (u.min(v), u.max(v));
                let e = best.entry(key).or_insert(w);
                if w < *e {
                    *e = w;
                }
            }
        }
        let g = b.build();
        assert_eq!(g.num_edges(), best.len(), "seed {seed}");
        for e in g.edges() {
            assert_eq!(e.w, best[&e.canonical_endpoints()], "seed {seed}");
        }
    }
}

#[test]
fn csr_edges_round_trip() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (n, raw) = raw_edges(&mut rng, 40, 300);
        let g = build(n, &raw);
        // edges() -> from_edges reproduces the same graph.
        let edges: Vec<Edge> = g.edges().collect();
        let g2 = CsrGraph::from_edges(n as usize, &edges);
        let mut k1: Vec<EdgeKey> = g.edges().map(|e| e.key()).collect();
        let mut k2: Vec<EdgeKey> = g2.edges().map(|e| e.key()).collect();
        k1.sort_unstable();
        k2.sort_unstable();
        assert_eq!(k1, k2, "seed {seed}");
    }
}

#[test]
fn parallel_csr_equals_sequential() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (n, raw) = raw_edges(&mut rng, 40, 300);
        let threads = rng.gen_range(1usize..5);
        let g = build(n, &raw);
        let edges: Vec<Edge> = g.edges().collect();
        let pool = ThreadPool::new(threads);
        let p = CsrGraph::from_edges_parallel(&pool, n as usize, &edges);
        assert!(p.validate().is_ok(), "seed {seed}");
        assert_eq!(p.compute_mwe(&pool), g.compute_mwe(&pool), "seed {seed}");
    }
}

#[test]
fn binary_io_round_trips_any_graph() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (n, raw) = raw_edges(&mut rng, 30, 200);
        let g = build(n, &raw);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(buf.as_slice()).unwrap();
        assert_eq!(g, g2, "seed {seed}");
    }
}

#[test]
fn dimacs_io_round_trips_integer_weights() {
    for seed in 0..CASES {
        // DIMACS prints decimal weights; integers survive exactly.
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = rng.gen_range(2u32..30);
        let m = rng.gen_range(0usize..150);
        let mut b = GraphBuilder::new(n as usize);
        for _ in 0..m {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                b.add_edge(u, v, rng.gen_range(1..1000) as f64);
            }
        }
        let g = b.build();
        let mut buf = Vec::new();
        write_dimacs(&g, &mut buf).unwrap();
        let g2 = read_dimacs(std::io::BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(g, g2, "seed {seed}");
    }
}

#[test]
fn edge_key_total_order_is_strict_on_distinct_edges() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (n, raw) = raw_edges(&mut rng, 20, 100);
        let g = build(n, &raw);
        let keys: Vec<EdgeKey> = g.edges().map(|e| e.key()).collect();
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                assert_ne!(keys[i], keys[j], "seed {seed}");
            }
        }
    }
}

#[test]
fn er_generator_is_deterministic_and_valid() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = rng.gen_range(2usize..200);
        let m = rng.gen_range(0usize..600);
        let a = erdos_renyi(n, m, seed);
        let b = erdos_renyi(n, m, seed);
        assert_eq!(&a, &b, "seed {seed}");
        assert!(a.validate().is_ok(), "seed {seed}");
        assert!(a.num_edges() <= m, "seed {seed}");
    }
}

#[test]
fn road_generator_always_connected() {
    for seed in 0..20 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let rows = rng.gen_range(1usize..20);
        let cols = rng.gen_range(1usize..20);
        let g = road_network(RoadParams::usa_like(rows, cols, seed));
        assert_eq!(g.num_vertices(), rows * cols, "seed {seed}");
        assert!(llp_graph::algo::is_connected(&g), "seed {seed}");
    }
}

/// Robustness: the readers must never panic on arbitrary input — they
/// return `Err` for anything malformed.
#[test]
fn readers_never_panic_on_junk() {
    for seed in 0..96 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let len = rng.gen_range(0usize..400);
        let junk: Vec<u8> = (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect();
        let _ = read_dimacs(std::io::BufReader::new(junk.as_slice()));
        let _ = llp_graph::io::read_metis(std::io::BufReader::new(junk.as_slice()));
        let _ = read_binary(junk.as_slice());
        // Printable-ASCII junk for the line-oriented edge-list reader.
        let text: String = (0..len)
            .map(|_| {
                let c = rng.gen_range(0u32..96);
                if c == 95 {
                    '\n'
                } else {
                    char::from_u32(c + 32).unwrap()
                }
            })
            .collect();
        let _ = llp_graph::io::read_edge_list(std::io::BufReader::new(text.as_bytes()), 0);
    }
}

/// Weights spanning the full non-NaN `f64` range: random bit patterns plus
/// the adversarial corners (signed zeros, subnormals, infinities, extremes).
fn arbitrary_weight(rng: &mut SmallRng) -> f64 {
    const CORNERS: [f64; 10] = [
        0.0,
        -0.0,
        f64::MIN_POSITIVE,
        -f64::MIN_POSITIVE,
        5e-324, // smallest subnormal
        f64::MAX,
        f64::MIN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        1.0,
    ];
    if rng.gen_range(0..4) == 0 {
        CORNERS[rng.gen_range(0..CORNERS.len() as u32) as usize]
    } else {
        loop {
            let w = f64::from_bits(rng.gen::<u64>());
            if !w.is_nan() {
                return w;
            }
        }
    }
}

/// The packed-`u64` MWE protocol is order-isomorphic to [`EdgeKey`]: for
/// any batch of distinct-key edges proposed in any order, the cell
/// converges to the `EdgeKey`-minimum edge. This is the proof obligation
/// behind replacing the two-word `AtomicIndexMin` protocol — the high-32
/// weight discriminant decides fast, and the exact-key fallback must agree
/// with `EdgeKey` on every hi32 collision (equal weights, nearby weights
/// sharing high bits, subnormals, infinities).
#[test]
fn packed_word_order_is_isomorphic_to_edge_key() {
    use llp_runtime::atomics::{mwe_idx, mwe_propose, weight_hi32, MWE_EMPTY};
    use std::sync::atomic::{AtomicU64, Ordering};

    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let batch = rng.gen_range(2u32..12) as usize;
        // Force hi32 collisions in half the cases by reusing one weight.
        let shared = arbitrary_weight(&mut rng);
        let edges: Vec<Edge> = (0..batch)
            .map(|i| {
                let w = if rng.gen_range(0..2) == 0 {
                    shared
                } else {
                    arbitrary_weight(&mut rng)
                };
                // Distinct endpoint pairs => distinct EdgeKeys even on
                // equal weights.
                Edge::new(2 * i as u32, 2 * i as u32 + 1, w)
            })
            .collect();
        let keys: Vec<EdgeKey> = edges.iter().map(Edge::key).collect();
        let expect = (0..batch).min_by_key(|&i| keys[i]).unwrap();

        // Every pairwise comparison agrees with EdgeKey, both ways.
        for i in 0..batch {
            assert!(
                weight_hi32(edges[i].w) < u32::MAX,
                "seed {seed}: discriminant must stay below the empty word"
            );
            for j in 0..batch {
                if i == j {
                    continue;
                }
                let cell = AtomicU64::new(MWE_EMPTY);
                let exact = |idx: u32| keys[idx as usize];
                mwe_propose(&cell, weight_hi32(edges[i].w), i as u32, exact);
                mwe_propose(&cell, weight_hi32(edges[j].w), j as u32, exact);
                let winner = mwe_idx(cell.load(Ordering::Relaxed)) as usize;
                assert_eq!(
                    winner,
                    if keys[i] < keys[j] { i } else { j },
                    "seed {seed}: pair ({i}, {j})"
                );
            }
        }

        // Whole-batch convergence under a random proposal order.
        let mut order: Vec<u32> = (0..batch as u32).collect();
        rng.shuffle(&mut order);
        let cell = AtomicU64::new(MWE_EMPTY);
        let exact = |idx: u32| keys[idx as usize];
        for &i in &order {
            mwe_propose(&cell, weight_hi32(edges[i as usize].w), i, exact);
        }
        assert_eq!(
            mwe_idx(cell.load(Ordering::Relaxed)) as usize,
            expect,
            "seed {seed}: batch winner"
        );
    }
}

/// Tie-breaking stays deterministic under concurrent proposals and chaos
/// schedules: many threads racing equal-weight proposals into shared cells
/// always converge to the `EdgeKey` minimum, for every chaos seed (the
/// seeds perturb thread interleavings when the `chaos` feature is on and
/// are inert no-ops otherwise — the assertion is identical either way).
#[test]
fn packed_word_ties_deterministic_under_chaos_seeds() {
    use llp_runtime::atomics::{mwe_idx, mwe_propose, weight_hi32, MWE_EMPTY};
    use llp_runtime::{chaos, parallel_for, ParallelForConfig};
    use std::sync::atomic::{AtomicU64, Ordering};

    let n_cells = 16usize;
    let n_edges = 512usize;
    let mut rng = SmallRng::seed_from_u64(0xfeed);
    // Only 3 distinct weights over 512 edges: ties everywhere.
    let weights = [1.5, 1.5, 2.5];
    let edges: Vec<Edge> = (0..n_edges)
        .map(|_| {
            let w = weights[rng.gen_range(0..3) as usize];
            let u = rng.gen_range(0..64);
            Edge::new(u, u + 1 + rng.gen_range(0..8), w)
        })
        .collect();
    let keys: Vec<EdgeKey> = edges.iter().map(Edge::key).collect();
    let whis: Vec<u32> = edges.iter().map(|e| weight_hi32(e.w)).collect();

    let mut expected: Option<Vec<u64>> = None;
    for chaos_seed in [11u64, 23, 47] {
        chaos::set_seed(Some(chaos_seed));
        let pool = ThreadPool::new(4);
        let cells: Vec<AtomicU64> = (0..n_cells).map(|_| AtomicU64::new(MWE_EMPTY)).collect();
        let cells_ref = &cells;
        let keys_ref = &keys;
        let whis_ref = &whis;
        parallel_for(
            &pool,
            0..n_edges,
            ParallelForConfig::with_grain(8),
            |i| {
                let cell = &cells_ref[i % n_cells];
                mwe_propose(cell, whis_ref[i], i as u32, |idx| keys_ref[idx as usize]);
            },
        );
        chaos::set_seed(None);
        let got: Vec<u64> = cells.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        // Every cell holds the EdgeKey-minimum of its residue class.
        for (c, &word) in got.iter().enumerate() {
            let min = (c..n_edges).step_by(n_cells).min_by_key(|&i| keys[i]).unwrap();
            assert_eq!(
                mwe_idx(word) as usize, min,
                "chaos seed {chaos_seed}: cell {c}"
            );
        }
        match &expected {
            None => expected = Some(got),
            Some(prev) => assert_eq!(prev, &got, "chaos seed {chaos_seed} diverged"),
        }
    }
}

/// Cache-aware relabels are MST-equivariant: mapping the relabeled MSF
/// back through the permutation yields the original canonical keys. (The
/// oracle here is the edge multiset, not an MST run — `llp-core` depends
/// on this crate, so the full algorithm-level equivariance check lives in
/// the core suite; this guards the transform itself.)
#[test]
fn relabels_are_valid_permutations_on_random_graphs() {
    use llp_graph::transform::{relabel_bfs, relabel_degree_descending};
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (n, raw) = raw_edges(&mut rng, 60, 400);
        let g = build(n, &raw);
        for (p, perm) in [relabel_degree_descending(&g), relabel_bfs(&g)] {
            let mut sorted = perm.clone();
            sorted.sort_unstable();
            assert_eq!(
                sorted,
                (0..n).collect::<Vec<u32>>(),
                "seed {seed}: not a permutation"
            );
            let mut a: Vec<EdgeKey> = g
                .edges()
                .map(|e| Edge::new(perm[e.u as usize], perm[e.v as usize], e.w).key())
                .collect();
            let mut b: Vec<EdgeKey> = p.edges().map(|e| e.key()).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "seed {seed}: edge multiset changed");
        }
    }
}

#[test]
fn metis_round_trips() {
    use llp_graph::io::{read_metis, write_metis};
    for seed in 0..96 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (n, raw) = raw_edges(&mut rng, 25, 150);
        let g = build(n, &raw);
        let mut buf = Vec::new();
        write_metis(&g, &mut buf).unwrap();
        let g2 = read_metis(std::io::BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(g, g2, "seed {seed}");
    }
}

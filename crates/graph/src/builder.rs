//! Edge-list accumulation and sanitisation into CSR form.

use crate::csr::CsrGraph;
use crate::edge::Edge;
use crate::weight::Weight;
use crate::VertexId;

/// Accumulates edges, then sanitises and builds a [`CsrGraph`].
///
/// Sanitisation: self-loops are dropped; parallel (duplicate) edges are
/// collapsed keeping the minimum weight — both are no-ops for MST purposes
/// (a self-loop can never be a tree edge; of parallel edges only the
/// lightest can). The result is a simple graph, the precondition of
/// [`CsrGraph::from_edges`].
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<Edge>,
}

impl GraphBuilder {
    /// A builder for a graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Pre-sizes the internal edge buffer.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of raw (unsanitised) edges added so far.
    pub fn num_raw_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `{u, v}` with weight `w`.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range or `w` is NaN.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, w: Weight) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u},{v}) out of range for n={}",
            self.n
        );
        assert!(!w.is_nan(), "edge weights must not be NaN");
        self.edges.push(Edge::new(u, v, w));
    }

    /// Adds many edges at once.
    pub fn extend<I: IntoIterator<Item = Edge>>(&mut self, edges: I) {
        for e in edges {
            self.add_edge(e.u, e.v, e.w);
        }
    }

    /// Sanitises and builds the CSR graph, consuming the builder.
    pub fn build(self) -> CsrGraph {
        let Self { n, mut edges } = self;
        // Canonicalise orientation, drop self loops.
        edges.retain(|e| !e.is_self_loop());
        for e in edges.iter_mut() {
            if e.u > e.v {
                std::mem::swap(&mut e.u, &mut e.v);
            }
        }
        // Collapse duplicates keeping the minimum weight: sort by endpoint
        // pair then weight, keep the first of each pair-run.
        edges.sort_unstable_by(|a, b| {
            (a.u, a.v)
                .cmp(&(b.u, b.v))
                .then(a.w.total_cmp(&b.w))
        });
        edges.dedup_by(|next, first| next.u == first.u && next.v == first.v);
        CsrGraph::from_edges(n, &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_graph() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 2.0);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        g.validate().unwrap();
    }

    #[test]
    fn drops_self_loops() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0, 1.0);
        b.add_edge(0, 1, 2.0);
        b.add_edge(1, 1, 3.0);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn collapses_parallel_edges_keeping_min() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 5.0);
        b.add_edge(1, 0, 2.0); // reversed orientation, same edge
        b.add_edge(0, 1, 9.0);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.min_edge(0).unwrap().weight(), 2.0);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new(5).build();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        GraphBuilder::new(2).add_edge(0, 2, 1.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan_weight() {
        GraphBuilder::new(2).add_edge(0, 1, f64::NAN);
    }
}

//! # llp-graph — graph substrate for the LLP-MST reproduction
//!
//! Undirected weighted graphs stored in compressed sparse row (CSR) form,
//! plus everything the paper's evaluation needs around them:
//!
//! * [`csr::CsrGraph`] — immutable CSR adjacency (structure-of-arrays),
//!   built sequentially or in parallel from edge lists.
//! * [`generators`] — synthetic workloads standing in for the paper's
//!   datasets: RMAT/Kronecker graphs (Graph500's generator family) and grid
//!   road networks (USA-road morphology), plus Erdős–Rényi, random geometric
//!   and classic fixed topologies for tests.
//! * [`io`] — DIMACS `.gr` reader/writer (the format the real USA road
//!   dataset ships in), plain text edge lists and a fast binary format.
//! * [`algo`] — BFS, connected components and degree statistics (Table I).
//!
//! ## Unique-weight semantics
//!
//! The paper assumes distinct edge weights ("if edge weights are not unique,
//! then they can be made unique by incorporating identities of its
//! endpoints"). [`weight::EdgeKey`] implements exactly that: edges compare
//! by `(weight, min endpoint, max endpoint)`, a strict total order on the
//! edges of a simple graph. Every algorithm in `llp-mst` compares edges only
//! through `EdgeKey`, so all of them return the *same, canonical* MST/MSF on
//! any input — which the test suite asserts.

pub mod algo;
pub mod builder;
pub mod csr;
pub mod edge;
pub mod generators;
pub mod io;
pub mod samples;
pub mod transform;
pub mod weight;

pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use edge::Edge;
pub use weight::EdgeKey;

/// Vertex identifier. Graphs in this workspace are limited to `u32::MAX - 1`
/// vertices, which halves index memory traffic versus `usize` (the paper's
/// graphs are ~24M vertices).
pub type VertexId = u32;

/// Sentinel for "no vertex".
pub const NO_VERTEX: VertexId = u32::MAX;

//! Compressed sparse row storage for undirected weighted graphs.
//!
//! Structure-of-arrays layout: `offsets[v]..offsets[v+1]` indexes into
//! parallel `targets`/`weights` arrays. Each undirected edge `{u, v}` is
//! stored twice (once per direction), the standard representation in both
//! Galois and GBBS. The structure is immutable after construction, which is
//! what lets the parallel algorithms read it without synchronization.

use crate::edge::Edge;
use crate::weight::{EdgeKey, Weight};
use crate::VertexId;
use llp_runtime::partition::group_by_key_in;
use llp_runtime::{parallel_map_collect, ParallelForConfig, ScratchArena, SendPtr, ThreadPool};

/// Validates an edge's endpoints against the vertex count with a
/// descriptive panic — edge ordinal, endpoints, weight — instead of the
/// bare index-out-of-bounds the degree scatter would otherwise trip on
/// (and only in debug builds, at that).
#[inline]
fn check_endpoints(n: usize, i: usize, e: &Edge) {
    assert!(
        (e.u as usize) < n && (e.v as usize) < n,
        "edge {i} ({} -- {}, w={}) has an endpoint out of range for a graph on {n} vertices",
        e.u,
        e.v,
        e.w
    );
}

/// An immutable undirected weighted graph in CSR form.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrGraph {
    n: usize,
    /// `n + 1` offsets into `targets`/`weights`.
    offsets: Vec<u64>,
    /// Neighbor vertex ids, grouped by source.
    targets: Vec<VertexId>,
    /// Weights parallel to `targets`.
    weights: Vec<Weight>,
}

impl CsrGraph {
    /// Builds a CSR graph from a clean undirected edge list.
    ///
    /// Requirements (checked in debug builds): endpoints `< n`, no
    /// self-loops, no duplicate `{u, v}` pairs. Use [`crate::GraphBuilder`]
    /// to sanitise arbitrary input first.
    ///
    /// ```
    /// use llp_graph::{CsrGraph, Edge};
    ///
    /// let g = CsrGraph::from_edges(3, &[Edge::new(0, 1, 2.5), Edge::new(1, 2, 1.5)]);
    /// assert_eq!(g.num_edges(), 2);
    /// assert_eq!(g.degree(1), 2);
    /// assert_eq!(g.min_edge(1).unwrap().weight(), 1.5);
    /// ```
    pub fn from_edges(n: usize, edges: &[Edge]) -> Self {
        debug_assert!(edges.iter().all(|e| !e.is_self_loop()), "self-loop");

        // Counting sort by source vertex over both directions. Endpoint
        // validation happens here, in release builds too: an id >= n must
        // fail with a descriptive error, not an out-of-bounds scatter.
        let mut degree = vec![0u64; n + 1];
        for (i, e) in edges.iter().enumerate() {
            check_endpoints(n, i, e);
            degree[e.u as usize + 1] += 1;
            degree[e.v as usize + 1] += 1;
        }
        for i in 1..=n {
            degree[i] += degree[i - 1];
        }
        let offsets = degree;
        let m2 = offsets[n] as usize;
        let mut cursor: Vec<u64> = offsets[..n].to_vec();
        let mut targets = vec![0 as VertexId; m2];
        let mut weights = vec![0.0 as Weight; m2];
        for e in edges {
            let cu = cursor[e.u as usize] as usize;
            targets[cu] = e.v;
            weights[cu] = e.w;
            cursor[e.u as usize] += 1;
            let cv = cursor[e.v as usize] as usize;
            targets[cv] = e.u;
            weights[cv] = e.w;
            cursor[e.v as usize] += 1;
        }

        CsrGraph {
            n,
            offsets,
            targets,
            weights,
        }
    }

    /// Parallel counterpart of [`CsrGraph::from_edges`]: counts degrees,
    /// prefix-sums offsets and scatters arcs on the pool. Arc order within
    /// an adjacency list differs from the sequential builder (scatter order
    /// is nondeterministic), which no algorithm observes — they all reduce
    /// over adjacency with order-free operations.
    pub fn from_edges_parallel(pool: &ThreadPool, n: usize, edges: &[Edge]) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        debug_assert!(edges.iter().all(|e| !e.is_self_loop()), "self-loop");
        let cfg = ParallelForConfig::with_grain(2048);

        // Degree count with atomic increments; endpoints validated here
        // (release builds included) with a descriptive panic that the
        // pool propagates to the caller.
        let degree: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        {
            let degree = &degree;
            llp_runtime::parallel_for(pool, 0..edges.len(), cfg, |i| {
                let e = edges[i];
                check_endpoints(n, i, &e);
                degree[e.u as usize].fetch_add(1, Ordering::Relaxed);
                degree[e.v as usize].fetch_add(1, Ordering::Relaxed);
            });
        }
        let counts: Vec<u64> = degree.iter().map(|d| d.load(Ordering::Relaxed)).collect();
        let (scanned, total) = llp_runtime::scan::exclusive_scan(pool, &counts);
        let mut offsets = scanned;
        offsets.push(total);

        // Scatter with per-vertex atomic cursors.
        let cursor: Vec<AtomicU64> = offsets[..n]
            .iter()
            .map(|&o| AtomicU64::new(o))
            .collect();
        let m2 = total as usize;
        let mut targets = vec![0 as VertexId; m2];
        let mut weights = vec![0.0 as Weight; m2];
        {
            struct Ptrs(*mut VertexId, *mut Weight);
            // SAFETY: each arc slot is claimed exactly once via fetch_add.
            unsafe impl Sync for Ptrs {}
            let ptrs = Ptrs(targets.as_mut_ptr(), weights.as_mut_ptr());
            let ptrs = &ptrs;
            let cursor = &cursor;
            llp_runtime::parallel_for(pool, 0..edges.len(), cfg, |i| {
                let e = edges[i];
                for (from, to) in [(e.u, e.v), (e.v, e.u)] {
                    let slot =
                        cursor[from as usize].fetch_add(1, Ordering::Relaxed) as usize;
                    // SAFETY: slots within a vertex's range are unique by
                    // the fetch_add; ranges of distinct vertices are
                    // disjoint by the exclusive scan.
                    unsafe {
                        *ptrs.0.add(slot) = to;
                        *ptrs.1.add(slot) = e.w;
                    }
                }
            });
        }

        CsrGraph {
            n,
            offsets,
            targets,
            weights,
        }
    }

    /// An empty graph on `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        CsrGraph {
            n,
            offsets: vec![0; n + 1],
            targets: Vec::new(),
            weights: Vec::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Number of directed arcs stored (`2 * num_edges`).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// The arc-index range of `v` in the CSR arc arrays. Arc indices are
    /// stable identifiers used by the parallel algorithms as compact
    /// edge-instance handles (an undirected edge has two arcs).
    #[inline]
    pub fn arc_range(&self, v: VertexId) -> (usize, usize) {
        (
            self.offsets[v as usize] as usize,
            self.offsets[v as usize + 1] as usize,
        )
    }

    /// Target and weight of arc `a`.
    #[inline]
    pub fn arc(&self, a: usize) -> (VertexId, Weight) {
        (self.targets[a], self.weights[a])
    }

    /// Neighbor ids and weights of `v` as parallel slices.
    #[inline]
    pub fn neighbor_slices(&self, v: VertexId) -> (&[VertexId], &[Weight]) {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        (&self.targets[lo..hi], &self.weights[lo..hi])
    }

    /// Iterates over `(neighbor, weight)` pairs of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let (t, w) = self.neighbor_slices(v);
        t.iter().copied().zip(w.iter().copied())
    }

    /// The minimum-weight edge adjacent to `v` under the canonical order,
    /// or `None` for isolated vertices.
    pub fn min_edge(&self, v: VertexId) -> Option<EdgeKey> {
        self.neighbors(v)
            .map(|(to, w)| EdgeKey::new(w, v, to))
            .min()
    }

    /// Computes every vertex's minimum-weight edge in parallel.
    ///
    /// Isolated vertices get [`EdgeKey::infinite`]. This is the
    /// precomputation LLP-Prim's early-fixing rule relies on ("every vertex
    /// can determine this information in parallel").
    pub fn compute_mwe(&self, pool: &ThreadPool) -> Vec<EdgeKey> {
        parallel_map_collect(
            pool,
            0..self.n,
            ParallelForConfig::with_grain(512),
            |v| {
                self.min_edge(v as VertexId)
                    .unwrap_or_else(EdgeKey::infinite)
            },
        )
    }

    /// Iterates over each undirected edge exactly once (as stored from the
    /// lower endpoint).
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.n as VertexId).flat_map(move |u| {
            self.neighbors(u)
                .filter(move |&(v, _)| u < v)
                .map(move |(v, w)| Edge::new(u, v, w))
        })
    }

    /// Sum of all undirected edge weights.
    pub fn total_weight(&self) -> f64 {
        self.edges().map(|e| e.w).sum()
    }

    /// Average degree (`2m / n`), used by the Table I dataset summary.
    pub fn average_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.num_arcs() as f64 / self.n as f64
        }
    }

    /// SpGEMM-style contracted rebuild: merges vertices with equal labels
    /// into one vertex each and returns the quotient graph. `labels[v]`
    /// names `v`'s component in `0..n_new`; intra-component arcs (the
    /// quotient's self-loops) are dropped, parallel arcs between distinct
    /// components are kept — MSF rounds only ever reduce over rows, where
    /// the lighter duplicate wins, so deduplication would be wasted work.
    ///
    /// Rows are rebuilt with the wide-key counting distribution
    /// ([`group_by_key_in`]), so component counts past `u16::MAX` are
    /// fine. Intra-row arc order is nondeterministic under parallel
    /// execution — the same contract as [`CsrGraph::from_edges_parallel`].
    ///
    /// # Panics
    /// Panics when `labels.len() != num_vertices()` or any label is
    /// `>= n_new`.
    pub fn contract_by_labels(&self, pool: &ThreadPool, n_new: usize, labels: &[u32]) -> CsrGraph {
        assert_eq!(labels.len(), self.n, "one label per vertex");
        assert!(
            labels.iter().all(|&l| (l as usize) < n_new),
            "label out of range for {n_new} contracted vertices"
        );
        let m = self.num_arcs();
        let arena = ScratchArena::new();
        let cfg = ParallelForConfig::with_grain(2048);

        // Source row of every arc (rows are contiguous arc ranges, so this
        // is a row-parallel fill into a leased buffer).
        let mut arc_src = arena.lease::<u32>(m);
        {
            let src_ptr = SendPtr::new(arc_src.as_mut_ptr());
            llp_runtime::parallel_for(pool, 0..self.n, cfg, |v| {
                let lo = self.offsets[v] as usize;
                let hi = self.offsets[v + 1] as usize;
                for a in lo..hi {
                    // SAFETY: row ranges partition 0..m; one writer per slot.
                    unsafe { *src_ptr.get().add(a) = v as u32 };
                }
            });
            // SAFETY: every slot in 0..m was initialised above.
            unsafe { arc_src.set_len(m) };
        }

        let mut offsets = Vec::new();
        let mut targets: Vec<VertexId> = Vec::with_capacity(m);
        let mut weights: Vec<Weight> = Vec::with_capacity(m);
        {
            let arc_src_ro: &[u32] = &arc_src;
            let tgt_ptr = SendPtr::new(targets.as_mut_ptr());
            let wt_ptr = SendPtr::new(weights.as_mut_ptr());
            let total = group_by_key_in(
                pool,
                &arena,
                m,
                n_new,
                &mut offsets,
                |a| {
                    let lu = labels[arc_src_ro[a] as usize];
                    let lv = labels[self.targets[a] as usize];
                    (lu != lv).then_some(lu)
                },
                |a, slot| {
                    // SAFETY: slots partition 0..total and both arrays have
                    // capacity m >= total; each slot written exactly once.
                    unsafe {
                        *tgt_ptr.get().add(slot) = labels[self.targets[a] as usize];
                        *wt_ptr.get().add(slot) = self.weights[a];
                    }
                },
            );
            // SAFETY: exactly `total` leading slots were initialised.
            unsafe {
                targets.set_len(total);
                weights.set_len(total);
            }
        }
        CsrGraph {
            n: n_new,
            offsets,
            targets,
            weights,
        }
    }

    /// Consistency check used by tests: every arc has a reverse arc with the
    /// same weight, no self loops, offsets monotone.
    pub fn validate(&self) -> Result<(), String> {
        if self.offsets.len() != self.n + 1 {
            return Err("offsets length mismatch".into());
        }
        if self.offsets[0] != 0 || *self.offsets.last().unwrap() as usize != self.targets.len() {
            return Err("offsets do not cover arc array".into());
        }
        if self.offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("offsets not monotone".into());
        }
        if self.targets.len() != self.weights.len() {
            return Err("targets/weights length mismatch".into());
        }
        for u in 0..self.n as VertexId {
            for (v, w) in self.neighbors(u) {
                if v as usize >= self.n {
                    return Err(format!("arc {u}->{v} out of range"));
                }
                if v == u {
                    return Err(format!("self loop at {u}"));
                }
                if !self.neighbors(v).any(|(x, wx)| x == u && wx == w) {
                    return Err(format!("arc {u}->{v} has no symmetric twin"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::samples::fig1;

    #[test]
    fn fig1_shape() {
        let g = fig1();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 7);
        assert_eq!(g.num_arcs(), 14);
        g.validate().unwrap();
    }

    #[test]
    fn degrees_match_fig1_choice_table() {
        let g = fig1();
        assert_eq!(g.degree(1), 3); // b: 3 5 7
        assert_eq!(g.degree(2), 4); // c: 3 4 9 11
        assert_eq!(g.degree(3), 3); // d: 2 7 9
        assert_eq!(g.degree(4), 2); // e: 2 11
    }

    #[test]
    fn min_edges_match_paper_initial_vector() {
        let g = fig1();
        // paper: G[b]=3, G[c]=3, G[d]=2, G[e]=2
        assert_eq!(g.min_edge(1).unwrap().weight(), 3.0);
        assert_eq!(g.min_edge(2).unwrap().weight(), 3.0);
        assert_eq!(g.min_edge(3).unwrap().weight(), 2.0);
        assert_eq!(g.min_edge(4).unwrap().weight(), 2.0);
        assert_eq!(g.min_edge(0).unwrap().weight(), 4.0);
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = fig1();
        let es: Vec<Edge> = g.edges().collect();
        assert_eq!(es.len(), 7);
        let mut ws: Vec<f64> = es.iter().map(|e| e.w).collect();
        ws.sort_by(f64::total_cmp);
        assert_eq!(ws, vec![2.0, 3.0, 4.0, 5.0, 7.0, 9.0, 11.0]);
    }

    #[test]
    fn total_weight_sums_undirected_edges() {
        assert_eq!(fig1().total_weight(), 41.0);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(4);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.min_edge(0), None);
        g.validate().unwrap();
    }

    #[test]
    fn isolated_vertices_get_infinite_mwe() {
        let g = CsrGraph::from_edges(4, &[Edge::new(0, 1, 1.0)]);
        let pool = ThreadPool::new(1);
        let mwe = g.compute_mwe(&pool);
        assert_eq!(mwe[0], EdgeKey::new(1.0, 0, 1));
        assert_eq!(mwe[1], EdgeKey::new(1.0, 0, 1));
        assert_eq!(mwe[2], EdgeKey::infinite());
        assert_eq!(mwe[3], EdgeKey::infinite());
    }

    #[test]
    fn compute_mwe_parallel_matches_sequential() {
        let g = fig1();
        let p1 = ThreadPool::new(1);
        let p4 = ThreadPool::new(4);
        assert_eq!(g.compute_mwe(&p1), g.compute_mwe(&p4));
    }

    #[test]
    fn parallel_construction_matches_sequential_semantics() {
        use crate::generators::erdos_renyi;
        let g = erdos_renyi(300, 1500, 4);
        let edges: Vec<Edge> = g.edges().collect();
        for threads in [1, 4] {
            let pool = ThreadPool::new(threads);
            let p = CsrGraph::from_edges_parallel(&pool, g.num_vertices(), &edges);
            p.validate().unwrap();
            assert_eq!(p.num_edges(), g.num_edges());
            // Same adjacency as sets (order may differ).
            for v in 0..g.num_vertices() as VertexId {
                let mut a: Vec<_> = g.neighbors(v).collect();
                let mut b: Vec<_> = p.neighbors(v).collect();
                a.sort_by(|x, y| x.partial_cmp(y).unwrap());
                b.sort_by(|x, y| x.partial_cmp(y).unwrap());
                assert_eq!(a, b, "vertex {v}");
            }
            // And identical MWE tables (order-free reduction).
            assert_eq!(p.compute_mwe(&pool), g.compute_mwe(&pool));
        }
    }

    #[test]
    fn parallel_construction_empty() {
        let pool = ThreadPool::new(2);
        let p = CsrGraph::from_edges_parallel(&pool, 5, &[]);
        assert_eq!(p.num_edges(), 0);
        p.validate().unwrap();
    }

    #[test]
    fn average_degree() {
        let g = fig1();
        assert!((g.average_degree() - 14.0 / 5.0).abs() < 1e-12);
        assert_eq!(CsrGraph::empty(0).average_degree(), 0.0);
    }

    // Adversarial ingestion: ids >= n must fail with a descriptive error
    // in release builds, not an out-of-bounds scatter (companion to the
    // binary-reader fuzz-ingest matrix, which covers the on-disk path).

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_edges_rejects_out_of_range_endpoint() {
        let _ = CsrGraph::from_edges(3, &[Edge::new(0, 1, 1.0), Edge::new(2, 7, 2.0)]);
    }

    #[test]
    fn from_edges_error_names_the_offending_edge() {
        let err = std::panic::catch_unwind(|| {
            CsrGraph::from_edges(3, &[Edge::new(0, 1, 1.0), Edge::new(2, 7, 2.5)])
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("edge 1"), "missing ordinal: {msg}");
        assert!(msg.contains("2 -- 7"), "missing endpoints: {msg}");
        assert!(msg.contains("3 vertices"), "missing vertex count: {msg}");
    }

    #[test]
    fn from_edges_parallel_rejects_out_of_range_endpoint() {
        let pool = ThreadPool::new(2);
        let edges = vec![Edge::new(0, 1, 1.0), Edge::new(9, 1, 2.0)];
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            CsrGraph::from_edges_parallel(&pool, 3, &edges)
        }));
        assert!(r.is_err(), "parallel builder accepted an out-of-range id");
        // The pool must survive the propagated panic.
        let ok = CsrGraph::from_edges_parallel(&pool, 3, &[Edge::new(0, 2, 1.0)]);
        ok.validate().unwrap();
    }

    #[test]
    fn contract_by_labels_merges_fig1_round1_components() {
        // Borůvka round 1 on fig1 merges {a,b,c} and {d,e}; the crossing
        // edges are (b,d,7), (c,d,9), (c,e,11).
        let g = fig1();
        for threads in [1, 4] {
            let pool = ThreadPool::new(threads);
            let q = g.contract_by_labels(&pool, 2, &[0, 0, 0, 1, 1]);
            q.validate().unwrap();
            assert_eq!(q.num_vertices(), 2);
            assert_eq!(q.num_arcs(), 6);
            let mut ws: Vec<f64> = q.neighbors(0).map(|(_, w)| w).collect();
            ws.sort_by(f64::total_cmp);
            assert_eq!(ws, vec![7.0, 9.0, 11.0]);
            assert!(q.neighbors(0).all(|(v, _)| v == 1));
            assert!(q.neighbors(1).all(|(v, _)| v == 0));
        }
    }

    #[test]
    fn contract_by_identity_labels_preserves_adjacency() {
        use crate::generators::erdos_renyi;
        let g = erdos_renyi(200, 800, 9);
        let labels: Vec<u32> = (0..g.num_vertices() as u32).collect();
        let pool = ThreadPool::new(4);
        let q = g.contract_by_labels(&pool, g.num_vertices(), &labels);
        q.validate().unwrap();
        assert_eq!(q.num_arcs(), g.num_arcs());
        for v in 0..g.num_vertices() as VertexId {
            let mut a: Vec<_> = g.neighbors(v).collect();
            let mut b: Vec<_> = q.neighbors(v).collect();
            a.sort_by(|x, y| x.partial_cmp(y).unwrap());
            b.sort_by(|x, y| x.partial_cmp(y).unwrap());
            assert_eq!(a, b, "vertex {v}");
        }
    }

    #[test]
    fn contract_all_into_one_drops_every_arc() {
        let g = fig1();
        let pool = ThreadPool::new(2);
        let q = g.contract_by_labels(&pool, 1, &[0; 5]);
        q.validate().unwrap();
        assert_eq!(q.num_vertices(), 1);
        assert_eq!(q.num_arcs(), 0);
    }

    #[test]
    fn contract_parallel_matches_sequential_as_sets() {
        use crate::generators::erdos_renyi;
        let g = erdos_renyi(3000, 15_000, 11);
        // Arbitrary deterministic 100-way partition of the vertices.
        let labels: Vec<u32> = (0..g.num_vertices() as u32).map(|v| v % 100).collect();
        let p1 = ThreadPool::new(1);
        let p4 = ThreadPool::new(4);
        let a = g.contract_by_labels(&p1, 100, &labels);
        let b = g.contract_by_labels(&p4, 100, &labels);
        a.validate().unwrap();
        b.validate().unwrap();
        assert_eq!(a.num_arcs(), b.num_arcs());
        for v in 0..100 as VertexId {
            let mut x: Vec<_> = a.neighbors(v).collect();
            let mut y: Vec<_> = b.neighbors(v).collect();
            x.sort_by(|l, r| l.partial_cmp(r).unwrap());
            y.sort_by(|l, r| l.partial_cmp(r).unwrap());
            assert_eq!(x, y, "row {v}");
        }
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn contract_rejects_out_of_range_labels() {
        let pool = ThreadPool::new(1);
        let _ = fig1().contract_by_labels(&pool, 2, &[0, 0, 0, 1, 5]);
    }

    #[test]
    #[should_panic(expected = "one label per vertex")]
    fn contract_rejects_wrong_label_count() {
        let pool = ThreadPool::new(1);
        let _ = fig1().contract_by_labels(&pool, 2, &[0, 1]);
    }
}

//! Basic graph algorithms used by generators, verification and Table I.

pub mod bfs;
pub mod connectivity;
pub mod degree;

pub use bfs::bfs_order;
pub use connectivity::{connected_components, is_connected, largest_component, Components};
pub use degree::{degree_stats, DegreeStats};

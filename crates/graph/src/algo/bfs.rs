//! Breadth-first search.

use crate::csr::CsrGraph;
use crate::{VertexId, NO_VERTEX};
use std::collections::VecDeque;

/// Visits all vertices reachable from `source` in BFS order; returns the
/// visit order. The paper's baseline Boruvka (Algorithm 3) labels components
/// with exactly this traversal.
pub fn bfs_order(graph: &CsrGraph, source: VertexId) -> Vec<VertexId> {
    let mut parent = vec![NO_VERTEX; graph.num_vertices()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    parent[source as usize] = source;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for (v, _) in graph.neighbors(u) {
            if parent[v as usize] == NO_VERTEX {
                parent[v as usize] = u;
                queue.push_back(v);
            }
        }
    }
    order
}

/// BFS distances (in hops) from `source`; unreachable vertices get
/// `u32::MAX`. Used by tests to measure diameter-ish quantities.
pub fn bfs_distances(graph: &CsrGraph, source: VertexId) -> Vec<u32> {
    let mut dist = vec![u32::MAX; graph.num_vertices()];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for (v, _) in graph.neighbors(u) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = dist[u as usize] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{cycle, path, star};

    #[test]
    fn bfs_covers_connected_graph() {
        let g = path(10, 0);
        let order = bfs_order(&g, 0);
        assert_eq!(order.len(), 10);
        assert_eq!(order[0], 0);
        assert_eq!(order[9], 9);
    }

    #[test]
    fn bfs_from_middle_of_path() {
        let g = path(5, 0);
        let order = bfs_order(&g, 2);
        assert_eq!(order[0], 2);
        assert_eq!(order.len(), 5);
    }

    #[test]
    fn bfs_distances_on_cycle() {
        let g = cycle(6, 0);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1]);
    }

    #[test]
    fn bfs_distances_star() {
        let g = star(5, 0);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 1, 1, 1]);
    }

    #[test]
    fn unreachable_vertices_marked() {
        use crate::edge::Edge;
        let g = CsrGraph::from_edges(4, &[Edge::new(0, 1, 1.0)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], u32::MAX);
        assert_eq!(d[3], u32::MAX);
    }
}

//! Connected components.

use crate::csr::CsrGraph;
use crate::{VertexId, NO_VERTEX};
use std::collections::VecDeque;

/// Result of a connected-components computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Components {
    /// `label[v]` is the smallest vertex id in v's component (so labels are
    /// canonical, mirroring the paper's "least numbered vertex" convention
    /// in Algorithm 3).
    pub label: Vec<VertexId>,
    /// Number of distinct components.
    pub num_components: usize,
}

impl Components {
    /// True when `u` and `v` are in the same component.
    pub fn same(&self, u: VertexId, v: VertexId) -> bool {
        self.label[u as usize] == self.label[v as usize]
    }

    /// Sizes of components keyed by canonical label.
    pub fn sizes(&self) -> Vec<(VertexId, usize)> {
        let mut counts = std::collections::HashMap::new();
        for &l in &self.label {
            *counts.entry(l).or_insert(0usize) += 1;
        }
        let mut v: Vec<_> = counts.into_iter().collect();
        v.sort_unstable();
        v
    }
}

/// Labels components by BFS from each unvisited vertex in increasing id
/// order — exactly the component identification step of the paper's
/// Algorithm 3 ("do a BFS in the graph (V, T) from vertex i setting cid of
/// every visited vertex to i").
pub fn connected_components(graph: &CsrGraph) -> Components {
    let n = graph.num_vertices();
    let mut label = vec![NO_VERTEX; n];
    let mut num_components = 0;
    let mut queue = VecDeque::new();
    for start in 0..n as VertexId {
        if label[start as usize] != NO_VERTEX {
            continue;
        }
        num_components += 1;
        label[start as usize] = start;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for (v, _) in graph.neighbors(u) {
                if label[v as usize] == NO_VERTEX {
                    label[v as usize] = start;
                    queue.push_back(v);
                }
            }
        }
    }
    Components {
        label,
        num_components,
    }
}

/// True when the graph has exactly one component (vacuously true for n ≤ 1).
pub fn is_connected(graph: &CsrGraph) -> bool {
    connected_components(graph).num_components <= 1
}

/// Extracts the largest connected component as a standalone graph with
/// densely renumbered vertices (preserving relative id order).
///
/// Graph500/RMAT generators leave isolated vertices and small fragments;
/// MST benchmarks conventionally run on the giant component (the paper's
/// "Graph500 18M" is the used subset of the scale-25 graph). Returns an
/// empty 0-vertex graph for an empty input.
pub fn largest_component(graph: &CsrGraph) -> CsrGraph {
    let n = graph.num_vertices();
    if n == 0 {
        return CsrGraph::empty(0);
    }
    let comps = connected_components(graph);
    // Find the label with the most members.
    let mut counts: std::collections::HashMap<VertexId, usize> = std::collections::HashMap::new();
    for &l in &comps.label {
        *counts.entry(l).or_insert(0) += 1;
    }
    let (&giant, _) = counts
        .iter()
        .max_by_key(|&(label, count)| (*count, std::cmp::Reverse(*label)))
        .expect("non-empty graph has a component");
    // Dense renumbering of the giant component's vertices.
    let mut new_id = vec![NO_VERTEX; n];
    let mut next = 0 as VertexId;
    for (slot, &label) in new_id.iter_mut().zip(&comps.label) {
        if label == giant {
            *slot = next;
            next += 1;
        }
    }
    let edges: Vec<crate::edge::Edge> = graph
        .edges()
        .filter(|e| comps.label[e.u as usize] == giant)
        .map(|e| crate::edge::Edge::new(new_id[e.u as usize], new_id[e.v as usize], e.w))
        .collect();
    CsrGraph::from_edges(next as usize, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::Edge;
    use crate::generators::{cycle, path};

    #[test]
    fn path_is_one_component() {
        let c = connected_components(&path(10, 0));
        assert_eq!(c.num_components, 1);
        assert!(c.label.iter().all(|&l| l == 0));
    }

    #[test]
    fn disjoint_edges_are_separate_components() {
        let g = CsrGraph::from_edges(6, &[Edge::new(0, 1, 1.0), Edge::new(2, 3, 1.0)]);
        let c = connected_components(&g);
        assert_eq!(c.num_components, 4); // {0,1}, {2,3}, {4}, {5}
        assert!(c.same(0, 1));
        assert!(c.same(2, 3));
        assert!(!c.same(0, 2));
        assert_eq!(c.label[4], 4);
        assert_eq!(c.label[5], 5);
    }

    #[test]
    fn labels_are_minimum_ids() {
        let g = CsrGraph::from_edges(5, &[Edge::new(4, 2, 1.0), Edge::new(2, 3, 1.0)]);
        let c = connected_components(&g);
        assert_eq!(c.label[2], 2);
        assert_eq!(c.label[3], 2);
        assert_eq!(c.label[4], 2);
    }

    #[test]
    fn sizes_reports_all_components() {
        let g = CsrGraph::from_edges(5, &[Edge::new(0, 1, 1.0), Edge::new(1, 2, 1.0)]);
        let c = connected_components(&g);
        assert_eq!(c.sizes(), vec![(0, 3), (3, 1), (4, 1)]);
    }

    #[test]
    fn largest_component_extracts_giant() {
        let g = CsrGraph::from_edges(
            7,
            &[
                Edge::new(0, 1, 1.0),
                Edge::new(1, 2, 2.0),
                Edge::new(2, 0, 3.0),
                Edge::new(4, 5, 4.0),
            ],
        );
        let giant = largest_component(&g);
        assert_eq!(giant.num_vertices(), 3);
        assert_eq!(giant.num_edges(), 3);
        assert!(is_connected(&giant));
    }

    #[test]
    fn largest_component_of_connected_graph_is_identity_shaped() {
        let g = cycle(6, 1);
        let giant = largest_component(&g);
        assert_eq!(giant, g);
    }

    #[test]
    fn largest_component_empty() {
        assert_eq!(largest_component(&CsrGraph::empty(0)).num_vertices(), 0);
        // all-isolated graph: a single vertex survives
        assert_eq!(largest_component(&CsrGraph::empty(5)).num_vertices(), 1);
    }

    #[test]
    fn is_connected_checks() {
        assert!(is_connected(&cycle(5, 0)));
        assert!(is_connected(&CsrGraph::empty(1)));
        assert!(is_connected(&CsrGraph::empty(0)));
        assert!(!is_connected(&CsrGraph::empty(2)));
    }
}

//! Degree statistics (the dataset summary the paper reports in Table I).

use crate::csr::CsrGraph;

/// Summary statistics over vertex degrees.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    /// Vertex count.
    pub n: usize,
    /// Undirected edge count.
    pub m: usize,
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Average degree (2m/n).
    pub avg: f64,
    /// Number of isolated vertices.
    pub isolated: usize,
}

/// Computes degree statistics in one pass.
pub fn degree_stats(graph: &CsrGraph) -> DegreeStats {
    let n = graph.num_vertices();
    let mut min = usize::MAX;
    let mut max = 0;
    let mut isolated = 0;
    for v in 0..n as u32 {
        let d = graph.degree(v);
        min = min.min(d);
        max = max.max(d);
        if d == 0 {
            isolated += 1;
        }
    }
    if n == 0 {
        min = 0;
    }
    DegreeStats {
        n,
        m: graph.num_edges(),
        min,
        max,
        avg: graph.average_degree(),
        isolated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::Edge;
    use crate::generators::star;

    #[test]
    fn star_stats() {
        let s = degree_stats(&star(10, 0));
        assert_eq!(s.n, 10);
        assert_eq!(s.m, 9);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 9);
        assert_eq!(s.isolated, 0);
        assert!((s.avg - 1.8).abs() < 1e-12);
    }

    #[test]
    fn isolated_counted() {
        let g = CsrGraph::from_edges(4, &[Edge::new(0, 1, 1.0)]);
        let s = degree_stats(&g);
        assert_eq!(s.isolated, 2);
        assert_eq!(s.min, 0);
    }

    #[test]
    fn empty_graph_stats() {
        let s = degree_stats(&CsrGraph::empty(0));
        assert_eq!(s.n, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
    }
}

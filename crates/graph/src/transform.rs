//! Graph transformations.
//!
//! Used by property tests (MST invariance under relabelling), ablations
//! (weight-distribution sensitivity) and workload preparation (extracting
//! subgraphs).

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::{VertexId, NO_VERTEX};
use llp_runtime::rng::SmallRng;

/// Relabels vertices by the given permutation: vertex `v` becomes
/// `perm[v]`. The MST is equivariant under this map, which the property
/// tests exploit.
///
/// # Panics
/// Panics unless `perm` is a permutation of `0..n`.
pub fn permute_vertices(graph: &CsrGraph, perm: &[VertexId]) -> CsrGraph {
    let n = graph.num_vertices();
    assert_eq!(perm.len(), n, "permutation must cover every vertex");
    let mut seen = vec![false; n];
    for &p in perm {
        assert!(
            (p as usize) < n && !seen[p as usize],
            "not a permutation of 0..n"
        );
        seen[p as usize] = true;
    }
    let mut b = GraphBuilder::with_capacity(n, graph.num_edges());
    for e in graph.edges() {
        b.add_edge(perm[e.u as usize], perm[e.v as usize], e.w);
    }
    b.build()
}

/// A uniformly random permutation of `0..n`.
pub fn random_permutation(n: usize, seed: u64) -> Vec<VertexId> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    rng.shuffle(&mut perm);
    perm
}

/// Replaces every weight with a fresh uniform sample in `(0, 1)`.
pub fn reweight_uniform(graph: &CsrGraph, seed: u64) -> CsrGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(graph.num_vertices(), graph.num_edges());
    for e in graph.edges() {
        b.add_edge(e.u, e.v, rng.gen::<f64>() + f64::MIN_POSITIVE);
    }
    b.build()
}

/// Applies a monotone transform to every weight. Monotone transforms
/// preserve the MST edge set exactly (the classic invariance), which the
/// property tests assert.
pub fn map_weights<F: Fn(f64) -> f64>(graph: &CsrGraph, f: F) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(graph.num_vertices(), graph.num_edges());
    for e in graph.edges() {
        b.add_edge(e.u, e.v, f(e.w));
    }
    b.build()
}

/// Cache-aware relabeling: renumbers vertices in descending degree order
/// (ties by original id). Returns the relabeled graph and the permutation
/// (`perm[old] = new`).
///
/// Hubs land on the lowest ids, so the dense per-vertex state the Prim
/// family keeps (`dist`, `fixed`, `best_edge`) concentrates its hottest
/// entries in a few leading cache lines instead of scattering them across
/// the whole array — the standard degree-ordering trick from graph
///-processing frameworks (e.g. frequency-based clustering in Ligra/GBBS
/// derivatives).
pub fn relabel_degree_descending(graph: &CsrGraph) -> (CsrGraph, Vec<VertexId>) {
    let n = graph.num_vertices();
    let mut by_degree: Vec<VertexId> = (0..n as VertexId).collect();
    by_degree.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));
    let mut perm = vec![0 as VertexId; n];
    for (new, &old) in by_degree.iter().enumerate() {
        perm[old as usize] = new as VertexId;
    }
    (permute_vertices(graph, &perm), perm)
}

/// Cache-aware relabeling: renumbers vertices in BFS visit order
/// (components in ascending order of their lowest original id). Returns
/// the relabeled graph and the permutation (`perm[old] = new`).
///
/// Neighboring vertices get nearby ids, so edge relaxations touch
/// near-contiguous slots of the per-vertex arrays — locality that
/// mesh-like inputs (road networks) reward the most.
pub fn relabel_bfs(graph: &CsrGraph) -> (CsrGraph, Vec<VertexId>) {
    let n = graph.num_vertices();
    let mut perm = vec![NO_VERTEX; n];
    let mut next = 0 as VertexId;
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n as VertexId {
        if perm[s as usize] != NO_VERTEX {
            continue;
        }
        perm[s as usize] = next;
        next += 1;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for (v, _) in graph.neighbors(u) {
                if perm[v as usize] == NO_VERTEX {
                    perm[v as usize] = next;
                    next += 1;
                    queue.push_back(v);
                }
            }
        }
    }
    (permute_vertices(graph, &perm), perm)
}

/// The subgraph induced by `keep`, with vertices renumbered densely in
/// increasing original-id order. Returns the new graph and the mapping
/// from old ids to new (or [`NO_VERTEX`] for dropped vertices).
pub fn induced_subgraph<F: Fn(VertexId) -> bool>(
    graph: &CsrGraph,
    keep: F,
) -> (CsrGraph, Vec<VertexId>) {
    let n = graph.num_vertices();
    let mut new_id = vec![NO_VERTEX; n];
    let mut next = 0 as VertexId;
    for v in 0..n as VertexId {
        if keep(v) {
            new_id[v as usize] = next;
            next += 1;
        }
    }
    let mut b = GraphBuilder::new(next as usize);
    for e in graph.edges() {
        let (nu, nv) = (new_id[e.u as usize], new_id[e.v as usize]);
        if nu != NO_VERTEX && nv != NO_VERTEX {
            b.add_edge(nu, nv, e.w);
        }
    }
    (b.build(), new_id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::erdos_renyi;
    use crate::samples::fig1;

    #[test]
    fn identity_permutation_preserves_edge_set() {
        // The builder may reorder adjacency lists, so compare canonical
        // edge keys rather than raw CSR layout.
        let g = fig1();
        let perm: Vec<u32> = (0..5).collect();
        let p = permute_vertices(&g, &perm);
        let mut a: Vec<_> = g.edges().map(|e| e.key()).collect();
        let mut b: Vec<_> = p.edges().map(|e| e.key()).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn permutation_preserves_shape() {
        let g = erdos_renyi(50, 200, 1);
        let perm = random_permutation(50, 9);
        let p = permute_vertices(&g, &perm);
        assert_eq!(p.num_vertices(), g.num_vertices());
        assert_eq!(p.num_edges(), g.num_edges());
        // Degrees are permuted, not changed.
        let mut d1: Vec<usize> = (0..50).map(|v| g.degree(v)).collect();
        let mut d2: Vec<usize> = (0..50).map(|v| p.degree(v)).collect();
        d1.sort_unstable();
        d2.sort_unstable();
        assert_eq!(d1, d2);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn bad_permutation_rejected() {
        let g = fig1();
        let _ = permute_vertices(&g, &[0, 0, 1, 2, 3]);
    }

    #[test]
    fn reweight_changes_weights_only() {
        let g = erdos_renyi(30, 100, 2);
        let r = reweight_uniform(&g, 7);
        assert_eq!(r.num_edges(), g.num_edges());
        assert!(r.edges().zip(g.edges()).all(|(a, b)| {
            a.u == b.u && a.v == b.v
        }));
    }

    #[test]
    fn map_weights_applies_function() {
        let g = fig1();
        let doubled = map_weights(&g, |w| 2.0 * w);
        assert_eq!(doubled.total_weight(), 2.0 * g.total_weight());
    }

    #[test]
    fn degree_relabel_sorts_degrees_descending() {
        let g = erdos_renyi(60, 240, 3);
        let (p, perm) = relabel_degree_descending(&g);
        let degs: Vec<usize> = (0..60).map(|v| p.degree(v)).collect();
        assert!(degs.windows(2).all(|w| w[0] >= w[1]));
        // The permutation carries each vertex's degree to its new id.
        for v in 0..60u32 {
            assert_eq!(g.degree(v), p.degree(perm[v as usize]));
        }
    }

    #[test]
    fn degree_relabel_breaks_ties_by_original_id() {
        // A 4-cycle: all degrees equal, so the relabel must be the identity.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 2.0);
        b.add_edge(2, 3, 3.0);
        b.add_edge(3, 0, 4.0);
        let (_, perm) = relabel_degree_descending(&b.build());
        assert_eq!(perm, vec![0, 1, 2, 3]);
    }

    #[test]
    fn bfs_relabel_is_identity_on_a_path() {
        let mut b = GraphBuilder::new(6);
        for v in 0..5 {
            b.add_edge(v, v + 1, 1.0 + v as f64);
        }
        let (_, perm) = relabel_bfs(&b.build());
        assert_eq!(perm, (0..6).collect::<Vec<VertexId>>());
    }

    #[test]
    fn bfs_relabel_covers_disconnected_graphs() {
        let g = crate::samples::small_forest();
        let (p, perm) = relabel_bfs(&g);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..g.num_vertices() as VertexId).collect::<Vec<_>>());
        assert_eq!(p.num_edges(), g.num_edges());
        assert_eq!(p.num_vertices(), g.num_vertices());
    }

    #[test]
    fn relabels_preserve_canonical_edge_multiset() {
        let g = erdos_renyi(80, 400, 11);
        for (p, perm) in [relabel_degree_descending(&g), relabel_bfs(&g)] {
            let mut a: Vec<_> = g
                .edges()
                .map(|e| {
                    crate::Edge::new(perm[e.u as usize], perm[e.v as usize], e.w).key()
                })
                .collect();
            let mut b: Vec<_> = p.edges().map(|e| e.key()).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn induced_subgraph_drops_and_renumbers() {
        let g = fig1();
        // Keep {a, b, c} = {0, 1, 2}: triangle with edges 3, 4, 5.
        let (sub, map) = induced_subgraph(&g, |v| v < 3);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(map[0], 0);
        assert_eq!(map[4], crate::NO_VERTEX);
        let mut ws: Vec<f64> = sub.edges().map(|e| e.w).collect();
        ws.sort_by(f64::total_cmp);
        assert_eq!(ws, vec![3.0, 4.0, 5.0]);
    }

    #[test]
    fn empty_induced_subgraph() {
        let g = fig1();
        let (sub, _) = induced_subgraph(&g, |_| false);
        assert_eq!(sub.num_vertices(), 0);
    }
}

//! Undirected weighted edges.

use crate::weight::{EdgeKey, Weight};
use crate::VertexId;

/// An undirected weighted edge `{u, v}` with weight `w`.
///
/// The struct stores the endpoints as given; identity and ordering go
/// through [`Edge::key`], which canonicalises orientation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Edge {
    /// One endpoint.
    pub u: VertexId,
    /// The other endpoint.
    pub v: VertexId,
    /// Weight.
    pub w: Weight,
}

impl Edge {
    /// Creates a new edge.
    #[inline]
    pub fn new(u: VertexId, v: VertexId, w: Weight) -> Self {
        Edge { u, v, w }
    }

    /// The canonical total-order key of this edge.
    #[inline]
    pub fn key(&self) -> EdgeKey {
        EdgeKey::new(self.w, self.u, self.v)
    }

    /// True when both endpoints coincide.
    #[inline]
    pub fn is_self_loop(&self) -> bool {
        self.u == self.v
    }

    /// The endpoint that is not `x`.
    #[inline]
    pub fn other(&self, x: VertexId) -> VertexId {
        debug_assert!(x == self.u || x == self.v);
        if x == self.u {
            self.v
        } else {
            self.u
        }
    }

    /// Endpoints as `(min, max)`.
    #[inline]
    pub fn canonical_endpoints(&self) -> (VertexId, VertexId) {
        if self.u <= self.v {
            (self.u, self.v)
        } else {
            (self.v, self.u)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_ignores_orientation() {
        assert_eq!(Edge::new(2, 5, 1.5).key(), Edge::new(5, 2, 1.5).key());
    }

    #[test]
    fn self_loop_detection() {
        assert!(Edge::new(3, 3, 1.0).is_self_loop());
        assert!(!Edge::new(3, 4, 1.0).is_self_loop());
    }

    #[test]
    fn other_endpoint() {
        let e = Edge::new(1, 2, 0.0);
        assert_eq!(e.other(1), 2);
        assert_eq!(e.other(2), 1);
    }

    #[test]
    fn canonical_endpoints_sorted() {
        assert_eq!(Edge::new(9, 4, 0.0).canonical_endpoints(), (4, 9));
        assert_eq!(Edge::new(4, 9, 0.0).canonical_endpoints(), (4, 9));
    }
}

//! Edge weights and the canonical unique-weight total order.

use crate::VertexId;

/// Edge weight type. Finite, non-NaN `f64`; DIMACS integer weights are
/// represented exactly (road weights fit in 32 bits).
pub type Weight = f64;

/// Order-preserving bit encoding of a weight, reexported from the runtime so
/// graph code does not need a second copy.
pub use llp_runtime::atomics::{f64_to_ordered, ordered_to_f64};

/// A strict total order over undirected edges: weight first, then the
/// smaller endpoint, then the larger endpoint.
///
/// This realises the paper's assumption of distinct edge weights on
/// arbitrary inputs: two *distinct* edges of a simple graph always differ in
/// their endpoint pair, so `EdgeKey`s never tie even when raw weights do.
/// All MST algorithms in this workspace compare edges exclusively through
/// `EdgeKey`, making the MST/MSF unique and the algorithms' outputs
/// bit-for-bit comparable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct EdgeKey {
    /// Order-preserving encoding of the weight.
    wbits: u64,
    /// Smaller endpoint.
    lo: VertexId,
    /// Larger endpoint.
    hi: VertexId,
}

impl EdgeKey {
    /// Key for the edge `{u, v}` with weight `w`.
    ///
    /// # Panics
    /// Panics (debug) on NaN weights; NaN has no place in a metric.
    #[inline]
    pub fn new(w: Weight, u: VertexId, v: VertexId) -> Self {
        debug_assert!(!w.is_nan(), "edge weights must not be NaN");
        let (lo, hi) = if u <= v { (u, v) } else { (v, u) };
        EdgeKey {
            wbits: f64_to_ordered(w),
            lo,
            hi,
        }
    }

    /// The maximum possible key; compares greater than every real edge.
    #[inline]
    pub fn infinite() -> Self {
        EdgeKey {
            wbits: u64::MAX,
            lo: VertexId::MAX,
            hi: VertexId::MAX,
        }
    }

    /// The weight this key encodes.
    #[inline]
    pub fn weight(&self) -> Weight {
        ordered_to_f64(self.wbits)
    }

    /// Smaller endpoint.
    #[inline]
    pub fn lo(&self) -> VertexId {
        self.lo
    }

    /// Larger endpoint.
    #[inline]
    pub fn hi(&self) -> VertexId {
        self.hi
    }

    /// The endpoint that is not `v`.
    ///
    /// # Panics
    /// Panics (debug) when `v` is not an endpoint of this edge.
    #[inline]
    pub fn other(&self, v: VertexId) -> VertexId {
        debug_assert!(v == self.lo || v == self.hi);
        if v == self.lo {
            self.hi
        } else {
            self.lo
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orientation_is_canonical() {
        assert_eq!(EdgeKey::new(1.0, 3, 7), EdgeKey::new(1.0, 7, 3));
    }

    #[test]
    fn weight_dominates_order() {
        assert!(EdgeKey::new(1.0, 9, 10) < EdgeKey::new(2.0, 0, 1));
    }

    #[test]
    fn ties_broken_by_endpoints() {
        let a = EdgeKey::new(5.0, 0, 1);
        let b = EdgeKey::new(5.0, 0, 2);
        let c = EdgeKey::new(5.0, 1, 2);
        assert!(a < b && b < c);
    }

    #[test]
    fn distinct_edges_never_tie() {
        let keys = [
            EdgeKey::new(1.0, 0, 1),
            EdgeKey::new(1.0, 0, 2),
            EdgeKey::new(1.0, 1, 2),
            EdgeKey::new(1.0, 2, 3),
        ];
        for i in 0..keys.len() {
            for j in 0..keys.len() {
                if i != j {
                    assert_ne!(keys[i], keys[j]);
                }
            }
        }
    }

    #[test]
    fn infinite_beats_everything() {
        let inf = EdgeKey::infinite();
        assert!(EdgeKey::new(f64::MAX, 0, 1) < inf);
        assert!(EdgeKey::new(1e308, u32::MAX - 2, u32::MAX - 1) < inf);
    }

    #[test]
    fn weight_round_trips() {
        for w in [0.0, 0.5, 1.0, 123.456, 1e9] {
            assert_eq!(EdgeKey::new(w, 0, 1).weight(), w);
        }
    }

    #[test]
    fn other_returns_opposite_endpoint() {
        let k = EdgeKey::new(1.0, 4, 9);
        assert_eq!(k.other(4), 9);
        assert_eq!(k.other(9), 4);
    }

    #[test]
    fn negative_weights_sort_below_positive() {
        assert!(EdgeKey::new(-2.0, 0, 1) < EdgeKey::new(-1.0, 0, 1));
        assert!(EdgeKey::new(-1.0, 0, 1) < EdgeKey::new(0.0, 0, 1));
    }
}

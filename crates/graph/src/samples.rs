//! Small named sample graphs used across tests, docs and examples.

use crate::csr::CsrGraph;
use crate::edge::Edge;

/// The paper's Fig. 1 graph on vertices `a..e = 0..4`.
///
/// Edge set (reconstructed from the per-vertex choice table in §V.A and the
/// worked Prim/Boruvka traces):
///
/// ```text
/// (b,c)=3  (a,c)=4  (a,b)=5  (b,d)=7  (c,d)=9  (c,e)=11  (d,e)=2
/// ```
///
/// Its unique MST is `{(d,e)=2, (b,c)=3, (a,c)=4, (b,d)=7}` with total
/// weight 16 — the `{2, 3, 4, 7}` of the paper.
pub fn fig1() -> CsrGraph {
    CsrGraph::from_edges(
        5,
        &[
            Edge::new(1, 2, 3.0),
            Edge::new(0, 2, 4.0),
            Edge::new(0, 1, 5.0),
            Edge::new(1, 3, 7.0),
            Edge::new(2, 3, 9.0),
            Edge::new(2, 4, 11.0),
            Edge::new(3, 4, 2.0),
        ],
    )
}

/// Total weight of [`fig1`]'s MST.
pub const FIG1_MST_WEIGHT: f64 = 16.0;

/// A two-component forest: a triangle `{0,1,2}` and an edge `{3,4}`, with
/// vertex 5 isolated. MSF weight is 1+2+5 = 8.
pub fn small_forest() -> CsrGraph {
    CsrGraph::from_edges(
        6,
        &[
            Edge::new(0, 1, 1.0),
            Edge::new(1, 2, 2.0),
            Edge::new(0, 2, 3.0),
            Edge::new(3, 4, 5.0),
        ],
    )
}

/// MSF weight of [`small_forest`].
pub const SMALL_FOREST_MSF_WEIGHT: f64 = 8.0;

/// A graph with deliberately duplicated raw weights, exercising the
/// endpoint tie-breaking of [`crate::EdgeKey`]: all edges weigh 1.0.
pub fn all_equal_weights(n: usize) -> CsrGraph {
    let mut edges = Vec::new();
    for i in 0..n as u32 {
        for j in i + 1..n as u32 {
            edges.push(Edge::new(i, j, 1.0));
        }
    }
    CsrGraph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::connectivity::connected_components;

    #[test]
    fn fig1_is_connected_with_7_edges() {
        let g = fig1();
        assert_eq!(g.num_edges(), 7);
        assert_eq!(connected_components(&g).num_components, 1);
    }

    #[test]
    fn small_forest_components() {
        let c = connected_components(&small_forest());
        assert_eq!(c.num_components, 3);
    }

    #[test]
    fn all_equal_is_complete() {
        let g = all_equal_weights(5);
        assert_eq!(g.num_edges(), 10);
    }
}

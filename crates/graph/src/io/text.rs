//! Plain text edge lists: one `u v w` triple per line, `#` comments.

use super::IoError;
use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use std::io::{BufRead, Write};

/// Reads an edge list with 0-based vertex ids. The vertex count is
/// `max endpoint + 1` unless `min_vertices` demands more.
pub fn read_edge_list<R: BufRead>(reader: R, min_vertices: usize) -> Result<CsrGraph, IoError> {
    let mut edges: Vec<(u32, u32, f64)> = Vec::new();
    let mut max_v: u64 = 0;
    for (lineno, line) in reader.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        let u: u32 = super::parse_token(parts.next(), lineno, "source")?;
        let v: u32 = super::parse_token(parts.next(), lineno, "target")?;
        let w: f64 = match parts.next() {
            Some(tok) => tok
                .parse()
                .map_err(|_| IoError::Parse(lineno, format!("invalid weight '{tok}'")))?,
            None => 1.0,
        };
        max_v = max_v.max(u as u64).max(v as u64);
        edges.push((u, v, w));
    }
    let n = min_vertices.max(if edges.is_empty() {
        0
    } else {
        max_v as usize + 1
    });
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (u, v, w) in edges {
        if u != v {
            b.add_edge(u, v, w);
        }
    }
    Ok(b.build())
}

/// Writes the graph as a `u v w` edge list (each undirected edge once).
pub fn write_edge_list<W: Write>(graph: &CsrGraph, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "# llp-graph edge list: u v w (0-based)")?;
    for e in graph.edges() {
        writeln!(writer, "{} {} {}", e.u, e.v, e.w)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::erdos_renyi;
    use std::io::BufReader;

    #[test]
    fn reads_edges_with_weights() {
        let src = "# comment\n0 1 2.5\n1 2 3.5\n";
        let g = read_edge_list(BufReader::new(src.as_bytes()), 0).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn default_weight_is_one() {
        let src = "0 1\n";
        let g = read_edge_list(BufReader::new(src.as_bytes()), 0).unwrap();
        assert_eq!(g.min_edge(0).unwrap().weight(), 1.0);
    }

    #[test]
    fn min_vertices_pads_isolated() {
        let src = "0 1 1.0\n";
        let g = read_edge_list(BufReader::new(src.as_bytes()), 10).unwrap();
        assert_eq!(g.num_vertices(), 10);
    }

    #[test]
    fn round_trips() {
        let g = erdos_renyi(40, 150, 9);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(BufReader::new(buf.as_slice()), g.num_vertices()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = read_edge_list(BufReader::new("".as_bytes()), 0).unwrap();
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_edge_list(BufReader::new("0 x 1\n".as_bytes()), 0).is_err());
    }
}

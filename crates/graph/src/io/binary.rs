//! Fast little-endian binary graph format, for caching generated workloads
//! and feeding long-running services.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic   8 bytes  b"LLPGRAPH"
//! version u32      1
//! n       u64
//! m       u64      undirected edge count
//! m × (u: u32, v: u32, w: f64)
//! ```
//!
//! ## Untrusted input
//!
//! Readers never trust the header: a corrupt or adversarial file cannot
//! force a multi-gigabyte allocation or a panic. The vertex count is
//! bounded by the `u32` id space, edge-buffer pre-allocation is capped
//! until the claimed `m` has been proven against the input's actual length
//! ([`read_binary_slice`] / [`read_binary_seek`] check `m × 16` bytes
//! against the remaining input up front; the plain [`read_binary`]
//! streaming path grows the buffer only as edges really arrive), and every
//! violation — truncation, out-of-range endpoints, self-loops, non-finite
//! weights — fails with [`IoError::ParseBytes`] naming the byte offset and
//! edge ordinal where it happened.
//!
//! [`read_binary_range`] reads a contiguous record range without building
//! a graph (for out-of-core sharding), and [`BinaryWriter`] streams a file
//! out in bounded chunks (for generators too big to materialize).

use super::IoError;
use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::edge::Edge;
use llp_runtime::faults::{self, Faulty};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"LLPGRAPH";
const VERSION: u32 = 1;

/// Fixed header size: magic (8) + version (4) + n (8) + m (8).
const HEADER_BYTES: u64 = 28;
/// On-disk size of one edge record: `u: u32, v: u32, w: f64`.
const EDGE_BYTES: u64 = 16;
/// Pre-allocation cap for streaming readers that cannot verify `m`
/// against an input length (16 MiB of edges); the buffer grows past it
/// only as edges actually arrive, so a lying header costs nothing.
const PREALLOC_EDGES: usize = 1 << 20;
/// Vertex ids are `u32`, so no valid file names more vertices than this.
const MAX_VERTICES: u64 = 1 << 32;

/// Writes the graph in binary form.
pub fn write_binary<W: Write>(graph: &CsrGraph, mut w: W) -> std::io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(graph.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&(graph.num_edges() as u64).to_le_bytes())?;
    for e in graph.edges() {
        w.write_all(&e.u.to_le_bytes())?;
        w.write_all(&e.v.to_le_bytes())?;
        w.write_all(&e.w.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a graph written by [`write_binary`] from a plain byte stream.
///
/// Streaming: the claimed edge count cannot be checked against an input
/// length, so pre-allocation is capped and truncation surfaces as a
/// [`IoError::ParseBytes`] naming the edge where the stream ended. Prefer
/// [`read_binary_slice`] / [`read_binary_seek`] when the input's length is
/// knowable — they reject a lying header before reading any edge.
pub fn read_binary<R: Read>(r: R) -> Result<CsrGraph, IoError> {
    read_binary_impl(r, None)
}

/// [`read_binary`] over an in-memory slice: the header's claimed `m` is
/// validated against `buf.len()` (exactly `28 + 16·m` bytes, no trailing
/// garbage) before any allocation or edge decoding.
pub fn read_binary_slice(buf: &[u8]) -> Result<CsrGraph, IoError> {
    read_binary_impl(buf, Some(buf.len() as u64))
}

/// [`read_binary`] over a seekable reader (e.g. a [`std::fs::File`]): the
/// header is read and validated at the reader's **current** position
/// first; only then is the remaining input length measured (one seek to
/// the end and back) and checked against the claimed `m`, exactly like
/// [`read_binary_slice`]. Header violations therefore surface at their
/// own byte offsets even when the reader starts at a nonzero offset or
/// its end cannot be measured at all.
pub fn read_binary_seek<R: Read + Seek>(mut r: R) -> Result<CsrGraph, IoError> {
    let header = read_header(&mut r)?;
    check_payload(header.m, remaining_len(&mut r)?)?;
    decode_graph(r, header, true)
}

/// Opens `path` and reads the whole graph, length-checked like
/// [`read_binary_seek`]. The stream is routed through the seeded fault
/// injector ([`llp_runtime::faults`], site `graph.file-read`): under an
/// active fault seed this path sees short reads, transient `Interrupted`
/// errors, sticky truncation and `0xFF` corruption, all of which the
/// validators above must turn into classified [`IoError`]s — never a wrong
/// graph. With faults compiled out or seedless it is a plain buffered read.
pub fn read_binary_file(path: &Path) -> Result<CsrGraph, IoError> {
    let f = File::open(path)?;
    read_binary_seek(faulty_reader(f, "graph.file-read"))
}

/// Wraps an open file in the fault injector at the record-aligned layer
/// (outside the [`BufReader`], so injected corruption lands inside exactly
/// one validated header field or edge record — see the corruption notes in
/// [`llp_runtime::faults`]). Shared by [`read_binary_file`] and the
/// out-of-core shard streamer.
pub fn faulty_reader(f: File, site: &str) -> Faulty<BufReader<File>> {
    Faulty::new(BufReader::new(f), site, faults::FILE_READ)
}

/// Header facts: claimed vertex and edge counts.
struct Header {
    n: u64,
    m: u64,
}

/// Reads and validates the 28-byte header at the reader's current
/// position. Error offsets are relative to the header start.
fn read_header<R: Read>(r: &mut R) -> Result<Header, IoError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)
        .map_err(|e| eof_at(e, 0, "magic"))?;
    if &magic != MAGIC {
        return Err(IoError::ParseBytes(0, "bad magic".into()));
    }
    let version = read_u32(r, 8, "version")?;
    if version != VERSION {
        return Err(IoError::ParseBytes(
            8,
            format!("unsupported version {version}"),
        ));
    }
    let n = read_u64(r, 12, "vertex count")?;
    if n > MAX_VERTICES {
        return Err(IoError::ParseBytes(
            12,
            format!("vertex count {n} exceeds the u32 id space"),
        ));
    }
    let m = read_u64(r, 20, "edge count")?;
    Ok(Header { n, m })
}

/// Measures the bytes between the reader's current position and its end
/// (one round-trip of seeks; the position is restored).
fn remaining_len<R: Seek>(r: &mut R) -> Result<u64, IoError> {
    let pos = r.stream_position()?;
    let end = r.seek(SeekFrom::End(0))?;
    r.seek(SeekFrom::Start(pos))?;
    Ok(end.saturating_sub(pos))
}

/// Checks the claimed edge count against a measured payload length:
/// exactly `m × 16` bytes, or the file is corrupt. Reported at offset 20,
/// where the lying `m` lives.
fn check_payload(m: u64, payload: u64) -> Result<(), IoError> {
    if m > payload / EDGE_BYTES {
        return Err(IoError::ParseBytes(
            20,
            format!(
                "header claims {m} edges ({} bytes) but only {payload} \
                 payload bytes remain",
                m.saturating_mul(EDGE_BYTES),
            ),
        ));
    }
    if payload != m * EDGE_BYTES {
        return Err(IoError::ParseBytes(
            20,
            format!(
                "payload length {payload} disagrees with header \
                 (expected exactly {} bytes for {m} edges)",
                m * EDGE_BYTES,
            ),
        ));
    }
    Ok(())
}

/// Decodes and validates one 16-byte edge record. `i` is the edge's
/// global ordinal in the file and `off` its byte offset, for errors.
fn decode_edge(
    rec: &[u8; EDGE_BYTES as usize],
    n: u64,
    i: u64,
    off: u64,
) -> Result<Edge, IoError> {
    let u = u32::from_le_bytes(rec[0..4].try_into().unwrap());
    let v = u32::from_le_bytes(rec[4..8].try_into().unwrap());
    let w = f64::from_le_bytes(rec[8..16].try_into().unwrap());
    if (u as u64) >= n || (v as u64) >= n {
        return Err(IoError::ParseBytes(
            off,
            format!("edge #{i}: endpoint ({u},{v}) out of range (n = {n})"),
        ));
    }
    if u == v {
        return Err(IoError::ParseBytes(
            off,
            format!("edge #{i}: self-loop at vertex {u}"),
        ));
    }
    if !w.is_finite() {
        return Err(IoError::ParseBytes(
            off + 8,
            format!("edge #{i}: non-finite weight {w}"),
        ));
    }
    Ok(Edge::new(u, v, w))
}

fn read_binary_impl<R: Read>(mut r: R, total_len: Option<u64>) -> Result<CsrGraph, IoError> {
    let header = read_header(&mut r)?;
    // With a known input length the header is either exactly right or the
    // file is corrupt — reject before allocating or decoding anything.
    // Without one (pure stream), cap the pre-allocation; a lying `m` then
    // dies on the first missing edge record instead of in the allocator.
    if let Some(len) = total_len {
        check_payload(header.m, len.saturating_sub(HEADER_BYTES))?;
    }
    decode_graph(r, header, total_len.is_some())
}

fn decode_graph<R: Read>(
    mut r: R,
    header: Header,
    length_checked: bool,
) -> Result<CsrGraph, IoError> {
    let prealloc = if length_checked {
        header.m as usize
    } else {
        header.m.min(PREALLOC_EDGES as u64) as usize
    };
    let mut b = GraphBuilder::with_capacity(header.n as usize, prealloc);
    let mut rec = [0u8; EDGE_BYTES as usize];
    for i in 0..header.m {
        let off = HEADER_BYTES + i * EDGE_BYTES;
        r.read_exact(&mut rec)
            .map_err(|e| eof_at(e, off, &format!("edge #{i}")))?;
        let e = decode_edge(&rec, header.n, i, off)?;
        b.add_edge(e.u, e.v, e.w);
    }
    Ok(b.build())
}

/// A contiguous slice of a binary graph file, plus the file's header
/// facts. Unlike the whole-graph readers this does **not** run the
/// records through [`GraphBuilder`]: edges come back exactly as stored
/// (parallel edges preserved, file order kept), which out-of-core
/// algorithms rely on to shard a file without changing its edge multiset.
#[derive(Debug)]
pub struct EdgeRange {
    /// Vertex count claimed by the (validated) header.
    pub num_vertices: usize,
    /// Total edge count in the file — not the range length.
    pub total_edges: u64,
    /// The decoded records `[lo, hi)`, in file order.
    pub edges: Vec<Edge>,
}

/// Reads edge records `[lo_edge, hi_edge)` of a binary graph file.
///
/// The header is read and validated at the reader's current position
/// first; then the remaining length is measured and checked against the
/// claimed `m` (a truncated file is rejected at offset 20 before any
/// decoding, like [`read_binary_seek`]); then the reader seeks straight
/// to `lo_edge` and decodes the range. Per-edge violations — and a
/// mid-range truncation behind a reader whose measured length lied — are
/// reported with the edge's **global** ordinal and **absolute** byte
/// offset in the file, so a shard-local failure names the real record.
///
/// `read_binary_range(r, 0, 0)` is a cheap header probe: it validates
/// header and payload length and returns no edges.
pub fn read_binary_range<R: Read + Seek>(
    mut r: R,
    lo_edge: u64,
    hi_edge: u64,
) -> Result<EdgeRange, IoError> {
    let base = r.stream_position()?;
    let header = read_header(&mut r)?;
    check_payload(header.m, remaining_len(&mut r)?)?;
    if lo_edge > hi_edge || hi_edge > header.m {
        return Err(IoError::ParseBytes(
            20,
            format!(
                "requested edge range [{lo_edge}, {hi_edge}) outside the \
                 file's {} edges",
                header.m
            ),
        ));
    }
    r.seek(SeekFrom::Start(base + HEADER_BYTES + lo_edge * EDGE_BYTES))?;
    // hi ≤ m and m × 16 was just proven against the measured payload, so
    // this allocation is bounded by real bytes on disk.
    let mut edges = Vec::with_capacity((hi_edge - lo_edge) as usize);
    let mut rec = [0u8; EDGE_BYTES as usize];
    for i in lo_edge..hi_edge {
        let off = HEADER_BYTES + i * EDGE_BYTES;
        r.read_exact(&mut rec)
            .map_err(|e| eof_at(e, off, &format!("edge #{i}")))?;
        edges.push(decode_edge(&rec, header.n, i, off)?);
    }
    Ok(EdgeRange {
        num_vertices: header.n as usize,
        total_edges: header.m,
        edges,
    })
}

/// Flush threshold for [`BinaryWriter`]'s internal buffer.
const WRITE_BUF_BYTES: usize = 1 << 20;

/// Incremental writer for the binary graph format.
///
/// [`write_binary`] needs the whole graph in memory; this writer streams
/// edge records as they are produced (generator chunks, shard merges)
/// through an internal ~1 MiB buffer, then back-patches the header's edge
/// count on [`finish`](BinaryWriter::finish). Records are validated on
/// the way in (endpoint range, self-loops, non-finite weights) so a
/// finished file always round-trips through the readers. Parallel
/// (duplicate) edges are allowed: the format stores a multiset, the
/// range reader preserves it, and the whole-graph readers collapse
/// duplicates through [`GraphBuilder`].
pub struct BinaryWriter<W: Write + Seek> {
    w: W,
    /// Position of the header start, so `finish` can patch `m` even when
    /// the file began at a nonzero offset.
    base: u64,
    n: u64,
    m: u64,
    buf: Vec<u8>,
}

impl<W: Write + Seek> BinaryWriter<W> {
    /// Starts a file for `n` vertices at the writer's current position,
    /// buffering a header with a placeholder edge count.
    pub fn new(mut w: W, n: usize) -> Result<Self, IoError> {
        if (n as u64) > MAX_VERTICES {
            return Err(IoError::ParseBytes(
                12,
                format!("vertex count {n} exceeds the u32 id space"),
            ));
        }
        let base = w.stream_position()?;
        let mut buf = Vec::with_capacity(WRITE_BUF_BYTES + EDGE_BYTES as usize);
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&(n as u64).to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes()); // m, patched by finish()
        Ok(BinaryWriter {
            w,
            base,
            n: n as u64,
            m: 0,
            buf,
        })
    }

    /// Appends one edge record, validated like the readers validate it.
    pub fn write_edge(&mut self, e: Edge) -> Result<(), IoError> {
        let off = HEADER_BYTES + self.m * EDGE_BYTES;
        if (e.u as u64) >= self.n || (e.v as u64) >= self.n {
            return Err(IoError::ParseBytes(
                off,
                format!(
                    "edge #{}: endpoint ({},{}) out of range (n = {})",
                    self.m, e.u, e.v, self.n
                ),
            ));
        }
        if e.u == e.v {
            return Err(IoError::ParseBytes(
                off,
                format!("edge #{}: self-loop at vertex {}", self.m, e.u),
            ));
        }
        if !e.w.is_finite() {
            return Err(IoError::ParseBytes(
                off + 8,
                format!("edge #{}: non-finite weight {}", self.m, e.w),
            ));
        }
        self.buf.extend_from_slice(&e.u.to_le_bytes());
        self.buf.extend_from_slice(&e.v.to_le_bytes());
        self.buf.extend_from_slice(&e.w.to_le_bytes());
        self.m += 1;
        if self.buf.len() >= WRITE_BUF_BYTES {
            self.w.write_all(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    /// Appends a chunk of edge records.
    pub fn write_edges(&mut self, edges: &[Edge]) -> Result<(), IoError> {
        for &e in edges {
            self.write_edge(e)?;
        }
        Ok(())
    }

    /// Number of edges written so far.
    pub fn edges_written(&self) -> u64 {
        self.m
    }

    /// Flushes the buffer, back-patches the header's edge count and
    /// returns the inner writer plus the final count. Dropping a writer
    /// without `finish` leaves a header claiming zero edges, which the
    /// length-checked readers then reject against the payload.
    pub fn finish(mut self) -> Result<(W, u64), IoError> {
        self.w.write_all(&self.buf)?;
        self.buf.clear();
        self.w.seek(SeekFrom::Start(self.base + 20))?;
        self.w.write_all(&self.m.to_le_bytes())?;
        self.w.seek(SeekFrom::End(0))?;
        self.w.flush()?;
        Ok((self.w, self.m))
    }
}

/// Crash-safe file-backed [`BinaryWriter`]: writes to `<dest>.tmp`, fsyncs,
/// then atomically renames onto `dest` on [`finish`](BinaryFileWriter::finish).
///
/// The plain [`BinaryWriter`] back-patches the header's edge count as its
/// last act, which means a process killed mid-generation leaves a file whose
/// header is either the zero placeholder or — worse, if the kill lands
/// between the patch and the final data flush reaching disk — a *valid-looking*
/// header over a truncated body. Writing to a sibling `*.tmp` and renaming
/// only after `fsync` closes that hole: readers either see the complete old
/// file, the complete new file, or no file at all; a leftover `*.tmp` is
/// never picked up by any reader and is rejected by all of them anyway
/// (placeholder header vs. non-empty payload).
///
/// The byte stream runs through the seeded fault injector (site
/// `graph.file-write`): under an active fault seed, short writes are retried
/// by `write_all`, transient `Interrupted` errors are absorbed, and hard
/// faults (ENOSPC, broken pipe) surface as classified errors *before* the
/// rename — so a faulted generation never installs a destination file.
///
/// Dropping an unfinished writer removes the temporary file (best effort).
pub struct BinaryFileWriter {
    inner: Option<BinaryWriter<Faulty<BufWriter<File>>>>,
    tmp: PathBuf,
    dest: PathBuf,
    finished: bool,
}

impl BinaryFileWriter {
    /// Starts a file for `n` vertices at `<dest>.tmp`.
    pub fn create(dest: &Path, n: usize) -> Result<Self, IoError> {
        let tmp = tmp_path(dest);
        let f = File::create(&tmp)?;
        let w = Faulty::new(BufWriter::new(f), "graph.file-write", faults::FILE_WRITE);
        match BinaryWriter::new(w, n) {
            Ok(inner) => Ok(BinaryFileWriter {
                inner: Some(inner),
                tmp,
                dest: dest.to_path_buf(),
                finished: false,
            }),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Appends one edge record, validated like the readers validate it.
    pub fn write_edge(&mut self, e: Edge) -> Result<(), IoError> {
        self.inner.as_mut().expect("writer finished").write_edge(e)
    }

    /// Appends a chunk of edge records.
    pub fn write_edges(&mut self, edges: &[Edge]) -> Result<(), IoError> {
        self.inner
            .as_mut()
            .expect("writer finished")
            .write_edges(edges)
    }

    /// Number of edges written so far.
    pub fn edges_written(&self) -> u64 {
        self.inner.as_ref().expect("writer finished").edges_written()
    }

    /// Flushes, fsyncs the temporary, atomically renames it onto the
    /// destination, and fsyncs the parent directory (best effort), so the
    /// completed file survives a crash right after this call returns. Any
    /// failure leaves the destination untouched.
    pub fn finish(mut self) -> Result<u64, IoError> {
        let (w, m) = self.inner.take().expect("writer finished").finish()?;
        let f = w
            .into_inner()
            .into_inner()
            .map_err(|e| IoError::Io(e.into_error()))?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&self.tmp, &self.dest)?;
        self.finished = true;
        if let Some(dir) = self.dest.parent() {
            // Persist the rename itself; non-fatal on filesystems that
            // refuse to open or fsync directories.
            if let Ok(d) = File::open(if dir.as_os_str().is_empty() {
                Path::new(".")
            } else {
                dir
            }) {
                let _ = d.sync_all();
            }
        }
        Ok(m)
    }
}

impl Drop for BinaryFileWriter {
    fn drop(&mut self) {
        if !self.finished {
            // Release the handle before unlinking (harmless to reorder on
            // Unix, required for the rename-never-happened invariant to be
            // observable on platforms that lock open files).
            self.inner = None;
            let _ = std::fs::remove_file(&self.tmp);
        }
    }
}

/// Sibling temporary path for [`BinaryFileWriter`]: `<dest>.tmp`.
fn tmp_path(dest: &Path) -> PathBuf {
    let mut name = dest.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    dest.with_file_name(name)
}

/// Maps an unexpected end-of-input to a [`IoError::ParseBytes`] naming
/// what was being read and where; other I/O failures pass through.
fn eof_at(e: std::io::Error, offset: u64, what: &str) -> IoError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        IoError::ParseBytes(offset, format!("input truncated while reading {what}"))
    } else {
        IoError::Io(e)
    }
}

fn read_u32<R: Read>(r: &mut R, offset: u64, what: &str) -> Result<u32, IoError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b).map_err(|e| eof_at(e, offset, what))?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R, offset: u64, what: &str) -> Result<u64, IoError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b).map_err(|e| eof_at(e, offset, what))?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(all(test, feature = "faults"))]
mod fault_tests {
    use super::*;
    use crate::generators::erdos_renyi;

    /// Under every fault seed, the file reader either returns the correct
    /// graph or a classified error — never a different graph, never a
    /// panic. This is the ingest leg of the never-lie invariant the
    /// fault-matrix sweep enforces end to end.
    #[test]
    fn faulted_file_read_is_correct_or_classified() {
        let _g = faults::test_serial_lock();
        let dir = std::env::temp_dir().join(format!("llp-faultread-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let dest = dir.join("g.bin");
        let g = erdos_renyi(200, 800, 21);
        faults::set_seed(None);
        let mut w = BinaryFileWriter::create(&dest, 200).unwrap();
        let edges: Vec<Edge> = g.edges().collect();
        w.write_edges(&edges).unwrap();
        w.finish().unwrap();

        let (mut ok, mut classified) = (0u32, 0u32);
        for seed in 1..=32 {
            faults::set_seed(Some(seed));
            match read_binary_file(&dest) {
                Ok(got) => {
                    assert_eq!(got, g, "seed {seed} returned a WRONG graph");
                    ok += 1;
                }
                Err(IoError::ParseBytes(..)) | Err(IoError::Io(_)) => classified += 1,
                Err(other) => panic!("seed {seed}: unexpected error class {other:?}"),
            }
        }
        faults::set_seed(None);
        assert!(classified > 0, "32 seeds should fault at least once");
        // Transient-only seeds must still succeed sometimes, proving the
        // retry paths (read_exact over Interrupted/short reads) work.
        assert!(ok > 0, "32 seeds should also let some reads through");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A faulted atomic write either installs a byte-perfect file or
    /// nothing at all.
    #[test]
    fn faulted_file_write_installs_complete_file_or_nothing() {
        let _g = faults::test_serial_lock();
        let dir = std::env::temp_dir().join(format!("llp-faultwrite-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let g = erdos_renyi(100, 400, 7);
        let edges: Vec<Edge> = g.edges().collect();
        let (mut ok, mut failed) = (0u32, 0u32);
        for seed in 1..=32 {
            faults::set_seed(Some(seed));
            let dest = dir.join(format!("g{seed}.bin"));
            let r = BinaryFileWriter::create(&dest, 100)
                .and_then(|mut w| {
                    w.write_edges(&edges)?;
                    w.finish()
                });
            faults::set_seed(None);
            match r {
                Ok(m) => {
                    assert_eq!(m, edges.len() as u64);
                    assert_eq!(read_binary_file(&dest).unwrap(), g, "seed {seed}");
                    ok += 1;
                }
                Err(_) => {
                    assert!(!dest.exists(), "seed {seed}: failed write installed dest");
                    failed += 1;
                }
            }
        }
        assert!(ok > 0 && failed > 0, "sweep should see both outcomes (ok={ok}, failed={failed})");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{erdos_renyi, road_network, RoadParams};

    /// A syntactically valid file: header plus raw edge records.
    fn file(n: u64, m: u64, edges: &[(u32, u32, f64)]) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&n.to_le_bytes());
        buf.extend_from_slice(&m.to_le_bytes());
        for &(u, v, w) in edges {
            buf.extend_from_slice(&u.to_le_bytes());
            buf.extend_from_slice(&v.to_le_bytes());
            buf.extend_from_slice(&w.to_le_bytes());
        }
        buf
    }

    fn parse_offset(err: IoError) -> u64 {
        match err {
            IoError::ParseBytes(off, _) => off,
            other => panic!("expected ParseBytes, got {other:?}"),
        }
    }

    #[test]
    fn round_trips() {
        for g in [
            erdos_renyi(100, 400, 1),
            road_network(RoadParams::usa_like(10, 10, 2)),
            CsrGraph::empty(5),
        ] {
            let mut buf = Vec::new();
            write_binary(&g, &mut buf).unwrap();
            let g2 = read_binary(buf.as_slice()).unwrap();
            assert_eq!(g, g2);
            let g3 = read_binary_slice(&buf).unwrap();
            assert_eq!(g, g3);
            let g4 = read_binary_seek(std::io::Cursor::new(&buf)).unwrap();
            assert_eq!(g, g4);
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let buf = b"NOTAGRPH\x01\x00\x00\x00".to_vec();
        assert_eq!(parse_offset(read_binary(buf.as_slice()).unwrap_err()), 0);
    }

    #[test]
    fn rejects_truncated_input_with_edge_ordinal() {
        let g = erdos_renyi(20, 50, 3);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let m = g.num_edges() as u64;
        buf.truncate(buf.len() - 3);
        // Streaming: dies inside the last edge record, naming it.
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert_eq!(parse_offset(err), HEADER_BYTES + (m - 1) * EDGE_BYTES);
        let msg = read_binary(buf.as_slice()).unwrap_err().to_string();
        assert!(msg.contains(&format!("edge #{}", m - 1)), "{msg}");
        // Length-checked: rejected at the header, before any decoding.
        assert_eq!(parse_offset(read_binary_slice(&buf).unwrap_err()), 20);
        assert_eq!(
            parse_offset(read_binary_seek(std::io::Cursor::new(&buf)).unwrap_err()),
            20
        );
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert_eq!(parse_offset(read_binary(buf.as_slice()).unwrap_err()), 8);
    }

    #[test]
    fn huge_edge_count_is_an_error_not_an_allocation() {
        // m = u64::MAX with an empty payload: the streaming path must not
        // reserve m × 16 bytes; the length-checked paths reject up front.
        let buf = file(4, u64::MAX, &[]);
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert_eq!(parse_offset(err), HEADER_BYTES);
        assert_eq!(parse_offset(read_binary_slice(&buf).unwrap_err()), 20);
        assert_eq!(
            parse_offset(read_binary_seek(std::io::Cursor::new(&buf)).unwrap_err()),
            20
        );
    }

    #[test]
    fn huge_vertex_count_is_rejected() {
        let buf = file(MAX_VERTICES + 1, 0, &[]);
        let err = read_binary_slice(&buf).unwrap_err();
        assert_eq!(parse_offset(err), 12);
    }

    #[test]
    fn edge_count_must_match_payload_exactly() {
        // Three edges on disk, header claims two: trailing bytes are
        // corruption, not slack.
        let edges = [(0u32, 1u32, 1.0), (1, 2, 2.0), (0, 2, 3.0)];
        let buf = file(3, 2, &edges);
        assert_eq!(parse_offset(read_binary_slice(&buf).unwrap_err()), 20);
        // Header claims four: too short.
        let buf = file(3, 4, &edges);
        assert_eq!(parse_offset(read_binary_slice(&buf).unwrap_err()), 20);
    }

    #[test]
    fn rejects_out_of_range_endpoint_at_its_offset() {
        let buf = file(3, 2, &[(0, 1, 1.0), (1, 7, 2.0)]);
        let err = read_binary_slice(&buf).unwrap_err();
        assert_eq!(parse_offset(err), HEADER_BYTES + EDGE_BYTES);
        let msg = read_binary_slice(&buf).unwrap_err().to_string();
        assert!(msg.contains("edge #1") && msg.contains("(1,7)"), "{msg}");
    }

    #[test]
    fn rejects_self_loops() {
        let buf = file(3, 1, &[(2, 2, 1.0)]);
        let msg = read_binary_slice(&buf).unwrap_err().to_string();
        assert!(msg.contains("self-loop"), "{msg}");
    }

    #[test]
    fn rejects_non_finite_weights() {
        for w in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let buf = file(3, 1, &[(0, 1, w)]);
            let err = read_binary_slice(&buf).unwrap_err();
            assert_eq!(parse_offset(err), HEADER_BYTES + 8, "weight {w}");
        }
    }

    use std::io::Cursor;

    /// A reader whose end cannot be measured: every `SeekFrom::End` seek
    /// fails. Header validation must come first, so header violations
    /// still surface at their own offsets.
    struct SeekEndFails<R>(R);

    impl<R: Read> Read for SeekEndFails<R> {
        fn read(&mut self, b: &mut [u8]) -> std::io::Result<usize> {
            self.0.read(b)
        }
    }

    impl<R: Seek> Seek for SeekEndFails<R> {
        fn seek(&mut self, pos: SeekFrom) -> std::io::Result<u64> {
            if matches!(pos, SeekFrom::End(_)) {
                Err(std::io::Error::new(
                    std::io::ErrorKind::Unsupported,
                    "end not measurable",
                ))
            } else {
                self.0.seek(pos)
            }
        }
    }

    /// A reader that lies about its end position — models a file
    /// truncated between the length measurement and the decode loop.
    struct LyingEnd<R> {
        inner: R,
        end: u64,
    }

    impl<R: Read> Read for LyingEnd<R> {
        fn read(&mut self, b: &mut [u8]) -> std::io::Result<usize> {
            self.inner.read(b)
        }
    }

    impl<R: Seek> Seek for LyingEnd<R> {
        fn seek(&mut self, pos: SeekFrom) -> std::io::Result<u64> {
            match pos {
                SeekFrom::End(0) => Ok(self.end),
                other => self.inner.seek(other),
            }
        }
    }

    #[test]
    fn seek_reader_validates_header_before_measuring_length() {
        // Bad magic on a reader whose end seek errors: the header must be
        // rejected at offset 0 before any length measurement is attempted.
        let mut buf = b"NOTAGRPH".to_vec();
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let err = read_binary_seek(SeekEndFails(Cursor::new(buf))).unwrap_err();
        assert_eq!(parse_offset(err), 0);
    }

    #[test]
    fn seek_reader_supports_nonzero_start_offsets() {
        let g = erdos_renyi(30, 60, 5);
        let mut buf = vec![0xAB; 13]; // arbitrary preamble before the header
        write_binary(&g, &mut buf).unwrap();
        let mut c = Cursor::new(&buf);
        c.seek(SeekFrom::Start(13)).unwrap();
        assert_eq!(read_binary_seek(&mut c).unwrap(), g);
        // The range reader honours the same convention.
        c.seek(SeekFrom::Start(13)).unwrap();
        let r = read_binary_range(&mut c, 0, g.num_edges() as u64).unwrap();
        assert_eq!(r.edges.len(), g.num_edges());
    }

    #[test]
    fn range_reader_round_trips_in_pieces() {
        let g = erdos_renyi(80, 200, 11);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let m = g.num_edges() as u64;
        let all: Vec<Edge> = g.edges().collect();
        for step in [1u64, 7, 64, m] {
            let mut got = Vec::new();
            let mut lo = 0;
            while lo < m {
                let hi = (lo + step).min(m);
                let r = read_binary_range(Cursor::new(&buf), lo, hi).unwrap();
                assert_eq!(r.num_vertices, 80);
                assert_eq!(r.total_edges, m);
                assert_eq!(r.edges.len(), (hi - lo) as usize);
                got.extend(r.edges);
                lo = hi;
            }
            assert_eq!(got.len(), all.len(), "step {step}");
            for (a, b) in got.iter().zip(&all) {
                assert_eq!((a.u, a.v, a.w), (b.u, b.v, b.w), "step {step}");
            }
        }
    }

    #[test]
    fn range_header_probe_and_bounds() {
        let g = erdos_renyi(20, 40, 2);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let m = g.num_edges() as u64;
        let probe = read_binary_range(Cursor::new(&buf), 0, 0).unwrap();
        assert_eq!(probe.num_vertices, 20);
        assert_eq!(probe.total_edges, m);
        assert!(probe.edges.is_empty());
        // hi past the end or an inverted range: rejected at the header.
        let err = read_binary_range(Cursor::new(&buf), 0, m + 1).unwrap_err();
        assert_eq!(parse_offset(err), 20);
        let err = read_binary_range(Cursor::new(&buf), 3, 2).unwrap_err();
        assert_eq!(parse_offset(err), 20);
    }

    #[test]
    fn range_rejects_truncation_at_header_and_mid_range_with_offsets() {
        let g = erdos_renyi(20, 50, 3);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let m = g.num_edges() as u64;
        let full_len = buf.len() as u64;
        buf.truncate(buf.len() - 3);
        // Honest length: rejected up front at offset 20, like the other
        // length-checked readers.
        let err = read_binary_range(Cursor::new(&buf), 0, m).unwrap_err();
        assert_eq!(parse_offset(err), 20);
        // A reader whose measured length lies (a file truncated between
        // the measurement and the read): the decode loop dies mid-range
        // naming the edge's global ordinal and absolute byte offset.
        let lying = LyingEnd {
            inner: Cursor::new(&buf),
            end: full_len,
        };
        let err = read_binary_range(lying, m - 2, m).unwrap_err();
        assert_eq!(parse_offset(err), HEADER_BYTES + (m - 1) * EDGE_BYTES);
        let lying = LyingEnd {
            inner: Cursor::new(&buf),
            end: full_len,
        };
        let msg = read_binary_range(lying, m - 2, m).unwrap_err().to_string();
        assert!(msg.contains(&format!("edge #{}", m - 1)), "{msg}");
    }

    #[test]
    fn range_rejects_corrupt_edges_at_absolute_offsets() {
        let edges: Vec<(u32, u32, f64)> = (0..10).map(|i| (i, i + 1, i as f64)).collect();
        let mut buf = file(11, 10, &edges);
        // Corrupt edge #5 into a self-loop; read a range straddling it.
        let off = (HEADER_BYTES + 5 * EDGE_BYTES) as usize;
        buf[off..off + 4].copy_from_slice(&6u32.to_le_bytes());
        let err = read_binary_range(Cursor::new(&buf), 4, 8).unwrap_err();
        assert_eq!(parse_offset(err), HEADER_BYTES + 5 * EDGE_BYTES);
        let msg = read_binary_range(Cursor::new(&buf), 4, 8)
            .unwrap_err()
            .to_string();
        assert!(msg.contains("edge #5") && msg.contains("self-loop"), "{msg}");
    }

    #[test]
    fn binary_writer_round_trips_and_patches_edge_count() {
        let g = erdos_renyi(60, 150, 9);
        let mut w = BinaryWriter::new(Cursor::new(Vec::new()), 60).unwrap();
        let edges: Vec<Edge> = g.edges().collect();
        w.write_edges(&edges).unwrap();
        assert_eq!(w.edges_written(), edges.len() as u64);
        let (cur, m) = w.finish().unwrap();
        assert_eq!(m, edges.len() as u64);
        let buf = cur.into_inner();
        assert_eq!(read_binary_seek(Cursor::new(&buf)).unwrap(), g);
        let r = read_binary_range(Cursor::new(&buf), 0, m).unwrap();
        assert_eq!(r.edges.len(), edges.len());
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "llp-binary-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn file_writer_round_trips_through_rename() {
        let dir = temp_dir("atomic");
        let dest = dir.join("g.bin");
        let g = erdos_renyi(40, 100, 13);
        let mut w = BinaryFileWriter::create(&dest, 40).unwrap();
        let edges: Vec<Edge> = g.edges().collect();
        w.write_edges(&edges).unwrap();
        assert!(!dest.exists(), "dest must not appear before finish");
        assert!(tmp_path(&dest).exists());
        let m = w.finish().unwrap();
        assert_eq!(m, edges.len() as u64);
        assert!(!tmp_path(&dest).exists(), "tmp must be renamed away");
        assert_eq!(read_binary_file(&dest).unwrap(), g);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_writer_drop_removes_tmp_and_never_creates_dest() {
        let dir = temp_dir("drop");
        let dest = dir.join("g.bin");
        {
            let mut w = BinaryFileWriter::create(&dest, 8).unwrap();
            w.write_edge(Edge::new(0, 1, 1.0)).unwrap();
            // Abandoned (error path / early return): no finish.
        }
        assert!(!dest.exists(), "abandoned write must not install dest");
        assert!(!tmp_path(&dest).exists(), "drop must clean the tmp");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn killed_mid_gen_leftover_tmp_is_rejected_by_every_reader() {
        // Simulate SIGKILL between writes: the bytes a killed
        // BinaryFileWriter can have made durable are header (placeholder
        // m = 0) + some prefix of records + no rename. Readers never look
        // at `*.tmp` paths, and even read directly the torn file must be
        // rejected, not half-parsed.
        let dir = temp_dir("kill");
        let dest = dir.join("g.bin");
        let torn = {
            let mut w = BinaryWriter::new(Cursor::new(Vec::new()), 8).unwrap();
            for i in 0..100u32 {
                w.write_edge(Edge::new(i % 8, (i + 1) % 8, i as f64)).unwrap();
            }
            // No finish(): m stays the placeholder 0, like a killed process.
            // Reach into the buffered state the way the OS would see it.
            let mut bytes = Vec::new();
            bytes.extend_from_slice(&w.buf);
            bytes
        };
        std::fs::write(tmp_path(&dest), &torn).unwrap();
        assert!(!dest.exists(), "no rename happened, dest must not exist");
        let err = read_binary_slice(&torn).unwrap_err();
        assert_eq!(parse_offset(err), 20, "placeholder header vs payload");
        let err = read_binary_seek(Cursor::new(&torn)).unwrap_err();
        assert_eq!(parse_offset(err), 20);
        let err = read_binary_range(Cursor::new(&torn), 0, 0).unwrap_err();
        assert_eq!(parse_offset(err), 20);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn binary_writer_keeps_parallel_edges_and_validates_records() {
        let mut w = BinaryWriter::new(Cursor::new(Vec::new()), 4).unwrap();
        w.write_edge(Edge::new(0, 1, 1.0)).unwrap();
        w.write_edge(Edge::new(1, 0, 2.0)).unwrap(); // parallel duplicate: allowed
        assert!(w.write_edge(Edge::new(2, 2, 1.0)).is_err()); // self-loop
        assert!(w.write_edge(Edge::new(0, 9, 1.0)).is_err()); // out of range
        assert!(w.write_edge(Edge::new(0, 3, f64::NAN)).is_err()); // non-finite
        let (cur, m) = w.finish().unwrap();
        assert_eq!(m, 2);
        // The range reader sees the multiset verbatim...
        let r = read_binary_range(Cursor::new(cur.get_ref()), 0, m).unwrap();
        assert_eq!(r.edges.len(), 2);
        // ...while the whole-graph reader collapses the duplicate to the
        // minimum weight through GraphBuilder.
        let g = read_binary_seek(Cursor::new(cur.get_ref())).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.min_edge(0).unwrap().weight(), 1.0);
    }
}

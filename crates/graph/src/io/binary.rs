//! Fast little-endian binary graph format, for caching generated workloads.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic   8 bytes  b"LLPGRAPH"
//! version u32      1
//! n       u64
//! m       u64      undirected edge count
//! m × (u: u32, v: u32, w: f64)
//! ```

use super::IoError;
use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use std::io::{Read, Write};

const MAGIC: &[u8; 8] = b"LLPGRAPH";
const VERSION: u32 = 1;

/// Writes the graph in binary form.
pub fn write_binary<W: Write>(graph: &CsrGraph, mut w: W) -> std::io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(graph.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&(graph.num_edges() as u64).to_le_bytes())?;
    for e in graph.edges() {
        w.write_all(&e.u.to_le_bytes())?;
        w.write_all(&e.v.to_le_bytes())?;
        w.write_all(&e.w.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a graph written by [`write_binary`].
pub fn read_binary<R: Read>(mut r: R) -> Result<CsrGraph, IoError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(IoError::Parse(0, "bad magic".into()));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(IoError::Parse(0, format!("unsupported version {version}")));
    }
    let n = read_u64(&mut r)? as usize;
    let m = read_u64(&mut r)? as usize;
    let mut b = GraphBuilder::with_capacity(n, m);
    for _ in 0..m {
        let u = read_u32(&mut r)?;
        let v = read_u32(&mut r)?;
        let mut wb = [0u8; 8];
        r.read_exact(&mut wb)?;
        let w = f64::from_le_bytes(wb);
        if (u as usize) >= n || (v as usize) >= n {
            return Err(IoError::Parse(0, "endpoint out of range".into()));
        }
        if w.is_nan() {
            return Err(IoError::Parse(0, "NaN weight".into()));
        }
        b.add_edge(u, v, w);
    }
    Ok(b.build())
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, IoError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, IoError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{erdos_renyi, road_network, RoadParams};

    #[test]
    fn round_trips() {
        for g in [
            erdos_renyi(100, 400, 1),
            road_network(RoadParams::usa_like(10, 10, 2)),
            CsrGraph::empty(5),
        ] {
            let mut buf = Vec::new();
            write_binary(&g, &mut buf).unwrap();
            let g2 = read_binary(buf.as_slice()).unwrap();
            assert_eq!(g, g2);
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let buf = b"NOTAGRPH\x01\x00\x00\x00".to_vec();
        assert!(read_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_truncated_input() {
        let g = erdos_renyi(20, 50, 3);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary(buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert!(read_binary(buf.as_slice()).is_err());
    }
}

//! Fast little-endian binary graph format, for caching generated workloads
//! and feeding long-running services.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic   8 bytes  b"LLPGRAPH"
//! version u32      1
//! n       u64
//! m       u64      undirected edge count
//! m × (u: u32, v: u32, w: f64)
//! ```
//!
//! ## Untrusted input
//!
//! Readers never trust the header: a corrupt or adversarial file cannot
//! force a multi-gigabyte allocation or a panic. The vertex count is
//! bounded by the `u32` id space, edge-buffer pre-allocation is capped
//! until the claimed `m` has been proven against the input's actual length
//! ([`read_binary_slice`] / [`read_binary_seek`] check `m × 16` bytes
//! against the remaining input up front; the plain [`read_binary`]
//! streaming path grows the buffer only as edges really arrive), and every
//! violation — truncation, out-of-range endpoints, self-loops, non-finite
//! weights — fails with [`IoError::ParseBytes`] naming the byte offset and
//! edge ordinal where it happened.

use super::IoError;
use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use std::io::{Read, Seek, SeekFrom, Write};

const MAGIC: &[u8; 8] = b"LLPGRAPH";
const VERSION: u32 = 1;

/// Fixed header size: magic (8) + version (4) + n (8) + m (8).
const HEADER_BYTES: u64 = 28;
/// On-disk size of one edge record: `u: u32, v: u32, w: f64`.
const EDGE_BYTES: u64 = 16;
/// Pre-allocation cap for streaming readers that cannot verify `m`
/// against an input length (16 MiB of edges); the buffer grows past it
/// only as edges actually arrive, so a lying header costs nothing.
const PREALLOC_EDGES: usize = 1 << 20;
/// Vertex ids are `u32`, so no valid file names more vertices than this.
const MAX_VERTICES: u64 = 1 << 32;

/// Writes the graph in binary form.
pub fn write_binary<W: Write>(graph: &CsrGraph, mut w: W) -> std::io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(graph.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&(graph.num_edges() as u64).to_le_bytes())?;
    for e in graph.edges() {
        w.write_all(&e.u.to_le_bytes())?;
        w.write_all(&e.v.to_le_bytes())?;
        w.write_all(&e.w.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a graph written by [`write_binary`] from a plain byte stream.
///
/// Streaming: the claimed edge count cannot be checked against an input
/// length, so pre-allocation is capped and truncation surfaces as a
/// [`IoError::ParseBytes`] naming the edge where the stream ended. Prefer
/// [`read_binary_slice`] / [`read_binary_seek`] when the input's length is
/// knowable — they reject a lying header before reading any edge.
pub fn read_binary<R: Read>(r: R) -> Result<CsrGraph, IoError> {
    read_binary_impl(r, None)
}

/// [`read_binary`] over an in-memory slice: the header's claimed `m` is
/// validated against `buf.len()` (exactly `28 + 16·m` bytes, no trailing
/// garbage) before any allocation or edge decoding.
pub fn read_binary_slice(buf: &[u8]) -> Result<CsrGraph, IoError> {
    read_binary_impl(buf, Some(buf.len() as u64))
}

/// [`read_binary`] over a seekable reader (e.g. a [`std::fs::File`]): the
/// remaining input length is measured by seeking once, then validated
/// against the header exactly like [`read_binary_slice`].
pub fn read_binary_seek<R: Read + Seek>(mut r: R) -> Result<CsrGraph, IoError> {
    let pos = r.stream_position()?;
    let end = r.seek(SeekFrom::End(0))?;
    r.seek(SeekFrom::Start(pos))?;
    read_binary_impl(r, Some(end.saturating_sub(pos)))
}

fn read_binary_impl<R: Read>(mut r: R, total_len: Option<u64>) -> Result<CsrGraph, IoError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)
        .map_err(|e| eof_at(e, 0, "magic"))?;
    if &magic != MAGIC {
        return Err(IoError::ParseBytes(0, "bad magic".into()));
    }
    let version = read_u32(&mut r, 8, "version")?;
    if version != VERSION {
        return Err(IoError::ParseBytes(
            8,
            format!("unsupported version {version}"),
        ));
    }
    let n64 = read_u64(&mut r, 12, "vertex count")?;
    if n64 > MAX_VERTICES {
        return Err(IoError::ParseBytes(
            12,
            format!("vertex count {n64} exceeds the u32 id space"),
        ));
    }
    let n = n64 as usize;
    let m64 = read_u64(&mut r, 20, "edge count")?;

    // With a known input length the header is either exactly right or the
    // file is corrupt — reject before allocating or decoding anything.
    // Without one (pure stream), cap the pre-allocation; a lying `m` then
    // dies on the first missing edge record instead of in the allocator.
    let prealloc = match total_len {
        Some(len) => {
            let payload = len.saturating_sub(HEADER_BYTES);
            if m64 > payload / EDGE_BYTES {
                return Err(IoError::ParseBytes(
                    20,
                    format!(
                        "header claims {m64} edges ({} bytes) but only {payload} \
                         payload bytes remain",
                        m64.saturating_mul(EDGE_BYTES),
                    ),
                ));
            }
            if payload != m64 * EDGE_BYTES {
                return Err(IoError::ParseBytes(
                    20,
                    format!(
                        "payload length {payload} disagrees with header \
                         (expected exactly {} bytes for {m64} edges)",
                        m64 * EDGE_BYTES,
                    ),
                ));
            }
            m64 as usize
        }
        None => (m64.min(PREALLOC_EDGES as u64)) as usize,
    };

    let mut b = GraphBuilder::with_capacity(n, prealloc);
    let mut rec = [0u8; EDGE_BYTES as usize];
    for i in 0..m64 {
        let off = HEADER_BYTES + i * EDGE_BYTES;
        r.read_exact(&mut rec)
            .map_err(|e| eof_at(e, off, &format!("edge #{i}")))?;
        let u = u32::from_le_bytes(rec[0..4].try_into().unwrap());
        let v = u32::from_le_bytes(rec[4..8].try_into().unwrap());
        let w = f64::from_le_bytes(rec[8..16].try_into().unwrap());
        if (u as u64) >= n64 || (v as u64) >= n64 {
            return Err(IoError::ParseBytes(
                off,
                format!("edge #{i}: endpoint ({u},{v}) out of range (n = {n})"),
            ));
        }
        if u == v {
            return Err(IoError::ParseBytes(
                off,
                format!("edge #{i}: self-loop at vertex {u}"),
            ));
        }
        if !w.is_finite() {
            return Err(IoError::ParseBytes(
                off + 8,
                format!("edge #{i}: non-finite weight {w}"),
            ));
        }
        b.add_edge(u, v, w);
    }
    Ok(b.build())
}

/// Maps an unexpected end-of-input to a [`IoError::ParseBytes`] naming
/// what was being read and where; other I/O failures pass through.
fn eof_at(e: std::io::Error, offset: u64, what: &str) -> IoError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        IoError::ParseBytes(offset, format!("input truncated while reading {what}"))
    } else {
        IoError::Io(e)
    }
}

fn read_u32<R: Read>(r: &mut R, offset: u64, what: &str) -> Result<u32, IoError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b).map_err(|e| eof_at(e, offset, what))?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R, offset: u64, what: &str) -> Result<u64, IoError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b).map_err(|e| eof_at(e, offset, what))?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{erdos_renyi, road_network, RoadParams};

    /// A syntactically valid file: header plus raw edge records.
    fn file(n: u64, m: u64, edges: &[(u32, u32, f64)]) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&n.to_le_bytes());
        buf.extend_from_slice(&m.to_le_bytes());
        for &(u, v, w) in edges {
            buf.extend_from_slice(&u.to_le_bytes());
            buf.extend_from_slice(&v.to_le_bytes());
            buf.extend_from_slice(&w.to_le_bytes());
        }
        buf
    }

    fn parse_offset(err: IoError) -> u64 {
        match err {
            IoError::ParseBytes(off, _) => off,
            other => panic!("expected ParseBytes, got {other:?}"),
        }
    }

    #[test]
    fn round_trips() {
        for g in [
            erdos_renyi(100, 400, 1),
            road_network(RoadParams::usa_like(10, 10, 2)),
            CsrGraph::empty(5),
        ] {
            let mut buf = Vec::new();
            write_binary(&g, &mut buf).unwrap();
            let g2 = read_binary(buf.as_slice()).unwrap();
            assert_eq!(g, g2);
            let g3 = read_binary_slice(&buf).unwrap();
            assert_eq!(g, g3);
            let g4 = read_binary_seek(std::io::Cursor::new(&buf)).unwrap();
            assert_eq!(g, g4);
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let buf = b"NOTAGRPH\x01\x00\x00\x00".to_vec();
        assert_eq!(parse_offset(read_binary(buf.as_slice()).unwrap_err()), 0);
    }

    #[test]
    fn rejects_truncated_input_with_edge_ordinal() {
        let g = erdos_renyi(20, 50, 3);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let m = g.num_edges() as u64;
        buf.truncate(buf.len() - 3);
        // Streaming: dies inside the last edge record, naming it.
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert_eq!(parse_offset(err), HEADER_BYTES + (m - 1) * EDGE_BYTES);
        let msg = read_binary(buf.as_slice()).unwrap_err().to_string();
        assert!(msg.contains(&format!("edge #{}", m - 1)), "{msg}");
        // Length-checked: rejected at the header, before any decoding.
        assert_eq!(parse_offset(read_binary_slice(&buf).unwrap_err()), 20);
        assert_eq!(
            parse_offset(read_binary_seek(std::io::Cursor::new(&buf)).unwrap_err()),
            20
        );
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert_eq!(parse_offset(read_binary(buf.as_slice()).unwrap_err()), 8);
    }

    #[test]
    fn huge_edge_count_is_an_error_not_an_allocation() {
        // m = u64::MAX with an empty payload: the streaming path must not
        // reserve m × 16 bytes; the length-checked paths reject up front.
        let buf = file(4, u64::MAX, &[]);
        let err = read_binary(buf.as_slice()).unwrap_err();
        assert_eq!(parse_offset(err), HEADER_BYTES);
        assert_eq!(parse_offset(read_binary_slice(&buf).unwrap_err()), 20);
        assert_eq!(
            parse_offset(read_binary_seek(std::io::Cursor::new(&buf)).unwrap_err()),
            20
        );
    }

    #[test]
    fn huge_vertex_count_is_rejected() {
        let buf = file(MAX_VERTICES + 1, 0, &[]);
        let err = read_binary_slice(&buf).unwrap_err();
        assert_eq!(parse_offset(err), 12);
    }

    #[test]
    fn edge_count_must_match_payload_exactly() {
        // Three edges on disk, header claims two: trailing bytes are
        // corruption, not slack.
        let edges = [(0u32, 1u32, 1.0), (1, 2, 2.0), (0, 2, 3.0)];
        let buf = file(3, 2, &edges);
        assert_eq!(parse_offset(read_binary_slice(&buf).unwrap_err()), 20);
        // Header claims four: too short.
        let buf = file(3, 4, &edges);
        assert_eq!(parse_offset(read_binary_slice(&buf).unwrap_err()), 20);
    }

    #[test]
    fn rejects_out_of_range_endpoint_at_its_offset() {
        let buf = file(3, 2, &[(0, 1, 1.0), (1, 7, 2.0)]);
        let err = read_binary_slice(&buf).unwrap_err();
        assert_eq!(parse_offset(err), HEADER_BYTES + EDGE_BYTES);
        let msg = read_binary_slice(&buf).unwrap_err().to_string();
        assert!(msg.contains("edge #1") && msg.contains("(1,7)"), "{msg}");
    }

    #[test]
    fn rejects_self_loops() {
        let buf = file(3, 1, &[(2, 2, 1.0)]);
        let msg = read_binary_slice(&buf).unwrap_err().to_string();
        assert!(msg.contains("self-loop"), "{msg}");
    }

    #[test]
    fn rejects_non_finite_weights() {
        for w in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let buf = file(3, 1, &[(0, 1, w)]);
            let err = read_binary_slice(&buf).unwrap_err();
            assert_eq!(parse_offset(err), HEADER_BYTES + 8, "weight {w}");
        }
    }
}

//! Graph I/O.
//!
//! * [`dimacs`] — the 9th DIMACS Implementation Challenge `.gr` format the
//!   paper's USA road dataset ships in. Drop the real `USA-road-d.USA.gr`
//!   next to the benchmarks to reproduce on the authentic dataset.
//! * [`metis`] — the METIS/ParMETIS adjacency format common in graph
//!   repositories.
//! * [`text`] — whitespace-separated `u v w` edge lists.
//! * [`binary`] — a fast little-endian binary format for caching generated
//!   workloads between benchmark runs.

pub mod binary;
pub mod dimacs;
pub mod metis;
pub mod text;

pub use binary::{
    faulty_reader, read_binary, read_binary_file, read_binary_range, read_binary_seek,
    read_binary_slice, write_binary, BinaryFileWriter, BinaryWriter, EdgeRange,
};
pub use dimacs::{read_dimacs, write_dimacs};
pub use metis::{read_metis, write_metis};
pub use text::{read_edge_list, write_edge_list};

/// Errors produced by graph readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A text input violates the format (line number, message).
    Parse(usize, String),
    /// A binary input violates the format (byte offset, message). Binary
    /// readers treat every violation — including a header whose claimed
    /// sizes the payload cannot back — as a parse error rather than
    /// trusting the input, so corrupt or adversarial files fail fast
    /// instead of demanding absurd allocations.
    ParseBytes(u64, String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse(line, msg) => write!(f, "parse error at line {line}: {msg}"),
            IoError::ParseBytes(off, msg) => write!(f, "parse error at byte offset {off}: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Parses a whitespace token shared by the text readers.
pub(crate) fn parse_token<T: std::str::FromStr>(
    tok: Option<&str>,
    lineno: usize,
    what: &str,
) -> Result<T, IoError> {
    let tok = tok.ok_or_else(|| IoError::Parse(lineno, format!("missing {what}")))?;
    tok.parse()
        .map_err(|_| IoError::Parse(lineno, format!("invalid {what}: '{tok}'")))
}

//! Random geometric graphs.
//!
//! Vertices are points in the unit square; vertices within `radius` are
//! connected with the Euclidean distance as weight. Geometric graphs are a
//! common MST stress test (weights correlate with structure, unlike uniform
//! random weights), used here for ablations and property tests.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use llp_runtime::rng::SmallRng;

/// Generates a random geometric graph with `n` points and connection
/// `radius`. Uses a uniform grid of cells of side `radius` so generation is
/// O(n + m) rather than O(n²).
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> CsrGraph {
    assert!(n < u32::MAX as usize, "n too large for VertexId");
    assert!(radius > 0.0 && radius <= 1.0, "radius must be in (0, 1]");
    let mut rng = SmallRng::seed_from_u64(seed);
    let points: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();

    let cells_per_side = ((1.0 / radius).floor() as usize).max(1);
    let cell_of = |x: f64, y: f64| -> (usize, usize) {
        let cx = ((x * cells_per_side as f64) as usize).min(cells_per_side - 1);
        let cy = ((y * cells_per_side as f64) as usize).min(cells_per_side - 1);
        (cx, cy)
    };
    let mut grid: Vec<Vec<u32>> = vec![Vec::new(); cells_per_side * cells_per_side];
    for (i, &(x, y)) in points.iter().enumerate() {
        let (cx, cy) = cell_of(x, y);
        grid[cy * cells_per_side + cx].push(i as u32);
    }

    let mut builder = GraphBuilder::new(n);
    let r2 = radius * radius;
    for (i, &(x, y)) in points.iter().enumerate() {
        let (cx, cy) = cell_of(x, y);
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let nx = cx as i64 + dx;
                let ny = cy as i64 + dy;
                if nx < 0 || ny < 0 || nx >= cells_per_side as i64 || ny >= cells_per_side as i64
                {
                    continue;
                }
                for &j in &grid[ny as usize * cells_per_side + nx as usize] {
                    if (j as usize) <= i {
                        continue; // emit each pair once
                    }
                    let (px, py) = points[j as usize];
                    let d2 = (x - px) * (x - px) + (y - py) * (y - py);
                    if d2 <= r2 {
                        builder.add_edge(i as u32, j, d2.sqrt());
                    }
                }
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_respect_radius() {
        let g = random_geometric(500, 0.1, 3);
        assert!(g.edges().all(|e| e.w <= 0.1 + 1e-12));
        g.validate().unwrap();
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            random_geometric(200, 0.15, 9),
            random_geometric(200, 0.15, 9)
        );
    }

    #[test]
    fn matches_brute_force_on_small_input() {
        let n = 60;
        let radius = 0.25;
        let seed = 17;
        let g = random_geometric(n, radius, seed);
        // Recompute points with the same RNG stream to cross-check counts.
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();
        let mut expected = 0;
        for i in 0..n {
            for j in i + 1..n {
                let d2 = (pts[i].0 - pts[j].0).powi(2) + (pts[i].1 - pts[j].1).powi(2);
                if d2 <= radius * radius {
                    expected += 1;
                }
            }
        }
        assert_eq!(g.num_edges(), expected);
    }

    #[test]
    fn empty_input() {
        assert_eq!(random_geometric(0, 0.5, 0).num_vertices(), 0);
    }
}

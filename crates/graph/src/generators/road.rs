//! Road-network generator (USA-road morphology).
//!
//! The paper's road dataset (`USA-road-d.USA`, DIMACS) is a planar-ish
//! network with ~24M vertices, average degree ≈ 2.4, huge diameter and
//! locally-correlated travel-time weights. This generator reproduces those
//! properties on a 2D grid:
//!
//! * vertices form a `rows × cols` lattice;
//! * each horizontal/vertical neighbour pair is connected unless the edge is
//!   "perforated" away (removing a fraction of edges lowers the average
//!   degree from 4 toward the road-network range and creates irregular
//!   block shapes, like a city grid with missing streets);
//! * a small fraction of diagonal shortcuts models highways;
//! * weights are Euclidean-ish lengths scaled by a per-edge random factor,
//!   as travel times are in the DIMACS `-d` variants.
//!
//! The generated graph is guaranteed **connected**: perforation never
//! removes edges of a designated spanning "street skeleton" (a serpentine
//! path covering the grid), so MST (not just MSF) algorithms apply — the
//! paper's LLP-Prim assumes a connected graph.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use llp_runtime::rng::SmallRng;

/// Parameters of the road-network generator.
#[derive(Clone, Copy, Debug)]
pub struct RoadParams {
    /// Grid rows.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// Fraction of non-skeleton grid edges removed (0.0..1.0).
    pub perforation: f64,
    /// Fraction of grid cells that get a diagonal shortcut.
    pub diagonal_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl RoadParams {
    /// Defaults matching the USA-road morphology (avg degree ≈ 2.5–3).
    pub fn usa_like(rows: usize, cols: usize, seed: u64) -> Self {
        RoadParams {
            rows,
            cols,
            perforation: 0.25,
            diagonal_fraction: 0.03,
            seed,
        }
    }

    /// Square grid with `n ≈ side²` vertices.
    pub fn usa_like_n(n: usize, seed: u64) -> Self {
        let side = (n as f64).sqrt().ceil() as usize;
        Self::usa_like(side.max(1), side.max(1), seed)
    }
}

/// Generates a connected road-style network.
pub fn road_network(params: RoadParams) -> CsrGraph {
    let RoadParams {
        rows,
        cols,
        perforation,
        diagonal_fraction,
        seed,
    } = params;
    assert!(rows >= 1 && cols >= 1, "grid must be non-empty");
    assert!(
        (0.0..1.0).contains(&perforation),
        "perforation must be in [0,1)"
    );
    let n = rows * cols;
    assert!(n < u32::MAX as usize, "grid too large for VertexId");
    let mut rng = SmallRng::seed_from_u64(seed);
    let id = |r: usize, c: usize| (r * cols + c) as u32;

    // Serpentine skeleton: row r connects left-to-right; adjacent rows are
    // joined at alternating ends. Every vertex lies on the skeleton, so the
    // graph stays connected whatever perforation removes.
    let on_skeleton = |r: usize, c: usize, dr: usize, dc: usize| -> bool {
        if dr == 0 && dc == 1 {
            true // all horizontal edges are skeleton (row paths)
        } else if dr == 1 && dc == 0 {
            // vertical joins at column end alternating by row parity
            (r.is_multiple_of(2) && c == cols - 1) || (r % 2 == 1 && c == 0)
        } else {
            false
        }
    };

    // Weight model: base length ~ U(0.5, 1.5) per unit step, scaled so
    // diagonals are sqrt(2) longer on average. Mimics travel times.
    let mut builder = GraphBuilder::with_capacity(n, 2 * n + n / 16);
    let edge_weight = |rng: &mut SmallRng, diagonal: bool| -> f64 {
        let base = 0.5 + rng.gen::<f64>();
        if diagonal {
            base * std::f64::consts::SQRT_2
        } else {
            base
        }
    };

    for r in 0..rows {
        for c in 0..cols {
            // Right neighbour.
            if c + 1 < cols {
                let keep = on_skeleton(r, c, 0, 1) || rng.gen::<f64>() >= perforation;
                let w = edge_weight(&mut rng, false);
                if keep {
                    builder.add_edge(id(r, c), id(r, c + 1), w);
                }
            }
            // Down neighbour.
            if r + 1 < rows {
                let keep = on_skeleton(r, c, 1, 0) || rng.gen::<f64>() >= perforation;
                let w = edge_weight(&mut rng, false);
                if keep {
                    builder.add_edge(id(r, c), id(r + 1, c), w);
                }
            }
            // Occasional diagonal shortcut.
            if r + 1 < rows && c + 1 < cols && rng.gen::<f64>() < diagonal_fraction {
                let w = edge_weight(&mut rng, true);
                builder.add_edge(id(r, c), id(r + 1, c + 1), w);
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::connectivity::connected_components;

    #[test]
    fn grid_size_and_validity() {
        let g = road_network(RoadParams::usa_like(20, 30, 1));
        assert_eq!(g.num_vertices(), 600);
        g.validate().unwrap();
    }

    #[test]
    fn is_connected() {
        for seed in 0..5 {
            let g = road_network(RoadParams::usa_like(25, 25, seed));
            let cc = connected_components(&g);
            assert_eq!(cc.num_components, 1, "seed {seed}");
        }
    }

    #[test]
    fn average_degree_in_road_range() {
        let g = road_network(RoadParams::usa_like(100, 100, 2));
        let avg = g.average_degree();
        assert!(
            (2.0..=3.6).contains(&avg),
            "road networks are sparse: avg degree {avg}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = road_network(RoadParams::usa_like(10, 10, 3));
        let b = road_network(RoadParams::usa_like(10, 10, 3));
        assert_eq!(a, b);
    }

    #[test]
    fn usa_like_n_hits_target_size() {
        let g = road_network(RoadParams::usa_like_n(1000, 0));
        let n = g.num_vertices();
        assert!((1000..1200).contains(&n), "n = {n}");
    }

    #[test]
    fn single_cell_grid() {
        let g = road_network(RoadParams::usa_like(1, 1, 0));
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn one_row_is_a_path() {
        let g = road_network(RoadParams::usa_like(1, 50, 0));
        assert_eq!(g.num_edges(), 49);
        assert_eq!(connected_components(&g).num_components, 1);
    }
}

//! Streaming counterparts of the in-RAM generators.
//!
//! [`rmat_stream`] and [`erdos_renyi_stream`] run the exact sampling loops
//! of [`rmat()`](crate::generators::rmat()) and
//! [`erdos_renyi()`](crate::generators::erdos_renyi()) but hand edges to a
//! sink in bounded chunks instead of materializing the full `Vec<Edge>`,
//! so scale-24+ workloads can be written straight to disk (e.g. through
//! [`crate::io::BinaryWriter`]) without the generator itself blowing RAM.
//!
//! The streams draw from the same seeded RNG sequence as their in-RAM
//! twins, so for any seed the emitted edge multiset is identical to what
//! the in-RAM generator feeds its builder — a file streamed out and read
//! back through the sanitising whole-graph readers equals the in-RAM
//! graph exactly. Self-loops are skipped at the source; parallel edges
//! are emitted as sampled (the format stores a multiset).

use super::rmat::RmatParams;
use crate::edge::Edge;
use llp_runtime::rng::SmallRng;

/// Default chunk size for the streaming generators (~16 MiB of `Edge`).
pub const DEFAULT_CHUNK_EDGES: usize = 1 << 20;

/// Streams an RMAT edge sample in chunks of at most `chunk_edges` edges.
/// Returns the number of edges emitted (self-loops are discarded during
/// sampling, so this is slightly below `edge_factor · 2^scale`).
pub fn rmat_stream<F>(
    params: RmatParams,
    chunk_edges: usize,
    mut sink: F,
) -> std::io::Result<u64>
where
    F: FnMut(&[Edge]) -> std::io::Result<()>,
{
    assert!(params.scale <= 31, "scale > 31 would overflow VertexId");
    assert!(chunk_edges > 0, "chunk_edges must be positive");
    let n: u64 = 1u64 << params.scale;
    let m = params.edge_factor as u64 * n;
    let mut rng = SmallRng::seed_from_u64(params.seed);

    let abc = params.a + params.b + params.c;
    assert!(
        params.a > 0.0 && params.b > 0.0 && params.c > 0.0 && abc < 1.0,
        "invalid quadrant probabilities"
    );

    let mut chunk: Vec<Edge> = Vec::with_capacity(chunk_edges.min(1 << 24));
    let mut emitted = 0u64;
    for _ in 0..m {
        let mut u: u64 = 0;
        let mut v: u64 = 0;
        for _level in 0..params.scale {
            // Per-level noisy probabilities (Graph500 reference style),
            // byte-for-byte the loop in `rmat()`.
            let jitter = |p: f64, rng: &mut SmallRng| {
                p * (1.0 - params.noise / 2.0 + params.noise * rng.gen::<f64>())
            };
            let na = jitter(params.a, &mut rng);
            let nb = jitter(params.b, &mut rng);
            let nc = jitter(params.c, &mut rng);
            let nd = jitter(1.0 - abc, &mut rng);
            let total = na + nb + nc + nd;
            let r = rng.gen::<f64>() * total;
            let (bit_u, bit_v) = if r < na {
                (0, 0)
            } else if r < na + nb {
                (0, 1)
            } else if r < na + nb + nc {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | bit_u;
            v = (v << 1) | bit_v;
        }
        if u == v {
            continue; // self-loop; Graph500 also discards these downstream
        }
        let w = rng.gen::<f64>();
        chunk.push(Edge::new(u as u32, v as u32, w));
        if chunk.len() >= chunk_edges {
            sink(&chunk)?;
            emitted += chunk.len() as u64;
            chunk.clear();
        }
    }
    if !chunk.is_empty() {
        sink(&chunk)?;
        emitted += chunk.len() as u64;
    }
    Ok(emitted)
}

/// Streams a G(n, m) edge sample in chunks of at most `chunk_edges`
/// edges. Returns the number of edges emitted (pairs that land on a
/// self-loop are discarded, so this can be slightly below `m`).
pub fn erdos_renyi_stream<F>(
    n: usize,
    m: u64,
    seed: u64,
    chunk_edges: usize,
    mut sink: F,
) -> std::io::Result<u64>
where
    F: FnMut(&[Edge]) -> std::io::Result<()>,
{
    assert!(n < u32::MAX as usize, "n too large for VertexId");
    assert!(chunk_edges > 0, "chunk_edges must be positive");
    let mut rng = SmallRng::seed_from_u64(seed);
    if n < 2 {
        return Ok(0);
    }
    let mut chunk: Vec<Edge> = Vec::with_capacity(chunk_edges.min(1 << 24));
    let mut emitted = 0u64;
    for _ in 0..m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v {
            chunk.push(Edge::new(u, v, rng.gen::<f64>()));
            if chunk.len() >= chunk_edges {
                sink(&chunk)?;
                emitted += chunk.len() as u64;
                chunk.clear();
            }
        }
    }
    if !chunk.is_empty() {
        sink(&chunk)?;
        emitted += chunk.len() as u64;
    }
    Ok(emitted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators::{erdos_renyi, rmat};

    fn collect<G>(gen: G) -> Vec<Edge>
    where
        G: FnOnce(&mut dyn FnMut(&[Edge]) -> std::io::Result<()>) -> std::io::Result<u64>,
    {
        let mut all = Vec::new();
        let n = gen(&mut |chunk: &[Edge]| {
            all.extend_from_slice(chunk);
            Ok(())
        })
        .unwrap();
        assert_eq!(n as usize, all.len());
        all
    }

    #[test]
    fn rmat_stream_matches_in_ram_generator() {
        let params = RmatParams::graph500(10, 8, 42);
        let edges = collect(|sink| rmat_stream(params, 1 << 10, sink));
        let mut b = GraphBuilder::with_capacity(1 << 10, edges.len());
        for e in &edges {
            b.add_edge(e.u, e.v, e.w);
        }
        assert_eq!(b.build(), rmat(params));
    }

    #[test]
    fn erdos_renyi_stream_matches_in_ram_generator() {
        let edges = collect(|sink| erdos_renyi_stream(500, 2000, 7, 333, sink));
        let mut b = GraphBuilder::with_capacity(500, edges.len());
        for e in &edges {
            b.add_edge(e.u, e.v, e.w);
        }
        assert_eq!(b.build(), erdos_renyi(500, 2000, 7));
    }

    #[test]
    fn chunk_size_does_not_change_the_stream() {
        let params = RmatParams::graph500(8, 8, 7);
        let tiny = collect(|sink| rmat_stream(params, 1, sink));
        let huge = collect(|sink| rmat_stream(params, 1 << 20, sink));
        assert_eq!(tiny.len(), huge.len());
        for (a, b) in tiny.iter().zip(&huge) {
            assert_eq!((a.u, a.v, a.w), (b.u, b.v, b.w));
        }
    }

    #[test]
    fn chunks_stay_bounded() {
        let cap = 64;
        rmat_stream(RmatParams::graph500(8, 8, 1), cap, |chunk| {
            assert!(!chunk.is_empty() && chunk.len() <= cap);
            Ok(())
        })
        .unwrap();
    }
}

//! Barabási–Albert preferential attachment.
//!
//! A second scale-free family besides RMAT, with a different generative
//! mechanism (growth + preferential attachment instead of recursive matrix
//! sampling). BA graphs are connected by construction, so — unlike RMAT —
//! they exercise the Prim family on scale-free topology without extracting
//! a giant component. Used by the extended agreement tests and ablations.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use llp_runtime::rng::SmallRng;

/// Generates a Barabási–Albert graph: starts from a small clique and
/// attaches each new vertex to `m` existing vertices chosen proportionally
/// to degree. Weights are uniform in `(0, 1)`.
///
/// # Panics
/// Panics when `n < m + 1` or `m == 0`.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(m >= 1, "attachment count must be positive");
    assert!(n > m, "need at least m + 1 vertices");
    assert!(n < u32::MAX as usize, "n too large for VertexId");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, n * m);

    // Degree-proportional sampling via the repeated-endpoints trick: every
    // edge contributes both endpoints to this list, so uniform draws from
    // it are degree-weighted.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m);

    // Seed clique on m + 1 vertices.
    for i in 0..=m as u32 {
        for j in 0..i {
            builder.add_edge(i, j, rng.gen::<f64>());
            endpoints.push(i);
            endpoints.push(j);
        }
    }

    for v in (m + 1)..n {
        let v = v as u32;
        let mut chosen: Vec<u32> = Vec::with_capacity(m);
        // Rejection-sample m distinct degree-weighted targets.
        while chosen.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for t in chosen {
            builder.add_edge(v, t, rng.gen::<f64>());
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::connectivity::is_connected;

    #[test]
    fn has_expected_shape() {
        let g = barabasi_albert(500, 3, 1);
        assert_eq!(g.num_vertices(), 500);
        // clique edges + m per later vertex
        assert_eq!(g.num_edges(), 6 + (500 - 4) * 3);
        g.validate().unwrap();
    }

    #[test]
    fn is_always_connected() {
        for seed in 0..5 {
            assert!(is_connected(&barabasi_albert(200, 2, seed)), "seed {seed}");
        }
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = barabasi_albert(2000, 2, 3);
        let max = (0..2000u32).map(|v| g.degree(v)).max().unwrap() as f64;
        let avg = g.average_degree();
        assert!(max > 5.0 * avg, "max {max} vs avg {avg}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(barabasi_albert(100, 2, 5), barabasi_albert(100, 2, 5));
    }

    #[test]
    #[should_panic(expected = "at least m + 1")]
    fn too_few_vertices_rejected() {
        let _ = barabasi_albert(2, 2, 0);
    }
}

//! Erdős–Rényi G(n, m) random graphs.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use llp_runtime::rng::SmallRng;

/// Generates a G(n, m)-style random graph: `m` endpoint pairs sampled
/// uniformly (duplicates and self-loops sanitised away, so the final edge
/// count can be slightly below `m`). Weights uniform in `(0, 1)`.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(n < u32::MAX as usize, "n too large for VertexId");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, m);
    if n < 2 {
        return builder.build();
    }
    for _ in 0..m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v {
            builder.add_edge(u, v, rng.gen::<f64>());
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_is_approximately_m() {
        let g = erdos_renyi(1000, 5000, 11);
        assert_eq!(g.num_vertices(), 1000);
        assert!(g.num_edges() > 4500 && g.num_edges() <= 5000);
        g.validate().unwrap();
    }

    #[test]
    fn deterministic() {
        assert_eq!(erdos_renyi(100, 300, 5), erdos_renyi(100, 300, 5));
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(erdos_renyi(0, 10, 0).num_vertices(), 0);
        assert_eq!(erdos_renyi(1, 10, 0).num_edges(), 0);
    }
}

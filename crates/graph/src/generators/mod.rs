//! Synthetic graph generators.
//!
//! The paper evaluates on two dataset morphologies (Table I): a real road
//! network (`USA-road-d.USA`, type *road*) and a Graph500 Kronecker graph
//! (`graph500-s25-ef16`, type *scalefree*). We do not have the 24M-vertex
//! datasets here, so [`road_network`] and [`rmat()`](fn@rmat) generate scale-parameterised
//! graphs of the same morphology; [`erdos_renyi()`](fn@erdos_renyi), [`random_geometric`] and
//! [`classic`] provide additional shapes for tests and ablations.
//!
//! All generators are seeded and deterministic.

pub mod barabasi_albert;
pub mod classic;
pub mod erdos_renyi;
pub mod geometric;
pub mod rmat;
pub mod road;
pub mod stream;

pub use barabasi_albert::barabasi_albert;
pub use classic::{caterpillar, complete, cycle, ladder, path, star};
pub use erdos_renyi::erdos_renyi;
pub use geometric::random_geometric;
pub use rmat::{rmat, RmatParams};
pub use road::{road_network, RoadParams};
pub use stream::{erdos_renyi_stream, rmat_stream, DEFAULT_CHUNK_EDGES};

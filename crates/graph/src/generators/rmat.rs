//! RMAT / Kronecker generator (the Graph500 graph family).
//!
//! Recursive-matrix sampling with the Graph500 reference probabilities
//! `(A, B, C, D) = (0.57, 0.19, 0.19, 0.05)`: each edge picks one of four
//! quadrants per bit of the vertex id, producing the heavy-tailed degree
//! distribution of the paper's `graph500-s25-ef16` dataset ("scalefree" in
//! Table I). `edge_factor` is the Graph500 `ef` (edges per vertex), 16 in
//! the paper.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use llp_runtime::rng::SmallRng;

/// Parameters of the RMAT generator.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// log2 of the vertex count (Graph500 "scale"). Paper: 25.
    pub scale: u32,
    /// Edges per vertex (Graph500 "edge factor"). Paper: 16.
    pub edge_factor: usize,
    /// Quadrant probabilities; must be positive and sum to ~1.
    pub a: f64,
    /// Upper-right quadrant probability.
    pub b: f64,
    /// Lower-left quadrant probability.
    pub c: f64,
    /// Per-level probability noise, as in the Graph500 reference code
    /// (keeps the graph from being exactly self-similar).
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl RmatParams {
    /// Graph500 reference parameters at the given scale and edge factor.
    pub fn graph500(scale: u32, edge_factor: usize, seed: u64) -> Self {
        RmatParams {
            scale,
            edge_factor,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            noise: 0.1,
            seed,
        }
    }
}

/// Generates an RMAT graph with `2^scale` vertices and roughly
/// `edge_factor * 2^scale` undirected edges (self-loops and duplicates are
/// sanitised away, so the final count is slightly lower — as in Graph500,
/// which also generates with repetition).
///
/// Weights are uniform in `(0, 1)`, mirroring GBBS's weighted-graph
/// benchmarks which attach uniform random weights to Graph500 inputs.
pub fn rmat(params: RmatParams) -> CsrGraph {
    assert!(params.scale <= 31, "scale > 31 would overflow VertexId");
    let n: u64 = 1u64 << params.scale;
    let m = params.edge_factor * n as usize;
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut builder = GraphBuilder::with_capacity(n as usize, m);

    let ab = params.a + params.b;
    let abc = params.a + params.b + params.c;
    assert!(
        params.a > 0.0 && params.b > 0.0 && params.c > 0.0 && abc < 1.0,
        "invalid quadrant probabilities"
    );

    for _ in 0..m {
        let mut u: u64 = 0;
        let mut v: u64 = 0;
        for _level in 0..params.scale {
            // Per-level noisy probabilities (Graph500 reference style).
            let jitter = |p: f64, rng: &mut SmallRng| {
                p * (1.0 - params.noise / 2.0 + params.noise * rng.gen::<f64>())
            };
            let na = jitter(params.a, &mut rng);
            let nb = jitter(params.b, &mut rng);
            let nc = jitter(params.c, &mut rng);
            let nd = jitter(1.0 - abc, &mut rng);
            let total = na + nb + nc + nd;
            let r = rng.gen::<f64>() * total;
            let (bit_u, bit_v) = if r < na {
                (0, 0)
            } else if r < na + nb {
                (0, 1)
            } else if r < na + nb + nc {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | bit_u;
            v = (v << 1) | bit_v;
        }
        if u == v {
            continue; // self-loop; Graph500 also discards these downstream
        }
        let w = rng.gen::<f64>();
        builder.add_edge(u as u32, v as u32, w);
    }
    let _ = ab; // quadrant sums kept for readability
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_expected_size() {
        let g = rmat(RmatParams::graph500(10, 8, 42));
        assert_eq!(g.num_vertices(), 1024);
        // duplicates/self-loops removed, but most edges survive
        assert!(g.num_edges() > 4 * 1024, "m = {}", g.num_edges());
        assert!(g.num_edges() <= 8 * 1024);
        g.validate().unwrap();
    }

    #[test]
    fn deterministic_per_seed() {
        let a = rmat(RmatParams::graph500(8, 8, 7));
        let b = rmat(RmatParams::graph500(8, 8, 7));
        assert_eq!(a, b);
        let c = rmat(RmatParams::graph500(8, 8, 8));
        assert_ne!(a, c);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // Scale-free shape: the max degree should far exceed the average.
        let g = rmat(RmatParams::graph500(12, 16, 1));
        let avg = g.average_degree();
        let max = (0..g.num_vertices() as u32)
            .map(|v| g.degree(v))
            .max()
            .unwrap() as f64;
        assert!(
            max > 8.0 * avg,
            "expected heavy tail: max {max}, avg {avg}"
        );
    }

    #[test]
    fn weights_in_unit_interval() {
        let g = rmat(RmatParams::graph500(8, 4, 3));
        assert!(g.edges().all(|e| e.w > 0.0 && e.w < 1.0));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn oversized_scale_rejected() {
        let _ = rmat(RmatParams::graph500(32, 1, 0));
    }
}

//! Classic fixed topologies with seeded random weights.
//!
//! Deterministic shapes with known MSTs (paths, stars) or known stress
//! behaviour (complete graphs maximise Prim heap traffic; caterpillars and
//! ladders exercise Boruvka round structure). Used by unit, property and
//! ablation tests.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use llp_runtime::rng::SmallRng;

fn weights(seed: u64) -> impl FnMut() -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    move || rng.gen::<f64>() + 0.001
}

/// Path 0 — 1 — … — (n-1). Its MST is the path itself.
pub fn path(n: usize, seed: u64) -> CsrGraph {
    let mut w = weights(seed);
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge((i - 1) as u32, i as u32, w());
    }
    b.build()
}

/// Cycle on `n >= 3` vertices. The MST drops exactly the heaviest edge.
pub fn cycle(n: usize, seed: u64) -> CsrGraph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut w = weights(seed);
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(i as u32, ((i + 1) % n) as u32, w());
    }
    b.build()
}

/// Star centred at vertex 0. Its MST is the star itself.
pub fn star(n: usize, seed: u64) -> CsrGraph {
    let mut w = weights(seed);
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(0, i as u32, w());
    }
    b.build()
}

/// Complete graph K_n (dense stress case; maximises heap traffic in Prim).
pub fn complete(n: usize, seed: u64) -> CsrGraph {
    let mut w = weights(seed);
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in i + 1..n {
            b.add_edge(i as u32, j as u32, w());
        }
    }
    b.build()
}

/// Ladder: two parallel paths with rungs (2×`len` vertices).
pub fn ladder(len: usize, seed: u64) -> CsrGraph {
    let mut w = weights(seed);
    let n = 2 * len;
    let mut b = GraphBuilder::new(n);
    for i in 0..len {
        if i + 1 < len {
            b.add_edge(i as u32, (i + 1) as u32, w());
            b.add_edge((len + i) as u32, (len + i + 1) as u32, w());
        }
        b.add_edge(i as u32, (len + i) as u32, w());
    }
    b.build()
}

/// Caterpillar: a spine path with `legs` pendant vertices per spine node.
pub fn caterpillar(spine: usize, legs: usize, seed: u64) -> CsrGraph {
    let mut w = weights(seed);
    let n = spine * (1 + legs);
    let mut b = GraphBuilder::new(n);
    for s in 0..spine {
        if s + 1 < spine {
            b.add_edge(s as u32, (s + 1) as u32, w());
        }
        for l in 0..legs {
            let leg = spine + s * legs + l;
            b.add_edge(s as u32, leg as u32, w());
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_shape() {
        let g = path(10, 0);
        assert_eq!(g.num_edges(), 9);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(5), 2);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(8, 0);
        assert_eq!(g.num_edges(), 8);
        assert!((0..8).all(|v| g.degree(v) == 2));
    }

    #[test]
    fn star_shape() {
        let g = star(6, 0);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.degree(0), 5);
        assert!((1..6).all(|v| g.degree(v) == 1));
    }

    #[test]
    fn complete_shape() {
        let g = complete(7, 0);
        assert_eq!(g.num_edges(), 21);
        assert!((0..7).all(|v| g.degree(v) == 6));
    }

    #[test]
    fn ladder_shape() {
        let g = ladder(5, 0);
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 4 + 4 + 5);
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(4, 3, 0);
        assert_eq!(g.num_vertices(), 16);
        assert_eq!(g.num_edges(), 3 + 12);
    }

    #[test]
    fn all_validate() {
        for g in [
            path(5, 1),
            cycle(5, 1),
            star(5, 1),
            complete(5, 1),
            ladder(3, 1),
            caterpillar(3, 2, 1),
        ] {
            g.validate().unwrap();
        }
    }
}

//! Load generator: sweeps batch sizes against a running server and writes
//! the `llp-mst-serve-report/v1` JSON (`BENCH_serve.json`).
//!
//! Per sweep point the generator fires a fixed number of random queries
//! (a 25/50/25 mix of `component` / `path_max` / `connected_under`) in
//! frames of the point's batch size over one connection, measuring each
//! frame's round-trip. Reported per point: queries/sec and p50/p99
//! *per-query* latency (frame round-trip ÷ batch). With a verifier the
//! generator replays every response against a locally built
//! [`MsfService`] — the same certified index the server answers from — so
//! a passing run re-checks the server's classifications end to end.

use crate::protocol::{Query, Response, MAX_BATCH};
use crate::retry::{RetryPolicy, RetryingClient};
use crate::service::MsfService;
use llp_runtime::rng::SmallRng;
use std::io::{BufWriter, Write};
use std::time::Instant;

/// One batch-size measurement.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Queries per frame.
    pub batch: usize,
    /// Total queries fired at this point.
    pub queries: u64,
    /// Wall-clock for the whole point, seconds.
    pub elapsed_s: f64,
    /// Queries per second.
    pub qps: f64,
    /// Median per-query latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile per-query latency, microseconds.
    pub p99_us: f64,
    /// Transparent reconnect-and-resend retries this point needed
    /// (non-zero under load shedding or fault injection).
    pub retries: u64,
}

/// Load-generator knobs.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Batch sizes to sweep.
    pub batches: Vec<usize>,
    /// Queries per sweep point.
    pub queries_per_point: u64,
    /// RNG seed for the query stream.
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            batches: vec![1, 16, 256, 4096],
            queries_per_point: 100_000,
            seed: 42,
        }
    }
}

/// Draws a random query over `n` vertices: 1/4 `component`, 1/2
/// `path_max`, 1/4 `connected_under` (λ uniform in `[0, 1)`, the
/// generators' weight range).
fn random_query(rng: &mut SmallRng, n: u32) -> Query {
    let u = rng.gen_range(0..n);
    let v = rng.gen_range(0..n);
    match rng.gen_range(0..4u32) {
        0 => Query::Component(u),
        1 | 2 => Query::PathMax(u, v),
        _ => Query::ConnectedUnder(u, v, rng.gen::<f64>()),
    }
}

/// Runs the sweep against `addr`. `verify` replays every response against
/// a local service and fails on the first divergence.
///
/// The sweep runs through a [`RetryingClient`]: a shed connection (the
/// overloaded frame), a reaped deadline, or an injected socket fault
/// costs a reconnect-and-resend (counted per point in
/// [`SweepPoint::retries`]) instead of failing the sweep. Every query is
/// an idempotent read, so resending is always safe; with `verify` on, a
/// retried frame's responses are still checked against the local
/// certified index — retries never relax correctness.
pub fn run_sweep(
    addr: &str,
    n: u32,
    cfg: &LoadgenConfig,
    verify: Option<&MsfService>,
) -> Result<Vec<SweepPoint>, String> {
    assert!(n > 0, "cannot generate queries over an empty graph");
    let mut client = RetryingClient::new(addr, RetryPolicy::default(), cfg.seed ^ 0xB0FF);

    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut points = Vec::new();
    for &batch in &cfg.batches {
        let batch = batch.clamp(1, MAX_BATCH);
        let frames = cfg.queries_per_point.div_ceil(batch as u64).max(1);
        let mut frame_us: Vec<f64> = Vec::with_capacity(frames as usize);
        let mut fired = 0u64;
        let retries_before = client.retries;
        let t0 = Instant::now();
        for _ in 0..frames {
            let queries: Vec<Query> = (0..batch).map(|_| random_query(&mut rng, n)).collect();
            let t = Instant::now();
            let responses = client.exchange(&queries)?;
            frame_us.push(t.elapsed().as_secs_f64() * 1e6);
            fired += batch as u64;
            if let Some(local) = verify {
                check_against_local(local, &queries, &responses)?;
            }
        }
        let elapsed_s = t0.elapsed().as_secs_f64();
        frame_us.sort_by(|a, b| a.total_cmp(b));
        let pct = |p: f64| -> f64 {
            let idx = ((frame_us.len() as f64 - 1.0) * p).round() as usize;
            frame_us[idx] / batch as f64
        };
        points.push(SweepPoint {
            batch,
            queries: fired,
            elapsed_s,
            qps: fired as f64 / elapsed_s,
            p50_us: pct(0.50),
            p99_us: pct(0.99),
            retries: client.retries - retries_before,
        });
    }
    Ok(points)
}

/// Replays `queries` against the local certified service and compares.
fn check_against_local(
    local: &MsfService,
    queries: &[Query],
    responses: &[Response],
) -> Result<(), String> {
    for (q, got) in queries.iter().zip(responses) {
        let want = local.answer(q);
        if *got != want {
            return Err(format!(
                "server diverges from the local certified index on {q:?}: \
                 got {got:?}, want {want:?}"
            ));
        }
    }
    Ok(())
}

/// Everything the serve report records.
pub struct ReportInputs<'a> {
    /// Served graph: vertices.
    pub n: usize,
    /// Served graph: edges.
    pub m: usize,
    /// Trees in the certified forest.
    pub num_trees: usize,
    /// Build timings (MSF, index, certify), milliseconds.
    pub build: crate::service::BuildTimings,
    /// Pool threads used for the build.
    pub threads: usize,
    /// Server connection workers.
    pub workers: usize,
    /// Whether every response was verified against a local index.
    pub verified: bool,
    /// The sweep measurements.
    pub sweep: &'a [SweepPoint],
}

/// Writes the `llp-mst-serve-report/v1` JSON (creating parent
/// directories).
///
/// ```json
/// {
///   "schema": "llp-mst-serve-report/v1",
///   "graph": {"n": 65536, "m": 1048576, "num_trees": 3},
///   "build_ms": {"msf": 1.0, "index": 0.5, "certify": 0.8},
///   "threads": 4, "workers": 2, "verified": true,
///   "sweep": [
///     {"batch": 1, "queries": 100000, "elapsed_s": 1.0,
///      "qps": 100000.0, "p50_us": 9.0, "p99_us": 31.0, "retries": 0}
///   ]
/// }
/// ```
pub fn write_report(path: &std::path::Path, inputs: &ReportInputs<'_>) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{{\"schema\":\"llp-mst-serve-report/v1\",")?;
    writeln!(
        f,
        "\"graph\":{{\"n\":{},\"m\":{},\"num_trees\":{}}},",
        inputs.n, inputs.m, inputs.num_trees
    )?;
    writeln!(
        f,
        "\"build_ms\":{{\"msf\":{:.3},\"index\":{:.3},\"certify\":{:.3}}},",
        inputs.build.msf_ms, inputs.build.index_ms, inputs.build.certify_ms
    )?;
    writeln!(
        f,
        "\"threads\":{},\"workers\":{},\"verified\":{},",
        inputs.threads, inputs.workers, inputs.verified
    )?;
    writeln!(f, "\"sweep\":[")?;
    for (i, p) in inputs.sweep.iter().enumerate() {
        let sep = if i + 1 < inputs.sweep.len() { "," } else { "" };
        writeln!(
            f,
            "{{\"batch\":{},\"queries\":{},\"elapsed_s\":{:.6},\"qps\":{:.1},\
             \"p50_us\":{:.2},\"p99_us\":{:.2},\"retries\":{}}}{}",
            p.batch, p.queries, p.elapsed_s, p.qps, p.p50_us, p.p99_us, p.retries, sep
        )?;
    }
    writeln!(f, "]}}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_is_parseable_shape() {
        let sweep = vec![SweepPoint {
            batch: 16,
            queries: 1000,
            elapsed_s: 0.5,
            qps: 2000.0,
            p50_us: 8.0,
            p99_us: 20.0,
            retries: 3,
        }];
        let dir = std::env::temp_dir().join("llp-serve-report-test");
        let path = dir.join("BENCH_serve.json");
        write_report(
            &path,
            &ReportInputs {
                n: 10,
                m: 20,
                num_trees: 1,
                build: Default::default(),
                threads: 2,
                workers: 2,
                verified: true,
                sweep: &sweep,
            },
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\"schema\":\"llp-mst-serve-report/v1\""));
        assert!(text.contains("\"qps\":2000.0"));
        assert!(text.contains("\"retries\":3"));
        // Balanced braces/brackets — the report is machine-readable.
        assert_eq!(
            text.matches('{').count(),
            text.matches('}').count(),
            "{text}"
        );
        assert_eq!(text.matches('[').count(), text.matches(']').count());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn random_queries_cover_all_ops() {
        let mut rng = SmallRng::seed_from_u64(1);
        let (mut c, mut p, mut t) = (0, 0, 0);
        for _ in 0..1000 {
            match random_query(&mut rng, 50) {
                Query::Component(u) => {
                    assert!(u < 50);
                    c += 1;
                }
                Query::PathMax(u, v) => {
                    assert!(u < 50 && v < 50);
                    p += 1;
                }
                Query::ConnectedUnder(_, _, l) => {
                    assert!((0.0..1.0).contains(&l));
                    t += 1;
                }
                other => panic!("{other:?}"),
            }
        }
        assert!(c > 100 && p > 300 && t > 100, "{c}/{p}/{t}");
    }
}

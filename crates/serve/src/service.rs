//! The answer engine: a certified MSF wrapped behind the wire queries.
//!
//! [`MsfService::build`] runs the flat-memory LLP-Borůvka engine over the
//! loaded graph, builds the shared [`PathMaxIndex`], and certifies the
//! forest *against that same index* ([`llp_mst::certify::certify_against`])
//! — so every answer the service ever gives comes from a structure the
//! certifier has already swept the whole graph through.
//!
//! [`MsfService::build_dynamic`] serves the same queries from an
//! [`EpochSnapshot`] that a background updater thread advances: `insert` /
//! `delete` queries enqueue updates, the updater drains them into batches
//! for [`llp_mst::dynamic::DynamicMsf`], and each *certified* epoch is
//! published by swapping one `Arc` — readers never wait on an update, and
//! an epoch that fails certification is never published (the previous
//! snapshot keeps serving and the error is retained for inspection).
//!
//! Build phases are telemetry spans (`serve-load`, `serve-msf-build`,
//! `serve-certify`, `serve-index-build`) and query traffic feeds the
//! `serve-queries` / `serve-batches` / `serve-updates-queued` counters,
//! all visible in `llp-mst-run-report/v1` payloads when telemetry is
//! recording.

use crate::protocol::{Query, Response};
use llp_graph::io::{read_binary_slice, IoError};
use llp_graph::{CsrGraph, Edge};
use llp_mst::certify::certify_against;
use llp_mst::dynamic::{DynamicError, DynamicMsf};
use llp_mst::index::PathMaxIndex;
use llp_mst::llp_boruvka::llp_boruvka;
use llp_mst::verify::VerifyError;
use llp_runtime::sync::{Condvar, Mutex};
use llp_runtime::{telemetry, ThreadPool};
use std::sync::Arc;
use std::time::Instant;

/// Wall-clock cost of each build phase, for the serve report.
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildTimings {
    /// MSF construction (flat-memory LLP-Borůvka). For dynamic builds
    /// this covers the whole initial epoch (forest + index + certify).
    pub msf_ms: f64,
    /// [`PathMaxIndex`] construction.
    pub index_ms: f64,
    /// Full-graph certification sweep against the index.
    pub certify_ms: f64,
}

/// One certified, immutable epoch: everything a query needs, swapped in
/// atomically (one `Arc` store) when the updater publishes.
pub struct EpochSnapshot {
    /// Epoch number (0 = the initial build).
    pub epoch: u64,
    /// Undirected edges of the graph at this epoch.
    pub m: usize,
    /// Trees in this epoch's certified forest.
    pub num_trees: usize,
    /// Total weight of this epoch's certified forest.
    pub total_weight: f64,
    /// When this snapshot was published (swap instant). `status` reports
    /// its age so a stalled updater is observable from the wire.
    pub published_at: Instant,
    /// The epoch's query index.
    pub index: Arc<PathMaxIndex>,
}

/// Updates waiting for the updater thread, plus its control state.
struct UpdateState {
    inserts: Vec<Edge>,
    deletes: Vec<(u32, u32)>,
    stop: bool,
    last_error: Option<String>,
}

struct Shared {
    current: Mutex<Arc<EpochSnapshot>>,
    update: Mutex<UpdateState>,
    ready: Condvar,
}

/// A certified MSF and its query index, ready to answer traffic.
pub struct MsfService {
    /// Vertices of the served graph.
    pub n: usize,
    /// Undirected edges of the served graph at build time.
    pub m: usize,
    /// Trees in the initially certified forest.
    pub num_trees: usize,
    /// Total weight of the initially certified forest.
    pub total_weight: f64,
    /// How long each build phase took.
    pub timings: BuildTimings,
    /// Whether `insert`/`delete` queries are accepted.
    dynamic: bool,
    shared: Arc<Shared>,
    updater: Option<std::thread::JoinHandle<()>>,
}

impl MsfService {
    /// Builds the MSF with the flat-memory engine, indexes it, and
    /// certifies the result against the index it will serve from.
    /// The graph is static: `insert`/`delete` queries answer `Invalid`.
    pub fn build(graph: &CsrGraph, pool: &ThreadPool) -> Result<MsfService, VerifyError> {
        let n = graph.num_vertices();
        let mut timings = BuildTimings::default();

        let t = Instant::now();
        let msf = {
            let _s = telemetry::span("serve-msf-build");
            llp_boruvka(graph, pool)
        };
        timings.msf_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let index = {
            let _s = telemetry::span("serve-index-build");
            Arc::new(PathMaxIndex::build_par(n, &msf, pool)?)
        };
        timings.index_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        {
            let _s = telemetry::span("serve-certify");
            certify_against(graph, &msf, &index, Some(pool))?;
        }
        timings.certify_ms = t.elapsed().as_secs_f64() * 1e3;

        let snapshot = Arc::new(EpochSnapshot {
            epoch: 0,
            m: graph.num_edges(),
            num_trees: index.num_components(),
            total_weight: msf.total_weight,
            published_at: Instant::now(),
            index,
        });
        Ok(Self::assemble(n, graph.num_edges(), timings, snapshot, None))
    }

    /// Builds a *dynamic* service: the initial epoch comes from
    /// [`DynamicMsf`] (built, indexed, and certified), and a background
    /// updater thread with its own `update_threads`-wide pool applies
    /// queued `insert`/`delete` batches, publishing each certified epoch
    /// as a fresh [`EpochSnapshot`].
    pub fn build_dynamic(
        graph: &CsrGraph,
        pool: &ThreadPool,
        update_threads: usize,
    ) -> Result<MsfService, DynamicError> {
        let n = graph.num_vertices();
        let mut timings = BuildTimings::default();
        let t = Instant::now();
        let dynamic = {
            let _s = telemetry::span("serve-msf-build");
            DynamicMsf::new(graph, pool)?
        };
        timings.msf_ms = t.elapsed().as_secs_f64() * 1e3;

        let snapshot = Arc::new(snapshot_of(&dynamic));
        let m = graph.num_edges();
        let mut service = Self::assemble(n, m, timings, snapshot, None);
        service.dynamic = true;

        let shared = Arc::clone(&service.shared);
        let threads = update_threads.max(1);
        service.updater = Some(std::thread::spawn(move || {
            updater_loop(dynamic, shared, threads)
        }));
        Ok(service)
    }

    fn assemble(
        n: usize,
        m: usize,
        timings: BuildTimings,
        snapshot: Arc<EpochSnapshot>,
        updater: Option<std::thread::JoinHandle<()>>,
    ) -> MsfService {
        let num_trees = snapshot.num_trees;
        let total_weight = snapshot.total_weight;
        MsfService {
            n,
            m,
            num_trees,
            total_weight,
            timings,
            dynamic: false,
            shared: Arc::new(Shared {
                current: Mutex::new(snapshot),
                update: Mutex::new(UpdateState {
                    inserts: Vec::new(),
                    deletes: Vec::new(),
                    stop: false,
                    last_error: None,
                }),
                ready: Condvar::new(),
            }),
            updater,
        }
    }

    /// The latest certified epoch. Queries answered against one snapshot
    /// are mutually consistent even while updates apply.
    pub fn snapshot(&self) -> Arc<EpochSnapshot> {
        Arc::clone(&self.shared.current.lock())
    }

    /// The latest epoch's shared index, for callers that want direct
    /// (non-wire) queries.
    pub fn index(&self) -> Arc<PathMaxIndex> {
        Arc::clone(&self.shared.current.lock().index)
    }

    /// Epoch number currently being served.
    pub fn epoch(&self) -> u64 {
        self.shared.current.lock().epoch
    }

    /// Whether this service accepts `insert`/`delete` queries.
    pub fn is_dynamic(&self) -> bool {
        self.dynamic
    }

    /// The most recent update-batch failure, if any. A failed batch never
    /// unpublishes the previous certified epoch.
    pub fn last_update_error(&self) -> Option<String> {
        self.shared.update.lock().last_error.clone()
    }

    /// Updates queued and not yet applied (static services: always 0).
    pub fn pending_updates(&self) -> usize {
        let s = self.shared.update.lock();
        s.inserts.len() + s.deletes.len()
    }

    /// Answers one query against the latest snapshot. Out-of-range vertex
    /// ids get [`Response::Invalid`] rather than a panic — the wire is
    /// untrusted.
    pub fn answer(&self, q: &Query) -> Response {
        self.answer_with(&self.snapshot(), q)
    }

    fn answer_with(&self, snap: &EpochSnapshot, q: &Query) -> Response {
        let ok = |u: u32| (u as usize) < self.n;
        match *q {
            Query::Component(u) if ok(u) => Response::Component(snap.index.component(u)),
            Query::PathMax(u, v) if ok(u) && ok(v) => Response::PathMax(
                snap.index
                    .path_max(u, v)
                    .map(|k| (k.lo(), k.hi(), k.weight())),
            ),
            Query::ConnectedUnder(u, v, l) if ok(u) && ok(v) && l.is_finite() => {
                Response::ConnectedUnder(snap.index.connected_under(u, v, l))
            }
            Query::Info => Response::Info {
                n: self.n as u32,
                trees: snap.num_trees as u32,
                total_weight: snap.total_weight,
            },
            Query::Shutdown => Response::ShuttingDown,
            Query::Insert(u, v, w)
                if self.dynamic && ok(u) && ok(v) && u != v && w.is_finite() =>
            {
                let mut s = self.shared.update.lock();
                s.inserts.push(Edge::new(u, v, w));
                drop(s);
                self.shared.ready.notify_one();
                telemetry::counter_add("serve-updates-queued", 1);
                Response::Accepted
            }
            Query::Delete(u, v) if self.dynamic && ok(u) && ok(v) && u != v => {
                let mut s = self.shared.update.lock();
                s.deletes.push((u, v));
                drop(s);
                self.shared.ready.notify_one();
                telemetry::counter_add("serve-updates-queued", 1);
                Response::Accepted
            }
            Query::Epoch => Response::Epoch {
                epoch: snap.epoch as u32,
                trees: snap.num_trees as u32,
                total_weight: snap.total_weight,
            },
            Query::Status => {
                let (queue_depth, degraded) = {
                    let s = self.shared.update.lock();
                    (s.inserts.len() + s.deletes.len(), s.last_error.is_some())
                };
                Response::Status {
                    epoch: snap.epoch as u32,
                    queue_depth: queue_depth.min(0x7FFF_FFFF) as u32,
                    snapshot_age_s: snap.published_at.elapsed().as_secs_f64(),
                    degraded,
                }
            }
            _ => Response::Invalid,
        }
    }

    /// Answers a batch in order against one consistent snapshot, feeding
    /// the serve counters.
    pub fn answer_batch(&self, batch: &[Query]) -> Vec<Response> {
        telemetry::counter_add("serve-batches", 1);
        telemetry::counter_add("serve-queries", batch.len() as u64);
        let snap = self.snapshot();
        batch.iter().map(|q| self.answer_with(&snap, q)).collect()
    }
}

impl Drop for MsfService {
    fn drop(&mut self) {
        if let Some(h) = self.updater.take() {
            self.shared.update.lock().stop = true;
            self.shared.ready.notify_all();
            let _ = h.join();
        }
    }
}

fn snapshot_of(d: &DynamicMsf) -> EpochSnapshot {
    EpochSnapshot {
        epoch: d.epoch(),
        m: d.num_edges(),
        num_trees: d.msf().num_trees,
        total_weight: d.msf().total_weight,
        published_at: Instant::now(),
        index: Arc::clone(d.index()),
    }
}

/// The updater thread: drain queued updates into one batch, apply it as a
/// dynamic epoch (certified inside `apply_batch`), publish the snapshot.
fn updater_loop(mut dynamic: DynamicMsf, shared: Arc<Shared>, threads: usize) {
    let pool = ThreadPool::new(threads);
    loop {
        let (inserts, deletes) = {
            let mut s = shared.update.lock();
            loop {
                if s.stop {
                    return;
                }
                if !s.inserts.is_empty() || !s.deletes.is_empty() {
                    break (
                        std::mem::take(&mut s.inserts),
                        std::mem::take(&mut s.deletes),
                    );
                }
                shared.ready.wait(&mut s);
            }
        };
        match dynamic.apply_batch(&inserts, &deletes, &pool) {
            Ok(_report) => {
                *shared.current.lock() = Arc::new(snapshot_of(&dynamic));
                telemetry::counter_add("serve-epochs-published", 1);
            }
            Err(e) => {
                // Should be unreachable: the wire layer validates before
                // enqueueing. Keep serving the last certified epoch.
                shared.update.lock().last_error = Some(e.to_string());
                telemetry::counter_add("serve-update-errors", 1);
            }
        }
    }
}

/// Loads and validates a binary graph file with the hardened,
/// length-checked reader (`serve-load` span).
pub fn load_graph(path: &std::path::Path) -> Result<CsrGraph, IoError> {
    let _s = telemetry::span("serve-load");
    let bytes = std::fs::read(path)?;
    read_binary_slice(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use llp_mst::prelude::kruskal;

    fn service() -> MsfService {
        let g = llp_graph::generators::erdos_renyi(200, 380, 5);
        let pool = ThreadPool::new(2);
        MsfService::build(&g, &pool).unwrap()
    }

    #[test]
    fn answers_agree_with_direct_index_queries() {
        let g = llp_graph::generators::erdos_renyi(200, 380, 5);
        let svc = service();
        let msf = kruskal(&g);
        assert_eq!(svc.num_trees, msf.num_trees);
        assert!((svc.total_weight - msf.total_weight).abs() < 1e-9);
        for (u, v) in [(0u32, 1u32), (5, 199), (17, 17), (3, 150)] {
            assert_eq!(
                svc.answer(&Query::PathMax(u, v)),
                Response::PathMax(svc.index().path_max(u, v).map(|k| (k.lo(), k.hi(), k.weight())))
            );
            assert_eq!(
                svc.answer(&Query::Component(u)),
                Response::Component(svc.index().component(u))
            );
        }
    }

    #[test]
    fn out_of_range_ids_are_invalid_not_panics() {
        let svc = service();
        assert_eq!(svc.answer(&Query::Component(10_000)), Response::Invalid);
        assert_eq!(svc.answer(&Query::PathMax(0, 10_000)), Response::Invalid);
        assert_eq!(
            svc.answer(&Query::ConnectedUnder(10_000, 0, 1.0)),
            Response::Invalid
        );
    }

    #[test]
    fn info_reports_the_forest() {
        let svc = service();
        match svc.answer(&Query::Info) {
            Response::Info { n, trees, .. } => {
                assert_eq!(n as usize, svc.n);
                assert_eq!(trees as usize, svc.num_trees);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn static_service_rejects_updates_but_answers_epoch() {
        let svc = service();
        assert!(!svc.is_dynamic());
        assert_eq!(svc.answer(&Query::Insert(0, 1, 1.0)), Response::Invalid);
        assert_eq!(svc.answer(&Query::Delete(0, 1)), Response::Invalid);
        assert_eq!(
            svc.answer(&Query::Epoch),
            Response::Epoch {
                epoch: 0,
                trees: svc.num_trees as u32,
                total_weight: svc.total_weight,
            }
        );
    }

    #[test]
    fn status_reports_health_on_a_static_service() {
        let svc = service();
        match svc.answer(&Query::Status) {
            Response::Status {
                epoch,
                queue_depth,
                snapshot_age_s,
                degraded,
            } => {
                assert_eq!(epoch, 0);
                assert_eq!(queue_depth, 0);
                assert!((0.0..60.0).contains(&snapshot_age_s));
                assert!(!degraded);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dynamic_service_applies_updates_in_the_background() {
        let g = llp_graph::generators::erdos_renyi(100, 160, 9);
        let pool = ThreadPool::new(2);
        let svc = MsfService::build_dynamic(&g, &pool, 2).unwrap();
        assert!(svc.is_dynamic());
        assert_eq!(svc.epoch(), 0);

        // Self-loops and out-of-range updates are rejected up front.
        assert_eq!(svc.answer(&Query::Insert(5, 5, 1.0)), Response::Invalid);
        assert_eq!(svc.answer(&Query::Delete(0, 5_000)), Response::Invalid);

        // A valid insert of an edge the graph does not have is queued and
        // eventually certified into an epoch.
        let taken: std::collections::HashSet<(u32, u32)> =
            g.edges().map(|e| e.canonical_endpoints()).collect();
        let v = (1..100u32).find(|&v| !taken.contains(&(0, v))).unwrap();
        assert_eq!(svc.answer(&Query::Insert(0, v, 1e-7)), Response::Accepted);
        let deadline = Instant::now() + std::time::Duration::from_secs(30);
        while svc.epoch() == 0 {
            assert!(Instant::now() < deadline, "updater never published");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(svc.last_update_error(), None);
        // The inserted edge is so light it must be a tree edge now, and
        // the bottleneck on the direct path is the edge itself.
        assert_eq!(svc.index().component(0), svc.index().component(v));
        match svc.answer(&Query::PathMax(0, v)) {
            Response::PathMax(Some((lo, hi, w))) => {
                assert_eq!((lo, hi), (0, v));
                assert!((w - 1e-7).abs() < 1e-20);
            }
            other => panic!("expected the inserted edge as bottleneck, got {other:?}"),
        }
    }
}

//! The answer engine: a certified MSF wrapped behind the wire queries.
//!
//! [`MsfService::build`] runs the flat-memory LLP-Borůvka engine over the
//! loaded graph, builds the shared [`PathMaxIndex`], and certifies the
//! forest *against that same index* ([`llp_mst::certify::certify_against`])
//! — so every answer the service ever gives comes from a structure the
//! certifier has already swept the whole graph through. Build phases are
//! telemetry spans (`serve-load`, `serve-msf-build`, `serve-certify`,
//! `serve-index-build`) and query traffic feeds the `serve-queries` /
//! `serve-batches` counters, all visible in `llp-mst-run-report/v1`
//! payloads when telemetry is recording.

use crate::protocol::{Query, Response};
use llp_graph::io::{read_binary_slice, IoError};
use llp_graph::CsrGraph;
use llp_mst::certify::certify_against;
use llp_mst::index::PathMaxIndex;
use llp_mst::llp_boruvka::llp_boruvka;
use llp_mst::verify::VerifyError;
use llp_runtime::{telemetry, ThreadPool};
use std::time::Instant;

/// Wall-clock cost of each build phase, for the serve report.
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildTimings {
    /// MSF construction (flat-memory LLP-Borůvka).
    pub msf_ms: f64,
    /// [`PathMaxIndex`] construction.
    pub index_ms: f64,
    /// Full-graph certification sweep against the index.
    pub certify_ms: f64,
}

/// A certified MSF and its query index, ready to answer traffic.
pub struct MsfService {
    /// Vertices of the served graph.
    pub n: usize,
    /// Undirected edges of the served graph.
    pub m: usize,
    /// Trees in the certified forest.
    pub num_trees: usize,
    /// Total weight of the certified forest.
    pub total_weight: f64,
    /// How long each build phase took.
    pub timings: BuildTimings,
    index: PathMaxIndex,
}

impl MsfService {
    /// Builds the MSF with the flat-memory engine, indexes it, and
    /// certifies the result against the index it will serve from.
    pub fn build(graph: &CsrGraph, pool: &ThreadPool) -> Result<MsfService, VerifyError> {
        let n = graph.num_vertices();
        let mut timings = BuildTimings::default();

        let t = Instant::now();
        let msf = {
            let _s = telemetry::span("serve-msf-build");
            llp_boruvka(graph, pool)
        };
        timings.msf_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        let index = {
            let _s = telemetry::span("serve-index-build");
            PathMaxIndex::build_par(n, &msf, pool)?
        };
        timings.index_ms = t.elapsed().as_secs_f64() * 1e3;

        let t = Instant::now();
        {
            let _s = telemetry::span("serve-certify");
            certify_against(graph, &msf, &index, Some(pool))?;
        }
        timings.certify_ms = t.elapsed().as_secs_f64() * 1e3;

        Ok(MsfService {
            n,
            m: graph.num_edges(),
            num_trees: index.num_components(),
            total_weight: msf.total_weight,
            timings,
            index,
        })
    }

    /// The shared index, for callers that want direct (non-wire) queries.
    pub fn index(&self) -> &PathMaxIndex {
        &self.index
    }

    /// Answers one query. Out-of-range vertex ids get
    /// [`Response::Invalid`] rather than a panic — the wire is untrusted.
    pub fn answer(&self, q: &Query) -> Response {
        let ok = |u: u32| (u as usize) < self.n;
        match *q {
            Query::Component(u) if ok(u) => Response::Component(self.index.component(u)),
            Query::PathMax(u, v) if ok(u) && ok(v) => Response::PathMax(
                self.index
                    .path_max(u, v)
                    .map(|k| (k.lo(), k.hi(), k.weight())),
            ),
            Query::ConnectedUnder(u, v, l) if ok(u) && ok(v) => {
                Response::ConnectedUnder(self.index.connected_under(u, v, l))
            }
            Query::Info => Response::Info {
                n: self.n as u32,
                trees: self.num_trees as u32,
                total_weight: self.total_weight,
            },
            Query::Shutdown => Response::ShuttingDown,
            _ => Response::Invalid,
        }
    }

    /// Answers a batch in order, feeding the serve counters.
    pub fn answer_batch(&self, batch: &[Query]) -> Vec<Response> {
        telemetry::counter_add("serve-batches", 1);
        telemetry::counter_add("serve-queries", batch.len() as u64);
        batch.iter().map(|q| self.answer(q)).collect()
    }
}

/// Loads and validates a binary graph file with the hardened,
/// length-checked reader (`serve-load` span).
pub fn load_graph(path: &std::path::Path) -> Result<CsrGraph, IoError> {
    let _s = telemetry::span("serve-load");
    let bytes = std::fs::read(path)?;
    read_binary_slice(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use llp_mst::prelude::kruskal;

    fn service() -> MsfService {
        let g = llp_graph::generators::erdos_renyi(200, 380, 5);
        let pool = ThreadPool::new(2);
        MsfService::build(&g, &pool).unwrap()
    }

    #[test]
    fn answers_agree_with_direct_index_queries() {
        let g = llp_graph::generators::erdos_renyi(200, 380, 5);
        let svc = service();
        let msf = kruskal(&g);
        assert_eq!(svc.num_trees, msf.num_trees);
        assert!((svc.total_weight - msf.total_weight).abs() < 1e-9);
        for (u, v) in [(0u32, 1u32), (5, 199), (17, 17), (3, 150)] {
            assert_eq!(
                svc.answer(&Query::PathMax(u, v)),
                Response::PathMax(svc.index().path_max(u, v).map(|k| (k.lo(), k.hi(), k.weight())))
            );
            assert_eq!(
                svc.answer(&Query::Component(u)),
                Response::Component(svc.index().component(u))
            );
        }
    }

    #[test]
    fn out_of_range_ids_are_invalid_not_panics() {
        let svc = service();
        assert_eq!(svc.answer(&Query::Component(10_000)), Response::Invalid);
        assert_eq!(svc.answer(&Query::PathMax(0, 10_000)), Response::Invalid);
        assert_eq!(
            svc.answer(&Query::ConnectedUnder(10_000, 0, 1.0)),
            Response::Invalid
        );
    }

    #[test]
    fn info_reports_the_forest() {
        let svc = service();
        match svc.answer(&Query::Info) {
            Response::Info { n, trees, .. } => {
                assert_eq!(n as usize, svc.n);
                assert_eq!(trees as usize, svc.num_trees);
            }
            other => panic!("{other:?}"),
        }
    }
}

//! MSF-as-a-service: the certifier's path-max index behind a wire.
//!
//! This crate turns a certified minimum spanning forest into a query
//! server. The pipeline is: load and validate a binary graph with the
//! hardened reader ([`service::load_graph`]), build the MSF with the
//! flat-memory LLP-Borůvka engine, build the shared
//! [`llp_mst::index::PathMaxIndex`], certify the forest against that
//! exact index, then answer `component` / `path_max` /
//! `connected_under` queries in O(1) each over a hand-rolled TCP
//! protocol ([`protocol`]).
//!
//! - [`protocol`] — length-prefixed frames and the query/response codec.
//! - [`service`] — builds the certified index and answers queries.
//! - [`server`] — blocking accept loop + worker pool, no external
//!   runtime; per-connection deadlines, bounded-queue load shedding
//!   (the tag-4 overloaded frame), and graceful drain.
//! - [`retry`] — full-jitter exponential backoff and the reconnecting
//!   client that rides out shed/reaped/faulted connections.
//! - [`loadgen`] — batch-size sweep, latency percentiles, retry counts,
//!   and the `llp-mst-serve-report/v1` JSON writer.
//!
//! The `llp-mst-serve` binary front-ends all of it: `gen`, `serve`,
//! `loadgen`, `bench` (in-process end-to-end with verification), and
//! `fuzz-ingest` (the corrupt-file rejection matrix, plus a seeded
//! fault-injection sweep when built with the `faults` feature).

pub mod loadgen;
pub mod protocol;
pub mod retry;
pub mod server;
pub mod service;

//! `llp-mst-serve` — the MSF query service front-end.
//!
//! ```text
//! llp-mst-serve gen        --out g.bin [--kind rmat|er] [--scale 16] [--ef 16] [--seed 1]
//! llp-mst-serve serve      --graph g.bin [--addr 127.0.0.1:0] [--threads T]
//!                          [--workers W] [--port-file p.txt]
//!                          [--dynamic [--update-threads U]]
//!                          [--read-timeout-ms 30000] [--write-timeout-ms 30000]
//!                          [--queue-cap 64] [--retry-after-ms 100]
//! llp-mst-serve loadgen    --addr HOST:PORT [--graph g.bin --verify] [--batches 1,16,256,4096]
//!                          [--queries 100000] [--seed 42] [--report out.json] [--shutdown]
//! llp-mst-serve bench      [--graph g.bin | --scale 16 --ef 16 --seed 1] [--threads T]
//!                          [--workers W] [--queries N] [--batches ...]
//!                          [--report BENCH_serve.json] [--min-qps 100000]
//! llp-mst-serve fuzz-ingest [--fault-seeds N]
//! ```
//!
//! `bench` is the one-shot certified pipeline: generate/load a graph,
//! build + certify the MSF, serve it on an ephemeral loopback port, sweep
//! batch sizes with every response verified against the local certified
//! index, shut the server down, write the `llp-mst-serve-report/v1`
//! JSON, and gate on `--min-qps`. `fuzz-ingest` runs the corrupt-file
//! matrix against the hardened binary reader and fails if any corruption
//! is accepted; `--fault-seeds N` (needs the `faults` feature) addition-
//! ally sweeps N seeds of injected file-I/O faults through the real
//! file-backed read and write paths, asserting every run either matches
//! the pristine graph bit-for-bit or fails with a classified error.

use llp_graph::generators::{erdos_renyi, rmat, RmatParams};
use llp_graph::io::{read_binary_range, read_binary_slice, write_binary, IoError};
use llp_graph::CsrGraph;
use llp_runtime::ThreadPool;
use llp_serve::loadgen::{run_sweep, write_report, LoadgenConfig, ReportInputs, SweepPoint};
use llp_serve::protocol::{decode_responses, encode_queries, read_frame, write_frame, Query, Response, MAX_PAYLOAD};
use llp_serve::server::{run_server, ServerConfig};
use llp_serve::service::{load_graph, BuildTimings, MsfService};
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    args.remove(0);
    let result = match cmd.as_str() {
        "gen" => cmd_gen(&mut args),
        "serve" => cmd_serve(&mut args),
        "loadgen" => cmd_loadgen(&mut args),
        "bench" => cmd_bench(&mut args),
        "fuzz-ingest" => cmd_fuzz_ingest(&mut args),
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("llp-mst-serve {cmd}: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: llp-mst-serve <gen|serve|loadgen|bench|fuzz-ingest> [options]
run `llp-mst-serve <command>` with no options for that command's defaults";

/// Removes `--name value` from `args`, if present.
fn take_opt(args: &mut Vec<String>, name: &str) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == name) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(format!("{name} needs a value"));
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Ok(Some(v))
}

/// Removes the bare flag `--name` from `args`; true if it was present.
fn take_flag(args: &mut Vec<String>, name: &str) -> bool {
    let Some(i) = args.iter().position(|a| a == name) else {
        return false;
    };
    args.remove(i);
    true
}

fn parse<T: std::str::FromStr>(name: &str, v: Option<String>, default: T) -> Result<T, String> {
    match v {
        None => Ok(default),
        Some(s) => s.parse().map_err(|_| format!("bad value for {name}: {s}")),
    }
}

/// Errors on leftover (unrecognized) arguments.
fn no_leftovers(args: &[String]) -> Result<(), String> {
    if args.is_empty() {
        Ok(())
    } else {
        Err(format!("unrecognized arguments: {}", args.join(" ")))
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Builds the graph named by `--graph`, or generates one from
/// `--kind/--scale/--ef/--seed`.
fn graph_from_args(args: &mut Vec<String>) -> Result<CsrGraph, String> {
    if let Some(path) = take_opt(args, "--graph")? {
        return load_graph(&PathBuf::from(&path)).map_err(|e| format!("{path}: {e}"));
    }
    let kind = take_opt(args, "--kind")?.unwrap_or_else(|| "rmat".into());
    let scale: u32 = parse("--scale", take_opt(args, "--scale")?, 16)?;
    let ef: usize = parse("--ef", take_opt(args, "--ef")?, 16)?;
    let seed: u64 = parse("--seed", take_opt(args, "--seed")?, 1)?;
    match kind.as_str() {
        "rmat" => Ok(rmat(RmatParams::graph500(scale, ef, seed))),
        "er" => {
            let n = 1usize << scale;
            Ok(erdos_renyi(n, n * ef, seed))
        }
        other => Err(format!("unknown --kind `{other}` (want rmat or er)")),
    }
}

fn cmd_gen(args: &mut Vec<String>) -> Result<(), String> {
    let out = take_opt(args, "--out")?.ok_or("--out is required")?;
    let graph = graph_from_args(args)?;
    no_leftovers(args)?;
    // Atomic install: the reader side (a server starting against this
    // path) either sees the complete file or none at all.
    let mut w = llp_graph::io::BinaryFileWriter::create(std::path::Path::new(&out), graph.num_vertices())
        .map_err(|e| format!("{out}: {e}"))?;
    for e in graph.edges() {
        w.write_edge(e).map_err(|e| format!("{out}: {e}"))?;
    }
    w.finish().map_err(|e| format!("{out}: {e}"))?;
    println!(
        "wrote {} (n={}, m={})",
        out,
        graph.num_vertices(),
        graph.num_edges()
    );
    Ok(())
}

fn cmd_serve(args: &mut Vec<String>) -> Result<(), String> {
    let graph_path = take_opt(args, "--graph")?.ok_or("--graph is required")?;
    let addr = take_opt(args, "--addr")?.unwrap_or_else(|| "127.0.0.1:0".into());
    let threads: usize = parse("--threads", take_opt(args, "--threads")?, default_threads())?;
    let workers: usize = parse("--workers", take_opt(args, "--workers")?, 2)?;
    let port_file = take_opt(args, "--port-file")?;
    let dynamic = take_flag(args, "--dynamic");
    let update_threads: usize =
        parse("--update-threads", take_opt(args, "--update-threads")?, 2)?;
    // Robustness knobs; a timeout of 0 disables that deadline.
    let read_timeout_ms: u64 =
        parse("--read-timeout-ms", take_opt(args, "--read-timeout-ms")?, 30_000)?;
    let write_timeout_ms: u64 =
        parse("--write-timeout-ms", take_opt(args, "--write-timeout-ms")?, 30_000)?;
    let queue_cap: usize = parse("--queue-cap", take_opt(args, "--queue-cap")?, 64)?;
    let retry_after_ms: u32 =
        parse("--retry-after-ms", take_opt(args, "--retry-after-ms")?, 100)?;
    no_leftovers(args)?;

    let graph = load_graph(&PathBuf::from(&graph_path)).map_err(|e| format!("{graph_path}: {e}"))?;
    let pool = ThreadPool::new(threads);
    let service = if dynamic {
        Arc::new(
            MsfService::build_dynamic(&graph, &pool, update_threads)
                .map_err(|e| format!("dynamic build failed: {e}"))?,
        )
    } else {
        Arc::new(
            MsfService::build(&graph, &pool).map_err(|e| format!("certification failed: {e}"))?,
        )
    };
    drop(pool);
    print_build(&service);
    if dynamic {
        println!("dynamic updates: enabled ({update_threads} update threads)");
    }

    let listener = TcpListener::bind(&addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    println!("listening on {local}");
    if let Some(pf) = port_file {
        std::fs::write(&pf, format!("{}\n", local.port())).map_err(|e| format!("{pf}: {e}"))?;
    }
    let cfg = ServerConfig {
        workers,
        read_timeout: (read_timeout_ms > 0)
            .then(|| std::time::Duration::from_millis(read_timeout_ms)),
        write_timeout: (write_timeout_ms > 0)
            .then(|| std::time::Duration::from_millis(write_timeout_ms)),
        queue_cap,
        retry_after_ms,
    };
    let accepted = run_server(listener, service, cfg).map_err(|e| e.to_string())?;
    println!("shut down after {accepted} connections");
    Ok(())
}

fn print_build(service: &MsfService) {
    println!(
        "certified MSF: n={} m={} trees={} weight={:.6}",
        service.n, service.m, service.num_trees, service.total_weight
    );
    println!(
        "build: msf {:.1} ms, index {:.1} ms, certify {:.1} ms",
        service.timings.msf_ms, service.timings.index_ms, service.timings.certify_ms
    );
}

/// One short-lived connection: sends `batch`, returns the responses.
fn one_shot(addr: &str, batch: &[Query]) -> Result<Vec<Response>, String> {
    let conn = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    conn.set_nodelay(true).ok();
    let mut reader = BufReader::new(conn.try_clone().map_err(|e| e.to_string())?);
    let mut writer = std::io::BufWriter::new(conn);
    let mut payload = Vec::new();
    encode_queries(batch, &mut payload);
    write_frame(&mut writer, &payload).map_err(|e| e.to_string())?;
    let reply = read_frame(&mut reader, MAX_PAYLOAD)
        .map_err(|e| e.to_string())?
        .ok_or("server closed the connection")?;
    decode_responses(&reply, batch).map_err(|e| e.to_string())
}

/// Asks the server for its graph summary.
fn query_info(addr: &str) -> Result<(u32, u32, f64), String> {
    match one_shot(addr, &[Query::Info])?.as_slice() {
        [Response::Info {
            n,
            trees,
            total_weight,
        }] => Ok((*n, *trees, *total_weight)),
        other => Err(format!("unexpected info response: {other:?}")),
    }
}

fn loadgen_config(args: &mut Vec<String>) -> Result<LoadgenConfig, String> {
    let mut cfg = LoadgenConfig::default();
    if let Some(list) = take_opt(args, "--batches")? {
        cfg.batches = list
            .split(',')
            .map(|s| s.trim().parse::<usize>())
            .collect::<Result<_, _>>()
            .map_err(|_| format!("bad --batches list: {list}"))?;
        if cfg.batches.is_empty() {
            return Err("--batches must name at least one batch size".into());
        }
    }
    cfg.queries_per_point = parse("--queries", take_opt(args, "--queries")?, cfg.queries_per_point)?;
    cfg.seed = parse("--seed", take_opt(args, "--seed")?, cfg.seed)?;
    Ok(cfg)
}

fn print_sweep(sweep: &[SweepPoint]) {
    println!("batch      queries        qps    p50_us    p99_us   retries");
    for p in sweep {
        println!(
            "{:>5} {:>12} {:>10.0} {:>9.2} {:>9.2} {:>9}",
            p.batch, p.queries, p.qps, p.p50_us, p.p99_us, p.retries
        );
    }
}

fn cmd_loadgen(args: &mut Vec<String>) -> Result<(), String> {
    let addr = take_opt(args, "--addr")?.ok_or("--addr is required")?;
    let graph_path = take_opt(args, "--graph")?;
    let verify = take_flag(args, "--verify");
    let shutdown = take_flag(args, "--shutdown");
    let report = take_opt(args, "--report")?;
    let threads: usize = parse("--threads", take_opt(args, "--threads")?, default_threads())?;
    let cfg = loadgen_config(args)?;
    no_leftovers(args)?;

    let (n, trees, weight) = query_info(&addr)?;
    println!("server reports n={n} trees={trees} weight={weight:.6}");

    let local = match (&graph_path, verify) {
        (Some(path), _) => {
            let graph = load_graph(&PathBuf::from(path)).map_err(|e| format!("{path}: {e}"))?;
            let pool = ThreadPool::new(threads);
            let svc = MsfService::build(&graph, &pool)
                .map_err(|e| format!("local certification failed: {e}"))?;
            if svc.n as u32 != n {
                return Err(format!(
                    "--graph has n={}, but the server serves n={n}; wrong file?",
                    svc.n
                ));
            }
            Some(svc)
        }
        (None, true) => return Err("--verify needs --graph to build the local index".into()),
        (None, false) => None,
    };

    let sweep = run_sweep(&addr, n, &cfg, if verify { local.as_ref() } else { None })?;
    print_sweep(&sweep);
    if verify {
        println!("verified: every response matched the local certified index");
    }

    if let Some(path) = report {
        let inputs = ReportInputs {
            n: n as usize,
            m: local.as_ref().map_or(0, |s| s.m),
            num_trees: trees as usize,
            build: local.as_ref().map_or(BuildTimings::default(), |s| s.timings),
            threads,
            workers: 0, // remote server; its worker count is not visible
            verified: verify,
            sweep: &sweep,
        };
        write_report(&PathBuf::from(&path), &inputs).map_err(|e| format!("{path}: {e}"))?;
        println!("report: {path}");
    }
    if shutdown {
        one_shot(&addr, &[Query::Shutdown])?;
        println!("server acknowledged shutdown");
    }
    Ok(())
}

fn cmd_bench(args: &mut Vec<String>) -> Result<(), String> {
    let threads: usize = parse("--threads", take_opt(args, "--threads")?, default_threads())?;
    let workers: usize = parse("--workers", take_opt(args, "--workers")?, 2)?;
    let min_qps: f64 = parse("--min-qps", take_opt(args, "--min-qps")?, 100_000.0)?;
    let report = take_opt(args, "--report")?.unwrap_or_else(|| "BENCH_serve.json".into());
    let no_verify = take_flag(args, "--no-verify");
    let cfg = loadgen_config(args)?;
    let graph = graph_from_args(args)?;
    no_leftovers(args)?;

    let pool = ThreadPool::new(threads);
    let service = Arc::new(
        MsfService::build(&graph, &pool).map_err(|e| format!("certification failed: {e}"))?,
    );
    drop(pool);
    print_build(&service);

    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?.to_string();
    let server = {
        let service = Arc::clone(&service);
        let cfg = ServerConfig::with_workers(workers);
        std::thread::spawn(move || run_server(listener, service, cfg))
    };

    let n = service.n as u32;
    let verify = (!no_verify).then_some(service.as_ref());
    let sweep = run_sweep(&addr, n, &cfg, verify);
    // Always stop the server, even when the sweep failed.
    let _ = one_shot(&addr, &[Query::Shutdown]);
    server
        .join()
        .map_err(|_| "server thread panicked".to_string())?
        .map_err(|e| e.to_string())?;
    let sweep = sweep?;
    print_sweep(&sweep);
    if verify.is_some() {
        println!("verified: every response matched the local certified index");
    }

    let inputs = ReportInputs {
        n: service.n,
        m: service.m,
        num_trees: service.num_trees,
        build: service.timings,
        threads,
        workers,
        verified: verify.is_some(),
        sweep: &sweep,
    };
    write_report(&PathBuf::from(&report), &inputs).map_err(|e| format!("{report}: {e}"))?;
    println!("report: {report}");

    let best = sweep.iter().map(|p| p.qps).fold(0.0f64, f64::max);
    if best < min_qps {
        return Err(format!(
            "best throughput {best:.0} q/s is below the --min-qps gate of {min_qps:.0}"
        ));
    }
    println!("gate: best {best:.0} q/s >= {min_qps:.0} q/s");
    Ok(())
}

/// The corrupt-file matrix: every mutation of a valid binary graph file
/// must be rejected by the hardened reader — with a `ParseBytes` error
/// (never a panic, never a giant allocation) for format violations.
/// `--fault-seeds N` additionally sweeps N seeds of injected file-I/O
/// faults through the real file-backed read/write paths.
fn cmd_fuzz_ingest(args: &mut Vec<String>) -> Result<(), String> {
    let fault_seeds: u64 = parse("--fault-seeds", take_opt(args, "--fault-seeds")?, 0)?;
    no_leftovers(args)?;
    let graph = erdos_renyi(64, 128, 7);
    let mut pristine = Vec::new();
    write_binary(&graph, &mut pristine).map_err(|e| e.to_string())?;
    read_binary_slice(&pristine).map_err(|e| format!("pristine bytes must parse: {e}"))?;
    println!(
        "pristine: ok (n={}, m={}, {} bytes)",
        graph.num_vertices(),
        graph.num_edges(),
        pristine.len()
    );

    type Mutation = (&'static str, Box<dyn Fn(&mut Vec<u8>)>);
    let n_bytes = (graph.num_vertices() as u32).to_le_bytes();
    let cases: Vec<Mutation> = vec![
        ("truncated-header", Box::new(|b| b.truncate(10))),
        ("bad-magic", Box::new(|b| b[0] ^= 0xff)),
        ("bad-version", Box::new(|b| b[8..12].copy_from_slice(&999u32.to_le_bytes()))),
        ("giant-n", Box::new(|b| b[12..20].copy_from_slice(&u64::MAX.to_le_bytes()))),
        ("giant-m", Box::new(|b| b[20..28].copy_from_slice(&u64::MAX.to_le_bytes()))),
        (
            "m-overclaims-payload",
            Box::new(|b| {
                let m = u64::from_le_bytes(b[20..28].try_into().unwrap());
                b[20..28].copy_from_slice(&(m + 1).to_le_bytes());
            }),
        ),
        (
            "m-underclaims-payload",
            Box::new(|b| {
                let m = u64::from_le_bytes(b[20..28].try_into().unwrap());
                b[20..28].copy_from_slice(&(m - 1).to_le_bytes());
            }),
        ),
        ("truncated-edge", Box::new(|b| b.truncate(b.len() - 3))),
        (
            "self-loop",
            Box::new(|b| {
                let u: [u8; 4] = b[28..32].try_into().unwrap();
                b[32..36].copy_from_slice(&u);
            }),
        ),
        (
            "endpoint-out-of-range",
            Box::new(move |b| b[28..32].copy_from_slice(&n_bytes)),
        ),
        ("nan-weight", Box::new(|b| b[36..44].copy_from_slice(&f64::NAN.to_le_bytes()))),
        ("inf-weight", Box::new(|b| b[36..44].copy_from_slice(&f64::INFINITY.to_le_bytes()))),
    ];

    let mut failures = 0;
    for (name, mutate) in &cases {
        let mut bytes = pristine.clone();
        mutate(&mut bytes);
        match read_binary_slice(&bytes) {
            Err(e @ IoError::ParseBytes(..)) => println!("{name}: rejected ({e})"),
            Err(e) => println!("{name}: rejected with unexpected error kind ({e})"),
            Ok(g) => {
                println!(
                    "{name}: ACCEPTED a corrupt file (n={}, m={})",
                    g.num_vertices(),
                    g.num_edges()
                );
                failures += 1;
            }
        }
    }
    // The range reader is a separate entry point with its own seek
    // arithmetic (used by the out-of-core sharded pipeline); exercise
    // its bounds, truncation and per-record checks too.
    let m = graph.num_edges() as u64;
    type RangeMutation = (&'static str, Box<dyn Fn(&mut Vec<u8>) -> (u64, u64)>);
    let range_cases: Vec<RangeMutation> = vec![
        ("range-out-of-bounds", Box::new(move |_b: &mut Vec<u8>| (0, m + 1))),
        (
            "range-truncated-payload",
            Box::new(move |b: &mut Vec<u8>| {
                b.truncate(b.len() - 3);
                (0, m)
            }),
        ),
        (
            "range-bad-edge",
            Box::new(|b: &mut Vec<u8>| {
                // Corrupt edge #5 into a self-loop, then request a window
                // containing it: the error must carry the edge's absolute
                // file offset even though decoding started mid-file.
                let off = 28 + 5 * 16;
                let u: [u8; 4] = b[off..off + 4].try_into().unwrap();
                b[off + 4..off + 8].copy_from_slice(&u);
                (4, 8)
            }),
        ),
    ];
    for (name, mutate) in &range_cases {
        let mut bytes = pristine.clone();
        let (lo, hi) = mutate(&mut bytes);
        match read_binary_range(&mut std::io::Cursor::new(&bytes), lo, hi) {
            Err(e @ IoError::ParseBytes(..)) => println!("{name}: rejected ({e})"),
            Err(e) => println!("{name}: rejected with unexpected error kind ({e})"),
            Ok(r) => {
                println!("{name}: ACCEPTED a corrupt range ({} edges)", r.edges.len());
                failures += 1;
            }
        }
    }

    if failures > 0 {
        return Err(format!("{failures} corruptions were accepted"));
    }
    println!(
        "fuzz-ingest: all {} corruptions rejected",
        cases.len() + range_cases.len()
    );
    if fault_seeds > 0 {
        fault_sweep(&graph, &pristine, fault_seeds)?;
    }
    Ok(())
}

/// Seeded fault-injection sweep over the file-backed ingest paths: for
/// every seed, a read of a pristine file through the faulty reader must
/// either reproduce the pristine graph exactly or fail with a classified
/// `IoError`; a faulted [`BinaryFileWriter`] run must install a complete,
/// re-readable file or nothing at all. Any third outcome — a *wrong*
/// graph, a torn file under the destination name — fails the sweep.
///
/// [`BinaryFileWriter`]: llp_graph::io::BinaryFileWriter
fn fault_sweep(graph: &CsrGraph, pristine: &[u8], seeds: u64) -> Result<(), String> {
    use llp_runtime::faults;
    if !faults::compiled_in() {
        return Err(
            "--fault-seeds needs fault injection compiled in; rebuild with --features faults"
                .into(),
        );
    }
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let src = dir.join(format!("llp-fuzz-faults-{pid}.bin"));
    std::fs::write(&src, pristine).map_err(|e| e.to_string())?;

    let (mut clean, mut classified) = (0u64, 0u64);
    let mut run = || -> Result<(), String> {
        for seed in 1..=seeds {
            faults::set_seed(Some(seed));
            // Read leg: faulty reader over the pristine file.
            match llp_graph::io::read_binary_file(&src) {
                Ok(g) if g == *graph => clean += 1,
                Ok(g) => {
                    return Err(format!(
                        "seed {seed}: read produced a WRONG graph (n={}, m={}) \
                         instead of an error",
                        g.num_vertices(),
                        g.num_edges()
                    ))
                }
                Err(IoError::ParseBytes(..) | IoError::Io(..)) => classified += 1,
                Err(e) => return Err(format!("seed {seed}: unclassified error {e}")),
            }
            // Write leg: faulty writer must install completely or not at all.
            let dest = dir.join(format!("llp-fuzz-faults-{pid}-w{seed}.bin"));
            let wrote = llp_graph::io::BinaryFileWriter::create(&dest, graph.num_vertices())
                .and_then(|mut w| {
                    for e in graph.edges() {
                        w.write_edge(e)?;
                    }
                    w.finish()
                });
            match wrote {
                Ok(_) => {
                    let g = llp_graph::io::read_binary_file(&dest);
                    std::fs::remove_file(&dest).ok();
                    match g {
                        Ok(g) if g == *graph => clean += 1,
                        // The *read-back* itself ran under the seed and may
                        // fault; that is the read leg's territory, not a
                        // torn install.
                        Err(IoError::ParseBytes(..) | IoError::Io(..)) => classified += 1,
                        other => {
                            return Err(format!(
                                "seed {seed}: finished write read back wrong: {other:?}"
                            ))
                        }
                    }
                }
                Err(_) if dest.exists() => {
                    std::fs::remove_file(&dest).ok();
                    return Err(format!(
                        "seed {seed}: failed write left a file under the destination name"
                    ));
                }
                Err(_) => classified += 1,
            }
        }
        Ok(())
    };
    let result = run();
    faults::set_seed(None);
    std::fs::remove_file(&src).ok();
    result?;
    println!(
        "fault sweep: {seeds} seeds x 2 legs -> {clean} clean runs, \
         {classified} classified errors, 0 wrong answers"
    );
    Ok(())
}

//! Hand-rolled TCP front: blocking accept loop, a bounded hand-off queue,
//! and a fixed pool of connection workers — no external runtime, matching
//! the workspace's no-dependency posture.
//!
//! Each worker owns one connection at a time and answers frames until the
//! peer closes. Malformed frames (bad length prefix, bad record count,
//! unknown opcode, non-finite weight) are answered with a one-record
//! protocol **error frame** (tag 3) before the connection closes, and bump
//! the `serve-bad-frames` counter — the peer learns its request was
//! malformed instead of watching the socket drop. Workers additionally
//! wrap each connection in `catch_unwind`, so a panic anywhere in the
//! answer path costs one connection, never a pool thread.
//!
//! Three robustness properties are load-bearing under faults
//! ([`ServerConfig`] holds the knobs):
//!
//! - **Deadlines**: every accepted socket gets `read_timeout` /
//!   `write_timeout`, so a peer that opens a connection and trickles (or
//!   never sends) a frame — the slow-loris shape — frees its worker within
//!   the deadline instead of pinning it forever. A timed-out read closes
//!   the connection without an error frame and bumps `serve-timeouts`.
//! - **Shedding**: the hand-off queue is bounded at `queue_cap`. When all
//!   workers are busy and the queue is full, the accept loop answers the
//!   new connection with a one-record **overloaded frame** (tag 4,
//!   `retry_after_ms`) and closes it — callers back off and retry instead
//!   of queueing unboundedly; `serve-shed` counts them.
//! - **Graceful drain**: a `shutdown` query stops the accept loop (a
//!   loopback connect unblocks it), the queue closes, and workers finish
//!   their queued connections before the server returns. The read deadline
//!   doubles as the drain bound: an idle keep-alive peer cannot stall
//!   shutdown longer than `read_timeout`.
//!
//! Under an active `LLP_FAULT_SEED` (the `faults` feature), roughly one
//! accepted connection in five has its socket halves wrapped in the
//! fault-injecting [`Faulty`] adapter, so short reads, `Interrupted`,
//! `WouldBlock`, and mid-stream truncation exercise these paths in-process.

use crate::protocol::{
    decode_queries, encode_error_response, encode_overloaded_response, encode_responses,
    read_frame, write_frame, Query, MAX_PAYLOAD,
};
use crate::service::MsfService;
use llp_runtime::faults::{self, Faulty};
use llp_runtime::sync::{Condvar, Mutex};
use llp_runtime::telemetry;
use std::collections::VecDeque;
use std::io::{BufReader, BufWriter, ErrorKind};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Worker-pool size, per-connection deadlines, and load-shedding knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connection workers (minimum 1).
    pub workers: usize,
    /// Per-socket read deadline. `None` disables the deadline — and with
    /// it the slow-loris defence and the drain bound; tests only.
    pub read_timeout: Option<Duration>,
    /// Per-socket write deadline (a peer that stops draining its receive
    /// buffer would otherwise block the worker in `write_all`).
    pub write_timeout: Option<Duration>,
    /// Accepted connections allowed to wait for a worker before the
    /// accept loop sheds new arrivals with the overloaded frame.
    pub queue_cap: usize,
    /// Retry delay suggested in the overloaded frame, milliseconds.
    pub retry_after_ms: u32,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            queue_cap: 64,
            retry_after_ms: 100,
        }
    }
}

impl ServerConfig {
    /// Default deadlines and queue bound with an explicit pool size.
    pub fn with_workers(workers: usize) -> ServerConfig {
        ServerConfig {
            workers,
            ..ServerConfig::default()
        }
    }
}

/// Accepted connections waiting for a worker, bounded at `cap`.
struct ConnQueue {
    cap: usize,
    state: Mutex<(VecDeque<TcpStream>, bool)>,
    ready: Condvar,
}

impl ConnQueue {
    fn new(cap: usize) -> ConnQueue {
        ConnQueue {
            cap: cap.max(1),
            state: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
        }
    }

    /// Hands the connection to a worker, or returns it when the queue is
    /// full (or closed) so the caller can shed it.
    fn try_push(&self, conn: TcpStream) -> Result<(), TcpStream> {
        let mut s = self.state.lock();
        if s.1 || s.0.len() >= self.cap {
            return Err(conn);
        }
        s.0.push_back(conn);
        drop(s);
        self.ready.notify_one();
        Ok(())
    }

    fn close(&self) {
        self.state.lock().1 = true;
        self.ready.notify_all();
    }

    /// Next connection, or `None` once closed and drained.
    fn pop(&self) -> Option<TcpStream> {
        let mut s = self.state.lock();
        loop {
            if let Some(conn) = s.0.pop_front() {
                return Some(conn);
            }
            if s.1 {
                return None;
            }
            self.ready.wait(&mut s);
        }
    }
}

/// Serves `service` on `listener` under `cfg`. Blocks until a client
/// sends a `shutdown` query, then drains queued connections; returns the
/// number of connections accepted for service (shed connections excluded).
pub fn run_server(
    listener: TcpListener,
    service: Arc<MsfService>,
    cfg: ServerConfig,
) -> std::io::Result<usize> {
    let addr = listener.local_addr()?;
    let queue = Arc::new(ConnQueue::new(cfg.queue_cap));
    let shutdown = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..cfg.workers.max(1))
        .map(|_| {
            let queue = Arc::clone(&queue);
            let service = Arc::clone(&service);
            let shutdown = Arc::clone(&shutdown);
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                while let Some(conn) = queue.pop() {
                    // A panic while answering must cost one connection,
                    // not this worker: a dead worker silently and
                    // permanently shrinks the pool.
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        handle_connection(conn, &service, &shutdown, addr, &cfg);
                    }));
                    if outcome.is_err() {
                        telemetry::counter_add("serve-worker-panics", 1);
                    }
                }
            })
        })
        .collect();

    let mut accepted = 0usize;
    loop {
        let (conn, _) = listener.accept()?;
        if shutdown.load(Ordering::Acquire) {
            // The unblocking loopback connect (or any straggler): drop it.
            break;
        }
        match queue.try_push(conn) {
            Ok(()) => accepted += 1,
            Err(conn) => shed(conn, &cfg),
        }
    }
    queue.close();
    for h in handles {
        let _ = h.join();
    }
    Ok(accepted)
}

/// Tells an un-serveable connection to back off: one overloaded frame
/// (best effort, under a short write deadline so a non-draining peer
/// cannot stall the accept loop), then close.
fn shed(conn: TcpStream, cfg: &ServerConfig) {
    telemetry::counter_add("serve-shed", 1);
    let deadline = cfg
        .write_timeout
        .unwrap_or(Duration::from_secs(1))
        .min(Duration::from_secs(1));
    conn.set_write_timeout(Some(deadline)).ok();
    conn.set_nodelay(true).ok();
    let mut out = Vec::new();
    encode_overloaded_response(&mut out, cfg.retry_after_ms);
    let mut conn = conn;
    let _ = write_frame(&mut conn, &out);
}

/// Answers frames on one connection until EOF, deadline, error, or
/// shutdown.
fn handle_connection(
    conn: TcpStream,
    service: &MsfService,
    shutdown: &AtomicBool,
    addr: SocketAddr,
    cfg: &ServerConfig,
) {
    // One syscall per frame and no Nagle delay: without both, the
    // two-write frame encoding stalls ~40 ms per round-trip on loopback
    // (Nagle holding the payload until the peer's delayed ACK).
    conn.set_nodelay(true).ok();
    // The deadlines that make a slow or stalled peer cost a bounded slice
    // of one worker instead of the whole worker forever.
    conn.set_read_timeout(cfg.read_timeout).ok();
    conn.set_write_timeout(cfg.write_timeout).ok();
    let Ok(read_half) = conn.try_clone() else {
        return;
    };
    // Under an active fault seed, ~1 in 5 connections gets socket faults
    // (both halves share the gate draw; the masks are identical).
    let classes = faults::connection_classes(faults::SOCK_READ);
    let mut reader = BufReader::new(Faulty::new(read_half, "serve.sock-read", classes));
    let mut writer = BufWriter::new(Faulty::new(conn, "serve.sock-write", classes));
    let mut out = Vec::new();
    loop {
        let payload = match read_frame(&mut reader, MAX_PAYLOAD) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean EOF
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // Read deadline hit: slow-loris (or just idle) peer. The
                // stream position is mid-frame or unknown, so no error
                // frame — reap the connection and free the worker.
                telemetry::counter_add("serve-timeouts", 1);
                return;
            }
            Err(_) => {
                // Stream position is unknowable after a framing error:
                // answer with the error frame, then close.
                telemetry::counter_add("serve-bad-frames", 1);
                encode_error_response(&mut out);
                let _ = write_frame(&mut writer, &out);
                return;
            }
        };
        let queries = match decode_queries(&payload) {
            Ok(q) => q,
            Err(_) => {
                telemetry::counter_add("serve-bad-frames", 1);
                encode_error_response(&mut out);
                let _ = write_frame(&mut writer, &out);
                return;
            }
        };
        let stop = queries.contains(&Query::Shutdown);
        let responses = service.answer_batch(&queries);
        encode_responses(&responses, &mut out);
        if write_frame(&mut writer, &out).is_err() {
            return;
        }
        if stop {
            initiate_shutdown(shutdown, addr);
            return;
        }
    }
}

/// Flags shutdown and unblocks the accept loop with a loopback connect.
fn initiate_shutdown(shutdown: &AtomicBool, addr: SocketAddr) {
    shutdown.store(true, Ordering::Release);
    let _ = TcpStream::connect(addr);
}

//! Hand-rolled TCP front: blocking accept loop, a bounded hand-off queue,
//! and a fixed pool of connection workers — no external runtime, matching
//! the workspace's no-dependency posture.
//!
//! Each worker owns one connection at a time and answers frames until the
//! peer closes. Malformed frames (bad length prefix, bad record count,
//! unknown opcode, non-finite weight) are answered with a one-record
//! protocol **error frame** (tag 3) before the connection closes, and bump
//! the `serve-bad-frames` counter — the peer learns its request was
//! malformed instead of watching the socket drop. Workers additionally
//! wrap each connection in `catch_unwind`, so a panic anywhere in the
//! answer path costs one connection, never a pool thread. A `shutdown`
//! query acknowledges, then stops the accept loop (a loopback connect
//! unblocks it) and drains the workers.

use crate::protocol::{
    decode_queries, encode_error_response, encode_responses, read_frame, write_frame, Query,
    MAX_PAYLOAD,
};
use crate::service::MsfService;
use llp_runtime::sync::{Condvar, Mutex};
use llp_runtime::telemetry;
use std::collections::VecDeque;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Accepted connections waiting for a worker.
struct ConnQueue {
    state: Mutex<(VecDeque<TcpStream>, bool)>,
    ready: Condvar,
}

impl ConnQueue {
    fn new() -> ConnQueue {
        ConnQueue {
            state: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
        }
    }

    fn push(&self, conn: TcpStream) {
        self.state.lock().0.push_back(conn);
        self.ready.notify_one();
    }

    fn close(&self) {
        self.state.lock().1 = true;
        self.ready.notify_all();
    }

    /// Next connection, or `None` once closed and drained.
    fn pop(&self) -> Option<TcpStream> {
        let mut s = self.state.lock();
        loop {
            if let Some(conn) = s.0.pop_front() {
                return Some(conn);
            }
            if s.1 {
                return None;
            }
            self.ready.wait(&mut s);
        }
    }
}

/// Serves `service` on `listener` with `workers` connection workers.
/// Blocks until a client sends a `shutdown` query; returns the number of
/// connections accepted.
pub fn run_server(
    listener: TcpListener,
    service: Arc<MsfService>,
    workers: usize,
) -> std::io::Result<usize> {
    let addr = listener.local_addr()?;
    let queue = Arc::new(ConnQueue::new());
    let shutdown = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..workers.max(1))
        .map(|_| {
            let queue = Arc::clone(&queue);
            let service = Arc::clone(&service);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                while let Some(conn) = queue.pop() {
                    // A panic while answering must cost one connection,
                    // not this worker: a dead worker silently and
                    // permanently shrinks the pool.
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        handle_connection(conn, &service, &shutdown, addr);
                    }));
                    if outcome.is_err() {
                        telemetry::counter_add("serve-worker-panics", 1);
                    }
                }
            })
        })
        .collect();

    let mut accepted = 0usize;
    loop {
        let (conn, _) = listener.accept()?;
        if shutdown.load(Ordering::Acquire) {
            // The unblocking loopback connect (or any straggler): drop it.
            break;
        }
        accepted += 1;
        queue.push(conn);
    }
    queue.close();
    for h in handles {
        let _ = h.join();
    }
    Ok(accepted)
}

/// Answers frames on one connection until EOF, error, or shutdown.
fn handle_connection(
    conn: TcpStream,
    service: &MsfService,
    shutdown: &AtomicBool,
    addr: SocketAddr,
) {
    // One syscall per frame and no Nagle delay: without both, the
    // two-write frame encoding stalls ~40 ms per round-trip on loopback
    // (Nagle holding the payload until the peer's delayed ACK).
    conn.set_nodelay(true).ok();
    let Ok(read_half) = conn.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(conn);
    let mut out = Vec::new();
    loop {
        let payload = match read_frame(&mut reader, MAX_PAYLOAD) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean EOF
            Err(_) => {
                // Stream position is unknowable after a framing error:
                // answer with the error frame, then close.
                telemetry::counter_add("serve-bad-frames", 1);
                encode_error_response(&mut out);
                let _ = write_frame(&mut writer, &out);
                return;
            }
        };
        let queries = match decode_queries(&payload) {
            Ok(q) => q,
            Err(_) => {
                telemetry::counter_add("serve-bad-frames", 1);
                encode_error_response(&mut out);
                let _ = write_frame(&mut writer, &out);
                return;
            }
        };
        let stop = queries.contains(&Query::Shutdown);
        let responses = service.answer_batch(&queries);
        encode_responses(&responses, &mut out);
        if write_frame(&mut writer, &out).is_err() {
            return;
        }
        if stop {
            initiate_shutdown(shutdown, addr);
            return;
        }
    }
}

/// Flags shutdown and unblocks the accept loop with a loopback connect.
fn initiate_shutdown(shutdown: &AtomicBool, addr: SocketAddr) {
    shutdown.store(true, Ordering::Release);
    let _ = TcpStream::connect(addr);
}

//! Client-side retry: full-jitter exponential backoff and a reconnecting
//! wire client.
//!
//! A hardened server sheds load (the tag-4 overloaded frame), reaps slow
//! connections at its read deadline, and — under fault injection — sees
//! sockets fail mid-frame. A correct client treats all of those as
//! *transient*: reconnect, back off, resend. [`RetryPolicy`] is the
//! backoff schedule (AWS-style full jitter: uniform in
//! `(0, min(cap, base·2^attempt))`, floored at the server's `retry_after`
//! hint when one arrived); [`RetryingClient`] is a one-frame-at-a-time
//! client that applies it.
//!
//! Retrying is safe here because every query the load generator sends is
//! a read (`component` / `path_max` / `connected_under` / `info` /
//! `epoch` / `status`) — idempotent by construction. A client issuing
//! `insert`/`delete` through this path would have to tolerate duplicate
//! application (the dynamic engine treats a duplicate insert as a no-op
//! edge replace, so in practice it does).

use crate::protocol::{
    decode_responses, encode_queries, read_frame, write_frame, Query, RecvError, Response,
    MAX_PAYLOAD,
};
use llp_runtime::rng::SmallRng;
use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use std::time::Duration;

/// Backoff schedule for transient wire failures.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries allowed per exchange before giving up (the first attempt
    /// is free; `max_retries = 0` disables retrying).
    pub max_retries: u32,
    /// First-retry backoff ceiling; doubles per retry.
    pub base: Duration,
    /// Backoff ceiling regardless of attempt count.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 8,
            base: Duration::from_millis(5),
            cap: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `attempt` (0-based), or `None` once
    /// the budget is spent. Full jitter — uniform in `(0, ceiling)` —
    /// decorrelates clients that were shed together, so they do not
    /// stampede back in lockstep; the server's `retry_after` hint, when
    /// present, floors the draw.
    pub fn backoff(
        &self,
        attempt: u32,
        hint_ms: Option<u32>,
        rng: &mut SmallRng,
    ) -> Option<Duration> {
        if attempt >= self.max_retries {
            return None;
        }
        let ceiling = (self.base.as_secs_f64() * f64::from(1u32 << attempt.min(20)))
            .min(self.cap.as_secs_f64());
        let jittered = Duration::from_secs_f64(ceiling * rng.gen::<f64>());
        let floor = Duration::from_millis(u64::from(hint_ms.unwrap_or(0)));
        Some(jittered.max(floor))
    }
}

/// Why one exchange attempt failed (all shapes are retried).
#[derive(Debug)]
enum AttemptError {
    /// Connect/send/recv I/O failure, or the server closed mid-exchange.
    Io(String),
    /// The server shed us with the overloaded frame.
    Overloaded(u32),
    /// The reply did not decode (includes the server's tag-3 error frame,
    /// which fault injection can trigger by truncating our request
    /// mid-frame on the server's side of the socket).
    Proto(String),
}

impl std::fmt::Display for AttemptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttemptError::Io(e) => write!(f, "i/o: {e}"),
            AttemptError::Overloaded(ms) => write!(f, "overloaded (retry after {ms} ms)"),
            AttemptError::Proto(e) => write!(f, "{e}"),
        }
    }
}

/// A reconnecting request/response client: one frame in flight at a time,
/// transparent reconnect + backoff on any transient failure.
pub struct RetryingClient {
    addr: String,
    policy: RetryPolicy,
    rng: SmallRng,
    conn: Option<(BufReader<TcpStream>, BufWriter<TcpStream>)>,
    payload: Vec<u8>,
    /// Total retries performed over this client's lifetime.
    pub retries: u64,
}

impl RetryingClient {
    /// A client for `addr`. Connection is lazy — the first [`exchange`]
    /// dials (and even the dial is retried under the policy).
    ///
    /// [`exchange`]: RetryingClient::exchange
    pub fn new(addr: &str, policy: RetryPolicy, jitter_seed: u64) -> RetryingClient {
        RetryingClient {
            addr: addr.to_string(),
            policy,
            rng: SmallRng::seed_from_u64(jitter_seed),
            conn: None,
            payload: Vec::new(),
            retries: 0,
        }
    }

    fn stream(
        &mut self,
    ) -> Result<&mut (BufReader<TcpStream>, BufWriter<TcpStream>), AttemptError> {
        if self.conn.is_none() {
            let conn = TcpStream::connect(&self.addr)
                .map_err(|e| AttemptError::Io(format!("connect {}: {e}", self.addr)))?;
            conn.set_nodelay(true).ok();
            let read_half = conn
                .try_clone()
                .map_err(|e| AttemptError::Io(e.to_string()))?;
            self.conn = Some((BufReader::new(read_half), BufWriter::new(conn)));
        }
        Ok(self.conn.as_mut().unwrap())
    }

    fn try_exchange(&mut self, batch: &[Query]) -> Result<Vec<Response>, AttemptError> {
        encode_queries(batch, &mut self.payload);
        let payload = std::mem::take(&mut self.payload);
        let result = (|| {
            let (reader, writer) = self.stream()?;
            write_frame(writer, &payload).map_err(|e| AttemptError::Io(format!("send: {e}")))?;
            let reply = read_frame(reader, MAX_PAYLOAD)
                .map_err(|e| AttemptError::Io(format!("recv: {e}")))?
                .ok_or_else(|| AttemptError::Io("server closed the connection".into()))?;
            decode_responses(&reply, batch).map_err(|e| match e {
                RecvError::Overloaded { retry_after_ms } => AttemptError::Overloaded(retry_after_ms),
                RecvError::Proto(p) => AttemptError::Proto(p.to_string()),
            })
        })();
        self.payload = payload;
        result
    }

    /// Sends `batch` and returns the decoded responses, reconnecting and
    /// backing off across transient failures until the policy's retry
    /// budget is spent.
    pub fn exchange(&mut self, batch: &[Query]) -> Result<Vec<Response>, String> {
        let mut attempt = 0u32;
        loop {
            match self.try_exchange(batch) {
                Ok(r) => return Ok(r),
                Err(e) => {
                    // Whatever went wrong, the connection's framing state
                    // is suspect: start the next attempt on a fresh dial.
                    self.conn = None;
                    let hint = match e {
                        AttemptError::Overloaded(ms) => Some(ms),
                        _ => None,
                    };
                    let Some(delay) = self.policy.backoff(attempt, hint, &mut self.rng) else {
                        return Err(format!(
                            "{}: giving up after {attempt} retries: {e}",
                            self.addr
                        ));
                    };
                    attempt += 1;
                    self.retries += 1;
                    std::thread::sleep(delay);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_bounded_and_exhausts() {
        let p = RetryPolicy::default();
        let mut rng = SmallRng::seed_from_u64(7);
        for attempt in 0..p.max_retries {
            let d = p.backoff(attempt, None, &mut rng).unwrap();
            assert!(d <= p.cap, "attempt {attempt}: {d:?}");
        }
        assert!(p.backoff(p.max_retries, None, &mut rng).is_none());
        assert!(p.backoff(u32::MAX, None, &mut rng).is_none());
    }

    #[test]
    fn backoff_ceiling_grows_with_attempts() {
        // The jitter draw is uniform in (0, ceiling): over many draws the
        // max observed sleep for a late attempt must exceed the *ceiling*
        // of the first attempt.
        let p = RetryPolicy {
            max_retries: 10,
            base: Duration::from_millis(8),
            cap: Duration::from_secs(4),
        };
        let mut rng = SmallRng::seed_from_u64(3);
        let max_late = (0..200)
            .map(|_| p.backoff(6, None, &mut rng).unwrap())
            .max()
            .unwrap();
        assert!(max_late > p.base, "{max_late:?}");
    }

    #[test]
    fn server_hint_floors_the_draw() {
        let p = RetryPolicy::default();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let d = p.backoff(0, Some(50), &mut rng).unwrap();
            assert!(d >= Duration::from_millis(50), "{d:?}");
        }
    }

    #[test]
    fn unreachable_address_exhausts_retries_with_io_error() {
        // Reserved TEST-NET-1 address: connect fails fast or times out;
        // either way the client reports exhaustion, not a panic or hang.
        let policy = RetryPolicy {
            max_retries: 2,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
        };
        let mut c = RetryingClient::new("127.0.0.1:1", policy, 9);
        let err = c.exchange(&[Query::Info]).unwrap_err();
        assert!(err.contains("giving up after 2 retries"), "{err}");
        assert_eq!(c.retries, 2);
    }
}

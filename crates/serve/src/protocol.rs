//! Wire protocol: length-prefixed batches of fixed-size query records.
//!
//! Everything is little-endian, mirroring the binary graph format. A
//! *frame* is a `u32` payload length followed by the payload; a payload is
//! a `u32` record count followed by that many 17-byte records. Requests
//! and responses use the same record shape (`tag: u8, a: u32, b: u32,
//! w: f64`), so one codec serves both directions:
//!
//! ```text
//! frame    := len: u32, payload[len]
//! payload  := count: u32, record × count
//! record   := tag: u8, a: u32, b: u32, w: f64     (17 bytes)
//! ```
//!
//! Request records (`tag` = opcode):
//!
//! | op | meaning | fields |
//! |---|---|---|
//! | 0 | `component(a)` | `a` = vertex |
//! | 1 | `path_max(a, b)` | bottleneck edge between `a` and `b` |
//! | 2 | `connected_under(a, b, w)` | single-linkage threshold `w` |
//! | 3 | `info` | graph/forest summary |
//! | 4 | `shutdown` | stop the server after acknowledging |
//! | 5 | `insert(a, b, w)` | queue edge insertion (dynamic servers) |
//! | 6 | `delete(a, b)` | queue edge deletion (dynamic servers) |
//! | 7 | `epoch` | latest certified epoch summary |
//! | 8 | `status` | server health: epoch, snapshot age, queue depth, degraded flag |
//!
//! Response records (`tag` = status): `1` = answer in `a`/`b`/`w`
//! (component id in `a`; bottleneck edge as `a`=lo, `b`=hi, `w`=weight;
//! connected-under true; info as `a`=n, `b`=trees, `w`=total weight;
//! insert/delete queued; epoch as `a`=epoch, `b`=trees, `w`=total
//! weight), `0` = negative answer (different trees / not connected under
//! λ), `2` = invalid query (vertex id out of range, self-loop update, or
//! an update sent to a static server).
//!
//! A request the server cannot *decode* is answered with a one-record
//! **error frame** (`tag` = `3`) before the connection closes — the peer
//! learns its frame was malformed instead of watching the socket drop.
//! A server shedding load answers the connection with a one-record
//! **overloaded frame** (`tag` = `4`, `a` = suggested retry delay in
//! milliseconds) before closing — the client should back off and retry
//! rather than treat the connection as failed. [`decode_responses`]
//! surfaces both as [`RecvError`] variants whatever the sent batch was.
//!
//! The decoder never trusts the peer: frames are capped at
//! [`MAX_BATCH`] records, the length prefix must agree with the record
//! count exactly, unknown opcodes are rejected, and `w` fields that
//! feed weight comparisons (`connected_under` λ, `insert` weight) must
//! be finite — a NaN λ would otherwise silently compare false on every
//! edge. The same hardened posture as `llp_graph::io::binary`.

use std::io::{Read, Write};

/// Maximum records per frame; bounds per-connection memory at ~1.1 MiB.
pub const MAX_BATCH: usize = 1 << 16;
/// Bytes per record.
pub const RECORD_BYTES: usize = 17;
/// Largest legal payload (count word + a full batch of records).
pub const MAX_PAYLOAD: usize = 4 + MAX_BATCH * RECORD_BYTES;

/// A client request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Query {
    /// Which tree of the forest does this vertex belong to?
    Component(u32),
    /// The bottleneck (maximum-key) edge on the tree path between two
    /// vertices.
    PathMax(u32, u32),
    /// Are the two vertices connected using only edges of weight ≤ λ?
    ConnectedUnder(u32, u32, f64),
    /// Graph/forest summary (n, number of trees, total MSF weight).
    Info,
    /// Acknowledge, then stop the server.
    Shutdown,
    /// Queue an edge insertion for the next dynamic epoch.
    Insert(u32, u32, f64),
    /// Queue an edge deletion for the next dynamic epoch.
    Delete(u32, u32),
    /// The latest certified epoch (number, trees, total weight).
    Epoch,
    /// Server health: epoch, snapshot age, update-queue depth, and
    /// whether the served snapshot is degraded (a later epoch failed).
    Status,
}

/// A server answer, in request order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Response {
    /// `component`: the dense tree id.
    Component(u32),
    /// `path_max`: the bottleneck edge `(lo, hi, weight)`, or `None`
    /// across trees (and for `u == v`).
    PathMax(Option<(u32, u32, f64)>),
    /// `connected_under`: the verdict.
    ConnectedUnder(bool),
    /// `info`: vertices, trees, total MSF weight.
    Info {
        /// Vertex count of the served graph.
        n: u32,
        /// Number of trees in the certified forest.
        trees: u32,
        /// Total weight of the certified forest.
        total_weight: f64,
    },
    /// `shutdown` acknowledged.
    ShuttingDown,
    /// `insert`/`delete`: queued; it will apply in a future epoch.
    Accepted,
    /// `epoch`: the latest certified epoch being served.
    Epoch {
        /// Epoch number (0 = the initial build).
        epoch: u32,
        /// Trees in that epoch's certified forest.
        trees: u32,
        /// Total weight of that epoch's certified forest.
        total_weight: f64,
    },
    /// `status`: observable server health, so degraded mode (serving a
    /// stale snapshot after a failed epoch) is visible rather than silent.
    Status {
        /// Epoch of the snapshot actually being served.
        epoch: u32,
        /// Pending updates queued for the next epoch (static servers: 0).
        queue_depth: u32,
        /// Seconds since the served snapshot was published.
        snapshot_age_s: f64,
        /// True when the last epoch build failed and queries are being
        /// answered from an older certified snapshot.
        degraded: bool,
    },
    /// The query named a vertex the graph does not have, inserted a
    /// self-loop, or sent an update to a static server.
    Invalid,
}

/// A malformed frame or record.
#[derive(Debug, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

fn push_record(out: &mut Vec<u8>, tag: u8, a: u32, b: u32, w: f64) {
    out.push(tag);
    out.extend_from_slice(&a.to_le_bytes());
    out.extend_from_slice(&b.to_le_bytes());
    out.extend_from_slice(&w.to_le_bytes());
}

fn split_record(rec: &[u8]) -> (u8, u32, u32, f64) {
    (
        rec[0],
        u32::from_le_bytes(rec[1..5].try_into().unwrap()),
        u32::from_le_bytes(rec[5..9].try_into().unwrap()),
        f64::from_le_bytes(rec[9..17].try_into().unwrap()),
    )
}

/// Serializes a batch of queries into a payload (no length prefix).
pub fn encode_queries(batch: &[Query], out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&(batch.len() as u32).to_le_bytes());
    for q in batch {
        match *q {
            Query::Component(u) => push_record(out, 0, u, 0, 0.0),
            Query::PathMax(u, v) => push_record(out, 1, u, v, 0.0),
            Query::ConnectedUnder(u, v, l) => push_record(out, 2, u, v, l),
            Query::Info => push_record(out, 3, 0, 0, 0.0),
            Query::Shutdown => push_record(out, 4, 0, 0, 0.0),
            Query::Insert(u, v, w) => push_record(out, 5, u, v, w),
            Query::Delete(u, v) => push_record(out, 6, u, v, 0.0),
            Query::Epoch => push_record(out, 7, 0, 0, 0.0),
            Query::Status => push_record(out, 8, 0, 0, 0.0),
        }
    }
}

/// Parses a request payload. Rejects length/count mismatches, oversized
/// batches, unknown opcodes, and non-finite `w` fields on the opcodes
/// that compare weights (`connected_under`, `insert`).
pub fn decode_queries(payload: &[u8]) -> Result<Vec<Query>, ProtoError> {
    let records = check_counts(payload)?;
    records
        .chunks_exact(RECORD_BYTES)
        .enumerate()
        .map(|(i, rec)| {
            let (op, a, b, w) = split_record(rec);
            let finite = |q: Query| {
                if w.is_finite() {
                    Ok(q)
                } else {
                    Err(ProtoError(format!(
                        "record #{i}: non-finite weight {w} (opcode {op})"
                    )))
                }
            };
            match op {
                0 => Ok(Query::Component(a)),
                1 => Ok(Query::PathMax(a, b)),
                2 => finite(Query::ConnectedUnder(a, b, w)),
                3 => Ok(Query::Info),
                4 => Ok(Query::Shutdown),
                5 => finite(Query::Insert(a, b, w)),
                6 => Ok(Query::Delete(a, b)),
                7 => Ok(Query::Epoch),
                8 => Ok(Query::Status),
                other => Err(ProtoError(format!("record #{i}: unknown opcode {other}"))),
            }
        })
        .collect()
}

/// Serializes a batch of responses into a payload (no length prefix).
pub fn encode_responses(batch: &[Response], out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&(batch.len() as u32).to_le_bytes());
    for r in batch {
        match *r {
            Response::Component(c) => push_record(out, 1, c, 0, 0.0),
            Response::PathMax(Some((lo, hi, w))) => push_record(out, 1, lo, hi, w),
            Response::PathMax(None) => push_record(out, 0, 0, 0, 0.0),
            Response::ConnectedUnder(yes) => push_record(out, u8::from(yes), 0, 0, 0.0),
            Response::Info {
                n,
                trees,
                total_weight,
            } => push_record(out, 1, n, trees, total_weight),
            Response::ShuttingDown => push_record(out, 1, 0, 0, 0.0),
            Response::Accepted => push_record(out, 1, 0, 0, 0.0),
            Response::Epoch {
                epoch,
                trees,
                total_weight,
            } => push_record(out, 1, epoch, trees, total_weight),
            Response::Status {
                epoch,
                queue_depth,
                snapshot_age_s,
                degraded,
            } => push_record(
                out,
                1,
                epoch,
                // Depth in the low 31 bits, degraded flag in the top bit.
                (queue_depth & 0x7FFF_FFFF) | (u32::from(degraded) << 31),
                snapshot_age_s,
            ),
            Response::Invalid => push_record(out, 2, 0, 0, 0.0),
        }
    }
}

/// Serializes the one-record error frame a server sends when it cannot
/// decode a request (tag [`STATUS_ERROR`]), just before closing the
/// connection.
pub fn encode_error_response(out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&1u32.to_le_bytes());
    push_record(out, STATUS_ERROR, 0, 0, 0.0);
}

/// Serializes the one-record overloaded frame a shedding server sends to
/// a connection it will not serve (tag [`STATUS_OVERLOADED`], `a` = the
/// suggested retry delay in milliseconds), just before closing it.
pub fn encode_overloaded_response(out: &mut Vec<u8>, retry_after_ms: u32) {
    out.clear();
    out.extend_from_slice(&1u32.to_le_bytes());
    push_record(out, STATUS_OVERLOADED, retry_after_ms, 0, 0.0);
}

/// Response tag of the malformed-request error frame.
pub const STATUS_ERROR: u8 = 3;
/// Response tag of the load-shedding frame (`a` = retry-after, ms).
pub const STATUS_OVERLOADED: u8 = 4;

/// Why a response payload did not decode into answers.
#[derive(Debug, PartialEq, Eq)]
pub enum RecvError {
    /// The payload is malformed, or the server said ours was
    /// (the tag-3 error frame).
    Proto(ProtoError),
    /// The server shed this connection (the tag-4 overloaded frame);
    /// retry after the suggested backoff instead of failing.
    Overloaded {
        /// Server-suggested retry delay in milliseconds.
        retry_after_ms: u32,
    },
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Proto(e) => write!(f, "{e}"),
            RecvError::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded; retry after {retry_after_ms} ms")
            }
        }
    }
}

impl std::error::Error for RecvError {}

impl From<ProtoError> for RecvError {
    fn from(e: ProtoError) -> Self {
        RecvError::Proto(e)
    }
}

/// Parses a response payload. Response records are positional — their
/// meaning depends on the query that prompted them — so the caller
/// supplies the queries it sent.
pub fn decode_responses(payload: &[u8], sent: &[Query]) -> Result<Vec<Response>, RecvError> {
    let records = check_counts(payload)?;
    let count = records.len() / RECORD_BYTES;
    // A one-record error or overloaded frame outranks positional
    // decoding: the server is talking about the connection, not
    // answering the batch.
    if count == 1 && records[0] == STATUS_ERROR {
        return Err(ProtoError("server rejected the request as malformed".into()).into());
    }
    if count == 1 && records[0] == STATUS_OVERLOADED {
        let (_, retry_after_ms, _, _) = split_record(records);
        return Err(RecvError::Overloaded { retry_after_ms });
    }
    if count != sent.len() {
        return Err(ProtoError(format!(
            "{count} responses to {} queries",
            sent.len()
        ))
        .into());
    }
    records
        .chunks_exact(RECORD_BYTES)
        .zip(sent)
        .enumerate()
        .map(|(i, (rec, q))| {
            let (tag, a, b, w) = split_record(rec);
            if tag == 2 {
                return Ok(Response::Invalid);
            }
            if tag > 2 {
                return Err(ProtoError(format!("record #{i}: unknown status {tag}")));
            }
            let yes = tag == 1;
            Ok(match *q {
                Query::Component(_) => Response::Component(a),
                Query::PathMax(..) => {
                    Response::PathMax(if yes { Some((a, b, w)) } else { None })
                }
                Query::ConnectedUnder(..) => Response::ConnectedUnder(yes),
                Query::Info => Response::Info {
                    n: a,
                    trees: b,
                    total_weight: w,
                },
                Query::Shutdown => Response::ShuttingDown,
                Query::Insert(..) | Query::Delete(..) => Response::Accepted,
                Query::Epoch => Response::Epoch {
                    epoch: a,
                    trees: b,
                    total_weight: w,
                },
                Query::Status => Response::Status {
                    epoch: a,
                    queue_depth: b & 0x7FFF_FFFF,
                    snapshot_age_s: w,
                    degraded: b >> 31 == 1,
                },
            })
        })
        .collect::<Result<Vec<_>, ProtoError>>()
        .map_err(Into::into)
}

/// Shared payload validation: count word present, count within
/// [`MAX_BATCH`], byte length exactly `4 + 17·count`. Returns the record
/// bytes.
fn check_counts(payload: &[u8]) -> Result<&[u8], ProtoError> {
    if payload.len() < 4 {
        return Err(ProtoError(format!(
            "payload of {} bytes cannot hold a record count",
            payload.len()
        )));
    }
    let count = u32::from_le_bytes(payload[..4].try_into().unwrap()) as usize;
    if count > MAX_BATCH {
        return Err(ProtoError(format!(
            "batch of {count} records exceeds the {MAX_BATCH}-record cap"
        )));
    }
    let records = &payload[4..];
    if records.len() != count * RECORD_BYTES {
        return Err(ProtoError(format!(
            "count {count} disagrees with payload length ({} record bytes, \
             expected {})",
            records.len(),
            count * RECORD_BYTES
        )));
    }
    Ok(records)
}

/// Writes one frame (length prefix + payload).
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame's payload. `Ok(None)` on clean EOF at a frame
/// boundary; errors on truncation mid-frame or a length prefix beyond
/// `max_payload`.
pub fn read_frame<R: Read>(r: &mut R, max_payload: usize) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > max_payload {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max_payload}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_round_trip() {
        let batch = vec![
            Query::Component(7),
            Query::PathMax(1, 9),
            Query::ConnectedUnder(3, 4, 0.25),
            Query::Info,
            Query::Shutdown,
        ];
        let mut buf = Vec::new();
        encode_queries(&batch, &mut buf);
        assert_eq!(decode_queries(&buf).unwrap(), batch);
    }

    #[test]
    fn responses_round_trip() {
        let sent = vec![
            Query::Component(7),
            Query::PathMax(1, 9),
            Query::PathMax(1, 1),
            Query::ConnectedUnder(3, 4, 0.25),
            Query::Info,
            Query::Component(99),
        ];
        let batch = vec![
            Response::Component(3),
            Response::PathMax(Some((1, 9, 0.5))),
            Response::PathMax(None),
            Response::ConnectedUnder(true),
            Response::Info {
                n: 100,
                trees: 2,
                total_weight: 41.5,
            },
            Response::Invalid,
        ];
        let mut buf = Vec::new();
        encode_responses(&batch, &mut buf);
        assert_eq!(decode_responses(&buf, &sent).unwrap(), batch);
    }

    #[test]
    fn rejects_malformed_payloads() {
        // Too short for a count.
        assert!(decode_queries(&[1, 2]).is_err());
        // Count disagrees with length.
        let mut buf = Vec::new();
        encode_queries(&[Query::Info], &mut buf);
        buf.truncate(buf.len() - 1);
        assert!(decode_queries(&buf).is_err());
        // Oversized batch claim.
        let mut huge = ((MAX_BATCH + 1) as u32).to_le_bytes().to_vec();
        huge.extend_from_slice(&[0u8; RECORD_BYTES]);
        assert!(decode_queries(&huge).is_err());
        // Unknown opcode.
        let mut bad = 1u32.to_le_bytes().to_vec();
        bad.extend_from_slice(&[200u8; RECORD_BYTES]);
        assert!(decode_queries(&bad).is_err());
    }

    #[test]
    fn dynamic_opcodes_round_trip() {
        let sent = vec![
            Query::Insert(3, 9, 0.75),
            Query::Delete(4, 5),
            Query::Epoch,
            Query::Insert(0, 99, 1.0),
        ];
        let mut buf = Vec::new();
        encode_queries(&sent, &mut buf);
        assert_eq!(decode_queries(&buf).unwrap(), sent);

        let batch = vec![
            Response::Accepted,
            Response::Accepted,
            Response::Epoch {
                epoch: 12,
                trees: 3,
                total_weight: 9.5,
            },
            Response::Invalid,
        ];
        encode_responses(&batch, &mut buf);
        assert_eq!(decode_responses(&buf, &sent).unwrap(), batch);
    }

    #[test]
    fn non_finite_weights_are_rejected_at_decode() {
        let mut buf = Vec::new();
        for q in [
            Query::ConnectedUnder(0, 1, f64::NAN),
            Query::ConnectedUnder(0, 1, f64::INFINITY),
            Query::Insert(0, 1, f64::NAN),
            Query::Insert(0, 1, f64::NEG_INFINITY),
        ] {
            encode_queries(&[q], &mut buf);
            let err = decode_queries(&buf).unwrap_err();
            assert!(err.0.contains("non-finite"), "{err}");
        }
        // A finite λ still decodes.
        encode_queries(&[Query::ConnectedUnder(0, 1, 0.5)], &mut buf);
        assert!(decode_queries(&buf).is_ok());
    }

    #[test]
    fn error_frame_decodes_to_a_protocol_error() {
        let mut buf = Vec::new();
        encode_error_response(&mut buf);
        // Whatever we sent, the error frame wins.
        for sent in [vec![Query::Info], vec![Query::Component(0); 3]] {
            match decode_responses(&buf, &sent).unwrap_err() {
                RecvError::Proto(e) => assert!(e.0.contains("malformed"), "{e}"),
                other => panic!("expected Proto, got {other:?}"),
            }
        }
    }

    #[test]
    fn overloaded_frame_decodes_with_retry_hint() {
        let mut buf = Vec::new();
        encode_overloaded_response(&mut buf, 250);
        for sent in [vec![Query::Info], vec![Query::Component(0); 3]] {
            assert_eq!(
                decode_responses(&buf, &sent).unwrap_err(),
                RecvError::Overloaded { retry_after_ms: 250 }
            );
        }
    }

    #[test]
    fn status_round_trips_including_degraded_flag() {
        let sent = vec![Query::Status, Query::Status];
        let mut buf = Vec::new();
        encode_queries(&sent, &mut buf);
        assert_eq!(decode_queries(&buf).unwrap(), sent);
        let batch = vec![
            Response::Status {
                epoch: 12,
                queue_depth: 345,
                snapshot_age_s: 1.75,
                degraded: false,
            },
            Response::Status {
                epoch: 11,
                queue_depth: 0x7FFF_FFFF,
                snapshot_age_s: 600.0,
                degraded: true,
            },
        ];
        encode_responses(&batch, &mut buf);
        assert_eq!(decode_responses(&buf, &sent).unwrap(), batch);
    }

    #[test]
    fn frames_round_trip_and_cap() {
        let mut buf = Vec::new();
        encode_queries(&[Query::Component(1)], &mut buf);
        let mut wire = Vec::new();
        write_frame(&mut wire, &buf).unwrap();
        let mut cursor = wire.as_slice();
        assert_eq!(read_frame(&mut cursor, MAX_PAYLOAD).unwrap().unwrap(), buf);
        assert!(read_frame(&mut cursor, MAX_PAYLOAD).unwrap().is_none());

        // A frame longer than the cap is refused before allocation.
        let wire = (u32::MAX).to_le_bytes();
        assert!(read_frame(&mut wire.as_slice(), MAX_PAYLOAD).is_err());
    }

    #[test]
    fn truncated_frame_is_an_error_not_eof() {
        let mut buf = Vec::new();
        encode_queries(&[Query::Info], &mut buf);
        let mut wire = Vec::new();
        write_frame(&mut wire, &buf).unwrap();
        wire.truncate(wire.len() - 2);
        assert!(read_frame(&mut wire.as_slice(), MAX_PAYLOAD).is_err());
    }
}

//! Framing fuzz: every truncation and every single-byte corruption of a
//! request frame, fired at a live single-worker server — the peer must
//! always get a protocol-error frame or a clean close (never a hang,
//! never a worker death), and the worker must answer correctly
//! afterwards. The response decoder gets the same treatment as a pure
//! function: truncations and bit flips at every byte boundary must
//! return `Err` or a decoded value, never panic.

use llp_graph::generators::erdos_renyi;
use llp_runtime::ThreadPool;
use llp_serve::protocol::{
    decode_responses, encode_queries, encode_responses, read_frame, write_frame, Query,
    RecvError, Response, MAX_PAYLOAD,
};
use llp_serve::server::{run_server, ServerConfig};
use llp_serve::service::MsfService;
use std::io::{BufReader, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// A single-worker server with a short read deadline, so a fuzz case
/// that leaves the server waiting for more bytes resolves in ~250 ms
/// instead of the default 30 s.
fn start() -> (
    String,
    Arc<MsfService>,
    std::thread::JoinHandle<std::io::Result<usize>>,
) {
    let graph = erdos_renyi(100, 180, 3);
    let pool = ThreadPool::new(2);
    let service = Arc::new(MsfService::build(&graph, &pool).unwrap());
    drop(pool);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = {
        let service = Arc::clone(&service);
        let cfg = ServerConfig {
            workers: 1,
            read_timeout: Some(Duration::from_millis(250)),
            queue_cap: 256,
            ..ServerConfig::default()
        };
        std::thread::spawn(move || run_server(listener, service, cfg))
    };
    (addr, service, server)
}

/// The canonical request frame the fuzz mutates: length prefix included.
fn canonical_wire() -> Vec<u8> {
    let batch = [
        Query::Component(7),
        Query::PathMax(1, 9),
        Query::ConnectedUnder(3, 4, 0.25),
    ];
    let mut payload = Vec::new();
    encode_queries(&batch, &mut payload);
    let mut wire = Vec::new();
    write_frame(&mut wire, &payload).unwrap();
    wire
}

/// Sends raw bytes, half-closes the write side, and classifies the
/// server's reaction. Returns what the peer observed; panics on the one
/// unacceptable outcome — an unbounded hang (the client read deadline
/// plus the server's own deadline bound every path).
fn poke(addr: &str, bytes: &[u8]) -> &'static str {
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // The peer may have closed already (e.g. an error frame for a
    // violated length prefix sent before we finish writing): a send
    // error is an acceptable observation, not a test failure.
    if conn.write_all(bytes).is_err() {
        return "send-failed";
    }
    conn.shutdown(Shutdown::Write).ok();
    let mut reader = BufReader::new(conn);
    match read_frame(&mut reader, MAX_PAYLOAD) {
        // Clean close with no reply: the server reaped or EOF'd us.
        Ok(None) => "closed",
        Ok(Some(reply)) => match decode_responses(&reply, &[Query::Info]) {
            Err(RecvError::Proto(_)) => "error-frame",
            Err(RecvError::Overloaded { .. }) => "overloaded-frame",
            // A reply that decodes positionally can only happen when the
            // mutation left the frame valid (e.g. flipping a vertex-id
            // byte); that is a correct answer to the mutated question.
            Ok(_) => "answered",
        },
        // Connection reset mid-read: the server closed hard. Bounded and
        // classified — acceptable.
        Err(_) => "reset",
    }
}

#[test]
fn every_truncation_gets_a_bounded_classified_reaction() {
    let (addr, service, server) = start();
    let wire = canonical_wire();
    let mut seen_error_frames = 0u32;
    for cut in 0..wire.len() {
        let outcome = poke(&addr, &wire[..cut]);
        if outcome == "error-frame" {
            seen_error_frames += 1;
        }
        assert!(
            matches!(outcome, "closed" | "error-frame" | "reset" | "send-failed"),
            "truncation at {cut}: unexpected outcome {outcome}"
        );
    }
    // Truncations inside the payload (after a full length prefix) are
    // mid-frame EOFs: the server must answer those with the error frame,
    // not just drop the socket.
    assert!(
        seen_error_frames >= wire.len() as u32 / 2,
        "only {seen_error_frames} error frames across {} truncations",
        wire.len()
    );

    // The single worker survived every mutation and still answers.
    let mut conn = TcpStream::connect(&addr).unwrap();
    let mut payload = Vec::new();
    encode_queries(&[Query::Component(0)], &mut payload);
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    write_frame(&mut conn, &payload).unwrap();
    let reply = read_frame(&mut reader, MAX_PAYLOAD).unwrap().unwrap();
    assert_eq!(
        decode_responses(&reply, &[Query::Component(0)]).unwrap(),
        vec![service.answer(&Query::Component(0))]
    );
    drop((conn, reader));

    let mut conn = TcpStream::connect(&addr).unwrap();
    encode_queries(&[Query::Shutdown], &mut payload);
    write_frame(&mut conn, &payload).unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn every_single_byte_corruption_gets_a_bounded_classified_reaction() {
    let (addr, service, server) = start();
    let wire = canonical_wire();
    for i in 0..wire.len() {
        let mut mutated = wire.clone();
        mutated[i] ^= 0xFF;
        let outcome = poke(&addr, &mutated);
        // "answered" is legal: flipping e.g. a vertex-id byte yields a
        // different but well-formed request. What must never happen is a
        // hang or a dead worker — both would fail below.
        assert!(
            matches!(
                outcome,
                "closed" | "error-frame" | "reset" | "send-failed" | "answered"
            ),
            "corruption at {i}: unexpected outcome {outcome}"
        );
    }

    // Worker alive and correct after the whole sweep.
    let mut conn = TcpStream::connect(&addr).unwrap();
    let mut payload = Vec::new();
    encode_queries(&[Query::PathMax(1, 50)], &mut payload);
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    write_frame(&mut conn, &payload).unwrap();
    let reply = read_frame(&mut reader, MAX_PAYLOAD).unwrap().unwrap();
    assert_eq!(
        decode_responses(&reply, &[Query::PathMax(1, 50)]).unwrap(),
        vec![service.answer(&Query::PathMax(1, 50))]
    );
    drop((conn, reader));

    let mut conn = TcpStream::connect(&addr).unwrap();
    encode_queries(&[Query::Shutdown], &mut payload);
    write_frame(&mut conn, &payload).unwrap();
    server.join().unwrap().unwrap();
}

#[test]
fn response_decoder_survives_every_truncation_and_bit_flip() {
    let sent = vec![
        Query::Component(7),
        Query::PathMax(1, 9),
        Query::ConnectedUnder(3, 4, 0.25),
        Query::Info,
        Query::Epoch,
        Query::Status,
    ];
    let batch = vec![
        Response::Component(3),
        Response::PathMax(Some((1, 9, 0.5))),
        Response::ConnectedUnder(true),
        Response::Info {
            n: 100,
            trees: 2,
            total_weight: 41.5,
        },
        Response::Epoch {
            epoch: 4,
            trees: 2,
            total_weight: 41.5,
        },
        Response::Status {
            epoch: 4,
            queue_depth: 17,
            snapshot_age_s: 0.25,
            degraded: false,
        },
    ];
    let mut payload = Vec::new();
    encode_responses(&batch, &mut payload);

    // Every truncation is malformed (count word disagrees with length):
    // must be an Err, never a panic or a partial decode.
    for cut in 0..payload.len() {
        assert!(
            decode_responses(&payload[..cut], &sent).is_err(),
            "truncation at {cut} decoded"
        );
    }
    // Every single-byte flip must decode to Ok (a changed answer, a
    // changed status word) or a classified Err — the loop itself proves
    // no panic.
    let mut oks = 0u32;
    let mut errs = 0u32;
    for i in 0..payload.len() {
        let mut mutated = payload.clone();
        mutated[i] ^= 0xFF;
        match decode_responses(&mutated, &sent) {
            Ok(_) => oks += 1,
            Err(_) => errs += 1,
        }
    }
    // Both regimes exist: count-word flips and bad tags error; value
    // bytes change answers silently (the codec has no checksums — the
    // caller's verification layer catches those).
    assert!(oks > 0 && errs > 0, "oks={oks} errs={errs}");
}

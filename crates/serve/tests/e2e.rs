//! End-to-end: a real loopback TCP server answering wire queries, checked
//! against independently computed answers (Kruskal + union-find on the
//! same graph), plus bad-frame and shutdown behavior.

use llp_graph::generators::erdos_renyi;
use llp_runtime::ThreadPool;
use llp_serve::protocol::{
    decode_responses, encode_queries, read_frame, write_frame, Query, Response, MAX_PAYLOAD,
};
use llp_serve::server::run_server;
use llp_serve::service::MsfService;
use std::io::{BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    payload: Vec<u8>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let conn = TcpStream::connect(addr).unwrap();
        Client {
            reader: BufReader::new(conn.try_clone().unwrap()),
            writer: conn,
            payload: Vec::new(),
        }
    }

    fn ask(&mut self, batch: &[Query]) -> Vec<Response> {
        encode_queries(batch, &mut self.payload);
        write_frame(&mut self.writer, &self.payload).unwrap();
        let reply = read_frame(&mut self.reader, MAX_PAYLOAD).unwrap().unwrap();
        decode_responses(&reply, batch).unwrap()
    }
}

/// Starts a server over a 400-vertex random graph; returns the address,
/// the service (for ground truth), and the server thread handle.
fn start() -> (
    String,
    Arc<MsfService>,
    std::thread::JoinHandle<std::io::Result<usize>>,
) {
    let graph = erdos_renyi(400, 700, 11);
    let pool = ThreadPool::new(2);
    let service = Arc::new(MsfService::build(&graph, &pool).unwrap());
    drop(pool);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || run_server(listener, service, 2))
    };
    (addr, service, server)
}

fn shutdown(addr: &str) {
    let mut c = Client::connect(addr);
    assert_eq!(c.ask(&[Query::Shutdown]), vec![Response::ShuttingDown]);
}

#[test]
fn serves_correct_answers_over_tcp() {
    let (addr, service, server) = start();
    let mut c = Client::connect(&addr);

    // Info matches the certified build.
    assert_eq!(
        c.ask(&[Query::Info]),
        vec![Response::Info {
            n: service.n as u32,
            trees: service.num_trees as u32,
            total_weight: service.total_weight,
        }]
    );

    // A mixed batch agrees with direct index queries — including
    // same-vertex, cross-pair, and out-of-range records in one frame.
    let batch = vec![
        Query::Component(0),
        Query::Component(399),
        Query::PathMax(3, 250),
        Query::PathMax(17, 17),
        Query::ConnectedUnder(3, 250, 0.5),
        Query::ConnectedUnder(3, 250, 1.0),
        Query::PathMax(0, 4000),
        Query::Component(4000),
    ];
    let got = c.ask(&batch);
    let want: Vec<Response> = batch.iter().map(|q| service.answer(q)).collect();
    assert_eq!(got, want);

    // Sanity that the ground truth itself is non-degenerate: vertex 3 and
    // 250 connect under λ=1 exactly when they share a tree.
    assert_eq!(
        want[5],
        Response::ConnectedUnder(service.index().connected(3, 250))
    );
    // Out-of-range vertices answer `Invalid`, not `PathMax(None)`.
    assert_eq!(want[6], Response::Invalid);
    assert_eq!(want[7], Response::Invalid);

    // Shutdown drains in-flight connections, so close ours first.
    drop(c);
    shutdown(&addr);
    assert!(server.join().unwrap().unwrap() >= 2);
}

#[test]
fn many_clients_share_the_workers() {
    let (addr, service, server) = start();
    // 4 concurrent clients against 2 workers: two are served immediately,
    // two queue until a worker frees up. Each client closes when done, so
    // the queue drains.
    let handles: Vec<_> = (0..4u32)
        .map(|i| {
            let addr = addr.clone();
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr);
                for round in 0..3u32 {
                    let u = (round * 7 + i) % 400;
                    let v = (round * 13 + 5 * i) % 400;
                    let batch = vec![Query::PathMax(u, v), Query::Component(u)];
                    let want: Vec<Response> = batch.iter().map(|q| service.answer(q)).collect();
                    assert_eq!(c.ask(&batch), want);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    shutdown(&addr);
    assert!(server.join().unwrap().unwrap() >= 5);
}

#[test]
fn bad_frames_drop_the_connection_but_not_the_server() {
    let (addr, _service, server) = start();

    // Garbage length prefix far beyond the payload cap.
    let mut conn = TcpStream::connect(&addr).unwrap();
    conn.write_all(&u32::MAX.to_le_bytes()).unwrap();
    conn.write_all(&[0xab; 64]).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    assert!(matches!(
        read_frame(&mut reader, MAX_PAYLOAD),
        Ok(None) | Err(_)
    ));
    drop(reader);
    drop(conn);

    // Valid frame, malformed payload (count disagrees with length).
    let mut conn = TcpStream::connect(&addr).unwrap();
    let mut payload = Vec::new();
    encode_queries(&[Query::Info, Query::Info], &mut payload);
    payload.truncate(payload.len() - 1);
    write_frame(&mut conn, &payload).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    assert!(matches!(
        read_frame(&mut reader, MAX_PAYLOAD),
        Ok(None) | Err(_)
    ));
    drop(reader);
    drop(conn);

    // The server is still alive and correct afterwards.
    let mut c = Client::connect(&addr);
    assert!(matches!(
        c.ask(&[Query::Component(0)]).as_slice(),
        [Response::Component(_)]
    ));
    drop(c);

    shutdown(&addr);
    assert!(server.join().unwrap().unwrap() >= 4);
}

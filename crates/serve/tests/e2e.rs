//! End-to-end: a real loopback TCP server answering wire queries, checked
//! against independently computed answers (Kruskal + union-find on the
//! same graph), plus bad-frame, slow-loris, load-shedding, status, and
//! shutdown behavior.

use llp_graph::generators::erdos_renyi;
use llp_runtime::ThreadPool;
use llp_serve::protocol::{
    decode_responses, encode_queries, read_frame, write_frame, Query, RecvError, Response,
    MAX_PAYLOAD,
};
use llp_serve::server::{run_server, ServerConfig};
use llp_serve::service::MsfService;
use std::io::{BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    payload: Vec<u8>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let conn = TcpStream::connect(addr).unwrap();
        Client {
            reader: BufReader::new(conn.try_clone().unwrap()),
            writer: conn,
            payload: Vec::new(),
        }
    }

    fn ask(&mut self, batch: &[Query]) -> Vec<Response> {
        encode_queries(batch, &mut self.payload);
        write_frame(&mut self.writer, &self.payload).unwrap();
        let reply = read_frame(&mut self.reader, MAX_PAYLOAD).unwrap().unwrap();
        decode_responses(&reply, batch).unwrap()
    }
}

/// Starts a server over a 400-vertex random graph; returns the address,
/// the service (for ground truth), and the server thread handle.
fn start_with(cfg: ServerConfig) -> (
    String,
    Arc<MsfService>,
    std::thread::JoinHandle<std::io::Result<usize>>,
) {
    let graph = erdos_renyi(400, 700, 11);
    let pool = ThreadPool::new(2);
    let service = Arc::new(MsfService::build(&graph, &pool).unwrap());
    drop(pool);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || run_server(listener, service, cfg))
    };
    (addr, service, server)
}

fn start() -> (
    String,
    Arc<MsfService>,
    std::thread::JoinHandle<std::io::Result<usize>>,
) {
    start_with(ServerConfig::with_workers(2))
}

fn shutdown(addr: &str) {
    let mut c = Client::connect(addr);
    assert_eq!(c.ask(&[Query::Shutdown]), vec![Response::ShuttingDown]);
}

#[test]
fn serves_correct_answers_over_tcp() {
    let (addr, service, server) = start();
    let mut c = Client::connect(&addr);

    // Info matches the certified build.
    assert_eq!(
        c.ask(&[Query::Info]),
        vec![Response::Info {
            n: service.n as u32,
            trees: service.num_trees as u32,
            total_weight: service.total_weight,
        }]
    );

    // A mixed batch agrees with direct index queries — including
    // same-vertex, cross-pair, and out-of-range records in one frame.
    let batch = vec![
        Query::Component(0),
        Query::Component(399),
        Query::PathMax(3, 250),
        Query::PathMax(17, 17),
        Query::ConnectedUnder(3, 250, 0.5),
        Query::ConnectedUnder(3, 250, 1.0),
        Query::PathMax(0, 4000),
        Query::Component(4000),
    ];
    let got = c.ask(&batch);
    let want: Vec<Response> = batch.iter().map(|q| service.answer(q)).collect();
    assert_eq!(got, want);

    // Sanity that the ground truth itself is non-degenerate: vertex 3 and
    // 250 connect under λ=1 exactly when they share a tree.
    assert_eq!(
        want[5],
        Response::ConnectedUnder(service.index().connected(3, 250))
    );
    // Out-of-range vertices answer `Invalid`, not `PathMax(None)`.
    assert_eq!(want[6], Response::Invalid);
    assert_eq!(want[7], Response::Invalid);

    // Shutdown drains in-flight connections, so close ours first.
    drop(c);
    shutdown(&addr);
    assert!(server.join().unwrap().unwrap() >= 2);
}

#[test]
fn status_is_observable_over_the_wire() {
    let (addr, _service, server) = start();
    let mut c = Client::connect(&addr);
    match c.ask(&[Query::Status]).as_slice() {
        [Response::Status {
            epoch,
            queue_depth,
            snapshot_age_s,
            degraded,
        }] => {
            assert_eq!(*epoch, 0);
            assert_eq!(*queue_depth, 0);
            assert!(*snapshot_age_s >= 0.0 && *snapshot_age_s < 120.0);
            assert!(!degraded);
        }
        other => panic!("{other:?}"),
    }
    drop(c);
    shutdown(&addr);
    server.join().unwrap().unwrap();
}

#[test]
fn slow_loris_frees_the_worker_within_the_read_deadline() {
    // 1 worker and a short read deadline: a peer that writes half a frame
    // and stalls must not pin the worker — the next client gets served
    // within roughly the deadline, not after 30 s (or never).
    let deadline = Duration::from_millis(300);
    let (addr, service, server) = start_with(ServerConfig {
        workers: 1,
        read_timeout: Some(deadline),
        ..ServerConfig::default()
    });

    // The loris: half a length prefix, then silence (keep it open).
    let mut loris = TcpStream::connect(&addr).unwrap();
    loris.write_all(&[0x19, 0x00]).unwrap();
    // Give the accept loop time to hand the loris to the single worker,
    // so the victim below genuinely queues behind it.
    std::thread::sleep(Duration::from_millis(50));

    let t = Instant::now();
    let mut victim = Client::connect(&addr);
    let got = victim.ask(&[Query::Component(7)]);
    let waited = t.elapsed();
    assert_eq!(got, vec![service.answer(&Query::Component(7))]);
    // Served only after the loris was reaped, but well within a small
    // multiple of the deadline (the 30 s default would trip this).
    assert!(
        waited < 10 * deadline,
        "worker freed after {waited:?}, deadline {deadline:?}"
    );

    drop(victim);
    drop(loris);
    shutdown(&addr);
    server.join().unwrap().unwrap();
}

#[test]
fn full_queue_sheds_with_the_overloaded_frame() {
    let (addr, service, server) = start_with(ServerConfig {
        workers: 1,
        queue_cap: 1,
        retry_after_ms: 123,
        ..ServerConfig::default()
    });

    // Occupy the single worker: an open connection mid-session.
    let mut holder = Client::connect(&addr);
    holder.ask(&[Query::Info]);
    std::thread::sleep(Duration::from_millis(100));
    // Fill the one queue slot.
    let parked = TcpStream::connect(&addr).unwrap();
    std::thread::sleep(Duration::from_millis(300));

    // The next arrival must be shed with the tag-4 frame, not ignored.
    let surplus = TcpStream::connect(&addr).unwrap();
    surplus
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(surplus);
    let reply = read_frame(&mut reader, MAX_PAYLOAD)
        .expect("overloaded frame, not a dropped socket")
        .expect("overloaded frame, not bare EOF");
    assert_eq!(
        decode_responses(&reply, &[Query::Info]).unwrap_err(),
        RecvError::Overloaded { retry_after_ms: 123 }
    );
    drop(reader);

    // Releasing the worker drains the parked connection: service resumes.
    drop(holder);
    let mut parked_reader = BufReader::new(parked.try_clone().unwrap());
    let mut payload = Vec::new();
    encode_queries(&[Query::Component(3)], &mut payload);
    let mut parked_writer = parked;
    write_frame(&mut parked_writer, &payload).unwrap();
    let reply = read_frame(&mut parked_reader, MAX_PAYLOAD).unwrap().unwrap();
    assert_eq!(
        decode_responses(&reply, &[Query::Component(3)]).unwrap(),
        vec![service.answer(&Query::Component(3))]
    );
    drop(parked_writer);
    drop(parked_reader);

    shutdown(&addr);
    server.join().unwrap().unwrap();
}

#[test]
fn retrying_client_rides_out_shedding() {
    use llp_serve::retry::{RetryPolicy, RetryingClient};
    let (addr, service, server) = start_with(ServerConfig {
        workers: 1,
        queue_cap: 1,
        retry_after_ms: 20,
        ..ServerConfig::default()
    });

    // Saturate: worker busy + queue slot taken.
    let mut holder = Client::connect(&addr);
    holder.ask(&[Query::Info]);
    std::thread::sleep(Duration::from_millis(100));
    let parked = TcpStream::connect(&addr).unwrap();
    std::thread::sleep(Duration::from_millis(300));

    // Free the capacity shortly after the retrying client's first
    // (shed) attempt, so a retry can land.
    let unblock = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(400));
        drop(holder);
        drop(parked);
    });

    let mut client = RetryingClient::new(
        &addr,
        RetryPolicy {
            max_retries: 20,
            base: Duration::from_millis(50),
            cap: Duration::from_millis(200),
        },
        7,
    );
    let got = client.exchange(&[Query::Component(11)]).unwrap();
    assert_eq!(got, vec![service.answer(&Query::Component(11))]);
    assert!(client.retries >= 1, "expected at least one shed-then-retry");
    unblock.join().unwrap();

    // Free the worker before shutdown queues behind our open connection.
    drop(client);
    shutdown(&addr);
    server.join().unwrap().unwrap();
}

#[test]
fn many_clients_share_the_workers() {
    let (addr, service, server) = start();
    // 4 concurrent clients against 2 workers: two are served immediately,
    // two queue until a worker frees up. Each client closes when done, so
    // the queue drains.
    let handles: Vec<_> = (0..4u32)
        .map(|i| {
            let addr = addr.clone();
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr);
                for round in 0..3u32 {
                    let u = (round * 7 + i) % 400;
                    let v = (round * 13 + 5 * i) % 400;
                    let batch = vec![Query::PathMax(u, v), Query::Component(u)];
                    let want: Vec<Response> = batch.iter().map(|q| service.answer(q)).collect();
                    assert_eq!(c.ask(&batch), want);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    shutdown(&addr);
    assert!(server.join().unwrap().unwrap() >= 5);
}

/// Reads the server's reply to a malformed request: it must be the
/// one-record protocol error frame, which `decode_responses` surfaces as
/// a `ProtoError`, followed by a clean close.
fn expect_error_frame(conn: &TcpStream) {
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let reply = read_frame(&mut reader, MAX_PAYLOAD)
        .expect("error frame, not a dropped socket")
        .expect("error frame, not bare EOF");
    match decode_responses(&reply, &[Query::Info]).unwrap_err() {
        RecvError::Proto(e) => assert!(e.0.contains("malformed"), "{e}"),
        other => panic!("expected the protocol error frame, got {other:?}"),
    }
    // And then the server closes the connection.
    assert!(matches!(read_frame(&mut reader, MAX_PAYLOAD), Ok(None)));
}

#[test]
fn bad_frames_get_an_error_response_and_never_kill_a_worker() {
    // 1 worker: if any malformed frame panicked (or silently killed) the
    // worker thread, every later connection would hang unserved.
    let graph = erdos_renyi(400, 700, 11);
    let pool = ThreadPool::new(2);
    let service = Arc::new(MsfService::build(&graph, &pool).unwrap());
    drop(pool);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || run_server(listener, service, ServerConfig::with_workers(1)))
    };

    // Garbage length prefix far beyond the payload cap.
    let mut conn = TcpStream::connect(&addr).unwrap();
    conn.write_all(&u32::MAX.to_le_bytes()).unwrap();
    conn.write_all(&[0xab; 64]).unwrap();
    expect_error_frame(&conn);
    drop(conn);

    // Valid frame, malformed payload (count disagrees with length).
    let mut conn = TcpStream::connect(&addr).unwrap();
    let mut payload = Vec::new();
    encode_queries(&[Query::Info, Query::Info], &mut payload);
    payload.truncate(payload.len() - 1);
    write_frame(&mut conn, &payload).unwrap();
    expect_error_frame(&conn);
    drop(conn);

    // Unknown opcode.
    let mut conn = TcpStream::connect(&addr).unwrap();
    let mut payload = 1u32.to_le_bytes().to_vec();
    payload.extend_from_slice(&[200u8; 17]);
    write_frame(&mut conn, &payload).unwrap();
    expect_error_frame(&conn);
    drop(conn);

    // Non-finite λ is rejected at decode, same error path.
    let mut conn = TcpStream::connect(&addr).unwrap();
    let mut payload = Vec::new();
    encode_queries(&[Query::ConnectedUnder(0, 1, f64::NAN)], &mut payload);
    write_frame(&mut conn, &payload).unwrap();
    expect_error_frame(&conn);
    drop(conn);

    // The single worker is still alive and correct afterwards.
    let mut c = Client::connect(&addr);
    assert!(matches!(
        c.ask(&[Query::Component(0)]).as_slice(),
        [Response::Component(_)]
    ));
    drop(c);

    shutdown(&addr);
    assert!(server.join().unwrap().unwrap() >= 6);
}

#[test]
fn dynamic_updates_apply_while_the_server_answers() {
    let graph = erdos_renyi(300, 500, 13);
    let pool = ThreadPool::new(2);
    let service = Arc::new(MsfService::build_dynamic(&graph, &pool, 2).unwrap());
    drop(pool);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || run_server(listener, service, ServerConfig::with_workers(2)))
    };
    let mut c = Client::connect(&addr);

    // Epoch 0 is the initial certified build.
    let epoch0 = match c.ask(&[Query::Epoch]).as_slice() {
        [Response::Epoch { epoch, .. }] => *epoch,
        other => panic!("{other:?}"),
    };
    assert_eq!(epoch0, 0);

    // Insert an edge the graph does not have, so light it must join the
    // forest; static-mode-only rejections do not apply here.
    let taken: std::collections::HashSet<(u32, u32)> = graph
        .edges()
        .map(|e| e.canonical_endpoints())
        .collect();
    let v = (1..300u32).find(|&v| !taken.contains(&(0, v))).unwrap();
    assert_eq!(
        c.ask(&[Query::Insert(0, v, 1e-7), Query::Delete(5, 5_000)]),
        vec![Response::Accepted, Response::Invalid]
    );

    // Poll the epoch over the wire until the updater publishes.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        match c.ask(&[Query::Epoch]).as_slice() {
            [Response::Epoch { epoch, .. }] if *epoch > 0 => break,
            [Response::Epoch { .. }] => {}
            other => panic!("{other:?}"),
        }
        assert!(
            std::time::Instant::now() < deadline,
            "updater never published an epoch"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert_eq!(service.last_update_error(), None);

    // The served answers now reflect the new certified epoch.
    match c.ask(&[Query::PathMax(0, v)]).as_slice() {
        [Response::PathMax(Some((lo, hi, w)))] => {
            assert_eq!((*lo, *hi), (0, v));
            assert!((*w - 1e-7).abs() < 1e-20);
        }
        other => panic!("expected the inserted edge as bottleneck, got {other:?}"),
    }

    drop(c);
    shutdown(&addr);
    assert!(server.join().unwrap().unwrap() >= 2);
}

//! End-to-end: a real loopback TCP server answering wire queries, checked
//! against independently computed answers (Kruskal + union-find on the
//! same graph), plus bad-frame and shutdown behavior.

use llp_graph::generators::erdos_renyi;
use llp_runtime::ThreadPool;
use llp_serve::protocol::{
    decode_responses, encode_queries, read_frame, write_frame, Query, Response, MAX_PAYLOAD,
};
use llp_serve::server::run_server;
use llp_serve::service::MsfService;
use std::io::{BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    payload: Vec<u8>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let conn = TcpStream::connect(addr).unwrap();
        Client {
            reader: BufReader::new(conn.try_clone().unwrap()),
            writer: conn,
            payload: Vec::new(),
        }
    }

    fn ask(&mut self, batch: &[Query]) -> Vec<Response> {
        encode_queries(batch, &mut self.payload);
        write_frame(&mut self.writer, &self.payload).unwrap();
        let reply = read_frame(&mut self.reader, MAX_PAYLOAD).unwrap().unwrap();
        decode_responses(&reply, batch).unwrap()
    }
}

/// Starts a server over a 400-vertex random graph; returns the address,
/// the service (for ground truth), and the server thread handle.
fn start() -> (
    String,
    Arc<MsfService>,
    std::thread::JoinHandle<std::io::Result<usize>>,
) {
    let graph = erdos_renyi(400, 700, 11);
    let pool = ThreadPool::new(2);
    let service = Arc::new(MsfService::build(&graph, &pool).unwrap());
    drop(pool);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || run_server(listener, service, 2))
    };
    (addr, service, server)
}

fn shutdown(addr: &str) {
    let mut c = Client::connect(addr);
    assert_eq!(c.ask(&[Query::Shutdown]), vec![Response::ShuttingDown]);
}

#[test]
fn serves_correct_answers_over_tcp() {
    let (addr, service, server) = start();
    let mut c = Client::connect(&addr);

    // Info matches the certified build.
    assert_eq!(
        c.ask(&[Query::Info]),
        vec![Response::Info {
            n: service.n as u32,
            trees: service.num_trees as u32,
            total_weight: service.total_weight,
        }]
    );

    // A mixed batch agrees with direct index queries — including
    // same-vertex, cross-pair, and out-of-range records in one frame.
    let batch = vec![
        Query::Component(0),
        Query::Component(399),
        Query::PathMax(3, 250),
        Query::PathMax(17, 17),
        Query::ConnectedUnder(3, 250, 0.5),
        Query::ConnectedUnder(3, 250, 1.0),
        Query::PathMax(0, 4000),
        Query::Component(4000),
    ];
    let got = c.ask(&batch);
    let want: Vec<Response> = batch.iter().map(|q| service.answer(q)).collect();
    assert_eq!(got, want);

    // Sanity that the ground truth itself is non-degenerate: vertex 3 and
    // 250 connect under λ=1 exactly when they share a tree.
    assert_eq!(
        want[5],
        Response::ConnectedUnder(service.index().connected(3, 250))
    );
    // Out-of-range vertices answer `Invalid`, not `PathMax(None)`.
    assert_eq!(want[6], Response::Invalid);
    assert_eq!(want[7], Response::Invalid);

    // Shutdown drains in-flight connections, so close ours first.
    drop(c);
    shutdown(&addr);
    assert!(server.join().unwrap().unwrap() >= 2);
}

#[test]
fn many_clients_share_the_workers() {
    let (addr, service, server) = start();
    // 4 concurrent clients against 2 workers: two are served immediately,
    // two queue until a worker frees up. Each client closes when done, so
    // the queue drains.
    let handles: Vec<_> = (0..4u32)
        .map(|i| {
            let addr = addr.clone();
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr);
                for round in 0..3u32 {
                    let u = (round * 7 + i) % 400;
                    let v = (round * 13 + 5 * i) % 400;
                    let batch = vec![Query::PathMax(u, v), Query::Component(u)];
                    let want: Vec<Response> = batch.iter().map(|q| service.answer(q)).collect();
                    assert_eq!(c.ask(&batch), want);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    shutdown(&addr);
    assert!(server.join().unwrap().unwrap() >= 5);
}

/// Reads the server's reply to a malformed request: it must be the
/// one-record protocol error frame, which `decode_responses` surfaces as
/// a `ProtoError`, followed by a clean close.
fn expect_error_frame(conn: &TcpStream) {
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let reply = read_frame(&mut reader, MAX_PAYLOAD)
        .expect("error frame, not a dropped socket")
        .expect("error frame, not bare EOF");
    let err = decode_responses(&reply, &[Query::Info]).unwrap_err();
    assert!(err.0.contains("malformed"), "{err}");
    // And then the server closes the connection.
    assert!(matches!(read_frame(&mut reader, MAX_PAYLOAD), Ok(None)));
}

#[test]
fn bad_frames_get_an_error_response_and_never_kill_a_worker() {
    // 1 worker: if any malformed frame panicked (or silently killed) the
    // worker thread, every later connection would hang unserved.
    let graph = erdos_renyi(400, 700, 11);
    let pool = ThreadPool::new(2);
    let service = Arc::new(MsfService::build(&graph, &pool).unwrap());
    drop(pool);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || run_server(listener, service, 1))
    };

    // Garbage length prefix far beyond the payload cap.
    let mut conn = TcpStream::connect(&addr).unwrap();
    conn.write_all(&u32::MAX.to_le_bytes()).unwrap();
    conn.write_all(&[0xab; 64]).unwrap();
    expect_error_frame(&conn);
    drop(conn);

    // Valid frame, malformed payload (count disagrees with length).
    let mut conn = TcpStream::connect(&addr).unwrap();
    let mut payload = Vec::new();
    encode_queries(&[Query::Info, Query::Info], &mut payload);
    payload.truncate(payload.len() - 1);
    write_frame(&mut conn, &payload).unwrap();
    expect_error_frame(&conn);
    drop(conn);

    // Unknown opcode.
    let mut conn = TcpStream::connect(&addr).unwrap();
    let mut payload = 1u32.to_le_bytes().to_vec();
    payload.extend_from_slice(&[200u8; 17]);
    write_frame(&mut conn, &payload).unwrap();
    expect_error_frame(&conn);
    drop(conn);

    // Non-finite λ is rejected at decode, same error path.
    let mut conn = TcpStream::connect(&addr).unwrap();
    let mut payload = Vec::new();
    encode_queries(&[Query::ConnectedUnder(0, 1, f64::NAN)], &mut payload);
    write_frame(&mut conn, &payload).unwrap();
    expect_error_frame(&conn);
    drop(conn);

    // The single worker is still alive and correct afterwards.
    let mut c = Client::connect(&addr);
    assert!(matches!(
        c.ask(&[Query::Component(0)]).as_slice(),
        [Response::Component(_)]
    ));
    drop(c);

    shutdown(&addr);
    assert!(server.join().unwrap().unwrap() >= 6);
}

#[test]
fn dynamic_updates_apply_while_the_server_answers() {
    let graph = erdos_renyi(300, 500, 13);
    let pool = ThreadPool::new(2);
    let service = Arc::new(MsfService::build_dynamic(&graph, &pool, 2).unwrap());
    drop(pool);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || run_server(listener, service, 2))
    };
    let mut c = Client::connect(&addr);

    // Epoch 0 is the initial certified build.
    let epoch0 = match c.ask(&[Query::Epoch]).as_slice() {
        [Response::Epoch { epoch, .. }] => *epoch,
        other => panic!("{other:?}"),
    };
    assert_eq!(epoch0, 0);

    // Insert an edge the graph does not have, so light it must join the
    // forest; static-mode-only rejections do not apply here.
    let taken: std::collections::HashSet<(u32, u32)> = graph
        .edges()
        .map(|e| e.canonical_endpoints())
        .collect();
    let v = (1..300u32).find(|&v| !taken.contains(&(0, v))).unwrap();
    assert_eq!(
        c.ask(&[Query::Insert(0, v, 1e-7), Query::Delete(5, 5_000)]),
        vec![Response::Accepted, Response::Invalid]
    );

    // Poll the epoch over the wire until the updater publishes.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        match c.ask(&[Query::Epoch]).as_slice() {
            [Response::Epoch { epoch, .. }] if *epoch > 0 => break,
            [Response::Epoch { .. }] => {}
            other => panic!("{other:?}"),
        }
        assert!(
            std::time::Instant::now() < deadline,
            "updater never published an epoch"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert_eq!(service.last_update_error(), None);

    // The served answers now reflect the new certified epoch.
    match c.ask(&[Query::PathMax(0, v)]).as_slice() {
        [Response::PathMax(Some((lo, hi, w)))] => {
            assert_eq!((*lo, *hi), (0, v));
            assert!((*w - 1e-7).abs() < 1e-20);
        }
        other => panic!("expected the inserted edge as bottleneck, got {other:?}"),
    }

    drop(c);
    shutdown(&addr);
    assert!(server.join().unwrap().unwrap() >= 2);
}

//! Seeded socket-fault injection against a live server: under every
//! seed, the retrying load generator must complete its sweep with every
//! response verified against the local certified index — faults cost
//! retries, never wrong answers, and never hang (the server's read
//! deadline and the client's retry budget bound every path).
//!
//! Lives in its own integration-test binary (own process): the fault
//! seed is process-global, and the unfaulted e2e tests must not see it.

#![cfg(feature = "faults")]

use llp_graph::generators::erdos_renyi;
use llp_runtime::{faults, ThreadPool};
use llp_serve::loadgen::{run_sweep, LoadgenConfig};
use llp_serve::protocol::{encode_queries, write_frame, Query};
use llp_serve::server::{run_server, ServerConfig};
use llp_serve::service::MsfService;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn faulted_connections_cost_retries_never_wrong_answers() {
    let _guard = faults::test_serial_lock();
    let graph = erdos_renyi(300, 520, 17);
    let pool = ThreadPool::new(2);
    let service = Arc::new(MsfService::build(&graph, &pool).unwrap());
    drop(pool);

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = {
        let service = Arc::clone(&service);
        let cfg = ServerConfig {
            workers: 2,
            // Short deadline: an injected stall must resolve in test time.
            read_timeout: Some(Duration::from_millis(500)),
            write_timeout: Some(Duration::from_millis(500)),
            ..ServerConfig::default()
        };
        std::thread::spawn(move || run_server(listener, service, cfg))
    };

    let mut total_retries = 0u64;
    for seed in 1..=8u64 {
        faults::set_seed(Some(seed));
        let cfg = LoadgenConfig {
            batches: vec![4, 64],
            queries_per_point: 400,
            seed,
        };
        // run_sweep verifies EVERY response against the local certified
        // index; a single wrong answer fails the sweep, and a fault the
        // retry budget cannot absorb surfaces as Err — both fail here.
        let sweep = run_sweep(&addr, service.n as u32, &cfg, Some(service.as_ref()))
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        total_retries += sweep.iter().map(|p| p.retries).sum::<u64>();
    }
    // ~1 in 5 connections is faulted and every kill forces a reconnect:
    // across 8 seeds the sweep must actually have exercised the retry
    // path, or the gate is silently inert.
    assert!(
        total_retries > 0,
        "8 fault seeds produced zero retries; injection looks inert"
    );

    // Deterministic shutdown: disable injection first, so the shutdown
    // frame cannot itself be eaten by a fault.
    faults::set_seed(None);
    let mut conn = TcpStream::connect(&addr).unwrap();
    let mut payload = Vec::new();
    encode_queries(&[Query::Shutdown], &mut payload);
    write_frame(&mut conn, &payload).unwrap();
    server.join().unwrap().unwrap();
}

//! Single-source shortest paths as LLP predicate detection.
//!
//! The lattice is the vectors of tentative distances `G[j] ≥ 0`. The
//! predicate is
//!
//! ```text
//! B(G) ≡ ∀ j ≠ s :  G[j] ≥ min over in-edges (i,j) of (G[i] + w(i,j))
//! ```
//!
//! i.e. every vertex's distance is *justified* by some in-neighbour. The
//! least vector satisfying `B` with `G[s] = 0` is the shortest-path vector
//! (Bellman-Ford / Dijkstra both compute it; LLP derives both, per the SPAA
//! 2020 paper the MST paper cites). `forbidden(j)` holds when `G[j]` is
//! smaller than its justification; `advance` lifts it to the justification.
//! Requires non-negative weights (so the bottom vector 0 is below the
//! solution).

use crate::problem::LlpProblem;

/// Shortest-path LLP instance over a directed graph given as in-edge lists.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    source: usize,
    /// `in_edges[j]` lists `(i, w)` for every directed edge `i -> j`.
    in_edges: Vec<Vec<(usize, f64)>>,
    /// `out_edges[i]` lists the targets of `i`'s outgoing edges — the
    /// dependents of `i` for the worklist solver.
    out_edges: Vec<Vec<usize>>,
}

impl ShortestPaths {
    /// Builds the instance from directed `(u, v, w)` triples, `w >= 0`.
    ///
    /// # Panics
    /// Panics on negative or NaN weights or out-of-range endpoints.
    pub fn new(n: usize, edges: &[(usize, usize, f64)], source: usize) -> Self {
        assert!(source < n, "source out of range");
        let mut in_edges = vec![Vec::new(); n];
        let mut out_edges = vec![Vec::new(); n];
        for &(u, v, w) in edges {
            assert!(u < n && v < n, "edge ({u},{v}) out of range");
            assert!(w >= 0.0, "weights must be non-negative, got {w}");
            in_edges[v].push((u, w));
            out_edges[u].push(v);
        }
        ShortestPaths {
            source,
            in_edges,
            out_edges,
        }
    }

    /// Treats undirected `(u, v, w)` pairs as two directed edges.
    pub fn from_undirected(n: usize, edges: &[(usize, usize, f64)], source: usize) -> Self {
        let mut directed = Vec::with_capacity(edges.len() * 2);
        for &(u, v, w) in edges {
            directed.push((u, v, w));
            directed.push((v, u, w));
        }
        Self::new(n, &directed, source)
    }

    /// The justification of `j`: the least `G[i] + w(i,j)` over in-edges.
    fn justification(&self, g: &[f64], j: usize) -> f64 {
        self.in_edges[j]
            .iter()
            .map(|&(i, w)| g[i] + w)
            .fold(f64::INFINITY, f64::min)
    }
}

impl LlpProblem for ShortestPaths {
    type State = f64;

    fn num_indices(&self) -> usize {
        self.in_edges.len()
    }

    fn bottom(&self, _j: usize) -> f64 {
        0.0
    }

    fn forbidden(&self, g: &[f64], j: usize) -> bool {
        j != self.source && g[j] < self.justification(g, j)
    }

    fn advance(&self, g: &[f64], j: usize) -> Option<f64> {
        // ∞ is a legal lattice top here: unreachable vertices settle at ∞.
        Some(self.justification(g, j))
    }

    fn name(&self) -> &str {
        "llp-shortest-paths"
    }

    fn dependents(&self, j: usize) -> Option<Vec<usize>> {
        Some(self.out_edges[j].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{solve_parallel, solve_sequential};
    use llp_runtime::ThreadPool;

    /// Reference Bellman-Ford for cross-checking.
    fn bellman_ford(n: usize, edges: &[(usize, usize, f64)], s: usize) -> Vec<f64> {
        let mut d = vec![f64::INFINITY; n];
        d[s] = 0.0;
        for _ in 0..n {
            for &(u, v, w) in edges {
                if d[u] + w < d[v] {
                    d[v] = d[u] + w;
                }
            }
        }
        d
    }

    #[test]
    fn matches_bellman_ford_on_small_graph() {
        let edges = [
            (0, 1, 4.0),
            (0, 2, 1.0),
            (2, 1, 2.0),
            (1, 3, 1.0),
            (2, 3, 5.0),
        ];
        let p = ShortestPaths::new(4, &edges, 0);
        let sol = solve_sequential(&p).unwrap();
        assert_eq!(sol.state, bellman_ford(4, &edges, 0));
        assert_eq!(sol.state, vec![0.0, 3.0, 1.0, 4.0]);
    }

    #[test]
    fn unreachable_vertices_settle_at_infinity() {
        let edges = [(0, 1, 1.0)];
        let p = ShortestPaths::new(3, &edges, 0);
        let sol = solve_sequential(&p).unwrap();
        assert_eq!(sol.state[2], f64::INFINITY);
    }

    #[test]
    fn parallel_matches_sequential_on_random_graphs() {
        use llp_runtime::rng::SmallRng;
        let pool = ThreadPool::new(4);
        for seed in 0..5 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = 40;
            let edges: Vec<(usize, usize, f64)> = (0..200)
                .map(|_| {
                    (
                        rng.gen_range(0..n),
                        rng.gen_range(0..n),
                        rng.gen_range(0.0..10.0),
                    )
                })
                .filter(|&(u, v, _)| u != v)
                .collect();
            let p = ShortestPaths::new(n, &edges, 0);
            let seq = solve_sequential(&p).unwrap();
            let par = solve_parallel(&p, &pool).unwrap();
            assert_eq!(seq.state, par.state, "seed {seed}");
            assert_eq!(seq.state, bellman_ford(n, &edges, 0), "seed {seed}");
        }
    }

    #[test]
    fn chaotic_worklist_matches_and_prunes() {
        use crate::solver::solve_chaotic;
        let edges = [
            (0, 1, 4.0),
            (0, 2, 1.0),
            (2, 1, 2.0),
            (1, 3, 1.0),
            (2, 3, 5.0),
        ];
        let p = ShortestPaths::new(4, &edges, 0);
        let cha = solve_chaotic(&p).unwrap();
        assert_eq!(cha.state, bellman_ford(4, &edges, 0));
        let seq = solve_sequential(&p).unwrap();
        assert_eq!(cha.state, seq.state);
    }

    #[test]
    fn undirected_helper_symmetrises() {
        let p = ShortestPaths::from_undirected(3, &[(0, 1, 2.0), (1, 2, 3.0)], 2);
        let sol = solve_sequential(&p).unwrap();
        assert_eq!(sol.state, vec![5.0, 3.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_weights() {
        let _ = ShortestPaths::new(2, &[(0, 1, -1.0)], 0);
    }
}

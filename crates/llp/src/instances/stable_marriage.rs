//! Stable marriage (Gale–Shapley) as LLP predicate detection.
//!
//! The lattice for proposer `m` is the index `G[m]` into m's preference
//! list (0 = favourite). The predicate is stability of the induced
//! assignment. Proposer `m` is *forbidden* when the candidate `w` it
//! currently points at is also pointed at by a rival `m'` whom `w` strictly
//! prefers — then no stable matching can keep `m` at `G[m]`, so `m`
//! advances to the next entry. The least feasible vector is the
//! proposer-optimal stable matching, matching Gale–Shapley's output.

use crate::problem::LlpProblem;

/// A stable-marriage LLP instance with `n` proposers and `n` candidates.
#[derive(Debug, Clone)]
pub struct StableMarriage {
    /// `pref[m][k]` = the k-th choice candidate of proposer `m`.
    pref: Vec<Vec<usize>>,
    /// `rank[w][m]` = candidate w's rank of proposer m (lower = better).
    rank: Vec<Vec<usize>>,
}

impl StableMarriage {
    /// Builds an instance from complete preference lists.
    ///
    /// # Panics
    /// Panics unless both sides have `n` complete permutations of `0..n`.
    pub fn new(proposer_prefs: Vec<Vec<usize>>, candidate_prefs: Vec<Vec<usize>>) -> Self {
        let n = proposer_prefs.len();
        assert_eq!(candidate_prefs.len(), n, "sides must have equal size");
        for p in proposer_prefs.iter().chain(candidate_prefs.iter()) {
            assert_eq!(p.len(), n, "preference lists must be complete");
            let mut seen = vec![false; n];
            for &x in p {
                assert!(x < n && !seen[x], "preference list must be a permutation");
                seen[x] = true;
            }
        }
        let mut rank = vec![vec![0usize; n]; n];
        for (w, prefs) in candidate_prefs.iter().enumerate() {
            for (r, &m) in prefs.iter().enumerate() {
                rank[w][m] = r;
            }
        }
        StableMarriage {
            pref: proposer_prefs,
            rank,
        }
    }

    /// The candidate proposer `m` points at in state `g`.
    pub fn candidate_of(&self, g: &[usize], m: usize) -> usize {
        self.pref[m][g[m]]
    }

    /// Extracts the matching `proposer -> candidate` from a solved state.
    pub fn matching(&self, g: &[usize]) -> Vec<usize> {
        (0..self.pref.len()).map(|m| self.candidate_of(g, m)).collect()
    }

    fn n(&self) -> usize {
        self.pref.len()
    }
}

impl LlpProblem for StableMarriage {
    type State = usize;

    fn num_indices(&self) -> usize {
        self.n()
    }

    fn bottom(&self, _j: usize) -> usize {
        0
    }

    fn forbidden(&self, g: &[usize], m: usize) -> bool {
        let w = self.candidate_of(g, m);
        // m is forbidden iff some rival pointing at w is preferred by w.
        (0..self.n()).any(|m2| {
            m2 != m && self.candidate_of(g, m2) == w && self.rank[w][m2] < self.rank[w][m]
        })
    }

    fn advance(&self, g: &[usize], m: usize) -> Option<usize> {
        let next = g[m] + 1;
        (next < self.n()).then_some(next)
    }

    fn name(&self) -> &str {
        "llp-stable-marriage"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{solve_parallel, solve_sequential};
    use llp_runtime::ThreadPool;

    /// Checks a matching for stability directly from the definitions.
    fn is_stable(sm: &StableMarriage, matching: &[usize]) -> bool {
        let n = matching.len();
        // invert: candidate -> proposer
        let mut holder = vec![usize::MAX; n];
        for (m, &w) in matching.iter().enumerate() {
            if holder[w] != usize::MAX {
                return false; // not a matching
            }
            holder[w] = m;
        }
        // no blocking pair (m, w): m prefers w over his match AND w prefers
        // m over her holder.
        for (m, &mw) in matching.iter().enumerate() {
            let m_rank_of = |w: usize| sm.pref[m].iter().position(|&x| x == w).unwrap();
            for (w, &holder_of_w) in holder.iter().enumerate() {
                if w != mw
                    && m_rank_of(w) < m_rank_of(mw)
                    && sm.rank[w][m] < sm.rank[w][holder_of_w]
                {
                    return false;
                }
            }
        }
        true
    }

    /// Textbook Gale–Shapley for cross-checking proposer-optimality.
    fn gale_shapley(sm: &StableMarriage) -> Vec<usize> {
        let n = sm.pref.len();
        let mut next = vec![0usize; n];
        let mut holder = vec![usize::MAX; n]; // candidate -> proposer
        let mut free: Vec<usize> = (0..n).rev().collect();
        while let Some(m) = free.pop() {
            let w = sm.pref[m][next[m]];
            next[m] += 1;
            if holder[w] == usize::MAX {
                holder[w] = m;
            } else if sm.rank[w][m] < sm.rank[w][holder[w]] {
                free.push(holder[w]);
                holder[w] = m;
            } else {
                free.push(m);
            }
        }
        let mut matching = vec![0usize; n];
        for (w, &m) in holder.iter().enumerate() {
            matching[m] = w;
        }
        matching
    }

    fn random_instance(n: usize, seed: u64) -> StableMarriage {
        use llp_runtime::rng::SmallRng;
        let mut rng = SmallRng::seed_from_u64(seed);
        let perm = |rng: &mut SmallRng| {
            let mut v: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut v);
            v
        };
        StableMarriage::new(
            (0..n).map(|_| perm(&mut rng)).collect(),
            (0..n).map(|_| perm(&mut rng)).collect(),
        )
    }

    #[test]
    fn three_by_three_textbook_case() {
        let sm = StableMarriage::new(
            vec![vec![0, 1, 2], vec![1, 0, 2], vec![0, 1, 2]],
            vec![vec![1, 0, 2], vec![0, 1, 2], vec![0, 1, 2]],
        );
        let sol = solve_sequential(&sm).unwrap();
        let matching = sm.matching(&sol.state);
        assert!(is_stable(&sm, &matching));
        assert_eq!(matching, gale_shapley(&sm));
    }

    #[test]
    fn random_instances_are_stable_and_proposer_optimal() {
        for seed in 0..8 {
            let sm = random_instance(12, seed);
            let sol = solve_sequential(&sm).unwrap();
            let matching = sm.matching(&sol.state);
            assert!(is_stable(&sm, &matching), "seed {seed}");
            assert_eq!(matching, gale_shapley(&sm), "seed {seed}");
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let pool = ThreadPool::new(4);
        for seed in 0..4 {
            let sm = random_instance(10, 100 + seed);
            let seq = solve_sequential(&sm).unwrap();
            let par = solve_parallel(&sm, &pool).unwrap();
            assert_eq!(seq.state, par.state, "seed {seed}");
        }
    }

    #[test]
    fn identity_preferences_match_identically() {
        let idx: Vec<Vec<usize>> = (0..5).map(|_| (0..5).collect()).collect();
        // All proposers want candidate 0 first, etc.; candidates rank
        // proposer 0 first. Proposer 0 gets candidate 0, proposer 1 is
        // bumped to 1, and so on.
        let sm = StableMarriage::new(idx.clone(), idx);
        let sol = solve_sequential(&sm).unwrap();
        assert_eq!(sm.matching(&sol.state), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn rejects_malformed_preferences() {
        let _ = StableMarriage::new(
            vec![vec![0, 0], vec![0, 1]],
            vec![vec![0, 1], vec![1, 0]],
        );
    }
}

//! Classic LLP problem instances.
//!
//! These are the instantiations the LLP literature (cited in the paper's
//! §III) uses to demonstrate the framework; here they double as framework
//! validation: each instance's solver output is checked against an
//! independent classical algorithm in its tests.

pub mod pointer_jump;
pub mod shortest_paths;
pub mod stable_marriage;

pub use pointer_jump::PointerJump;
pub use shortest_paths::ShortestPaths;
pub use stable_marriage::StableMarriage;

//! Pointer jumping (rooted trees → rooted stars) as LLP detection.
//!
//! This is the inner LLP instance of the paper's LLP-Boruvka (Lemma 3/4):
//! given a rooted forest encoded as parent pointers `G[j]` (roots point to
//! themselves), a node is *forbidden* while `G[j] ≠ G[G[j]]` and advances
//! by `G[j] := G[G[j]]`. When no node is forbidden every tree has become a
//! star: each node points directly at its root.
//!
//! `llp-mst`'s LLP-Boruvka inlines this computation with relaxed atomics
//! (the paper's "little to no synchronization" point); this module is the
//! same predicate expressed through the generic solver, used as its
//! executable specification and for the framework example.

use crate::problem::LlpProblem;

/// A pointer-jumping LLP instance over an initial parent assignment.
#[derive(Debug, Clone)]
pub struct PointerJump {
    parent: Vec<usize>,
}

impl PointerJump {
    /// Creates the instance from initial parent pointers.
    ///
    /// The pointers must form a rooted forest: following parents from any
    /// node must reach a self-loop (root). Cycles of length ≥ 2 would make
    /// the predicate unsatisfiable; a debug check rejects them.
    pub fn new(parent: Vec<usize>) -> Self {
        let n = parent.len();
        for &p in &parent {
            assert!(p < n, "parent pointer out of range");
        }
        debug_assert!(
            (0..n).all(|mut v| {
                // A rooted forest reaches a self-loop within n hops.
                for _ in 0..=n {
                    let p = parent[v];
                    if p == v {
                        return true;
                    }
                    v = p;
                }
                false
            }),
            "parent pointers contain a cycle of length >= 2"
        );
        PointerJump { parent }
    }

    /// The root each node would reach by walking pointers (reference
    /// semantics for tests).
    pub fn roots_by_walking(&self) -> Vec<usize> {
        (0..self.parent.len())
            .map(|mut v| {
                while self.parent[v] != v {
                    v = self.parent[v];
                }
                v
            })
            .collect()
    }
}

impl LlpProblem for PointerJump {
    type State = usize;

    fn num_indices(&self) -> usize {
        self.parent.len()
    }

    fn bottom(&self, j: usize) -> usize {
        self.parent[j]
    }

    fn forbidden(&self, g: &[usize], j: usize) -> bool {
        g[j] != g[g[j]]
    }

    fn advance(&self, g: &[usize], j: usize) -> Option<usize> {
        Some(g[g[j]])
    }

    fn name(&self) -> &str {
        "llp-pointer-jump"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{solve_parallel, solve_sequential};
    use llp_runtime::ThreadPool;

    #[test]
    fn chain_becomes_star() {
        // 0 <- 1 <- 2 <- 3 <- 4
        let p = PointerJump::new(vec![0, 0, 1, 2, 3]);
        let sol = solve_sequential(&p).unwrap();
        assert_eq!(sol.state, vec![0; 5]);
    }

    #[test]
    fn forest_becomes_stars() {
        // two trees rooted at 0 and 3
        let p = PointerJump::new(vec![0, 0, 1, 3, 3, 4]);
        let sol = solve_sequential(&p).unwrap();
        assert_eq!(sol.state, vec![0, 0, 0, 3, 3, 3]);
        assert_eq!(sol.state, p.roots_by_walking());
    }

    #[test]
    fn already_star_is_feasible_immediately() {
        let p = PointerJump::new(vec![0, 0, 0, 0]);
        let sol = solve_sequential(&p).unwrap();
        assert_eq!(sol.stats.advances, 0);
        assert_eq!(sol.state, vec![0; 4]);
    }

    #[test]
    fn parallel_matches_sequential_on_random_forests() {
        use llp_runtime::rng::SmallRng;
        let pool = ThreadPool::new(4);
        for seed in 0..6 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = 200;
            // Random forest: each node's parent has a smaller index (or is
            // itself, making it a root).
            let parent: Vec<usize> = (0..n)
                .map(|v| if v == 0 || rng.gen_bool(0.1) { v } else { rng.gen_range(0..v) })
                .collect();
            let p = PointerJump::new(parent);
            let seq = solve_sequential(&p).unwrap();
            let par = solve_parallel(&p, &pool).unwrap();
            assert_eq!(seq.state, par.state, "seed {seed}");
            assert_eq!(seq.state, p.roots_by_walking(), "seed {seed}");
        }
    }

    #[test]
    fn parallel_rounds_are_logarithmic() {
        // A chain of 1024 nodes needs ~log2(1024) = 10 doubling rounds
        // (plus the final all-clear round).
        let n = 1024;
        let parent: Vec<usize> = (0..n).map(|v: usize| v.saturating_sub(1)).collect();
        let p = PointerJump::new(parent);
        let pool = ThreadPool::new(2);
        let sol = solve_parallel(&p, &pool).unwrap();
        assert!(
            sol.stats.rounds <= 12,
            "pointer jumping should double depth each round; took {} rounds",
            sol.stats.rounds
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_parent() {
        let _ = PointerJump::new(vec![5]);
    }
}

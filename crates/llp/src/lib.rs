//! # llp-core — the Lattice Linear Predicate detection framework
//!
//! The paper (§II) frames combinatorial optimisation as *predicate
//! detection*: find the minimum vector `G` in a distributive lattice `L`
//! that satisfies a boolean predicate `B`. When `B` is **lattice-linear**,
//! any infeasible `G` contains a *forbidden* index `j`, and `G` can only
//! become feasible by *advancing* `G[j]`. Algorithm 1 of the paper then
//! finds the least feasible vector by repeatedly advancing all forbidden
//! indices — in any order, sequentially or in parallel — which is exactly
//! what [`solve_sequential`] and [`solve_parallel`] implement.
//!
//! [`problem::LlpProblem`] captures a problem instance as the triple
//! `(bottom, forbidden, advance)`. Three classic instances from the LLP
//! literature ship in [`instances`]:
//!
//! * [`instances::shortest_paths`] — Bellman-Ford-style single-source
//!   shortest paths (cited in §III as prior LLP work),
//! * [`instances::stable_marriage`] — Gale–Shapley as predicate detection,
//! * [`instances::pointer_jump`] — rooted-tree → rooted-star conversion,
//!   the inner LLP instance of the paper's LLP-Boruvka (Lemma 3/4).
//!
//! The MST algorithms themselves live in the `llp-mst` crate; `llp-mst`'s
//! `spec` module runs the paper's Algorithm 4 (LLP-Prim) literally through
//! this solver as an executable specification.

pub mod instances;
pub mod problem;
pub mod solver;

pub use problem::LlpProblem;
pub use solver::{solve_chaotic, solve_parallel, solve_sequential, LlpError, LlpSolution, LlpStats};

//! Sequential and parallel LLP solvers (the paper's Algorithm 1).

use crate::problem::LlpProblem;
use llp_runtime::{parallel_map_collect, Bag, ParallelForConfig, ThreadPool};

/// Why a solve failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LlpError {
    /// Some index would have to advance beyond the top of its chain: no
    /// feasible vector exists (Algorithm 1's `return null`).
    Infeasible {
        /// The index that could not advance.
        index: usize,
    },
}

impl std::fmt::Display for LlpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LlpError::Infeasible { index } => {
                write!(f, "no feasible vector: index {index} cannot advance")
            }
        }
    }
}

impl std::error::Error for LlpError {}

/// Work metrics of a solve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LlpStats {
    /// Synchronous rounds executed (parallel solver) or outer sweeps
    /// (sequential solver).
    pub rounds: u64,
    /// Total number of `advance` applications.
    pub advances: u64,
    /// Total number of `forbidden` evaluations.
    pub forbidden_checks: u64,
}

/// The least feasible vector plus solve statistics.
#[derive(Debug, Clone)]
pub struct LlpSolution<S> {
    /// The minimum vector satisfying the predicate.
    pub state: Vec<S>,
    /// Work metrics.
    pub stats: LlpStats,
}

/// Finds the least feasible vector by sweeping indices until none is
/// forbidden.
///
/// A sweep evaluates every index once and advances the forbidden ones in
/// place (Gauss–Seidel style: later indices in the same sweep observe
/// earlier advances — lattice-linearity makes the result independent of
/// this choice, which the tests cross-check against the parallel solver).
pub fn solve_sequential<P: LlpProblem>(
    problem: &P,
) -> Result<LlpSolution<P::State>, LlpError> {
    let n = problem.num_indices();
    let mut state: Vec<P::State> = (0..n).map(|j| problem.bottom(j)).collect();
    let mut stats = LlpStats::default();

    loop {
        let mut any = false;
        stats.rounds += 1;
        for j in 0..n {
            stats.forbidden_checks += 1;
            if problem.forbidden(&state, j) {
                let next = problem
                    .advance(&state, j)
                    .ok_or(LlpError::Infeasible { index: j })?;
                debug_assert!(
                    next != state[j],
                    "advance must strictly increase state[{j}]"
                );
                state[j] = next;
                stats.advances += 1;
                any = true;
            }
        }
        if !any {
            return Ok(LlpSolution { state, stats });
        }
    }
}

/// Finds the least feasible vector with synchronous parallel rounds.
///
/// Each round evaluates `forbidden` for every index in parallel (reading a
/// frozen snapshot of `G`), computes the advanced values, then applies them
/// — the "for all j such that forbidden(G, j) in parallel" of Algorithm 1.
pub fn solve_parallel<P: LlpProblem>(
    problem: &P,
    pool: &ThreadPool,
) -> Result<LlpSolution<P::State>, LlpError> {
    let n = problem.num_indices();
    let mut state: Vec<P::State> = (0..n).map(|j| problem.bottom(j)).collect();
    let mut stats = LlpStats::default();
    let cfg = ParallelForConfig::with_grain(256);

    loop {
        stats.rounds += 1;
        stats.forbidden_checks += n as u64;

        // Evaluate forbidden + advance against the frozen snapshot.
        let failed: Bag<usize> = Bag::new(pool.threads());
        let frozen = &state;
        let updates: Vec<Option<P::State>> = {
            let failed = &failed;
            parallel_map_collect(pool, 0..n, cfg, |j| {
                if problem.forbidden(frozen, j) {
                    match problem.advance(frozen, j) {
                        Some(next) => Some(next),
                        None => {
                            // Record infeasibility; resolved after the round.
                            failed.push(0, j);
                            None
                        }
                    }
                } else {
                    None
                }
            })
        };
        if let Some(&j) = failed.drain_to_vec().first() {
            return Err(LlpError::Infeasible { index: j });
        }

        let mut any = false;
        for (j, upd) in updates.into_iter().enumerate() {
            if let Some(next) = upd {
                debug_assert!(next != state[j]);
                state[j] = next;
                stats.advances += 1;
                any = true;
            }
        }
        if !any {
            return Ok(LlpSolution { state, stats });
        }
    }
}

/// Finds the least feasible vector with an asynchronous worklist
/// ("chaotic relaxation").
///
/// Indices are re-examined only when enqueued: initially all of them, then
/// — after `j` advances — `j` itself and its
/// [`dependents`](LlpProblem::dependents). Lattice-linearity guarantees the
/// same least fixpoint as the sweep solvers for *any* execution order; this
/// order does asymptotically less work when dependency lists are sparse
/// (e.g. shortest paths re-checks only out-neighbours, as Bellman-Ford's
/// queue variant does).
///
/// Problems whose `dependents` returns `None` fall back to re-enqueueing
/// every index after an advance, degrading gracefully to sweep behaviour.
pub fn solve_chaotic<P: LlpProblem>(problem: &P) -> Result<LlpSolution<P::State>, LlpError> {
    let n = problem.num_indices();
    let mut state: Vec<P::State> = (0..n).map(|j| problem.bottom(j)).collect();
    let mut stats = LlpStats::default();

    let mut queue: std::collections::VecDeque<usize> = (0..n).collect();
    let mut queued = vec![true; n];

    while let Some(j) = queue.pop_front() {
        queued[j] = false;
        stats.forbidden_checks += 1;
        if !problem.forbidden(&state, j) {
            continue;
        }
        let next = problem
            .advance(&state, j)
            .ok_or(LlpError::Infeasible { index: j })?;
        debug_assert!(next != state[j], "advance must strictly increase");
        state[j] = next;
        stats.advances += 1;

        // j may still be forbidden at its new value; dependents may have
        // become forbidden because of j's move.
        let mut enqueue = |k: usize, queue: &mut std::collections::VecDeque<usize>| {
            if !queued[k] {
                queued[k] = true;
                queue.push_back(k);
            }
        };
        enqueue(j, &mut queue);
        match problem.dependents(j) {
            Some(deps) => {
                for k in deps {
                    enqueue(k, &mut queue);
                }
            }
            None => {
                for k in 0..n {
                    enqueue(k, &mut queue);
                }
            }
        }
    }
    // The worklist counts no rounds; report one logical round.
    stats.rounds = 1;
    Ok(LlpSolution { state, stats })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy LLP problem: find the least vector with `G[j] >= target[j]`,
    /// advancing by steps of 1. Trivially lattice-linear.
    struct AtLeast {
        target: Vec<u32>,
        top: u32,
    }

    impl LlpProblem for AtLeast {
        type State = u32;
        fn num_indices(&self) -> usize {
            self.target.len()
        }
        fn bottom(&self, _j: usize) -> u32 {
            0
        }
        fn forbidden(&self, g: &[u32], j: usize) -> bool {
            g[j] < self.target[j]
        }
        fn advance(&self, g: &[u32], j: usize) -> Option<u32> {
            let next = g[j] + 1;
            (next <= self.top).then_some(next)
        }
    }

    /// A coupled problem: G[j] must be at least G[j-1] (a chain), and
    /// G[0] >= k. The least solution is all-k.
    struct Chain {
        n: usize,
        k: u32,
    }

    impl LlpProblem for Chain {
        type State = u32;
        fn num_indices(&self) -> usize {
            self.n
        }
        fn bottom(&self, _j: usize) -> u32 {
            0
        }
        fn forbidden(&self, g: &[u32], j: usize) -> bool {
            if j == 0 {
                g[0] < self.k
            } else {
                g[j] < g[j - 1]
            }
        }
        fn advance(&self, g: &[u32], j: usize) -> Option<u32> {
            Some(if j == 0 { self.k } else { g[j - 1] })
        }
    }

    #[test]
    fn sequential_reaches_least_vector() {
        let p = AtLeast {
            target: vec![3, 0, 5, 1],
            top: 10,
        };
        let sol = solve_sequential(&p).unwrap();
        assert_eq!(sol.state, vec![3, 0, 5, 1]);
        assert_eq!(sol.stats.advances, 9);
    }

    #[test]
    fn parallel_matches_sequential() {
        let p = AtLeast {
            target: (0..100).map(|i| (i * 7) % 13).collect(),
            top: 20,
        };
        let pool = ThreadPool::new(4);
        let seq = solve_sequential(&p).unwrap();
        let par = solve_parallel(&p, &pool).unwrap();
        assert_eq!(seq.state, par.state);
    }

    #[test]
    fn infeasible_detected_sequentially_and_parallel() {
        let p = AtLeast {
            target: vec![5],
            top: 3,
        };
        assert_eq!(
            solve_sequential(&p).unwrap_err(),
            LlpError::Infeasible { index: 0 }
        );
        let pool = ThreadPool::new(2);
        assert!(matches!(
            solve_parallel(&p, &pool).unwrap_err(),
            LlpError::Infeasible { .. }
        ));
    }

    #[test]
    fn coupled_chain_converges() {
        let p = Chain { n: 50, k: 7 };
        let pool = ThreadPool::new(3);
        let seq = solve_sequential(&p).unwrap();
        let par = solve_parallel(&p, &pool).unwrap();
        assert!(seq.state.iter().all(|&x| x == 7));
        assert_eq!(seq.state, par.state);
        // Parallel needs at least one round per chain hop; sequential
        // propagates in one Gauss–Seidel sweep plus a verification sweep.
        assert!(seq.stats.rounds <= 3);
        assert!(par.stats.rounds >= 50);
    }

    #[test]
    fn chaotic_matches_sequential_without_dependents() {
        let p = AtLeast {
            target: (0..60).map(|i| (i * 11) % 9).collect(),
            top: 20,
        };
        let seq = solve_sequential(&p).unwrap();
        let cha = solve_chaotic(&p).unwrap();
        assert_eq!(seq.state, cha.state);
    }

    /// Reversed chain: `G[j]` must reach `G[j+1]` and the last index must
    /// reach `k`, so information flows *against* the FIFO scan order —
    /// pessimal for sweeps, ideal for a dependent-directed worklist
    /// (advancing j only affects j-1).
    struct ReversedChain {
        n: usize,
        k: u32,
        deps: bool,
    }

    impl LlpProblem for ReversedChain {
        type State = u32;
        fn num_indices(&self) -> usize {
            self.n
        }
        fn bottom(&self, _j: usize) -> u32 {
            0
        }
        fn forbidden(&self, g: &[u32], j: usize) -> bool {
            if j == self.n - 1 {
                g[j] < self.k
            } else {
                g[j] < g[j + 1]
            }
        }
        fn advance(&self, g: &[u32], j: usize) -> Option<u32> {
            Some(if j == self.n - 1 { self.k } else { g[j + 1] })
        }
        fn dependents(&self, j: usize) -> Option<Vec<usize>> {
            if !self.deps {
                return None;
            }
            Some(if j > 0 { vec![j - 1] } else { vec![] })
        }
    }

    #[test]
    fn chaotic_with_dependents_does_less_work() {
        let n = 200;
        let with_deps = solve_chaotic(&ReversedChain { n, k: 5, deps: true }).unwrap();
        let without = solve_chaotic(&ReversedChain { n, k: 5, deps: false }).unwrap();
        assert_eq!(with_deps.state, without.state);
        assert!(with_deps.state.iter().all(|&x| x == 5));
        assert!(
            with_deps.stats.forbidden_checks * 10 < without.stats.forbidden_checks,
            "dependents should prune re-checks: {} vs {}",
            with_deps.stats.forbidden_checks,
            without.stats.forbidden_checks
        );
    }

    #[test]
    fn chaotic_detects_infeasibility() {
        let p = AtLeast {
            target: vec![9],
            top: 3,
        };
        assert!(matches!(
            solve_chaotic(&p),
            Err(LlpError::Infeasible { index: 0 })
        ));
    }

    #[test]
    fn empty_problem_is_trivially_feasible() {
        let p = AtLeast {
            target: vec![],
            top: 0,
        };
        let sol = solve_sequential(&p).unwrap();
        assert!(sol.state.is_empty());
    }
}

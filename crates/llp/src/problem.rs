//! The LLP problem abstraction: bottom / forbidden / advance.

/// A lattice-linear predicate detection problem (paper §II).
///
/// The global state is a vector `G` of `num_indices()` per-index states
/// drawn from a lattice ordered by repeated [`advance`](Self::advance):
/// advancing must move `G[j]` strictly up its (finite-height) chain.
///
/// Implementations must satisfy the lattice-linearity contract:
///
/// 1. **Soundness of `forbidden`** — if `forbidden(G, j)` then no feasible
///    vector `H ≥ G` keeps `H[j] = G[j]` (Definition 1).
/// 2. **Soundness of `advance`** — `advance(G, j)` returns the least state
///    `α` such that every feasible `H ≥ G` has `H[j] ≥ α` (Definition 3),
///    or `None` when `α` would exceed the top of the lattice — in which
///    case no feasible vector exists (Algorithm 1 "return null").
/// 3. **Progress** — `advance(G, j) > G[j]` whenever `forbidden(G, j)`;
///    chains have finite height so solvers terminate.
///
/// Under this contract the solvers return the *minimum* feasible vector,
/// regardless of the order in which forbidden indices are advanced — that
/// schedule-independence is what makes LLP algorithms parallelisable
/// without synchronisation on the predicate evaluation.
///
/// ```
/// use llp_core::{solve_sequential, LlpProblem};
///
/// /// Least vector with G[j] >= target[j].
/// struct AtLeast(Vec<u32>);
///
/// impl LlpProblem for AtLeast {
///     type State = u32;
///     fn num_indices(&self) -> usize { self.0.len() }
///     fn bottom(&self, _j: usize) -> u32 { 0 }
///     fn forbidden(&self, g: &[u32], j: usize) -> bool { g[j] < self.0[j] }
///     fn advance(&self, g: &[u32], j: usize) -> Option<u32> { Some(g[j] + 1) }
/// }
///
/// let sol = solve_sequential(&AtLeast(vec![2, 0, 5])).unwrap();
/// assert_eq!(sol.state, vec![2, 0, 5]);
/// ```
pub trait LlpProblem: Sync {
    /// Per-index state type.
    type State: Clone + PartialEq + Send + Sync + std::fmt::Debug;

    /// Dimension of the state vector.
    fn num_indices(&self) -> usize;

    /// The bottom (least) state of index `j`'s chain.
    fn bottom(&self, j: usize) -> Self::State;

    /// True when index `j` is forbidden in `g` (Definition 1).
    fn forbidden(&self, g: &[Self::State], j: usize) -> bool;

    /// The state `G[j]` must advance to (Definition 3), or `None` when the
    /// advance would leave the lattice (no feasible vector exists).
    ///
    /// Only called when `forbidden(g, j)` holds.
    fn advance(&self, g: &[Self::State], j: usize) -> Option<Self::State>;

    /// Optional human-readable name used in diagnostics.
    fn name(&self) -> &str {
        "llp-problem"
    }

    /// Indices whose `forbidden` status may change when index `j` advances
    /// (the *dependents* of `j`), or `None` when the problem cannot bound
    /// them — the worklist solver then falls back to re-checking everything.
    ///
    /// Providing dependents turns [`crate::solver::solve_chaotic`] from
    /// repeated global sweeps into a Bellman-Ford-style worklist algorithm:
    /// only indices that could have become forbidden are re-examined.
    fn dependents(&self, _j: usize) -> Option<Vec<usize>> {
        None
    }
}

//! Property tests for the runtime primitives: every parallel primitive
//! must agree with its obvious sequential counterpart on arbitrary input.

use llp_runtime::{
    parallel_for, parallel_map_collect, parallel_reduce, scan, sort, Bag, ParallelForConfig,
    ThreadPool,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_sum_matches_sequential(
        values in proptest::collection::vec(0u64..1_000_000, 0..5000),
        threads in 1usize..5,
        grain in 1usize..512,
    ) {
        let pool = ThreadPool::new(threads);
        let acc = AtomicU64::new(0);
        parallel_for(&pool, 0..values.len(), ParallelForConfig::with_grain(grain), |i| {
            acc.fetch_add(values[i], Ordering::Relaxed);
        });
        prop_assert_eq!(acc.load(Ordering::Relaxed), values.iter().sum::<u64>());
    }

    #[test]
    fn parallel_reduce_min_matches(
        values in proptest::collection::vec(0i64..1_000_000, 1..5000),
        threads in 1usize..5,
    ) {
        let pool = ThreadPool::new(threads);
        let got = parallel_reduce(
            &pool,
            0..values.len(),
            ParallelForConfig::with_grain(64),
            i64::MAX,
            |c| c.map(|i| values[i]).min().unwrap_or(i64::MAX),
            |a, b| a.min(b),
        );
        prop_assert_eq!(got, *values.iter().min().unwrap());
    }

    #[test]
    fn map_collect_matches_iterator(
        n in 0usize..3000,
        threads in 1usize..5,
    ) {
        let pool = ThreadPool::new(threads);
        let got = parallel_map_collect(&pool, 0..n, ParallelForConfig::with_grain(37), |i| {
            (i as u64).wrapping_mul(0x9E3779B97F4A7C15)
        });
        let want: Vec<u64> = (0..n).map(|i| (i as u64).wrapping_mul(0x9E3779B97F4A7C15)).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn scan_matches_running_sum(
        values in proptest::collection::vec(0u64..1000, 0..6000),
        threads in 1usize..5,
    ) {
        let pool = ThreadPool::new(threads);
        let (scanned, total) = scan::exclusive_scan(&pool, &values);
        let mut acc = 0u64;
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(scanned[i], acc, "index {}", i);
            acc += v;
        }
        prop_assert_eq!(total, acc);
    }

    #[test]
    fn pack_matches_filter(
        flags in proptest::collection::vec(proptest::bool::ANY, 0..6000),
        threads in 1usize..5,
    ) {
        let pool = ThreadPool::new(threads);
        let got = scan::pack_indices(&pool, flags.len(), ParallelForConfig::with_grain(64), |i| flags[i]);
        let want: Vec<usize> = (0..flags.len()).filter(|&i| flags[i]).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn par_sort_matches_std(
        mut values in proptest::collection::vec(0u64..u64::MAX, 0..12_000),
        threads in 1usize..5,
    ) {
        let pool = ThreadPool::new(threads);
        let mut want = values.clone();
        want.sort_unstable();
        sort::par_sort(&pool, &mut values);
        prop_assert_eq!(values, want);
    }

    #[test]
    fn bag_preserves_all_elements(
        pushes in proptest::collection::vec((0usize..4, 0u32..1_000_000), 0..2000),
    ) {
        let bag: Bag<u32> = Bag::new(4);
        for &(seg, v) in &pushes {
            bag.push(seg, v);
        }
        prop_assert_eq!(bag.len(), pushes.len());
        let mut got = bag.drain_to_vec();
        got.sort_unstable();
        let mut want: Vec<u32> = pushes.iter().map(|&(_, v)| v).collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn ordered_f64_encoding_is_monotone(a in proptest::num::f64::NORMAL, b in proptest::num::f64::NORMAL) {
        use llp_runtime::atomics::{f64_to_ordered, ordered_to_f64};
        prop_assert_eq!(a < b, f64_to_ordered(a) < f64_to_ordered(b));
        prop_assert_eq!(a.to_bits(), ordered_to_f64(f64_to_ordered(a)).to_bits());
    }
}

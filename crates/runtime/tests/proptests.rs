//! Property-style tests for the runtime primitives: every parallel primitive
//! must agree with its obvious sequential counterpart on randomised input.
//! Cases are deterministic seed sweeps over [`llp_runtime::rng::SmallRng`]
//! (hermetic builds cannot depend on `proptest`).

use llp_runtime::rng::SmallRng;
use llp_runtime::{
    parallel_for, parallel_map_collect, parallel_reduce, scan, sort, Bag, ParallelForConfig,
    ThreadPool,
};
use std::sync::atomic::{AtomicU64, Ordering};

const CASES: u64 = 48;

fn random_vec(rng: &mut SmallRng, max_len: usize, max_value: u64) -> Vec<u64> {
    let len = rng.gen_range(0..max_len);
    (0..len).map(|_| rng.gen_range(0..max_value)).collect()
}

#[test]
fn parallel_sum_matches_sequential() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let values = random_vec(&mut rng, 5000, 1_000_000);
        let threads = rng.gen_range(1usize..5);
        let grain = rng.gen_range(1usize..512);
        let pool = ThreadPool::new(threads);
        let acc = AtomicU64::new(0);
        parallel_for(
            &pool,
            0..values.len(),
            ParallelForConfig::with_grain(grain),
            |i| {
                acc.fetch_add(values[i], Ordering::Relaxed);
            },
        );
        assert_eq!(
            acc.load(Ordering::Relaxed),
            values.iter().sum::<u64>(),
            "seed {seed}"
        );
    }
}

#[test]
fn parallel_reduce_min_matches() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut values = random_vec(&mut rng, 5000, 1_000_000);
        if values.is_empty() {
            values.push(rng.gen_range(0..1_000_000));
        }
        let values: Vec<i64> = values.into_iter().map(|v| v as i64).collect();
        let pool = ThreadPool::new(rng.gen_range(1usize..5));
        let got = parallel_reduce(
            &pool,
            0..values.len(),
            ParallelForConfig::with_grain(64),
            i64::MAX,
            |c| c.map(|i| values[i]).min().unwrap_or(i64::MAX),
            |a, b| a.min(b),
        );
        assert_eq!(got, *values.iter().min().unwrap(), "seed {seed}");
    }
}

#[test]
fn map_collect_matches_iterator() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = rng.gen_range(0usize..3000);
        let pool = ThreadPool::new(rng.gen_range(1usize..5));
        let got = parallel_map_collect(&pool, 0..n, ParallelForConfig::with_grain(37), |i| {
            (i as u64).wrapping_mul(0x9E3779B97F4A7C15)
        });
        let want: Vec<u64> = (0..n)
            .map(|i| (i as u64).wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        assert_eq!(got, want, "seed {seed}");
    }
}

#[test]
fn scan_matches_running_sum() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let values = random_vec(&mut rng, 6000, 1000);
        let pool = ThreadPool::new(rng.gen_range(1usize..5));
        let (scanned, total) = scan::exclusive_scan(&pool, &values);
        let mut acc = 0u64;
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(scanned[i], acc, "seed {seed} index {i}");
            acc += v;
        }
        assert_eq!(total, acc, "seed {seed}");
    }
}

#[test]
fn pack_matches_filter() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let len = rng.gen_range(0usize..6000);
        let flags: Vec<bool> = (0..len).map(|_| rng.gen::<bool>()).collect();
        let pool = ThreadPool::new(rng.gen_range(1usize..5));
        let got = scan::pack_indices(&pool, flags.len(), ParallelForConfig::with_grain(64), |i| {
            flags[i]
        });
        let want: Vec<usize> = (0..flags.len()).filter(|&i| flags[i]).collect();
        assert_eq!(got, want, "seed {seed}");
    }
}

#[test]
fn par_sort_matches_std() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let len = rng.gen_range(0usize..12_000);
        let mut values: Vec<u64> = (0..len).map(|_| rng.gen::<u64>()).collect();
        let pool = ThreadPool::new(rng.gen_range(1usize..5));
        let mut want = values.clone();
        want.sort_unstable();
        sort::par_sort(&pool, &mut values);
        assert_eq!(values, want, "seed {seed}");
    }
}

#[test]
fn bag_preserves_all_elements() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed);
        let len = rng.gen_range(0usize..2000);
        let pushes: Vec<(usize, u32)> = (0..len)
            .map(|_| (rng.gen_range(0usize..4), rng.gen_range(0u32..1_000_000)))
            .collect();
        let bag: Bag<u32> = Bag::new(4);
        for &(seg, v) in &pushes {
            bag.push(seg, v);
        }
        assert_eq!(bag.len(), pushes.len(), "seed {seed}");
        let mut got = bag.drain_to_vec();
        got.sort_unstable();
        let mut want: Vec<u32> = pushes.iter().map(|&(_, v)| v).collect();
        want.sort_unstable();
        assert_eq!(got, want, "seed {seed}");
    }
}

#[test]
fn ordered_f64_encoding_is_monotone() {
    use llp_runtime::atomics::{f64_to_ordered, ordered_to_f64};
    let mut rng = SmallRng::seed_from_u64(2024);
    // Random normal floats of both signs and varied magnitudes.
    let sample = |rng: &mut SmallRng| -> f64 {
        let mag = rng.gen_range(-300i64..300) as f64;
        let x = (rng.gen::<f64>() + f64::MIN_POSITIVE) * 10f64.powf(mag / 10.0);
        if rng.gen::<bool>() {
            x
        } else {
            -x
        }
    };
    for case in 0..4096 {
        let a = sample(&mut rng);
        let b = sample(&mut rng);
        assert_eq!(
            a < b,
            f64_to_ordered(a) < f64_to_ordered(b),
            "case {case}: {a} vs {b}"
        );
        assert_eq!(
            a.to_bits(),
            ordered_to_f64(f64_to_ordered(a)).to_bits(),
            "case {case}: {a}"
        );
    }
}

//! Atomic utilities for weight relaxation and priority writes.
//!
//! The MST algorithms need two lock-free idioms the standard library does
//! not provide directly:
//!
//! 1. **atomic `f64` min** — LLP-Prim relaxes tentative distances
//!    concurrently (`d[k] = min(d[k], w)`), and
//! 2. **atomic min-by-key over indices** — parallel Boruvka's
//!    minimum-weight-edge selection writes the *index* of the best edge per
//!    vertex/component, comparing by the edge's weight key (GBBS calls this
//!    a `priority_write`).
//!
//! Both are built on compare-exchange loops over `AtomicU64`, using an
//! order-preserving bijection between `f64` and `u64`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Order-preserving encoding of an `f64` into a `u64`.
///
/// For any finite floats `a <= b`, `f64_to_ordered(a) <= f64_to_ordered(b)`.
/// Non-negative floats map monotonically via their IEEE-754 bits; negative
/// floats have all bits flipped so they sort below the positives.
#[inline]
pub fn f64_to_ordered(x: f64) -> u64 {
    let bits = x.to_bits();
    if bits & (1 << 63) == 0 {
        bits | (1 << 63)
    } else {
        !bits
    }
}

/// Inverse of [`f64_to_ordered`].
#[inline]
pub fn ordered_to_f64(bits: u64) -> f64 {
    if bits & (1 << 63) != 0 {
        f64::from_bits(bits & !(1 << 63))
    } else {
        f64::from_bits(!bits)
    }
}

/// An `f64` with atomic load/store/fetch-min, stored order-preservingly.
///
/// `fetch_min` is the only read-modify-write operation exposed because it is
/// the only one the algorithms need; keeping the encoding monotone lets the
/// CAS loop compare raw `u64`s.
pub struct AtomicF64 {
    bits: AtomicU64,
}

impl AtomicF64 {
    /// Creates a new atomic holding `value`.
    #[inline]
    pub fn new(value: f64) -> Self {
        AtomicF64 {
            bits: AtomicU64::new(f64_to_ordered(value)),
        }
    }

    /// Loads the current value.
    #[inline]
    pub fn load(&self, order: Ordering) -> f64 {
        ordered_to_f64(self.bits.load(order))
    }

    /// Stores `value`.
    #[inline]
    pub fn store(&self, value: f64, order: Ordering) {
        self.bits.store(f64_to_ordered(value), order);
    }

    /// Atomically lowers the stored value to `min(current, value)`.
    ///
    /// Returns `true` when `value` strictly lowered the stored value.
    #[inline]
    pub fn fetch_min(&self, value: f64, order: Ordering) -> bool {
        let new = f64_to_ordered(value);
        let mut cur = self.bits.load(Ordering::Relaxed);
        while new < cur {
            match self
                .bits
                .compare_exchange_weak(cur, new, order, Ordering::Relaxed)
            {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
        false
    }
}

impl std::fmt::Debug for AtomicF64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AtomicF64({})", self.load(Ordering::Relaxed))
    }
}

/// Sentinel meaning "no index written yet" in [`AtomicIndexMin`].
pub const NO_INDEX: u64 = u64::MAX;

/// Atomic "argmin" cell: stores the index whose key is smallest so far.
///
/// This is the GBBS `priority_write` idiom: concurrent writers propose
/// indices, the cell keeps whichever index has the smallest key under the
/// caller-supplied key function. The key function must be pure for the
/// duration of the operation (in MST use it reads immutable edge weights).
pub struct AtomicIndexMin {
    idx: AtomicU64,
}

impl Default for AtomicIndexMin {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicIndexMin {
    /// Creates an empty cell ([`NO_INDEX`]).
    #[inline]
    pub fn new() -> Self {
        AtomicIndexMin {
            idx: AtomicU64::new(NO_INDEX),
        }
    }

    /// Loads the current winning index, or [`NO_INDEX`] if none.
    #[inline]
    pub fn load(&self, order: Ordering) -> u64 {
        self.idx.load(order)
    }

    /// Resets the cell to empty.
    #[inline]
    pub fn reset(&self) {
        self.idx.store(NO_INDEX, Ordering::Relaxed);
    }

    /// Proposes `candidate`; keeps whichever of {current, candidate} has the
    /// smaller `key`. Returns `true` if `candidate` won.
    ///
    /// Ties must be impossible (the MST crates compare by a strict total
    /// order over edges); equal keys keep the incumbent.
    pub fn propose_min_by<K, F>(&self, candidate: u64, key: F) -> bool
    where
        K: Ord,
        F: Fn(u64) -> K,
    {
        debug_assert_ne!(candidate, NO_INDEX, "NO_INDEX is reserved");
        let cand_key = key(candidate);
        let mut cur = self.idx.load(Ordering::Relaxed);
        loop {
            if cur != NO_INDEX && key(cur) <= cand_key {
                return false;
            }
            match self.idx.compare_exchange_weak(
                cur,
                candidate,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
    }
}

impl std::fmt::Debug for AtomicIndexMin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let v = self.load(Ordering::Relaxed);
        if v == NO_INDEX {
            write!(f, "AtomicIndexMin(empty)")
        } else {
            write!(f, "AtomicIndexMin({v})")
        }
    }
}

// ---------------------------------------------------------------------------
// Packed MWE (minimum-weight-edge) words.
//
// The Boruvka family's per-component argmin cell used to be an
// [`AtomicIndexMin`] whose key function chased `edge index -> EdgeKey`
// through two extra cache lines on every propose. The packed protocol folds
// the discriminating 32 bits of the weight into the atomic word itself:
//
//     word = (weight_hi32 << 32) | edge_index
//
// where `weight_hi32` is the high half of the order-preserving `u64` float
// encoding. Because that encoding is monotone, `a.whi < b.whi` implies
// weight(a) < weight(b), so almost every propose resolves with one atomic
// load and an integer compare. Only a tie in the high 32 bits (equal raw
// weights, or weights closer than 2^-20 relative) falls back to the exact
// `EdgeKey` comparison — preserving the strict total edge order every
// algorithm's canonical-MSF cross-check depends on.

/// Empty packed MWE cell. Distinct from every real candidate word: a
/// non-NaN weight encodes to `whi <= 0xFFF0_0000` (`+inf`), so a real word's
/// high half can never be `u32::MAX`.
pub const MWE_EMPTY: u64 = u64::MAX;

/// High 32 bits of the order-preserving encoding of `w` — the packed word's
/// weight discriminant. Monotone: `a <= b` implies
/// `weight_hi32(a) <= weight_hi32(b)` for non-NaN floats.
#[inline]
pub fn weight_hi32(w: f64) -> u32 {
    (f64_to_ordered(w) >> 32) as u32
}

/// Packs a weight discriminant and an edge index into one MWE word.
#[inline]
pub fn mwe_pack(whi: u32, idx: u32) -> u64 {
    ((whi as u64) << 32) | idx as u64
}

/// Edge index half of a packed MWE word.
#[inline]
pub fn mwe_idx(word: u64) -> u32 {
    word as u32
}

/// Weight-discriminant half of a packed MWE word.
#[inline]
pub fn mwe_whi(word: u64) -> u32 {
    (word >> 32) as u32
}

/// Proposes edge `idx` with weight discriminant `whi` to a packed MWE cell.
///
/// Keeps whichever edge is smaller under the exact total order: the high-bit
/// fast path decides strictly different discriminants without touching edge
/// data; a discriminant tie is broken by `exact_key(edge index)` (the full
/// `EdgeKey`). Equal exact keys keep the incumbent, so re-proposing the
/// current winner returns `false`. Returns `true` when `idx` won the cell.
pub fn mwe_propose<K, F>(cell: &AtomicU64, whi: u32, idx: u32, exact_key: F) -> bool
where
    K: Ord,
    F: Fn(u32) -> K,
{
    let cand = mwe_pack(whi, idx);
    debug_assert_ne!(cand, MWE_EMPTY, "real candidates cannot collide with MWE_EMPTY");
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        if cur != MWE_EMPTY {
            let cur_whi = mwe_whi(cur);
            if cur_whi < whi {
                return false;
            }
            if cur_whi == whi {
                let cur_idx = mwe_idx(cur);
                if cur_idx == idx || exact_key(cur_idx) <= exact_key(idx) {
                    return false;
                }
            }
        }
        match cell.compare_exchange_weak(cur, cand, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(actual) => cur = actual,
        }
    }
}

/// Views a mutable `u64` slice as atomics.
///
/// The exclusive borrow guarantees no other non-atomic access for the
/// returned lifetime, and `AtomicU64` has the same size and alignment as
/// `u64`, so the cast is sound. This is what lets round state live in plain
/// [`crate::scratch::ScratchArena`] buffers and still be written
/// concurrently.
#[inline]
pub fn as_atomic_u64(slice: &mut [u64]) -> &[AtomicU64] {
    // SAFETY: AtomicU64 is repr(transparent)-compatible with u64 (same size
    // and alignment, per std docs for AtomicU64::from_mut_slice), and the
    // &mut borrow excludes all other access during the shared lifetime.
    unsafe { &*(slice as *mut [u64] as *const [AtomicU64]) }
}

/// Views a mutable `u32` slice as atomics. See [`as_atomic_u64`].
#[inline]
pub fn as_atomic_u32(slice: &mut [u32]) -> &[std::sync::atomic::AtomicU32] {
    // SAFETY: as in `as_atomic_u64`.
    unsafe { &*(slice as *mut [u32] as *const [std::sync::atomic::AtomicU32]) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPool;

    #[test]
    fn ordered_encoding_is_monotone() {
        let xs = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -0.0,
            0.0,
            1e-300,
            1.0,
            2.5,
            1e300,
            f64::INFINITY,
        ];
        for w in xs.windows(2) {
            assert!(
                f64_to_ordered(w[0]) <= f64_to_ordered(w[1]),
                "{} vs {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn ordered_encoding_round_trips() {
        for x in [-123.456, -0.0, 0.0, 1.0, 6.02e23, f64::INFINITY] {
            let y = ordered_to_f64(f64_to_ordered(x));
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn fetch_min_lowers_only() {
        let a = AtomicF64::new(10.0);
        assert!(a.fetch_min(5.0, Ordering::Relaxed));
        assert!(!a.fetch_min(7.0, Ordering::Relaxed));
        assert!(!a.fetch_min(5.0, Ordering::Relaxed));
        assert_eq!(a.load(Ordering::Relaxed), 5.0);
    }

    #[test]
    fn fetch_min_concurrent_converges_to_global_min() {
        let pool = ThreadPool::new(4);
        let a = AtomicF64::new(f64::INFINITY);
        crate::parallel_for(
            &pool,
            0..10_000,
            crate::ParallelForConfig::with_grain(64),
            |i| {
                a.fetch_min(1.0 + (i as f64 % 997.0), Ordering::Relaxed);
            },
        );
        assert_eq!(a.load(Ordering::Relaxed), 1.0);
    }

    #[test]
    fn index_min_keeps_smallest_key() {
        let keys = [9u64, 3, 7, 1, 5];
        let cell = AtomicIndexMin::new();
        for i in 0..keys.len() as u64 {
            cell.propose_min_by(i, |j| keys[j as usize]);
        }
        assert_eq!(cell.load(Ordering::Relaxed), 3); // index of key 1
    }

    #[test]
    fn index_min_concurrent() {
        let pool = ThreadPool::new(4);
        let n = 100_000u64;
        let cell = AtomicIndexMin::new();
        crate::parallel_for(
            &pool,
            0..n as usize,
            crate::ParallelForConfig::with_grain(512),
            |i| {
                let i = i as u64;
                // key descends with i, so the max index wins
                cell.propose_min_by(i, |j| n - j);
            },
        );
        assert_eq!(cell.load(Ordering::Relaxed), n - 1);
    }

    #[test]
    fn index_min_reset() {
        let cell = AtomicIndexMin::new();
        cell.propose_min_by(4, |j| j);
        cell.reset();
        assert_eq!(cell.load(Ordering::Relaxed), NO_INDEX);
    }

    #[test]
    fn weight_hi32_is_monotone_and_below_empty() {
        let xs = [
            f64::NEG_INFINITY,
            -1e300,
            -1.0,
            0.0,
            1e-300,
            1.0,
            1.0 + f64::EPSILON,
            1e300,
            f64::INFINITY,
        ];
        for w in xs.windows(2) {
            assert!(weight_hi32(w[0]) <= weight_hi32(w[1]), "{} vs {}", w[0], w[1]);
        }
        // Even +inf leaves headroom below u32::MAX, so a real candidate
        // never packs to MWE_EMPTY.
        assert!(weight_hi32(f64::INFINITY) < u32::MAX);
        assert_ne!(mwe_pack(weight_hi32(f64::INFINITY), u32::MAX), MWE_EMPTY);
    }

    #[test]
    fn mwe_pack_round_trips() {
        for (whi, idx) in [(0u32, 0u32), (7, 42), (u32::MAX - 1, u32::MAX), (0x8000_0000, 1)] {
            let w = mwe_pack(whi, idx);
            assert_eq!(mwe_whi(w), whi);
            assert_eq!(mwe_idx(w), idx);
        }
    }

    #[test]
    fn mwe_propose_keeps_smallest_weight() {
        let weights = [9.0f64, 3.0, 7.0, 1.0, 5.0];
        let cell = AtomicU64::new(MWE_EMPTY);
        for (i, &w) in weights.iter().enumerate() {
            mwe_propose(&cell, weight_hi32(w), i as u32, |j| {
                f64_to_ordered(weights[j as usize])
            });
        }
        assert_eq!(mwe_idx(cell.load(Ordering::Relaxed)), 3); // index of 1.0
    }

    #[test]
    fn mwe_propose_breaks_hi32_ties_by_exact_key() {
        // Same raw weight -> identical whi; exact key (here: the index as a
        // stand-in for EdgeKey's endpoint tie-break) must decide.
        let whi = weight_hi32(2.5);
        let cell = AtomicU64::new(MWE_EMPTY);
        assert!(mwe_propose(&cell, whi, 9, |j| j));
        assert!(!mwe_propose(&cell, whi, 9, |j| j), "re-propose of winner must lose");
        assert!(mwe_propose(&cell, whi, 4, |j| j));
        assert!(!mwe_propose(&cell, whi, 7, |j| j));
        assert_eq!(mwe_idx(cell.load(Ordering::Relaxed)), 4);
    }

    #[test]
    fn mwe_propose_concurrent_converges() {
        let pool = ThreadPool::new(4);
        let n = 100_000usize;
        let cell = AtomicU64::new(MWE_EMPTY);
        let weight = |i: usize| 1.0 + ((i * 2654435761) % 997) as f64;
        crate::parallel_for(
            &pool,
            0..n,
            crate::ParallelForConfig::with_grain(512),
            |i| {
                mwe_propose(&cell, weight_hi32(weight(i)), i as u32, |j| {
                    (f64_to_ordered(weight(j as usize)), j)
                });
            },
        );
        let best = (0..n)
            .map(|i| (f64_to_ordered(weight(i)), i as u32))
            .min()
            .unwrap();
        assert_eq!(mwe_idx(cell.load(Ordering::Relaxed)), best.1);
    }

    #[test]
    fn atomic_slice_views_share_storage() {
        let mut buf = vec![0u64; 64];
        {
            let cells = as_atomic_u64(&mut buf);
            cells[5].store(99, Ordering::Relaxed);
            cells[63].fetch_add(1, Ordering::Relaxed);
        }
        assert_eq!(buf[5], 99);
        assert_eq!(buf[63], 1);

        let mut buf32 = vec![0u32; 8];
        {
            let cells = as_atomic_u32(&mut buf32);
            cells[0].store(7, Ordering::Relaxed);
        }
        assert_eq!(buf32[0], 7);
    }
}

//! Atomic utilities for weight relaxation and priority writes.
//!
//! The MST algorithms need two lock-free idioms the standard library does
//! not provide directly:
//!
//! 1. **atomic `f64` min** — LLP-Prim relaxes tentative distances
//!    concurrently (`d[k] = min(d[k], w)`), and
//! 2. **atomic min-by-key over indices** — parallel Boruvka's
//!    minimum-weight-edge selection writes the *index* of the best edge per
//!    vertex/component, comparing by the edge's weight key (GBBS calls this
//!    a `priority_write`).
//!
//! Both are built on compare-exchange loops over `AtomicU64`, using an
//! order-preserving bijection between `f64` and `u64`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Order-preserving encoding of an `f64` into a `u64`.
///
/// For any finite floats `a <= b`, `f64_to_ordered(a) <= f64_to_ordered(b)`.
/// Non-negative floats map monotonically via their IEEE-754 bits; negative
/// floats have all bits flipped so they sort below the positives.
#[inline]
pub fn f64_to_ordered(x: f64) -> u64 {
    let bits = x.to_bits();
    if bits & (1 << 63) == 0 {
        bits | (1 << 63)
    } else {
        !bits
    }
}

/// Inverse of [`f64_to_ordered`].
#[inline]
pub fn ordered_to_f64(bits: u64) -> f64 {
    if bits & (1 << 63) != 0 {
        f64::from_bits(bits & !(1 << 63))
    } else {
        f64::from_bits(!bits)
    }
}

/// An `f64` with atomic load/store/fetch-min, stored order-preservingly.
///
/// `fetch_min` is the only read-modify-write operation exposed because it is
/// the only one the algorithms need; keeping the encoding monotone lets the
/// CAS loop compare raw `u64`s.
pub struct AtomicF64 {
    bits: AtomicU64,
}

impl AtomicF64 {
    /// Creates a new atomic holding `value`.
    #[inline]
    pub fn new(value: f64) -> Self {
        AtomicF64 {
            bits: AtomicU64::new(f64_to_ordered(value)),
        }
    }

    /// Loads the current value.
    #[inline]
    pub fn load(&self, order: Ordering) -> f64 {
        ordered_to_f64(self.bits.load(order))
    }

    /// Stores `value`.
    #[inline]
    pub fn store(&self, value: f64, order: Ordering) {
        self.bits.store(f64_to_ordered(value), order);
    }

    /// Atomically lowers the stored value to `min(current, value)`.
    ///
    /// Returns `true` when `value` strictly lowered the stored value.
    #[inline]
    pub fn fetch_min(&self, value: f64, order: Ordering) -> bool {
        let new = f64_to_ordered(value);
        let mut cur = self.bits.load(Ordering::Relaxed);
        while new < cur {
            match self
                .bits
                .compare_exchange_weak(cur, new, order, Ordering::Relaxed)
            {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
        false
    }
}

impl std::fmt::Debug for AtomicF64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AtomicF64({})", self.load(Ordering::Relaxed))
    }
}

/// Sentinel meaning "no index written yet" in [`AtomicIndexMin`].
pub const NO_INDEX: u64 = u64::MAX;

/// Atomic "argmin" cell: stores the index whose key is smallest so far.
///
/// This is the GBBS `priority_write` idiom: concurrent writers propose
/// indices, the cell keeps whichever index has the smallest key under the
/// caller-supplied key function. The key function must be pure for the
/// duration of the operation (in MST use it reads immutable edge weights).
pub struct AtomicIndexMin {
    idx: AtomicU64,
}

impl Default for AtomicIndexMin {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicIndexMin {
    /// Creates an empty cell ([`NO_INDEX`]).
    #[inline]
    pub fn new() -> Self {
        AtomicIndexMin {
            idx: AtomicU64::new(NO_INDEX),
        }
    }

    /// Loads the current winning index, or [`NO_INDEX`] if none.
    #[inline]
    pub fn load(&self, order: Ordering) -> u64 {
        self.idx.load(order)
    }

    /// Resets the cell to empty.
    #[inline]
    pub fn reset(&self) {
        self.idx.store(NO_INDEX, Ordering::Relaxed);
    }

    /// Proposes `candidate`; keeps whichever of {current, candidate} has the
    /// smaller `key`. Returns `true` if `candidate` won.
    ///
    /// Ties must be impossible (the MST crates compare by a strict total
    /// order over edges); equal keys keep the incumbent.
    pub fn propose_min_by<K, F>(&self, candidate: u64, key: F) -> bool
    where
        K: Ord,
        F: Fn(u64) -> K,
    {
        debug_assert_ne!(candidate, NO_INDEX, "NO_INDEX is reserved");
        let cand_key = key(candidate);
        let mut cur = self.idx.load(Ordering::Relaxed);
        loop {
            if cur != NO_INDEX && key(cur) <= cand_key {
                return false;
            }
            match self.idx.compare_exchange_weak(
                cur,
                candidate,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
    }
}

impl std::fmt::Debug for AtomicIndexMin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let v = self.load(Ordering::Relaxed);
        if v == NO_INDEX {
            write!(f, "AtomicIndexMin(empty)")
        } else {
            write!(f, "AtomicIndexMin({v})")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPool;

    #[test]
    fn ordered_encoding_is_monotone() {
        let xs = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -0.0,
            0.0,
            1e-300,
            1.0,
            2.5,
            1e300,
            f64::INFINITY,
        ];
        for w in xs.windows(2) {
            assert!(
                f64_to_ordered(w[0]) <= f64_to_ordered(w[1]),
                "{} vs {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn ordered_encoding_round_trips() {
        for x in [-123.456, -0.0, 0.0, 1.0, 6.02e23, f64::INFINITY] {
            let y = ordered_to_f64(f64_to_ordered(x));
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn fetch_min_lowers_only() {
        let a = AtomicF64::new(10.0);
        assert!(a.fetch_min(5.0, Ordering::Relaxed));
        assert!(!a.fetch_min(7.0, Ordering::Relaxed));
        assert!(!a.fetch_min(5.0, Ordering::Relaxed));
        assert_eq!(a.load(Ordering::Relaxed), 5.0);
    }

    #[test]
    fn fetch_min_concurrent_converges_to_global_min() {
        let pool = ThreadPool::new(4);
        let a = AtomicF64::new(f64::INFINITY);
        crate::parallel_for(
            &pool,
            0..10_000,
            crate::ParallelForConfig::with_grain(64),
            |i| {
                a.fetch_min(1.0 + (i as f64 % 997.0), Ordering::Relaxed);
            },
        );
        assert_eq!(a.load(Ordering::Relaxed), 1.0);
    }

    #[test]
    fn index_min_keeps_smallest_key() {
        let keys = [9u64, 3, 7, 1, 5];
        let cell = AtomicIndexMin::new();
        for i in 0..keys.len() as u64 {
            cell.propose_min_by(i, |j| keys[j as usize]);
        }
        assert_eq!(cell.load(Ordering::Relaxed), 3); // index of key 1
    }

    #[test]
    fn index_min_concurrent() {
        let pool = ThreadPool::new(4);
        let n = 100_000u64;
        let cell = AtomicIndexMin::new();
        crate::parallel_for(
            &pool,
            0..n as usize,
            crate::ParallelForConfig::with_grain(512),
            |i| {
                let i = i as u64;
                // key descends with i, so the max index wins
                cell.propose_min_by(i, |j| n - j);
            },
        );
        assert_eq!(cell.load(Ordering::Relaxed), n - 1);
    }

    #[test]
    fn index_min_reset() {
        let cell = AtomicIndexMin::new();
        cell.propose_min_by(4, |j| j);
        cell.reset();
        assert_eq!(cell.load(Ordering::Relaxed), NO_INDEX);
    }
}

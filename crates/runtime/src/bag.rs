//! A concurrent insert bag with per-thread segments.
//!
//! Modelled after Galois' `InsertBag`: each pool thread pushes into its own
//! segment, so the hot path is an uncontended `Vec::push`; the contents are
//! only observed between rounds, when a single thread drains every segment.
//! LLP-Prim uses two bags per round (the `R` set of freshly fixed vertices
//! and the `Q` set of pending heap updates).

use crate::sync::Mutex;

/// Pads each segment to its own cache line to avoid false sharing between
/// adjacent per-thread segments.
#[repr(align(64))]
struct Segment<T>(Mutex<Vec<T>>);

/// A multi-producer bag; values are segregated by the producing thread.
pub struct Bag<T> {
    segments: Vec<Segment<T>>,
}

impl<T> Bag<T> {
    /// Creates a bag with one segment per thread (`nthreads >= 1`).
    pub fn new(nthreads: usize) -> Self {
        assert!(nthreads > 0, "a bag needs at least one segment");
        Bag {
            segments: (0..nthreads)
                .map(|_| Segment(Mutex::new(Vec::new())))
                .collect(),
        }
    }

    /// Number of per-thread segments.
    #[inline]
    pub fn segments(&self) -> usize {
        self.segments.len()
    }

    /// Pushes `value` into thread `tid`'s segment.
    ///
    /// The mutex is uncontended when each thread pushes only to its own
    /// segment (the intended use), so this compiles down to a fast path of a
    /// single atomic exchange plus a `Vec::push`.
    #[inline]
    pub fn push(&self, tid: usize, value: T) {
        self.segments[tid].0.lock().push(value);
    }

    /// Pushes many values at once into thread `tid`'s segment.
    pub fn extend<I: IntoIterator<Item = T>>(&self, tid: usize, values: I) {
        self.segments[tid].0.lock().extend(values);
    }

    /// Total number of elements across all segments.
    pub fn len(&self) -> usize {
        self.segments.iter().map(|s| s.0.lock().len()).sum()
    }

    /// True when every segment is empty.
    pub fn is_empty(&self) -> bool {
        self.segments.iter().all(|s| s.0.lock().is_empty())
    }

    /// Moves every element into a single `Vec`, leaving the bag empty.
    ///
    /// Elements appear grouped by producing thread, in push order within a
    /// thread; the cross-thread order is by thread id, making drains
    /// deterministic for a fixed assignment of work to threads.
    pub fn drain_to_vec(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len());
        for seg in &self.segments {
            out.append(&mut seg.0.lock());
        }
        out
    }

    /// Drains into a caller-provided buffer (clearing it first), reusing its
    /// capacity across rounds.
    pub fn drain_into(&self, out: &mut Vec<T>) {
        out.clear();
        for seg in &self.segments {
            out.append(&mut seg.0.lock());
        }
    }

    /// Removes all elements without observing them.
    pub fn clear(&self) {
        for seg in &self.segments {
            seg.0.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPool;

    #[test]
    fn push_and_drain_preserves_elements() {
        let bag = Bag::new(3);
        bag.push(0, 1);
        bag.push(1, 2);
        bag.push(2, 3);
        bag.push(0, 4);
        assert_eq!(bag.len(), 4);
        let mut v = bag.drain_to_vec();
        v.sort_unstable();
        assert_eq!(v, vec![1, 2, 3, 4]);
        assert!(bag.is_empty());
    }

    #[test]
    fn drain_is_grouped_by_thread_then_fifo() {
        let bag = Bag::new(2);
        bag.push(1, 'c');
        bag.push(0, 'a');
        bag.push(0, 'b');
        bag.push(1, 'd');
        assert_eq!(bag.drain_to_vec(), vec!['a', 'b', 'c', 'd']);
    }

    #[test]
    fn concurrent_pushes_all_arrive() {
        let pool = ThreadPool::new(4);
        let bag = Bag::new(pool.threads());
        pool.broadcast(|ctx| {
            for i in 0..1000 {
                bag.push(ctx.tid, (ctx.tid, i));
            }
        });
        assert_eq!(bag.len(), 4000);
        let v = bag.drain_to_vec();
        assert_eq!(v.len(), 4000);
    }

    #[test]
    fn drain_into_reuses_buffer() {
        let bag = Bag::new(2);
        let mut buf = Vec::with_capacity(100);
        bag.extend(0, 0..10);
        bag.drain_into(&mut buf);
        assert_eq!(buf.len(), 10);
        assert!(buf.capacity() >= 100);
        bag.extend(1, 0..5);
        bag.drain_into(&mut buf);
        assert_eq!(buf.len(), 5);
    }

    #[test]
    fn clear_empties_all_segments() {
        let bag = Bag::new(2);
        bag.extend(0, 0..10);
        bag.extend(1, 0..10);
        bag.clear();
        assert!(bag.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn zero_segments_rejected() {
        let _: Bag<u8> = Bag::new(0);
    }
}

//! Parallel sample sort (counting distribution into buckets).
//!
//! Kruskal's baseline sorts the whole edge array; GBBS uses a parallel
//! sample sort for the same purpose, and so does this module: sample keys
//! at fixed strides, pick equally spaced splitters, classify every element
//! into a bucket with a binary search over the splitters, move it there
//! with the counting-distribution scatter from [`crate::partition`], and
//! sort the buckets in parallel. Elements move bitwise through the
//! distribution's scratch buffer, so — unlike the chunked merge sort this
//! replaces — the hot path needs no `Clone` bound and performs no
//! per-element clones.

use crate::partition::distribute_by_class_in;
use crate::pool::ThreadPool;
use crate::scratch::ScratchArena;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Below this many elements `slice::sort_unstable_by_key` wins outright.
const SEQ_CUTOFF: usize = 8192;

/// Candidate keys sampled per bucket; oversampling evens out bucket sizes.
const OVERSAMPLE: usize = 8;

/// Sorts `data` by `key`, using the pool to classify, scatter and sort
/// buckets.
///
/// The sort is not stable; all callers in this workspace use strictly
/// totally ordered keys, where stability is vacuous. `key` is recomputed
/// per comparison (as with `sort_unstable_by_key`), so it should stay
/// cheap.
pub fn par_sort_by_key<T, K, F>(pool: &ThreadPool, data: &mut [T], key: F)
where
    T: Send + Sync + 'static,
    K: Ord + Sync,
    F: Fn(&T) -> K + Sync,
{
    let arena = ScratchArena::new();
    par_sort_by_key_in(pool, data, &arena, key);
}

/// [`par_sort_by_key`] with the distribution's scratch buffers (element
/// scatter space, class ids, count matrix, bucket bounds) leased from
/// `arena` — sorts inside round loops reuse storage instead of
/// reallocating it.
pub fn par_sort_by_key_in<T, K, F>(
    pool: &ThreadPool,
    data: &mut [T],
    arena: &ScratchArena,
    key: F,
) where
    T: Send + Sync + 'static,
    K: Ord + Sync,
    F: Fn(&T) -> K + Sync,
{
    let n = data.len();
    let nthreads = pool.threads();
    if nthreads == 1 || n < SEQ_CUTOFF {
        data.sort_unstable_by_key(|a| key(a));
        return;
    }

    // Pick `nbuckets - 1` splitters from a deterministic strided sample
    // (more buckets than threads smooths skew under dynamic claiming; no
    // OS entropy, so runs are reproducible).
    let nbuckets = (nthreads * 4).clamp(2, 256);
    let sample_len = nbuckets * OVERSAMPLE; // <= 2048 <= SEQ_CUTOFF <= n
    let stride = n / sample_len;
    let mut sample: Vec<K> = (0..sample_len).map(|s| key(&data[s * stride])).collect();
    sample.sort_unstable();
    // Consume the sample so splitters are moved out, not cloned.
    let splitters: Vec<K> = sample
        .into_iter()
        .enumerate()
        .filter_map(|(i, k)| (i != 0 && i % OVERSAMPLE == 0).then_some(k))
        .collect();
    debug_assert_eq!(splitters.len(), nbuckets - 1);

    // Bucket b holds the keys k with splitters[b-1] <= k < splitters[b]
    // (duplicate splitter runs simply leave some buckets empty).
    let key_ref = &key;
    let splitters_ref = &splitters;
    let mut bounds = arena.lease::<usize>(nbuckets + 1);
    distribute_by_class_in(pool, data, nbuckets, arena, &mut bounds, |x| {
        let k = key_ref(x);
        splitters_ref.partition_point(|s| *s <= k)
    });

    // Sort the buckets in parallel: disjoint sub-slices claimed through an
    // atomic cursor, chaos-instrumented like `parallel_for` chunks.
    let base = crate::reduce::SendPtr::new(data.as_mut_ptr());
    let bounds_ref: &[usize] = &bounds;
    let cursor = AtomicUsize::new(0);
    pool.broadcast(|ctx| loop {
        crate::chaos::chunk_claim(ctx.tid);
        let b = cursor.fetch_add(1, Ordering::Relaxed);
        if b >= nbuckets {
            break;
        }
        let (lo, hi) = (bounds_ref[b], bounds_ref[b + 1]);
        if hi - lo > 1 {
            // SAFETY: buckets are disjoint index ranges of `data`.
            let bucket =
                unsafe { std::slice::from_raw_parts_mut(base.get().add(lo), hi - lo) };
            bucket.sort_unstable_by_key(|a| key_ref(a));
        }
    });
}

/// Convenience: parallel sort of items that are themselves `Ord`.
pub fn par_sort<T: Send + Sync + Clone + Ord + 'static>(pool: &ThreadPool, data: &mut [T]) {
    par_sort_by_key(pool, data, |x| x.clone());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(n: usize) -> Vec<u64> {
        let mut x = 0x243F6A8885A308D3u64;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            })
            .collect()
    }

    #[test]
    fn sorts_match_std_across_sizes_and_threads() {
        for threads in [1, 2, 4] {
            let pool = ThreadPool::new(threads);
            for n in [0usize, 1, 2, 100, 8191, 8192, 100_000] {
                let mut v = pseudo_random(n);
                let mut want = v.clone();
                want.sort_unstable();
                par_sort(&pool, &mut v);
                assert_eq!(v, want, "threads={threads} n={n}");
            }
        }
    }

    #[test]
    fn sort_by_key_descending() {
        let pool = ThreadPool::new(4);
        let mut v = pseudo_random(50_000);
        par_sort_by_key(&pool, &mut v, |&x| std::cmp::Reverse(x));
        assert!(v.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn already_sorted_stays_sorted() {
        let pool = ThreadPool::new(3);
        let mut v: Vec<u64> = (0..20_000).collect();
        par_sort(&pool, &mut v);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(v.len(), 20_000);
    }

    #[test]
    fn duplicate_keys_preserved() {
        let pool = ThreadPool::new(4);
        let mut v: Vec<u64> = pseudo_random(30_000).into_iter().map(|x| x % 10).collect();
        let mut want = v.clone();
        want.sort_unstable();
        par_sort(&pool, &mut v);
        assert_eq!(v, want);
    }

    #[test]
    fn all_equal_keys() {
        // Every element lands in a single bucket; still sorted, nothing lost.
        let pool = ThreadPool::new(4);
        let mut v = vec![42u64; 25_000];
        par_sort(&pool, &mut v);
        assert_eq!(v, vec![42u64; 25_000]);
    }

    /// Deliberately neither `Clone` nor `Copy`: the sample sort must move
    /// elements bitwise instead of cloning them.
    struct NoClone(u64, #[allow(dead_code)] Box<u64>);

    #[test]
    fn sorts_non_clone_payloads() {
        let pool = ThreadPool::new(4);
        let mut v: Vec<NoClone> = pseudo_random(20_000)
            .into_iter()
            .map(|x| NoClone(x, Box::new(x ^ 0xFF)))
            .collect();
        let mut want: Vec<u64> = v.iter().map(|e| e.0).collect();
        want.sort_unstable();
        par_sort_by_key(&pool, &mut v, |e| e.0);
        let got: Vec<u64> = v.iter().map(|e| e.0).collect();
        assert_eq!(got, want);
        assert!(v.iter().all(|e| *e.1 == e.0 ^ 0xFF), "payload boxes intact");
    }
}

//! Parallel merge sort.
//!
//! Kruskal's baseline sorts the whole edge array; GBBS uses a parallel
//! sample sort for the same purpose. A chunked merge sort is simpler and
//! within a small constant of optimal for our sizes: sort one chunk per
//! thread in parallel, then merge pairs of runs in parallel passes.

use crate::pool::ThreadPool;

use std::sync::atomic::{AtomicUsize, Ordering};

/// Sorts `data` by `key`, using the pool for chunk sorting and merging.
///
/// The sort is stable across equal keys within a chunk boundary only; all
/// callers in this workspace use strictly totally ordered keys, where
/// stability is vacuous.
pub fn par_sort_by_key<T, K, F>(pool: &ThreadPool, data: &mut [T], key: F)
where
    T: Send + Sync + Clone,
    K: Ord,
    F: Fn(&T) -> K + Sync,
{
    let n = data.len();
    let nthreads = pool.threads();
    if nthreads == 1 || n < 8192 {
        data.sort_unstable_by_key(|a| key(a));
        return;
    }

    // Phase 1: split into `nthreads` runs, sort each in parallel.
    let nruns = nthreads;
    let run_len = n.div_ceil(nruns);
    let mut bounds: Vec<(usize, usize)> = (0..nruns)
        .map(|r| (r * run_len, ((r + 1) * run_len).min(n)))
        .filter(|(lo, hi)| lo < hi)
        .collect();

    {
        // Hand each worker run indices via an atomic cursor; each run is a
        // disjoint sub-slice, accessed through a raw pointer.
        let base = crate::reduce::SendPtr::new(data.as_mut_ptr());
        let cursor = AtomicUsize::new(0);
        let bounds_ref = &bounds;
        let key = &key;
        pool.broadcast(|_| loop {
            let r = cursor.fetch_add(1, Ordering::Relaxed);
            if r >= bounds_ref.len() {
                break;
            }
            let (lo, hi) = bounds_ref[r];
            // SAFETY: runs are disjoint index ranges of `data`.
            let run =
                unsafe { std::slice::from_raw_parts_mut(base.get().add(lo), hi - lo) };
            run.sort_unstable_by_key(|a| key(a));
        });
    }

    // Phase 2: merge adjacent runs pairwise until one run remains.
    let mut buf: Vec<T> = data.to_vec();
    let mut src_is_data = true;
    while bounds.len() > 1 {
        let pairs: Vec<((usize, usize), (usize, usize))> = bounds
            .chunks(2)
            .filter(|c| c.len() == 2)
            .map(|c| (c[0], c[1]))
            .collect();
        let tail = if bounds.len() % 2 == 1 {
            Some(*bounds.last().unwrap())
        } else {
            None
        };

        {
            let (src, dst): (&[T], &mut [T]) = if src_is_data {
                (&*data, &mut buf)
            } else {
                (&buf, data)
            };
            let dst_ptr = crate::reduce::SendPtr::new(dst.as_mut_ptr());
            let cursor = AtomicUsize::new(0);
            let pairs_ref = &pairs;
            let key = &key;
            pool.broadcast(|_| loop {
                let p = cursor.fetch_add(1, Ordering::Relaxed);
                if p >= pairs_ref.len() {
                    break;
                }
                let ((alo, ahi), (blo, bhi)) = pairs_ref[p];
                let mut i = alo;
                let mut j = blo;
                let mut o = alo;
                // SAFETY: output range [alo, bhi) is disjoint per pair.
                unsafe {
                    while i < ahi && j < bhi {
                        if key(&src[i]) <= key(&src[j]) {
                            *dst_ptr.get().add(o) = src[i].clone();
                            i += 1;
                        } else {
                            *dst_ptr.get().add(o) = src[j].clone();
                            j += 1;
                        }
                        o += 1;
                    }
                    while i < ahi {
                        *dst_ptr.get().add(o) = src[i].clone();
                        i += 1;
                        o += 1;
                    }
                    while j < bhi {
                        *dst_ptr.get().add(o) = src[j].clone();
                        j += 1;
                        o += 1;
                    }
                }
            });
            // Copy the unpaired tail run through unchanged.
            if let Some((lo, hi)) = tail {
                dst[lo..hi].clone_from_slice(&src[lo..hi]);
            }
        }

        let mut next = Vec::with_capacity(bounds.len().div_ceil(2));
        for c in bounds.chunks(2) {
            if c.len() == 2 {
                next.push((c[0].0, c[1].1));
            } else {
                next.push(c[0]);
            }
        }
        bounds = next;
        src_is_data = !src_is_data;
    }

    if !src_is_data {
        data.clone_from_slice(&buf);
    }
}

/// Convenience: parallel sort of items that are themselves `Ord`.
pub fn par_sort<T: Send + Sync + Clone + Ord>(pool: &ThreadPool, data: &mut [T]) {
    par_sort_by_key(pool, data, |x| x.clone());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(n: usize) -> Vec<u64> {
        let mut x = 0x243F6A8885A308D3u64;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            })
            .collect()
    }

    #[test]
    fn sorts_match_std_across_sizes_and_threads() {
        for threads in [1, 2, 4] {
            let pool = ThreadPool::new(threads);
            for n in [0usize, 1, 2, 100, 8191, 8192, 100_000] {
                let mut v = pseudo_random(n);
                let mut want = v.clone();
                want.sort_unstable();
                par_sort(&pool, &mut v);
                assert_eq!(v, want, "threads={threads} n={n}");
            }
        }
    }

    #[test]
    fn sort_by_key_descending() {
        let pool = ThreadPool::new(4);
        let mut v = pseudo_random(50_000);
        par_sort_by_key(&pool, &mut v, |&x| std::cmp::Reverse(x));
        assert!(v.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn already_sorted_stays_sorted() {
        let pool = ThreadPool::new(3);
        let mut v: Vec<u64> = (0..20_000).collect();
        par_sort(&pool, &mut v);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(v.len(), 20_000);
    }

    #[test]
    fn duplicate_keys_preserved() {
        let pool = ThreadPool::new(4);
        let mut v: Vec<u64> = pseudo_random(30_000).into_iter().map(|x| x % 10).collect();
        let mut want = v.clone();
        want.sort_unstable();
        par_sort(&pool, &mut v);
        assert_eq!(v, want);
    }
}

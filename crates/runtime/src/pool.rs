//! A persistent SPMD thread pool.
//!
//! [`ThreadPool::broadcast`] runs the *same* closure on every thread of the
//! pool; the calling thread participates as thread 0 and the call returns
//! only after every thread has finished. This mirrors how Galois and GBBS
//! drive their parallel loops: a fixed team of threads repeatedly executes
//! SPMD regions with a barrier in between, and higher-level primitives
//! (`parallel_for`, reductions, bags) are built on top of the team.
//!
//! The pool is intentionally *not* a work-stealing task scheduler: the
//! algorithms in this workspace only need flat data parallelism, and a flat
//! SPMD pool has far lower per-round overhead, which matters because
//! LLP-Prim executes many very short rounds.

use crate::sync::{Condvar, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Identity of the current thread inside a [`ThreadPool::broadcast`] region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerCtx {
    /// Thread index in `0..nthreads`. The caller of `broadcast` is always 0.
    pub tid: usize,
    /// Total number of threads participating in the region.
    pub nthreads: usize,
}

/// Type-erased SPMD task: pointer to the user closure plus a monomorphised
/// trampoline that knows how to call it.
#[derive(Clone, Copy)]
struct Task {
    data: *const (),
    call: fn(*const (), WorkerCtx),
}

// SAFETY: `data` points at a `Sync` closure that outlives the region (the
// broadcast caller blocks until every worker has finished running it).
unsafe impl Send for Task {}

struct State {
    /// Incremented once per broadcast; workers run when they observe a new epoch.
    epoch: u64,
    task: Option<Task>,
    /// Spawned workers that have not yet finished the current epoch.
    remaining: usize,
    shutdown: bool,
    /// Set when any spawned worker panicked during the current epoch.
    worker_panicked: bool,
}

struct Shared {
    state: Mutex<State>,
    start: Condvar,
    done: Condvar,
}

/// A fixed-size team of threads executing SPMD regions.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    nthreads: usize,
}

impl ThreadPool {
    /// Creates a pool with `nthreads` total threads (including the caller).
    ///
    /// `nthreads == 1` creates a degenerate pool where [`broadcast`]
    /// simply runs the closure inline — useful for single-threaded baselines.
    ///
    /// # Panics
    /// Panics if `nthreads == 0`.
    ///
    /// [`broadcast`]: ThreadPool::broadcast
    pub fn new(nthreads: usize) -> Self {
        assert!(nthreads > 0, "a thread pool needs at least one thread");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                task: None,
                remaining: 0,
                shutdown: false,
                worker_panicked: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        });
        let mut handles = Vec::with_capacity(nthreads.saturating_sub(1));
        for tid in 1..nthreads {
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("llp-worker-{tid}"))
                .spawn(move || worker_loop(shared, tid, nthreads))
                .expect("failed to spawn pool worker");
            handles.push(handle);
        }
        ThreadPool {
            shared,
            handles,
            nthreads,
        }
    }

    /// Creates a pool sized to the machine ([`crate::available_threads`]).
    pub fn with_available_threads() -> Self {
        Self::new(crate::available_threads())
    }

    /// Total number of threads in the pool, including the caller.
    #[inline]
    pub fn threads(&self) -> usize {
        self.nthreads
    }

    /// Runs `f` once on every thread of the pool and waits for completion.
    ///
    /// The calling thread participates as `tid == 0`. `f` may borrow from the
    /// caller's stack: the region is fully synchronous, no reference escapes.
    ///
    /// ```
    /// use llp_runtime::ThreadPool;
    /// use std::sync::atomic::{AtomicUsize, Ordering};
    ///
    /// let pool = ThreadPool::new(4);
    /// let hits = AtomicUsize::new(0);
    /// pool.broadcast(|ctx| {
    ///     assert!(ctx.tid < ctx.nthreads);
    ///     hits.fetch_add(1, Ordering::Relaxed);
    /// });
    /// assert_eq!(hits.load(Ordering::Relaxed), 4);
    /// ```
    ///
    /// Nested broadcasts on the same pool are not supported (the algorithms
    /// in this workspace only use flat parallelism) and will deadlock; debug
    /// builds assert against it.
    ///
    /// # Panics
    /// Propagates a panic if `f` panicked on any thread.
    pub fn broadcast<F>(&self, f: F)
    where
        F: Fn(WorkerCtx) + Sync,
    {
        if self.nthreads == 1 {
            f(WorkerCtx {
                tid: 0,
                nthreads: 1,
            });
            return;
        }

        fn trampoline<F: Fn(WorkerCtx) + Sync>(data: *const (), ctx: WorkerCtx) {
            // SAFETY: `data` was produced from `&f` below and `f` is kept
            // alive until `WaitGuard` has observed every worker finishing.
            let f = unsafe { &*(data as *const F) };
            f(ctx);
        }

        let task = Task {
            data: &f as *const F as *const (),
            call: trampoline::<F>,
        };

        let epoch = {
            let mut st = self.shared.state.lock();
            debug_assert!(st.task.is_none(), "nested broadcast on the same pool");
            st.task = Some(task);
            st.remaining = self.nthreads - 1;
            st.worker_panicked = false;
            st.epoch += 1;
            self.shared.start.notify_all();
            st.epoch
        };

        // Ensure we wait for the workers even if the caller's portion panics:
        // the workers hold a raw pointer into our stack frame.
        struct WaitGuard<'a>(&'a Shared);
        impl Drop for WaitGuard<'_> {
            fn drop(&mut self) {
                let mut st = self.0.state.lock();
                while st.remaining > 0 {
                    self.0.done.wait(&mut st);
                }
                st.task = None;
            }
        }
        let guard = WaitGuard(&self.shared);

        let caller_result = catch_unwind(AssertUnwindSafe(|| {
            crate::chaos::region_start(0, self.nthreads, epoch);
            f(WorkerCtx {
                tid: 0,
                nthreads: self.nthreads,
            })
        }));

        drop(guard);

        let worker_panicked = {
            let mut st = self.shared.state.lock();
            std::mem::replace(&mut st.worker_panicked, false)
        };
        if let Err(payload) = caller_result {
            std::panic::resume_unwind(payload);
        }
        if worker_panicked {
            panic!("llp-runtime: a pool worker panicked during broadcast");
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            self.shared.start.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, tid: usize, nthreads: usize) {
    /// Reports this worker done for the epoch on drop. Holding the
    /// decrement in a drop guard (instead of straight-line code after the
    /// task) guarantees `remaining` reaches zero on *every* exit path —
    /// were a panic ever to escape between claiming an epoch and reporting
    /// completion, `broadcast` would otherwise wait on `remaining` forever.
    struct EpochDone<'a> {
        shared: &'a Shared,
        panicked: bool,
    }
    impl Drop for EpochDone<'_> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock();
            if self.panicked {
                st.worker_panicked = true;
            }
            st.remaining -= 1;
            if st.remaining == 0 {
                self.shared.done.notify_all();
            }
        }
    }

    let mut last_epoch = 0u64;
    loop {
        let task = {
            let mut st = shared.state.lock();
            while st.epoch == last_epoch && !st.shutdown {
                shared.start.wait(&mut st);
            }
            if st.shutdown {
                return;
            }
            last_epoch = st.epoch;
            st.task
        };

        // A missing task for an advanced epoch is a pool bug; count it as a
        // panic rather than dying silently with `remaining` undecremented.
        let mut done = EpochDone {
            shared: &shared,
            panicked: true,
        };
        if let Some(task) = task {
            let result = catch_unwind(AssertUnwindSafe(|| {
                crate::chaos::region_start(tid, nthreads, last_epoch);
                (task.call)(task.data, WorkerCtx { tid, nthreads });
            }));
            done.panicked = result.is_err();
        } else {
            debug_assert!(false, "epoch advanced without a task");
        }
        drop(done);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn broadcast_runs_on_every_thread() {
        for n in [1, 2, 3, 4, 7] {
            let pool = ThreadPool::new(n);
            let hits = AtomicUsize::new(0);
            let seen = Mutex::new(vec![false; n]);
            pool.broadcast(|ctx| {
                assert_eq!(ctx.nthreads, n);
                hits.fetch_add(1, Ordering::Relaxed);
                seen.lock()[ctx.tid] = true;
            });
            assert_eq!(hits.load(Ordering::Relaxed), n);
            assert!(seen.lock().iter().all(|&b| b));
        }
    }

    #[test]
    fn broadcast_can_borrow_stack_data() {
        let pool = ThreadPool::new(4);
        let data = [1u64, 2, 3, 4, 5];
        let sum = AtomicUsize::new(0);
        pool.broadcast(|ctx| {
            if ctx.tid == 0 {
                sum.fetch_add(data.iter().sum::<u64>() as usize, Ordering::Relaxed);
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 15);
    }

    #[test]
    fn repeated_broadcasts_reuse_the_team() {
        let pool = ThreadPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.broadcast(|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 300);
    }

    #[test]
    fn caller_panic_propagates_and_pool_survives() {
        let pool = ThreadPool::new(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(|ctx| {
                if ctx.tid == 0 {
                    panic!("caller boom");
                }
            });
        }));
        assert!(r.is_err());
        // Pool is still usable afterwards.
        let n = AtomicUsize::new(0);
        pool.broadcast(|_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = ThreadPool::new(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(|ctx| {
                if ctx.tid == 1 {
                    panic!("worker boom");
                }
            });
        }));
        assert!(r.is_err());
        let n = AtomicUsize::new(0);
        pool.broadcast(|_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn mid_region_panic_on_every_tid_never_deadlocks() {
        // Regression: a panic on any thread index — including under chaos
        // start-order shuffling and delays — must propagate out of
        // `broadcast` without deadlocking on `remaining`, and the pool must
        // stay usable. When the `chaos` feature is compiled in, this runs
        // under an active seed; otherwise chaos calls are no-ops.
        let _serial = crate::chaos::test_lock();
        crate::chaos::set_seed(Some(0xDEAD));
        let pool = ThreadPool::new(4);
        for victim in 0..pool.threads() {
            let progressed = AtomicUsize::new(0);
            let r = catch_unwind(AssertUnwindSafe(|| {
                pool.broadcast(|ctx| {
                    progressed.fetch_add(1, Ordering::Relaxed);
                    if ctx.tid == victim {
                        panic!("mid-region boom on tid {}", ctx.tid);
                    }
                });
            }));
            assert!(r.is_err(), "victim {victim} panic must propagate");
            assert_eq!(progressed.load(Ordering::Relaxed), pool.threads());
            // Next region runs normally on the full team.
            let n = AtomicUsize::new(0);
            pool.broadcast(|_| {
                n.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(n.load(Ordering::Relaxed), pool.threads());
        }
        crate::chaos::set_seed(None);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = ThreadPool::new(0);
    }

    #[test]
    fn pool_churn_creates_and_drops_cleanly() {
        // Thread sweeps create and drop many pools; lifecycle must be
        // leak- and deadlock-free, including immediate drops.
        for round in 0..30 {
            let pool = ThreadPool::new(1 + round % 5);
            if round % 3 != 0 {
                let n = AtomicUsize::new(0);
                pool.broadcast(|_| {
                    n.fetch_add(1, Ordering::Relaxed);
                });
                assert_eq!(n.load(Ordering::Relaxed), pool.threads());
            }
            // pool dropped here, workers must join
        }
    }

    #[test]
    fn broadcast_results_visible_after_return() {
        // The completion barrier publishes worker writes to the caller.
        let pool = ThreadPool::new(4);
        let mut data = vec![0u64; 1000];
        let slots = crate::sync::Mutex::new(&mut data);
        pool.broadcast(|ctx| {
            let mut guard = slots.lock();
            let chunk = 1000 / ctx.nthreads;
            let lo = ctx.tid * chunk;
            let hi = if ctx.tid + 1 == ctx.nthreads { 1000 } else { lo + chunk };
            for slot in &mut guard[lo..hi] {
                *slot = ctx.tid as u64 + 1;
            }
        });
        assert!(data.iter().all(|&x| x >= 1));
    }
}

//! Exclusive prefix sums (scans), sequential and parallel.
//!
//! Boruvka contraction renumbers surviving component roots with a prefix sum
//! over indicator flags, and CSR construction turns per-vertex degree counts
//! into offset arrays. Both are classic scan applications; GBBS exposes the
//! same primitive as `pbbslib::scan`.

use crate::parallel_for::ParallelForConfig;
use crate::pool::ThreadPool;
use crate::reduce::SendPtr;
use crate::sync::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// In-place sequential exclusive prefix sum. Returns the total.
///
/// `[3, 1, 4]` becomes `[0, 3, 4]` and returns `8`.
pub fn exclusive_scan_in_place(values: &mut [u64]) -> u64 {
    let mut acc = 0u64;
    for v in values.iter_mut() {
        let next = acc + *v;
        *v = acc;
        acc = next;
    }
    acc
}

/// Parallel exclusive prefix sum. Returns `(scanned, total)`.
///
/// Two-pass block algorithm: per-block sums, sequential scan of block sums,
/// then per-block local scans offset by the block prefix.
pub fn exclusive_scan(pool: &ThreadPool, values: &[u64]) -> (Vec<u64>, u64) {
    let n = values.len();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let nthreads = pool.threads();
    if nthreads == 1 || n < 4096 {
        let mut out = values.to_vec();
        let total = exclusive_scan_in_place(&mut out);
        return (out, total);
    }

    let nblocks = (nthreads * 8).min(n);
    let block = n.div_ceil(nblocks);
    let nblocks = n.div_ceil(block);

    // Pass 1: per-block sums.
    let block_sums: Mutex<Vec<u64>> = Mutex::new(vec![0; nblocks]);
    let cursor = AtomicUsize::new(0);
    pool.broadcast(|_| loop {
        let b = cursor.fetch_add(1, Ordering::Relaxed);
        if b >= nblocks {
            break;
        }
        let lo = b * block;
        let hi = ((b + 1) * block).min(n);
        let s: u64 = values[lo..hi].iter().sum();
        block_sums.lock()[b] = s;
    });

    // Scan of block sums (tiny, sequential).
    let mut block_offsets = block_sums.into_inner();
    let total = exclusive_scan_in_place(&mut block_offsets);

    // Pass 2: local scans with block offsets.
    let mut out = vec![0u64; n];
    let out_ptr = SendPtr::new(out.as_mut_ptr());
    let block_offsets = &block_offsets;
    let cursor = AtomicUsize::new(0);
    pool.broadcast(|_| loop {
        let b = cursor.fetch_add(1, Ordering::Relaxed);
        if b >= nblocks {
            break;
        }
        let lo = b * block;
        let hi = ((b + 1) * block).min(n);
        let mut acc = block_offsets[b];
        for (i, &v) in values.iter().enumerate().take(hi).skip(lo) {
            // SAFETY: blocks are disjoint; each index written once.
            unsafe {
                *out_ptr.get().add(i) = acc;
            }
            acc += v;
        }
    });

    (out, total)
}

/// Parallel pack: collects indices `i` of `range` where `keep(i)` is true,
/// preserving index order. Equivalent to a filtered collect; used to extract
/// surviving vertices/edges during Boruvka contraction.
pub fn pack_indices<F>(
    pool: &ThreadPool,
    n: usize,
    config: ParallelForConfig,
    keep: F,
) -> Vec<usize>
where
    F: Fn(usize) -> bool + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    if pool.threads() == 1 || n < 4096 {
        return (0..n).filter(|&i| keep(i)).collect();
    }
    // Flags -> scan -> scatter.
    let flags: Vec<u64> =
        crate::parallel_map_collect(pool, 0..n, config, |i| u64::from(keep(i)));
    let (offsets, total) = exclusive_scan(pool, &flags);
    let mut out = vec![0usize; total as usize];
    let out_ptr = SendPtr::new(out.as_mut_ptr());
    crate::parallel_for(pool, 0..n, config, |i| {
        if flags[i] == 1 {
            // SAFETY: offsets are a scan of the flags, so positions are unique.
            unsafe {
                *out_ptr.get().add(offsets[i] as usize) = i;
            }
        }
    });
    out
}

/// [`pack_indices`] with every intermediate buffer leased from `arena` and
/// the output written into `out` (cleared and refilled in place, as `u32`
/// indices). With a warm arena and a pre-grown `out`, the call performs no
/// heap allocations.
///
/// Unlike [`crate::partition::compact_map_into`], `keep` is evaluated
/// **exactly once per index** (a flags pass runs before the count/scatter),
/// so predicates with side effects — the Boruvka winner scan commits
/// union-find merges inside its predicate — are safe here.
pub fn pack_indices_in<F>(
    pool: &ThreadPool,
    n: usize,
    config: ParallelForConfig,
    arena: &crate::scratch::ScratchArena,
    out: &mut Vec<u32>,
    keep: F,
) where
    F: Fn(usize) -> bool + Sync,
{
    debug_assert!(n <= u32::MAX as usize, "indices are packed as u32");
    out.clear();
    if n == 0 {
        return;
    }
    if pool.threads() == 1 || n < crate::partition::PAR_THRESHOLD {
        out.extend((0..n).filter(|&i| keep(i)).map(|i| i as u32));
        return;
    }
    // Flags pass: the single point where `keep` runs.
    let mut flags = arena.lease::<u8>(n);
    {
        let flags_ptr = SendPtr::new(flags.as_mut_ptr());
        crate::parallel_for_chunks(pool, 0..n, config, |r| {
            for i in r {
                // SAFETY: chunks are disjoint; each index written once.
                unsafe { *flags_ptr.get().add(i) = u8::from(keep(i)) };
            }
        });
        // SAFETY: the loop covered 0..n.
        unsafe { flags.set_len(n) };
    }
    // Count/scan/scatter over the flags.
    out.reserve(n);
    let out_ptr = SendPtr::new(out.as_mut_ptr());
    let flags_ro: &[u8] = &flags;
    let total = crate::partition::count_scan_chunks(
        pool,
        n,
        arena,
        |r| r.map(|i| flags_ro[i] as u64).sum(),
        |r, base| {
            let mut k = base as usize;
            for i in r {
                if flags_ro[i] != 0 {
                    // SAFETY: scanned bases keep chunk output ranges
                    // disjoint; capacity reserved above covers total <= n.
                    unsafe { *out_ptr.get().add(k) = i as u32 };
                    k += 1;
                }
            }
            (k - base as usize) as u64
        },
    );
    // SAFETY: exactly `total` leading slots initialised.
    unsafe { out.set_len(total) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_scan_small() {
        let mut v = vec![3, 1, 4, 1, 5];
        let total = exclusive_scan_in_place(&mut v);
        assert_eq!(v, vec![0, 3, 4, 8, 9]);
        assert_eq!(total, 14);
    }

    #[test]
    fn sequential_scan_empty() {
        let mut v: Vec<u64> = vec![];
        assert_eq!(exclusive_scan_in_place(&mut v), 0);
    }

    #[test]
    fn parallel_scan_matches_sequential() {
        let pool = ThreadPool::new(4);
        for n in [0usize, 1, 10, 4095, 4096, 100_000] {
            let values: Vec<u64> = (0..n).map(|i| ((i * 31) % 17) as u64).collect();
            let mut want = values.clone();
            let want_total = exclusive_scan_in_place(&mut want);
            let (got, got_total) = exclusive_scan(&pool, &values);
            assert_eq!(got_total, want_total, "n={n}");
            assert_eq!(got, want, "n={n}");
        }
    }

    #[test]
    fn pack_matches_filter() {
        let pool = ThreadPool::new(4);
        for n in [0usize, 5, 4096, 50_000] {
            let keep = |i: usize| i.is_multiple_of(3) || i.is_multiple_of(7);
            let got = pack_indices(&pool, n, ParallelForConfig::with_grain(128), keep);
            let want: Vec<usize> = (0..n).filter(|&i| keep(i)).collect();
            assert_eq!(got, want, "n={n}");
        }
    }

    #[test]
    fn pack_in_matches_pack_and_runs_predicate_once() {
        use std::sync::atomic::AtomicUsize as Calls;
        for threads in [1, 2, 4] {
            let pool = ThreadPool::new(threads);
            let arena = crate::scratch::ScratchArena::new();
            let mut out = Vec::new();
            for n in [0usize, 5, 4095, 4096, 50_000] {
                let calls = Calls::new(0);
                let keep = |i: usize| {
                    calls.fetch_add(1, Ordering::Relaxed);
                    i.is_multiple_of(3) || i.is_multiple_of(7)
                };
                pack_indices_in(
                    &pool,
                    n,
                    ParallelForConfig::with_grain(128),
                    &arena,
                    &mut out,
                    keep,
                );
                let want: Vec<u32> = (0..n)
                    .filter(|&i| i.is_multiple_of(3) || i.is_multiple_of(7))
                    .map(|i| i as u32)
                    .collect();
                assert_eq!(*out, want, "threads={threads} n={n}");
                assert_eq!(calls.load(Ordering::Relaxed), n, "predicate not exactly-once");
            }
        }
    }

    #[test]
    fn pack_in_steady_state_does_not_grow_arena() {
        let pool = ThreadPool::new(4);
        let arena = crate::scratch::ScratchArena::new();
        let mut out = Vec::new();
        pack_indices_in(&pool, 50_000, ParallelForConfig::default(), &arena, &mut out, |i| {
            i % 2 == 0
        });
        let footprint = arena.footprint_bytes();
        for _ in 0..3 {
            pack_indices_in(&pool, 50_000, ParallelForConfig::default(), &arena, &mut out, |i| {
                i % 2 == 0
            });
            assert_eq!(arena.footprint_bytes(), footprint);
        }
    }

    #[test]
    fn pack_all_and_none() {
        let pool = ThreadPool::new(2);
        let all = pack_indices(&pool, 10_000, ParallelForConfig::default(), |_| true);
        assert_eq!(all.len(), 10_000);
        assert_eq!(all[9999], 9999);
        let none = pack_indices(&pool, 10_000, ParallelForConfig::default(), |_| false);
        assert!(none.is_empty());
    }
}

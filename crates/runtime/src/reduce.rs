//! Parallel reductions and map-collect over index ranges.

use crate::parallel_for::ParallelForConfig;
use crate::pool::ThreadPool;
use crate::sync::Mutex;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Reduces `map(chunk)` results over disjoint chunks covering `range` with
/// the associative, commutative `fold`.
///
/// `identity` must be a neutral element of `fold`. The reduction order is
/// unspecified, so `fold` must be commutative for deterministic results —
/// all uses in this workspace fold with `min`/`+` over independent values.
pub fn parallel_reduce<T, M, F>(
    pool: &ThreadPool,
    range: Range<usize>,
    config: ParallelForConfig,
    identity: T,
    map: M,
    fold: F,
) -> T
where
    T: Send,
    M: Fn(Range<usize>) -> T + Sync,
    F: Fn(T, T) -> T + Sync + Send,
{
    let len = range.end.saturating_sub(range.start);
    if len == 0 {
        return identity;
    }
    let grain = crate::chaos::perturb_grain(config.resolve_grain(len, pool.threads()), len);
    if pool.threads() == 1 || len <= grain {
        return fold(identity, map(range));
    }

    let start = range.start;
    let cursor = AtomicUsize::new(0);
    let partials: Mutex<Vec<T>> = Mutex::new(Vec::with_capacity(pool.threads()));
    pool.broadcast(|ctx| {
        let mut local: Option<T> = None;
        loop {
            crate::chaos::chunk_claim(ctx.tid);
            let lo = cursor.fetch_add(grain, Ordering::Relaxed);
            if lo >= len {
                break;
            }
            let hi = (lo + grain).min(len);
            let part = map(start + lo..start + hi);
            local = Some(match local.take() {
                Some(acc) => fold(acc, part),
                None => part,
            });
        }
        if let Some(v) = local {
            partials.lock().push(v);
        }
    });

    partials
        .into_inner()
        .into_iter()
        .fold(identity, fold)
}

/// Produces `out[i] = f(i)` for the whole range, writing results in parallel.
///
/// Equivalent to `(range).map(f).collect()` but parallel and in-place over a
/// preallocated buffer, which is how GBBS materialises per-vertex arrays.
pub fn parallel_map_collect<T, F>(
    pool: &ThreadPool,
    range: Range<usize>,
    config: ParallelForConfig,
    f: F,
) -> Vec<T>
where
    T: Send + Sync + Clone + Default,
    F: Fn(usize) -> T + Sync,
{
    let len = range.end.saturating_sub(range.start);
    let mut out = vec![T::default(); len];
    let out_ptr = SendPtr::new(out.as_mut_ptr());
    let start = range.start;
    crate::parallel_for(pool, 0..len, config, |i| {
        // SAFETY: each index is visited exactly once, so writes are disjoint.
        unsafe {
            *out_ptr.get().add(i) = f(start + i);
        }
    });
    out
}

/// Wrapper making a raw pointer `Sync` for disjoint-index parallel writes.
///
/// Callers must guarantee every index is written by at most one thread.
pub struct SendPtr<T>(*mut T);
impl<T> SendPtr<T> {
    pub fn new(p: *mut T) -> Self {
        SendPtr(p)
    }
    /// Returns the raw pointer. Method access (rather than field access)
    /// forces closures to capture the whole `Sync` wrapper, not the raw
    /// pointer field (Rust 2021 disjoint capture).
    pub fn get(&self) -> *mut T {
        self.0
    }
}
unsafe impl<T> Sync for SendPtr<T> {}
unsafe impl<T> Send for SendPtr<T> {}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_sums_correctly() {
        let pool = ThreadPool::new(4);
        for n in [0usize, 1, 10, 12345] {
            let got = parallel_reduce(
                &pool,
                0..n,
                ParallelForConfig::with_grain(128),
                0u64,
                |c| c.map(|i| i as u64).sum::<u64>(),
                |a, b| a + b,
            );
            assert_eq!(got, (0..n as u64).sum::<u64>(), "n={n}");
        }
    }

    #[test]
    fn reduce_min_finds_global_min() {
        let pool = ThreadPool::new(3);
        let data: Vec<i64> = (0..10_000).map(|i| ((i * 7919) % 10_007) as i64).collect();
        let got = parallel_reduce(
            &pool,
            0..data.len(),
            ParallelForConfig::with_grain(64),
            i64::MAX,
            |c| c.map(|i| data[i]).min().unwrap_or(i64::MAX),
            |a, b| a.min(b),
        );
        assert_eq!(got, *data.iter().min().unwrap());
    }

    #[test]
    fn map_collect_matches_sequential() {
        let pool = ThreadPool::new(4);
        let got = parallel_map_collect(&pool, 5..105, ParallelForConfig::with_grain(8), |i| {
            i * i
        });
        let want: Vec<usize> = (5..105).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn map_collect_empty_range() {
        let pool = ThreadPool::new(2);
        let got: Vec<u8> =
            parallel_map_collect(&pool, 3..3, ParallelForConfig::default(), |_| 1u8);
        assert!(got.is_empty());
    }
}

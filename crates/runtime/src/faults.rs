//! Seeded I/O fault injection: reproducible short reads, transient errors,
//! truncation, corruption and disk-full failures at stream boundaries.
//!
//! The chaos scheduler ([`crate::chaos`]) made the *scheduler* an adversary;
//! this module does the same for the *I/O boundary*. When active, every
//! [`Faulty`]-wrapped reader or writer deterministically injects faults drawn
//! from a per-wrapper class mask:
//!
//! - **short** reads/writes (deliver only part of the buffer — legal per the
//!   `Read`/`Write` contracts, but exercises every retry loop),
//! - **transient** errors (`ErrorKind::Interrupted`, `ErrorKind::WouldBlock`),
//! - **sticky truncation** (premature EOF on reads, `BrokenPipe` on writes —
//!   a dead peer or a torn file),
//! - **corruption** (the delivered bytes are overwritten with `0xFF`), and
//! - **disk-full** write failures (`ErrorKind::StorageFull`).
//!
//! # Gating
//!
//! Faults mirror the [`crate::chaos`] double gate:
//!
//! 1. **Compile-time**: the `faults` cargo feature (off by default). Without
//!    it [`Faulty`] is a zero-cost passthrough newtype and every entry point
//!    is an empty inline no-op.
//! 2. **Runtime**: injection happens only when a seed is set — either the
//!    `LLP_FAULT_SEED` environment variable holds a `u64`, or a harness
//!    called [`set_seed`]`(Some(seed))`. Compiled in but seedless, a wrapped
//!    stream costs a relaxed atomic load and a branch per operation.
//!
//! # Reproducibility
//!
//! Every decision is a pure function of `(seed, site, per-wrapper op index)`
//! via SplitMix64 finalization — no OS entropy, no clocks. The first time a
//! seed becomes active a panic hook is installed that prints
//! `LLP_FAULT_SEED=<seed>` on any panic.
//!
//! # Why corruption is `0xFF` fill, not bit flips
//!
//! The fault matrix asserts the stack *never returns a wrong answer* — every
//! faulted run must end in either the certified-correct MSF or a classified
//! error. An arbitrary bit flip in an edge weight would produce a different
//! *valid* weight and a silently different (wrong) MSF, which no validator
//! can catch without an oracle. Filling the delivered prefix with `0xFF`
//! instead guarantees the corruption is *detectable* by the existing binary
//! validators: a `0xFF`-filled endpoint decodes to `u32::MAX` (out of range
//! for any graph with fewer than 2^32 vertices), a `0xFF`-filled weight
//! decodes to NaN (rejected as non-finite), and a `0xFF`-filled header field
//! breaks the magic or inflates `n`/`m` past the allocation caps. Corruption
//! is therefore only enabled on *file* read paths (which are fully
//! validated), never on sockets — wire-level corruption is exercised
//! separately by the protocol framing fuzz tests, which own the
//! decode-rejects-garbage guarantee.

use std::io::{self, Read, Seek, SeekFrom, Write};

/// Short read/write: deliver only part of the caller's buffer.
pub const SHORT: u32 = 1 << 0;
/// Transient `ErrorKind::Interrupted` (retried by `read_exact`/`write_all`).
pub const INTERRUPT: u32 = 1 << 1;
/// Transient `ErrorKind::WouldBlock` (what a timed-out socket read returns).
pub const WOULD_BLOCK: u32 = 1 << 2;
/// Sticky mid-stream truncation: EOF on reads, `BrokenPipe` on writes.
pub const TRUNCATE: u32 = 1 << 3;
/// Overwrite the delivered read prefix with `0xFF` (detectably invalid).
pub const CORRUPT: u32 = 1 << 4;
/// `ErrorKind::StorageFull` on write — an ENOSPC-style hard failure.
pub const ENOSPC: u32 = 1 << 5;

/// Fault classes for validated binary *file* readers.
pub const FILE_READ: u32 = SHORT | INTERRUPT | TRUNCATE | CORRUPT;
/// Fault classes for binary file writers.
pub const FILE_WRITE: u32 = SHORT | INTERRUPT | TRUNCATE | ENOSPC;
/// Fault classes for socket read halves (no corruption: see module docs).
pub const SOCK_READ: u32 = SHORT | INTERRUPT | WOULD_BLOCK | TRUNCATE;
/// Fault classes for socket write halves (no corruption: see module docs).
pub const SOCK_WRITE: u32 = SHORT | INTERRUPT | WOULD_BLOCK | TRUNCATE;

#[cfg(feature = "faults")]
mod imp {
    use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
    use std::sync::Once;

    // 0 = read LLP_FAULT_SEED on first use, 1 = off, 2 = on (seed in SEED).
    static STATE: AtomicU8 = AtomicU8::new(0);
    static SEED: AtomicU64 = AtomicU64::new(0);
    static PANIC_HOOK: Once = Once::new();
    /// Monotone per-process connection index: drives [`connection_classes`].
    static CONNS: AtomicU64 = AtomicU64::new(0);

    #[inline]
    pub(super) fn finalize(mut z: u64) -> u64 {
        // SplitMix64 finalizer: full avalanche, so nearby inputs decorrelate.
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// True when fault injection is compiled in and a seed is active.
    #[inline]
    pub fn enabled() -> bool {
        match STATE.load(Ordering::Relaxed) {
            0 => init_from_env(),
            1 => false,
            _ => true,
        }
    }

    #[cold]
    fn init_from_env() -> bool {
        match std::env::var("LLP_FAULT_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            Some(seed) => {
                set_seed(Some(seed));
                true
            }
            None => {
                STATE.store(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Activates (`Some(seed)`) or deactivates (`None`) fault injection,
    /// overriding the `LLP_FAULT_SEED` environment gate. Harnesses call this
    /// to sweep seeds within one process.
    pub fn set_seed(seed: Option<u64>) {
        match seed {
            Some(s) => {
                SEED.store(s, Ordering::Relaxed);
                STATE.store(2, Ordering::Relaxed);
                PANIC_HOOK.call_once(|| {
                    let previous = std::panic::take_hook();
                    std::panic::set_hook(Box::new(move |info| {
                        if let Some(seed) = seed_active() {
                            eprintln!(
                                "note: fault injection was active; reproduce with \
                                 LLP_FAULT_SEED={seed}"
                            );
                        }
                        previous(info);
                    }));
                });
            }
            None => STATE.store(1, Ordering::Relaxed),
        }
    }

    /// The active seed, or `None` when fault injection is off.
    pub fn seed_active() -> Option<u64> {
        if enabled() {
            Some(SEED.load(Ordering::Relaxed))
        } else {
            None
        }
    }

    #[inline]
    pub(super) fn seed() -> u64 {
        SEED.load(Ordering::Relaxed)
    }

    /// Per-connection fault gate: returns `classes` for roughly one in five
    /// calls (seed-determined), `0` for the rest, so a server under a fault
    /// sweep serves a mix of clean and faulty connections. Deterministic in
    /// `(seed, call index)`; returns `0` whenever injection is inactive.
    pub fn connection_classes(classes: u32) -> u32 {
        if !enabled() {
            return 0;
        }
        let idx = CONNS.fetch_add(1, Ordering::Relaxed);
        let h = finalize(seed() ^ idx.wrapping_mul(0x9E3779B97F4A7C15) ^ 0xC0FF);
        if h.is_multiple_of(5) {
            classes
        } else {
            0
        }
    }
}

#[cfg(not(feature = "faults"))]
mod imp {
    /// Always `false`: fault injection is compiled out.
    #[inline(always)]
    pub fn enabled() -> bool {
        false
    }

    /// No-op: fault injection is compiled out.
    #[inline(always)]
    pub fn set_seed(_seed: Option<u64>) {}

    /// Always `None`: fault injection is compiled out.
    #[inline(always)]
    pub fn seed_active() -> Option<u64> {
        None
    }

    /// Always `0`: fault injection is compiled out.
    #[inline(always)]
    pub fn connection_classes(_classes: u32) -> u32 {
        0
    }
}

pub use imp::{connection_classes, enabled, seed_active, set_seed};

/// True when the `faults` cargo feature is compiled in (regardless of
/// whether a seed is active). Harnesses use this to tell the user when
/// their fault seeds are inert.
#[inline(always)]
pub const fn compiled_in() -> bool {
    cfg!(feature = "faults")
}

/// Hashes a site name into the decision stream, so distinct wrap points
/// (e.g. the sharded reader vs. a serve socket) draw independent faults
/// under the same seed.
pub fn site_hash(site: &str) -> u64 {
    // FNV-1a: stable across runs and platforms, no allocation.
    let mut h: u64 = 0xCBF29CE484222325;
    for &b in site.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001B3);
    }
    h
}

/// A fault-injecting wrapper over any `Read`/`Write`/`Seek` stream.
///
/// With the `faults` feature compiled out, or compiled in but no seed
/// active, every operation delegates straight to the inner stream. With a
/// seed active, roughly one in [`FAULT_PERIOD`] operations injects a fault
/// drawn from the wrapper's class mask (see the module consts).
#[derive(Debug)]
pub struct Faulty<T> {
    inner: T,
    #[cfg(feature = "faults")]
    site: u64,
    #[cfg(feature = "faults")]
    classes: u32,
    #[cfg(feature = "faults")]
    op: u64,
    #[cfg(feature = "faults")]
    truncated: bool,
}

/// One operation in [`FAULT_PERIOD`] faults (when a seed is active).
pub const FAULT_PERIOD: u64 = 8;

impl<T> Faulty<T> {
    /// Wraps `inner`. `site` names the wrap point (mixed into the decision
    /// stream); `classes` is an OR of the fault-class consts and bounds what
    /// this wrapper may inject. `classes == 0` never faults.
    #[cfg_attr(not(feature = "faults"), allow(unused_variables))]
    pub fn new(inner: T, site: &str, classes: u32) -> Self {
        Faulty {
            inner,
            #[cfg(feature = "faults")]
            site: site_hash(site),
            #[cfg(feature = "faults")]
            classes,
            #[cfg(feature = "faults")]
            op: 0,
            #[cfg(feature = "faults")]
            truncated: false,
        }
    }

    /// Consumes the wrapper, returning the inner stream.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// A shared reference to the inner stream.
    pub fn get_ref(&self) -> &T {
        &self.inner
    }

    /// A mutable reference to the inner stream (bypasses injection).
    pub fn get_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// Draws the next decision: `Some(class_bit | entropy)` when this
    /// operation should fault, `None` to pass through. Advances the op
    /// counter unconditionally so retries after a transient error land on a
    /// fresh decision and eventually make progress.
    #[cfg(feature = "faults")]
    #[inline]
    fn decide(&mut self, allowed: u32) -> Option<u64> {
        if !enabled() {
            return None;
        }
        let mask = self.classes & allowed;
        if mask == 0 {
            return None;
        }
        // Per-(seed, site) class subsetting: each seed activates a random
        // subset of this wrapper's classes (falling back to the transient
        // classes, then the full mask, when the draw is empty). Seeds whose
        // subset is transient-only must complete through the retry paths —
        // the sweep proves fault *handling*, not just error classification.
        let subset = imp::finalize(imp::seed() ^ imp::finalize(self.site ^ 0x5EED_C1A55)) as u32;
        let mask = match mask & subset {
            0 => match mask & (SHORT | INTERRUPT) {
                0 => mask,
                transient => transient,
            },
            picked => picked,
        };
        let op = self.op;
        self.op += 1;
        let h = imp::finalize(
            imp::seed() ^ imp::finalize(self.site) ^ op.wrapping_mul(0x9E3779B97F4A7C15),
        );
        if !h.is_multiple_of(FAULT_PERIOD) {
            return None;
        }
        // Pick uniformly among the set bits of the mask.
        let nbits = mask.count_ones();
        let pick = ((h >> 8) % nbits as u64) as u32;
        let mut seen = 0;
        for bit in 0..u32::BITS {
            let b = 1 << bit;
            if mask & b != 0 {
                if seen == pick {
                    return Some(b as u64 | (h & !0xFFFF_FFFF));
                }
                seen += 1;
            }
        }
        unreachable!("mask had {nbits} bits but none matched pick {pick}")
    }
}

#[cfg(feature = "faults")]
impl<T: Read> Read for Faulty<T> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.truncated {
            return Ok(0); // sticky: a torn file stays torn
        }
        match self.decide(SHORT | INTERRUPT | WOULD_BLOCK | TRUNCATE | CORRUPT) {
            Some(d) if d as u32 & SHORT != 0 && buf.len() > 1 => {
                let k = (buf.len() / 2).max(1);
                self.inner.read(&mut buf[..k])
            }
            Some(d) if d as u32 & INTERRUPT != 0 => {
                Err(io::Error::new(io::ErrorKind::Interrupted, "injected EINTR"))
            }
            Some(d) if d as u32 & WOULD_BLOCK != 0 => Err(io::Error::new(
                io::ErrorKind::WouldBlock,
                "injected EWOULDBLOCK",
            )),
            Some(d) if d as u32 & TRUNCATE != 0 => {
                self.truncated = true;
                Ok(0)
            }
            Some(d) if d as u32 & CORRUPT != 0 => {
                let n = self.inner.read(buf)?;
                // Detectably-invalid fill; see module docs for why not flips.
                let k = n.min(12);
                buf[..k].fill(0xFF);
                Ok(n)
            }
            _ => self.inner.read(buf),
        }
    }
}

#[cfg(feature = "faults")]
impl<T: Write> Write for Faulty<T> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.truncated {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "injected broken pipe (sticky)",
            ));
        }
        match self.decide(SHORT | INTERRUPT | WOULD_BLOCK | TRUNCATE | ENOSPC) {
            Some(d) if d as u32 & SHORT != 0 && buf.len() > 1 => {
                self.inner.write(&buf[..(buf.len() / 2).max(1)])
            }
            Some(d) if d as u32 & INTERRUPT != 0 => {
                Err(io::Error::new(io::ErrorKind::Interrupted, "injected EINTR"))
            }
            Some(d) if d as u32 & WOULD_BLOCK != 0 => Err(io::Error::new(
                io::ErrorKind::WouldBlock,
                "injected EWOULDBLOCK",
            )),
            Some(d) if d as u32 & TRUNCATE != 0 => {
                self.truncated = true;
                Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "injected broken pipe",
                ))
            }
            Some(d) if d as u32 & ENOSPC != 0 => Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "injected ENOSPC",
            )),
            _ => self.inner.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.truncated {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "injected broken pipe (sticky)",
            ));
        }
        self.inner.flush()
    }
}

#[cfg(not(feature = "faults"))]
impl<T: Read> Read for Faulty<T> {
    #[inline(always)]
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner.read(buf)
    }
}

#[cfg(not(feature = "faults"))]
impl<T: Write> Write for Faulty<T> {
    #[inline(always)]
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.inner.write(buf)
    }

    #[inline(always)]
    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl<T: Seek> Seek for Faulty<T> {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        self.inner.seek(pos)
    }
}

/// Serializes tests (across crates) that mutate the process-global seed.
#[doc(hidden)]
pub fn test_serial_lock() -> std::sync::MutexGuard<'static, ()> {
    static GATE: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
    GATE.get_or_init(|| std::sync::Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

#[cfg(all(test, feature = "faults"))]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        test_serial_lock()
    }

    #[test]
    fn seed_gate_toggles() {
        let _g = serial();
        set_seed(Some(7));
        assert!(enabled());
        assert_eq!(seed_active(), Some(7));
        set_seed(None);
        assert!(!enabled());
        assert_eq!(seed_active(), None);
    }

    #[test]
    fn inactive_wrapper_is_transparent() {
        let _g = serial();
        set_seed(None);
        let data: Vec<u8> = (0..255).collect();
        let mut r = Faulty::new(Cursor::new(data.clone()), "test", FILE_READ);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn zero_classes_never_fault() {
        let _g = serial();
        set_seed(Some(42));
        let data: Vec<u8> = (0..255).collect();
        let mut r = Faulty::new(Cursor::new(data.clone()), "test", 0);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
        set_seed(None);
    }

    #[test]
    fn faults_are_deterministic_in_seed() {
        let _g = serial();
        let run = |seed| {
            set_seed(Some(seed));
            let data = vec![0u8; 4096];
            let mut r = Faulty::new(Cursor::new(data), "det", FILE_READ);
            let mut log = Vec::new();
            let mut buf = [0u8; 64];
            for _ in 0..128 {
                match r.read(&mut buf) {
                    Ok(n) => log.push(format!("ok{n}:{}", buf[0])),
                    Err(e) => log.push(format!("err:{:?}", e.kind())),
                }
            }
            set_seed(None);
            log
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4), "different seeds should differ");
    }

    #[test]
    fn truncation_is_sticky() {
        let _g = serial();
        // Sweep seeds until one truncates, then assert EOF persists.
        for seed in 1..64 {
            set_seed(Some(seed));
            let data = vec![7u8; 1 << 16];
            let mut r = Faulty::new(Cursor::new(data), "sticky", TRUNCATE);
            let mut buf = [0u8; 64];
            let mut hit = false;
            for _ in 0..256 {
                if r.read(&mut buf).unwrap() == 0 {
                    hit = true;
                    break;
                }
            }
            if hit {
                for _ in 0..8 {
                    assert_eq!(r.read(&mut buf).unwrap(), 0, "EOF must be sticky");
                }
                set_seed(None);
                return;
            }
        }
        set_seed(None);
        panic!("no seed in 1..64 triggered truncation");
    }

    #[test]
    fn corrupt_fill_is_ff() {
        let _g = serial();
        for seed in 1..64 {
            set_seed(Some(seed));
            let data = vec![0u8; 1 << 16];
            let mut r = Faulty::new(Cursor::new(data), "corrupt", CORRUPT);
            let mut buf = [0u8; 16];
            for _ in 0..256 {
                let n = r.read(&mut buf).unwrap();
                if n > 0 && buf[0] == 0xFF {
                    assert!(buf[..n.min(12)].iter().all(|&b| b == 0xFF));
                    set_seed(None);
                    return;
                }
            }
        }
        set_seed(None);
        panic!("no seed in 1..64 triggered corruption");
    }

    #[test]
    fn read_exact_survives_transients_and_short_reads() {
        let _g = serial();
        set_seed(Some(11));
        let data: Vec<u8> = (0..=255u8).cycle().take(1 << 14).collect();
        let mut r = Faulty::new(Cursor::new(data.clone()), "exact", SHORT | INTERRUPT);
        let mut out = vec![0u8; data.len()];
        // read_exact retries Interrupted and loops short reads internally:
        // with only transient classes the payload must come through intact.
        r.read_exact(&mut out).unwrap();
        assert_eq!(out, data);
        set_seed(None);
    }

    #[test]
    fn write_all_hits_enospc_eventually() {
        let _g = serial();
        for seed in 1..64 {
            set_seed(Some(seed));
            let mut w = Faulty::new(Vec::new(), "wfull", ENOSPC);
            let chunk = [9u8; 128];
            let mut failed = false;
            for _ in 0..256 {
                if let Err(e) = w.write_all(&chunk) {
                    assert_eq!(e.kind(), io::ErrorKind::StorageFull);
                    failed = true;
                    break;
                }
            }
            if failed {
                set_seed(None);
                return;
            }
        }
        set_seed(None);
        panic!("no seed in 1..64 triggered ENOSPC");
    }

    #[test]
    fn connection_gate_mixes_clean_and_faulty() {
        let _g = serial();
        set_seed(Some(5));
        let mut faulty = 0;
        for _ in 0..200 {
            if connection_classes(SOCK_READ) != 0 {
                faulty += 1;
            }
        }
        set_seed(None);
        // ~1 in 5; loose bounds, the stream is deterministic but shared.
        assert!(faulty > 0, "some connections must fault");
        assert!(faulty < 150, "most connections must stay clean");
    }
}

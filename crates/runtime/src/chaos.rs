//! Chaos scheduling: seeded, reproducible schedule perturbation.
//!
//! PR 1 fixed two release-mode races in `llp_prim_par` that only debug
//! asserts had been catching — evidence that schedule-dependent bugs in the
//! SPMD runtime can survive a test suite that only ever sees the "friendly"
//! schedules an idle machine produces. This module makes the runtime an
//! adversary: when active, it injects randomized yields and bounded spin
//! delays at every chunk-claim point of [`crate::parallel_for`], staggers
//! worker start order inside [`crate::ThreadPool::broadcast`] regions, and
//! sweeps adversarial grain sizes, so the same tests explore radically
//! different interleavings.
//!
//! # Gating
//!
//! Chaos mirrors the [`crate::telemetry`] double gate:
//!
//! 1. **Compile-time**: the `chaos` cargo feature (off by default). Without
//!    it every entry point here is an empty inline no-op, so production and
//!    benchmark builds carry zero chaos code.
//! 2. **Runtime**: perturbation happens only when a seed is set — either the
//!    `LLP_CHAOS_SEED` environment variable holds a `u64`, or a harness
//!    called [`set_seed`]`(Some(seed))`. With the feature compiled in but no
//!    seed set, every call is a relaxed atomic load and a branch.
//!
//! # Reproducibility
//!
//! Every perturbation decision is a pure function of `(seed, thread,
//! per-thread decision index, site)` via SplitMix64 finalization — no OS
//! entropy, no clocks. Re-running with the same seed replays the identical
//! perturbation *stream* per thread (the OS may still interleave threads
//! differently, but the injected delays, the broadcast stagger ranks and the
//! grain choices are bit-identical), which in practice makes chaos failures
//! highly repeatable. The first time a seed becomes active a panic hook is
//! installed that prints `LLP_CHAOS_SEED=<seed>` on any panic, so a failing
//! test always reports the seed needed to reproduce it.

#[cfg(feature = "chaos")]
mod imp {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
    use std::sync::Once;

    // 0 = read LLP_CHAOS_SEED on first use, 1 = off, 2 = on (seed in SEED).
    static STATE: AtomicU8 = AtomicU8::new(0);
    static SEED: AtomicU64 = AtomicU64::new(0);
    static PANIC_HOOK: Once = Once::new();

    thread_local! {
        /// Monotone per-thread decision index; makes each thread's
        /// perturbation stream deterministic in the seed.
        static DECISIONS: Cell<u64> = const { Cell::new(0) };
    }

    /// Perturbation sites, mixed into the decision hash so different call
    /// sites draw from independent streams.
    const SITE_CHUNK_CLAIM: u64 = 0x1;
    const SITE_GRAIN: u64 = 0x2;

    #[inline]
    fn finalize(mut z: u64) -> u64 {
        // SplitMix64 finalizer: full avalanche, so nearby inputs decorrelate.
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// True when chaos is compiled in and a seed is active.
    #[inline]
    pub fn enabled() -> bool {
        match STATE.load(Ordering::Relaxed) {
            0 => init_from_env(),
            1 => false,
            _ => true,
        }
    }

    #[cold]
    fn init_from_env() -> bool {
        match std::env::var("LLP_CHAOS_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            Some(seed) => {
                set_seed(Some(seed));
                true
            }
            None => {
                STATE.store(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Activates (`Some(seed)`) or deactivates (`None`) chaos injection,
    /// overriding the `LLP_CHAOS_SEED` environment gate. Harnesses call this
    /// to sweep seeds within one process.
    pub fn set_seed(seed: Option<u64>) {
        match seed {
            Some(s) => {
                SEED.store(s, Ordering::Relaxed);
                STATE.store(2, Ordering::Relaxed);
                PANIC_HOOK.call_once(|| {
                    let previous = std::panic::take_hook();
                    std::panic::set_hook(Box::new(move |info| {
                        if let Some(seed) = seed_active() {
                            eprintln!(
                                "note: chaos scheduling was active; reproduce with \
                                 LLP_CHAOS_SEED={seed}"
                            );
                        }
                        previous(info);
                    }));
                });
            }
            None => STATE.store(1, Ordering::Relaxed),
        }
    }

    /// The active seed, or `None` when chaos is off.
    pub fn seed_active() -> Option<u64> {
        if enabled() {
            Some(SEED.load(Ordering::Relaxed))
        } else {
            None
        }
    }

    #[inline]
    fn next_decision(tid: usize, site: u64) -> u64 {
        let idx = DECISIONS.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        finalize(
            SEED.load(Ordering::Relaxed)
                ^ finalize(tid as u64 ^ (site << 32))
                ^ idx.wrapping_mul(0x9E3779B97F4A7C15),
        )
    }

    #[inline]
    fn spin(iters: u64) {
        for _ in 0..iters {
            std::hint::spin_loop();
        }
    }

    /// Perturbation point at a `parallel_for` chunk claim: with the seed
    /// active, roughly half the claims proceed untouched, a quarter yield to
    /// the OS scheduler and a quarter spin for a bounded random time.
    #[inline]
    pub fn chunk_claim(tid: usize) {
        if !enabled() {
            return;
        }
        let h = next_decision(tid, SITE_CHUNK_CLAIM);
        match h & 3 {
            0 | 1 => {}
            2 => std::thread::yield_now(),
            _ => spin((h >> 8) & 0x7FF), // up to 2047 spin-loop hints
        }
    }

    /// Staggers the start of an SPMD region: each participant of a
    /// [`crate::ThreadPool::broadcast`] epoch is assigned a pseudo-random
    /// rank and delays proportionally, so workers enter the region in a
    /// seed-determined shuffled order instead of the pool's wake-up order.
    #[inline]
    pub fn region_start(tid: usize, nthreads: usize, epoch: u64) {
        if !enabled() {
            return;
        }
        let h = finalize(SEED.load(Ordering::Relaxed) ^ epoch.wrapping_mul(0xA24BAED4963EE407))
            ^ finalize(tid as u64 ^ 0x9E6C63D0876A9A99);
        let rank = finalize(h) % (nthreads.max(1) as u64);
        spin(rank * 512);
        if finalize(h ^ rank) & 1 == 0 {
            std::thread::yield_now();
        }
    }

    /// Replaces a resolved grain with an adversarial one: tiny grains that
    /// maximize cursor contention, lopsided grains, or a grain covering the
    /// whole range (which serializes the loop). Returns `grain` untouched
    /// when chaos is off.
    #[inline]
    pub fn perturb_grain(grain: usize, len: usize) -> usize {
        if !enabled() {
            return grain;
        }
        let h = next_decision(0, SITE_GRAIN);
        match h % 6 {
            0 => 1,
            1 => 3,
            2 => (grain / 7).max(1),
            3 => (len / 2).max(1),
            4 => len.max(1),
            _ => grain,
        }
    }
}

#[cfg(not(feature = "chaos"))]
mod imp {
    /// Always `false`: chaos is compiled out.
    #[inline(always)]
    pub fn enabled() -> bool {
        false
    }

    /// No-op: chaos is compiled out.
    #[inline(always)]
    pub fn set_seed(_seed: Option<u64>) {}

    /// Always `None`: chaos is compiled out.
    #[inline(always)]
    pub fn seed_active() -> Option<u64> {
        None
    }

    /// No-op: chaos is compiled out.
    #[inline(always)]
    pub fn chunk_claim(_tid: usize) {}

    /// No-op: chaos is compiled out.
    #[inline(always)]
    pub fn region_start(_tid: usize, _nthreads: usize, _epoch: u64) {}

    /// Identity: chaos is compiled out.
    #[inline(always)]
    pub fn perturb_grain(grain: usize, _len: usize) -> usize {
        grain
    }
}

pub use imp::{chunk_claim, enabled, perturb_grain, region_start, seed_active, set_seed};

/// True when the `chaos` cargo feature is compiled in (regardless of
/// whether a seed is active). Harnesses use this to tell the user when
/// their chaos seeds are inert.
#[inline(always)]
pub const fn compiled_in() -> bool {
    cfg!(feature = "chaos")
}

/// Serializes tests that mutate the process-global seed state (the chaos
/// unit tests and the pool's chaos-seeded regression test share it).
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static GATE: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
    GATE.get_or_init(|| std::sync::Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

#[cfg(all(test, feature = "chaos"))]
mod tests {
    use super::*;

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        super::test_lock()
    }

    #[test]
    fn seed_gate_toggles() {
        let _g = serial();
        set_seed(Some(7));
        assert!(enabled());
        assert_eq!(seed_active(), Some(7));
        set_seed(None);
        assert!(!enabled());
        assert_eq!(seed_active(), None);
    }

    #[test]
    fn perturbed_grain_stays_positive_and_bounded() {
        let _g = serial();
        set_seed(Some(99));
        for len in [1usize, 10, 1000, 1 << 20] {
            for _ in 0..64 {
                let g = perturb_grain(128, len);
                assert!(g >= 1);
                assert!(g <= len.max(128), "grain {g} for len {len}");
            }
        }
        set_seed(None);
    }

    #[test]
    fn disabled_grain_is_identity() {
        let _g = serial();
        set_seed(None);
        assert_eq!(perturb_grain(512, 1 << 20), 512);
    }

    #[test]
    fn perturbation_points_terminate() {
        let _g = serial();
        set_seed(Some(3));
        for tid in 0..4 {
            for _ in 0..256 {
                chunk_claim(tid);
            }
            region_start(tid, 4, 9);
        }
        set_seed(None);
    }
}

//! Relaxed instrumentation counters.
//!
//! The paper's figures are wall-clock measurements on a 48-vCPU machine.
//! On smaller machines the *shapes* of those figures are reproduced through
//! machine-independent work metrics: heap pushes/pops, edges scanned, early
//! fixes, Boruvka rounds, pointer-jump steps. Counters are incremented with
//! relaxed atomics so they are safe to bump from inside parallel regions and
//! cheap enough to leave enabled.

use std::sync::atomic::{AtomicU64, Ordering};

/// A single monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zeroed counter.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Increments by one.
    #[inline]
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

impl Clone for Counter {
    fn clone(&self) -> Self {
        Counter(AtomicU64::new(self.get()))
    }
}

/// A local, non-atomic accumulator that flushes into a [`Counter`] on drop.
///
/// Use inside tight per-thread loops where even relaxed atomic adds would
/// show up in profiles; the atomic traffic becomes one add per chunk.
pub struct LocalCount<'a> {
    target: &'a Counter,
    pending: u64,
}

impl<'a> LocalCount<'a> {
    /// Starts a local accumulator for `target`.
    pub fn new(target: &'a Counter) -> Self {
        LocalCount { target, pending: 0 }
    }

    /// Increments the local tally by one.
    #[inline]
    pub fn incr(&mut self) {
        self.pending += 1;
    }

    /// Increments the local tally by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.pending += n;
    }
}

impl Drop for LocalCount<'_> {
    fn drop(&mut self) {
        self.target.add(self.pending);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPool;

    #[test]
    fn counter_basic_ops() {
        let c = Counter::new();
        c.incr();
        c.add(10);
        c.add(0);
        assert_eq!(c.get(), 11);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_clone_snapshots() {
        let c = Counter::new();
        c.add(5);
        let snap = c.clone();
        c.add(5);
        assert_eq!(snap.get(), 5);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn concurrent_increments_are_exact() {
        let pool = ThreadPool::new(4);
        let c = Counter::new();
        pool.broadcast(|_| {
            for _ in 0..10_000 {
                c.incr();
            }
        });
        assert_eq!(c.get(), 40_000);
    }

    #[test]
    fn local_count_flushes_on_drop() {
        let c = Counter::new();
        {
            let mut l = LocalCount::new(&c);
            l.incr();
            l.add(9);
            assert_eq!(c.get(), 0, "not flushed until drop");
        }
        assert_eq!(c.get(), 10);
    }
}

//! Minimal lock primitives with a `parking_lot`-style API over `std::sync`.
//!
//! The workspace builds in hermetic environments with no registry access, so
//! the runtime cannot pull in `parking_lot`. These wrappers keep the ergonomic
//! API the rest of the crate was written against — `lock()` returning a guard
//! directly and `Condvar::wait(&mut guard)` — while delegating to the standard
//! library. Poisoning is deliberately ignored (parking_lot semantics): a
//! panicked critical section in this codebase only ever holds plain data, and
//! the pool already propagates worker panics explicitly.

use std::sync::PoisonError;

/// A mutex whose `lock` returns the guard directly, ignoring poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A condition variable whose `wait` reacquires through a `&mut` guard.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified, atomically releasing and reacquiring the lock
    /// behind `guard` (parking_lot-style `&mut` signature).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // SAFETY: `ptr::read` temporarily duplicates the guard so it can be
        // passed by value to `std::sync::Condvar::wait`; the original slot is
        // immediately overwritten with the reacquired guard. `wait` returns
        // `Err` (poison) rather than panicking for every failure mode reachable
        // here — each Condvar in this crate is paired with exactly one mutex —
        // so the duplicated guard cannot be double-dropped.
        unsafe {
            let taken = std::ptr::read(guard);
            let reacquired = self.0.wait(taken).unwrap_or_else(PoisonError::into_inner);
            std::ptr::write(guard, reacquired);
        }
    }

    /// Wakes one waiter.
    #[inline]
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    #[inline]
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_survives_poisoning_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let ready = Arc::new(AtomicBool::new(false));
        let (s2, r2) = (Arc::clone(&shared), Arc::clone(&ready));
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*s2;
            let mut done = lock.lock();
            r2.store(true, Ordering::SeqCst);
            while !*done {
                cv.wait(&mut done);
            }
        });
        while !ready.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        let (lock, cv) = &*shared;
        *lock.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }
}

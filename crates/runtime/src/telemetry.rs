//! Phase-level telemetry: span timers, per-wave histograms, named counters.
//!
//! The paper's speedup claims are *work structure* claims — heap traffic
//! removed by early fixing, synchronization removed by pointer jumping — and
//! verifying them at scale needs per-phase timing and contention telemetry,
//! not just end-to-end wall clock. This module gives every algorithm in the
//! workspace a shared, low-overhead recorder:
//!
//! * [`span`] — a named phase timer; elapsed time is accumulated per phase
//!   name when the guard drops (`mwe-compute`, `frontier-wave`, `q-flush`,
//!   `heap-extract`, `pointer-jump`, `contract`, ...).
//! * [`record_value`] — one sample of a per-wave quantity (frontier size,
//!   bag occupancy, heap depth); aggregated as count/sum/min/max plus a
//!   log2-bucketed histogram, so a million waves cost a fixed footprint.
//! * [`counter_add`] — a named-counter registry extending [`crate::Counter`]
//!   for events that do not belong to a single struct's `AlgoStats`.
//!
//! # Gating
//!
//! Telemetry is double-gated so the Fig. 2 benchmark numbers are unaffected:
//!
//! 1. **Compile-time**: the `telemetry` cargo feature (on by default).
//!    Building with `--no-default-features` compiles every entry point here
//!    to an empty inline function — zero code, zero data.
//! 2. **Runtime**: recording happens only while enabled — either the
//!    `LLP_TELEMETRY` environment variable is set to something other than
//!    `0`/`false`/empty, or a harness called [`set_enabled]`(true)`.
//!    When disabled, every call is a single relaxed atomic load and branch.
//!
//! # Collection
//!
//! A harness brackets a run with [`begin_run`] and [`take_report`]; the
//! returned [`RunReport`] serialises itself to JSON via
//! [`RunReport::to_json`] (no external serialisation crates are available in
//! hermetic builds).

/// Aggregate timing for one named phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    /// Phase name as passed to [`span`].
    pub name: String,
    /// Number of completed spans.
    pub calls: u64,
    /// Total nanoseconds across all spans.
    pub total_ns: u64,
    /// Shortest single span, ns.
    pub min_ns: u64,
    /// Longest single span, ns.
    pub max_ns: u64,
}

/// Aggregate of a sampled per-wave series (e.g. frontier sizes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesStat {
    /// Series name as passed to [`record_value`].
    pub name: String,
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// `buckets[i]` counts samples whose bit length is `i`; bucket 0 holds
    /// zeros, bucket `i` holds values in `[2^(i-1), 2^i)`.
    pub buckets: Vec<u64>,
}

/// Snapshot of everything recorded between [`begin_run`] and [`take_report`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Whether telemetry was compiled in *and* enabled during the run.
    pub enabled: bool,
    /// Per-phase timing aggregates, sorted by phase name.
    pub phases: Vec<PhaseStat>,
    /// Per-wave series aggregates, sorted by series name.
    pub series: Vec<SeriesStat>,
    /// Named counters, sorted by name.
    pub counters: Vec<(String, u64)>,
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

impl RunReport {
    /// Serialises the report as a JSON object (stable key order).
    ///
    /// Histogram buckets are emitted sparsely as `[[bit_length, count], ...]`
    /// so reports stay small for long runs with narrow distributions.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"enabled\":");
        out.push_str(if self.enabled { "true" } else { "false" });
        out.push_str(",\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            escape_json(&p.name, &mut out);
            out.push_str(&format!(
                "\",\"calls\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{}}}",
                p.calls, p.total_ns, p.min_ns, p.max_ns
            ));
        }
        out.push_str("],\"series\":[");
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            escape_json(&s.name, &mut out);
            out.push_str(&format!(
                "\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"log2_buckets\":[",
                s.count, s.sum, s.min, s.max
            ));
            let mut first = true;
            for (bits, &n) in s.buckets.iter().enumerate() {
                if n > 0 {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    out.push_str(&format!("[{bits},{n}]"));
                }
            }
            out.push_str("]}");
        }
        out.push_str("],\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json(name, &mut out);
            out.push_str(&format!("\":{value}"));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(feature = "telemetry")]
mod imp {
    use super::{PhaseStat, RunReport, SeriesStat};
    use crate::sync::Mutex;
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicU8, Ordering};
    use std::sync::OnceLock;
    use std::time::Instant;

    // 0 = read LLP_TELEMETRY on first use, 1 = off, 2 = on.
    static ENABLED: AtomicU8 = AtomicU8::new(0);

    #[derive(Default)]
    struct PhaseAgg {
        calls: u64,
        total_ns: u64,
        min_ns: u64,
        max_ns: u64,
    }

    struct SeriesAgg {
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        buckets: [u64; 65],
    }

    impl Default for SeriesAgg {
        fn default() -> Self {
            SeriesAgg {
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
                buckets: [0; 65],
            }
        }
    }

    #[derive(Default)]
    struct Registry {
        phases: BTreeMap<&'static str, PhaseAgg>,
        series: BTreeMap<&'static str, SeriesAgg>,
        counters: BTreeMap<&'static str, u64>,
    }

    fn registry() -> &'static Mutex<Registry> {
        static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
    }

    /// True when telemetry recording is active.
    #[inline]
    pub fn enabled() -> bool {
        match ENABLED.load(Ordering::Relaxed) {
            0 => init_from_env(),
            1 => false,
            _ => true,
        }
    }

    #[cold]
    fn init_from_env() -> bool {
        let on = match std::env::var("LLP_TELEMETRY") {
            Ok(v) => !(v.is_empty() || v == "0" || v.eq_ignore_ascii_case("false")),
            Err(_) => false,
        };
        ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
        on
    }

    /// Programmatically enables or disables recording, overriding the
    /// `LLP_TELEMETRY` environment gate (harnesses call this).
    pub fn set_enabled(on: bool) {
        ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    }

    /// Guard returned by [`span`]; accumulates elapsed time on drop.
    pub struct SpanGuard(Option<(&'static str, Instant)>);

    /// Starts a named phase span. Time from this call until the guard drops
    /// is accumulated under `name`.
    #[inline]
    pub fn span(name: &'static str) -> SpanGuard {
        if enabled() {
            SpanGuard(Some((name, Instant::now())))
        } else {
            SpanGuard(None)
        }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            if let Some((name, start)) = self.0.take() {
                let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                let mut reg = registry().lock();
                let agg = reg.phases.entry(name).or_default();
                if agg.calls == 0 {
                    agg.min_ns = ns;
                    agg.max_ns = ns;
                } else {
                    agg.min_ns = agg.min_ns.min(ns);
                    agg.max_ns = agg.max_ns.max(ns);
                }
                agg.calls += 1;
                agg.total_ns += ns;
            }
        }
    }

    /// Records one sample of a per-wave series (frontier size, bag
    /// occupancy, heap depth, ...).
    #[inline]
    pub fn record_value(series: &'static str, value: u64) {
        if !enabled() {
            return;
        }
        let mut reg = registry().lock();
        let agg = reg.series.entry(series).or_default();
        if agg.count == 0 {
            agg.min = value;
            agg.max = value;
        } else {
            agg.min = agg.min.min(value);
            agg.max = agg.max.max(value);
        }
        agg.count += 1;
        agg.sum += value;
        agg.buckets[(64 - value.leading_zeros()) as usize] += 1;
    }

    /// Adds `n` to the named registry counter.
    #[inline]
    pub fn counter_add(name: &'static str, n: u64) {
        if !enabled() {
            return;
        }
        let mut reg = registry().lock();
        *reg.counters.entry(name).or_default() += n;
    }

    /// Clears all recorded data, starting a fresh measurement window.
    pub fn begin_run() {
        let mut reg = registry().lock();
        *reg = Registry::default();
    }

    /// Snapshots everything recorded since [`begin_run`] and clears it.
    pub fn take_report() -> RunReport {
        let mut reg = registry().lock();
        let taken = std::mem::take(&mut *reg);
        drop(reg);
        RunReport {
            enabled: enabled(),
            phases: taken
                .phases
                .into_iter()
                .map(|(name, a)| PhaseStat {
                    name: name.to_string(),
                    calls: a.calls,
                    total_ns: a.total_ns,
                    min_ns: a.min_ns,
                    max_ns: a.max_ns,
                })
                .collect(),
            series: taken
                .series
                .into_iter()
                .map(|(name, a)| {
                    let top = a
                        .buckets
                        .iter()
                        .rposition(|&n| n > 0)
                        .map_or(0, |i| i + 1);
                    SeriesStat {
                        name: name.to_string(),
                        count: a.count,
                        sum: a.sum,
                        min: a.min,
                        max: a.max,
                        buckets: a.buckets[..top].to_vec(),
                    }
                })
                .collect(),
            counters: taken
                .counters
                .into_iter()
                .map(|(name, v)| (name.to_string(), v))
                .collect(),
        }
    }
}

#[cfg(not(feature = "telemetry"))]
mod imp {
    use super::RunReport;

    /// Always `false`: telemetry is compiled out.
    #[inline(always)]
    pub fn enabled() -> bool {
        false
    }

    /// No-op: telemetry is compiled out.
    #[inline(always)]
    pub fn set_enabled(_on: bool) {}

    /// Zero-sized no-op guard.
    pub struct SpanGuard(());

    // A (trivial) Drop impl keeps call sites uniform across both builds:
    // callers may `drop(guard)` to end a span early without tripping
    // `clippy::drop_non_drop` when telemetry is compiled out.
    impl Drop for SpanGuard {
        fn drop(&mut self) {}
    }

    /// No-op: telemetry is compiled out.
    #[inline(always)]
    pub fn span(_name: &'static str) -> SpanGuard {
        SpanGuard(())
    }

    /// No-op: telemetry is compiled out.
    #[inline(always)]
    pub fn record_value(_series: &'static str, _value: u64) {}

    /// No-op: telemetry is compiled out.
    #[inline(always)]
    pub fn counter_add(_name: &'static str, _n: u64) {}

    /// No-op: telemetry is compiled out.
    #[inline(always)]
    pub fn begin_run() {}

    /// Returns an empty disabled report.
    #[inline(always)]
    pub fn take_report() -> RunReport {
        RunReport::default()
    }
}

pub use imp::{begin_run, counter_add, enabled, record_value, set_enabled, span, take_report, SpanGuard};

/// Peak resident set size of this process in bytes, read from the
/// kernel's high-water mark (`VmHWM` in `/proc/self/status`) on Linux;
/// `None` on other platforms or when procfs is unavailable.
///
/// This is a process-lifetime gauge, not a phase measurement: it only
/// ever rises, and it is independent of the `telemetry` feature gate so
/// memory-budget checks (the out-of-core harness gate) work in every
/// build configuration.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        parse_vm_hwm_bytes(&status)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Parses the `VmHWM:` line of a `/proc/<pid>/status` dump into bytes.
/// The kernel always reports the value in kB.
#[cfg_attr(not(target_os = "linux"), allow(dead_code))]
fn parse_vm_hwm_bytes(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod rss_tests {
    use super::*;

    #[test]
    fn parses_vm_hwm_lines() {
        let status = "Name:\tcargo\nVmPeak:\t  123 kB\nVmHWM:\t   20512 kB\nVmRSS:\t 20000 kB\n";
        assert_eq!(parse_vm_hwm_bytes(status), Some(20512 * 1024));
        assert_eq!(parse_vm_hwm_bytes("Name:\tx\n"), None);
        assert_eq!(parse_vm_hwm_bytes("VmHWM:\tgarbage kB\n"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn peak_rss_is_positive_and_monotone() {
        let before = peak_rss_bytes().expect("procfs available");
        assert!(before > 0);
        // Touch a real allocation; the high-water mark can only rise.
        let v = vec![1u8; 4 << 20];
        std::hint::black_box(&v);
        let after = peak_rss_bytes().expect("procfs available");
        assert!(after >= before);
    }
}

#[cfg(all(test, feature = "telemetry"))]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    // The registry is process-global; serialise tests that mutate it.
    fn serial() -> MutexGuard<'static, ()> {
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        GATE.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = serial();
        set_enabled(false);
        begin_run();
        {
            let _s = span("p");
            record_value("v", 10);
            counter_add("c", 3);
        }
        let r = take_report();
        assert!(!r.enabled);
        assert!(r.phases.is_empty());
        assert!(r.series.is_empty());
        assert!(r.counters.is_empty());
    }

    #[test]
    fn spans_accumulate_per_name() {
        let _g = serial();
        set_enabled(true);
        begin_run();
        for _ in 0..3 {
            let _s = span("wave");
        }
        {
            let _s = span("flush");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let r = take_report();
        set_enabled(false);
        assert!(r.enabled);
        assert_eq!(r.phases.len(), 2);
        let flush = r.phases.iter().find(|p| p.name == "flush").unwrap();
        assert_eq!(flush.calls, 1);
        assert!(flush.total_ns >= 2_000_000, "slept 2ms, got {}", flush.total_ns);
        assert!(flush.min_ns <= flush.max_ns);
        let wave = r.phases.iter().find(|p| p.name == "wave").unwrap();
        assert_eq!(wave.calls, 3);
        assert!(wave.total_ns >= wave.min_ns);
    }

    #[test]
    fn series_aggregates_and_buckets() {
        let _g = serial();
        set_enabled(true);
        begin_run();
        for v in [0u64, 1, 1, 3, 1000] {
            record_value("frontier-size", v);
        }
        let r = take_report();
        set_enabled(false);
        assert_eq!(r.series.len(), 1);
        let s = &r.series[0];
        assert_eq!(s.name, "frontier-size");
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1005);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        assert_eq!(s.buckets[0], 1, "one zero");
        assert_eq!(s.buckets[1], 2, "two ones");
        assert_eq!(s.buckets[2], 1, "3 has bit length 2");
        assert_eq!(s.buckets[10], 1, "1000 has bit length 10");
        assert_eq!(s.buckets.len(), 11, "buckets trimmed to top bit length");
    }

    #[test]
    fn counters_accumulate() {
        let _g = serial();
        set_enabled(true);
        begin_run();
        counter_add("stale-heap-pops", 2);
        counter_add("stale-heap-pops", 3);
        counter_add("repushed", 1);
        let r = take_report();
        set_enabled(false);
        assert_eq!(
            r.counters,
            vec![("repushed".to_string(), 1), ("stale-heap-pops".to_string(), 5)]
        );
    }

    #[test]
    fn begin_run_clears_previous_data() {
        let _g = serial();
        set_enabled(true);
        begin_run();
        record_value("x", 1);
        begin_run();
        let r = take_report();
        set_enabled(false);
        assert!(r.series.is_empty());
    }

    #[test]
    fn json_shape_is_valid_and_complete() {
        let _g = serial();
        set_enabled(true);
        begin_run();
        {
            let _s = span("heap-extract");
        }
        record_value("heap-depth", 7);
        counter_add("c\"quoted", 1);
        let r = take_report();
        set_enabled(false);
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"enabled\":true"));
        assert!(json.contains("\"name\":\"heap-extract\""));
        assert!(json.contains("\"log2_buckets\":[[3,1]]"), "{json}");
        assert!(json.contains("\\\"quoted"), "quotes escaped: {json}");
        // Balanced braces/brackets (cheap structural sanity check).
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn empty_report_serialises() {
        let r = RunReport::default();
        assert_eq!(
            r.to_json(),
            "{\"enabled\":false,\"phases\":[],\"series\":[],\"counters\":{}}"
        );
    }
}

#[cfg(all(test, not(feature = "telemetry")))]
mod tests_disabled {
    use super::*;

    #[test]
    fn all_entry_points_are_no_ops() {
        set_enabled(true); // must still be a no-op
        assert!(!enabled());
        begin_run();
        {
            let _s = span("p");
            record_value("v", 1);
            counter_add("c", 1);
        }
        let r = take_report();
        assert!(!r.enabled);
        assert!(r.phases.is_empty() && r.series.is_empty() && r.counters.is_empty());
    }
}

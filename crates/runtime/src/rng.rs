//! A small, fast, seedable PRNG with a `rand`-like surface.
//!
//! Hermetic builds cannot pull the `rand` crate from a registry, and nothing
//! in this workspace needs cryptographic randomness — generators and tests
//! only need a fast deterministic stream. [`SmallRng`] is xoshiro256++
//! (Blackman & Vigna), seeded through SplitMix64 exactly as the reference
//! implementation recommends, exposing the subset of the `rand` API the
//! workspace uses: `seed_from_u64`, `gen`, `gen_range`, `gen_bool`, `shuffle`.
//!
//! Determinism is part of the contract: every generator takes an explicit
//! seed and must produce the same graph on every platform, so the stream is
//! fixed by this implementation and never by platform entropy.

/// Xoshiro256++ PRNG. Not cryptographically secure.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SmallRng {
    /// Builds a generator from a 64-bit seed (SplitMix64 state expansion).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SmallRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit output (upper half of the 64-bit stream).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Samples a value of `T` from its full/unit range (see [`Sample`]).
    #[inline]
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range. Panics on an empty range.
    #[inline]
    pub fn gen_range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Fisher–Yates shuffle of `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..i + 1);
            slice.swap(i, j);
        }
    }
}

/// Types samplable from the raw stream: integers over their full range,
/// floats uniform in `[0, 1)`, `bool` as a fair coin.
pub trait Sample {
    /// Draws one value.
    fn sample(rng: &mut SmallRng) -> Self;
}

impl Sample for u64 {
    #[inline]
    fn sample(rng: &mut SmallRng) -> u64 {
        rng.next_u64()
    }
}

impl Sample for u32 {
    #[inline]
    fn sample(rng: &mut SmallRng) -> u32 {
        rng.next_u32()
    }
}

impl Sample for f64 {
    #[inline]
    fn sample(rng: &mut SmallRng) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    #[inline]
    fn sample(rng: &mut SmallRng) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Sample for bool {
    #[inline]
    fn sample(rng: &mut SmallRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types supporting uniform sampling from `Range<Self>`.
pub trait SampleRange: Sized {
    /// Draws one value from `range`; panics if the range is empty.
    fn sample_range(rng: &mut SmallRng, range: std::ops::Range<Self>) -> Self;
}

#[inline]
fn bounded_u64(rng: &mut SmallRng, span: u64) -> u64 {
    // Debiased multiply-shift (Lemire): uniform over 0..span.
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let hi = ((x as u128 * span as u128) >> 64) as u64;
        let lo = x.wrapping_mul(span);
        if lo >= threshold {
            return hi;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            #[inline]
            fn sample_range(rng: &mut SmallRng, range: std::ops::Range<$t>) -> $t {
                assert!(range.start < range.end, "gen_range on empty range");
                let span = range.end.wrapping_sub(range.start) as u64;
                range.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u32, u64, usize, i32, i64);

impl SampleRange for f64 {
    #[inline]
    fn sample_range(rng: &mut SmallRng, range: std::ops::Range<f64>) -> f64 {
        assert!(range.start < range.end, "gen_range on empty range");
        range.start + rng.gen::<f64>() * (range.end - range.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_are_in_range_and_spread() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds_and_hits_all_values() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(5u32..15);
            assert!((5..15).contains(&v));
            seen[(v - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
        for _ in 0..1000 {
            let v = rng.gen_range(-3i64..4);
            assert!((-3..4).contains(&v));
        }
        for _ in 0..1000 {
            let v = rng.gen_range(2.5f64..3.5);
            assert!((2.5..3.5).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = rng.gen_range(3u32..3);
    }

    #[test]
    fn gen_bool_probability_is_respected() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.1)).count();
        assert!((700..1300).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.5)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100 elements almost surely move");
    }
}

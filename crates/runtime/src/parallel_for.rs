//! Dynamically load-balanced parallel loops over index ranges.
//!
//! The loops hand out chunks of `grain` indices from a shared atomic cursor,
//! which is the scheduling model both Galois (`do_all` with a chunked
//! worklist) and GBBS (`parallel_for` with granularity control) use for flat
//! loops over vertex or edge ranges.

use crate::pool::ThreadPool;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Smallest grain the derived default will pick: below this, the atomic
/// cursor traffic per chunk outweighs useful work for the loop bodies in
/// this workspace.
pub const MIN_DERIVED_GRAIN: usize = 64;

/// Tuning knobs for a parallel loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParallelForConfig {
    /// Number of consecutive indices claimed per atomic fetch. `None`
    /// (the default) derives a grain from the range length and thread
    /// count at call time — see [`ParallelForConfig::resolve_grain`].
    pub grain: Option<usize>,
}

impl ParallelForConfig {
    /// A config with an explicit grain (clamped to at least 1), overriding
    /// the derived default.
    pub fn with_grain(grain: usize) -> Self {
        ParallelForConfig {
            grain: Some(grain.max(1)),
        }
    }

    /// The grain a loop over `len` indices on `nthreads` threads will use.
    ///
    /// An explicit [`with_grain`](ParallelForConfig::with_grain) wins.
    /// Otherwise the grain targets ~8 chunks per thread — enough slack for
    /// dynamic load balancing without serializing ranges that are merely a
    /// few times larger than a fixed grain (the old hard-coded 1024 ran
    /// a 4096-element range as 4 chunks, which one worker often swallowed
    /// whole) — clamped to a floor of [`MIN_DERIVED_GRAIN`].
    pub fn resolve_grain(&self, len: usize, nthreads: usize) -> usize {
        match self.grain {
            Some(g) => g.max(1),
            None => (len / (nthreads.max(1) * 8)).max(MIN_DERIVED_GRAIN),
        }
    }
}

/// Runs `f(i)` for every `i` in `range`, distributing chunks over the pool.
///
/// Falls back to a plain sequential loop for single-thread pools or ranges
/// smaller than one grain, so instrumented single-thread baselines pay no
/// scheduling overhead.
///
/// ```
/// use llp_runtime::{parallel_for, ParallelForConfig, ThreadPool};
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let pool = ThreadPool::new(2);
/// let sum = AtomicU64::new(0);
/// parallel_for(&pool, 0..1000, ParallelForConfig::default(), |i| {
///     sum.fetch_add(i as u64, Ordering::Relaxed);
/// });
/// assert_eq!(sum.load(Ordering::Relaxed), 499_500);
/// ```
pub fn parallel_for<F>(pool: &ThreadPool, range: Range<usize>, config: ParallelForConfig, f: F)
where
    F: Fn(usize) + Sync,
{
    parallel_for_chunks(pool, range, config, |chunk| {
        for i in chunk {
            f(i);
        }
    });
}

/// Runs `f(chunk)` over disjoint chunks covering `range`.
///
/// Chunked access lets callers hoist per-chunk state (thread-local buffers,
/// counters) out of the inner loop.
pub fn parallel_for_chunks<F>(
    pool: &ThreadPool,
    range: Range<usize>,
    config: ParallelForConfig,
    f: F,
) where
    F: Fn(Range<usize>) + Sync,
{
    parallel_for_chunks_ctx(pool, range, config, |_ctx, chunk| f(chunk));
}

/// Like [`parallel_for_chunks`], additionally handing each chunk the
/// executing worker's [`crate::pool::WorkerCtx`] — the hook per-thread structures such
/// as [`crate::Bag`] need to route pushes to their own segment.
pub fn parallel_for_chunks_ctx<F>(
    pool: &ThreadPool,
    range: Range<usize>,
    config: ParallelForConfig,
    f: F,
) where
    F: Fn(crate::pool::WorkerCtx, Range<usize>) + Sync,
{
    let len = range.end.saturating_sub(range.start);
    if len == 0 {
        return;
    }
    let grain = crate::chaos::perturb_grain(config.resolve_grain(len, pool.threads()), len);
    if pool.threads() == 1 || len <= grain {
        f(
            crate::pool::WorkerCtx {
                tid: 0,
                nthreads: pool.threads(),
            },
            range,
        );
        return;
    }

    let start = range.start;
    let cursor = AtomicUsize::new(0);
    pool.broadcast(|ctx| loop {
        crate::chaos::chunk_claim(ctx.tid);
        let lo = cursor.fetch_add(grain, Ordering::Relaxed);
        if lo >= len {
            break;
        }
        let hi = (lo + grain).min(len);
        f(ctx, start + lo..start + hi);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn sum_with(pool: &ThreadPool, n: usize, grain: usize) -> u64 {
        let acc = AtomicU64::new(0);
        parallel_for(
            pool,
            0..n,
            ParallelForConfig::with_grain(grain),
            |i| {
                acc.fetch_add(i as u64, Ordering::Relaxed);
            },
        );
        acc.load(Ordering::Relaxed)
    }

    #[test]
    fn covers_every_index_exactly_once() {
        let pool = ThreadPool::new(4);
        for n in [0usize, 1, 5, 100, 10_000] {
            for grain in [1usize, 7, 1024] {
                let expect = (0..n as u64).sum::<u64>();
                assert_eq!(sum_with(&pool, n, grain), expect, "n={n} grain={grain}");
            }
        }
    }

    #[test]
    fn nonzero_range_start_respected() {
        let pool = ThreadPool::new(3);
        let acc = AtomicU64::new(0);
        parallel_for(&pool, 10..20, ParallelForConfig::with_grain(3), |i| {
            assert!((10..20).contains(&i));
            acc.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(acc.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn chunks_partition_the_range() {
        let pool = ThreadPool::new(4);
        let seen = crate::sync::Mutex::new(vec![0u32; 1000]);
        parallel_for_chunks(&pool, 0..1000, ParallelForConfig::with_grain(64), |c| {
            let mut seen = seen.lock();
            for i in c {
                seen[i] += 1;
            }
        });
        assert!(seen.lock().iter().all(|&c| c == 1));
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        assert_eq!(sum_with(&pool, 1000, 16), (0..1000u64).sum::<u64>());
    }

    #[test]
    fn ctx_variant_reports_valid_worker_ids() {
        let pool = ThreadPool::new(4);
        let seen = crate::sync::Mutex::new(std::collections::HashSet::new());
        parallel_for_chunks_ctx(&pool, 0..10_000, ParallelForConfig::with_grain(64), |ctx, c| {
            assert!(ctx.tid < ctx.nthreads);
            assert_eq!(ctx.nthreads, 4);
            seen.lock().insert((ctx.tid, c.start));
        });
        let chunks: usize = seen.lock().len();
        assert_eq!(chunks, 10_000 / 64 + 1);
    }

    #[test]
    fn derived_grain_scales_with_range_and_threads() {
        let cfg = ParallelForConfig::default();
        // ~8 chunks per thread once the range is large enough.
        assert_eq!(cfg.resolve_grain(1 << 20, 4), (1 << 20) / 32);
        assert_eq!(cfg.resolve_grain(4096, 4), 128);
        // Small ranges clamp to the floor instead of degenerating to
        // one-index chunks.
        assert_eq!(cfg.resolve_grain(100, 4), MIN_DERIVED_GRAIN);
        assert_eq!(cfg.resolve_grain(0, 1), MIN_DERIVED_GRAIN);
        // Explicit grains always win.
        assert_eq!(ParallelForConfig::with_grain(7).resolve_grain(1 << 20, 8), 7);
    }

    #[test]
    fn default_grain_spreads_mid_sized_ranges_over_workers() {
        // Regression: the old fixed grain of 1024 ran a range of ~2 grains
        // as 2 chunks, which a single worker usually swallowed whole. The
        // derived grain must produce enough chunks to occupy the pool.
        let pool = ThreadPool::new(4);
        let n = 3000; // just under 3 old-style grains
        let grain = ParallelForConfig::default().resolve_grain(n, pool.threads());
        assert!(
            n / grain >= pool.threads(),
            "derived grain {grain} yields too few chunks for {n} indices"
        );
        assert_eq!(
            {
                let acc = AtomicU64::new(0);
                parallel_for(&pool, 0..n, ParallelForConfig::default(), |i| {
                    acc.fetch_add(i as u64, Ordering::Relaxed);
                });
                acc.load(Ordering::Relaxed)
            },
            (0..n as u64).sum::<u64>()
        );
    }

    #[test]
    fn zero_grain_is_clamped() {
        let pool = ThreadPool::new(2);
        let cfg = ParallelForConfig::with_grain(0);
        assert_eq!(cfg.grain, Some(1));
        let acc = AtomicU64::new(0);
        parallel_for(&pool, 0..10, cfg, |_| {
            acc.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(acc.load(Ordering::Relaxed), 10);
    }
}
